// Federated query answering over autonomous endpoints (§I): three
// independently-authored RDF repositories, each with its own schema, are
// queried as one — without copying or saturating anything. Constraints
// from any endpoint apply to facts from any other.
#include <cstdlib>
#include <iostream>

#include "federation/federation.h"

namespace {

constexpr const char* kMuseum = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix mus: <http://museum.org/> .
mus:Painting rdfs:subClassOf mus:Artwork .
mus:Sculpture rdfs:subClassOf mus:Artwork .
mus:monaLisa a mus:Painting .
mus:david a mus:Sculpture .
)";

constexpr const char* kAuctionHouse = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix mus: <http://museum.org/> .
@prefix auc: <http://auction.org/> .
auc:soldFor rdfs:domain mus:Artwork .
auc:theScream auc:soldFor auc:lot42 .
)";

constexpr const char* kArchive = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix mus: <http://museum.org/> .
@prefix arc: <http://archive.org/> .
arc:Fresco rdfs:subClassOf mus:Painting .
arc:lastSupper a arc:Fresco .
)";

constexpr const char* kArtworksQuery = R"(
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX mus: <http://museum.org/>
SELECT ?x WHERE { ?x rdf:type mus:Artwork }
)";

}  // namespace

int main() {
  wdr::federation::Federation fed;
  struct Source {
    const char* name;
    const char* data;
  };
  const Source sources[] = {{"museum", kMuseum},
                            {"auction-house", kAuctionHouse},
                            {"archive", kArchive}};
  for (const Source& source : sources) {
    wdr::federation::EndpointId id = fed.AddEndpoint(source.name);
    auto loaded = fed.LoadTurtle(id, source.data);
    if (!loaded.ok()) {
      std::cerr << source.name << ": " << loaded.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << "endpoint '" << source.name << "' publishes " << *loaded
              << " triples\n";
  }

  wdr::federation::FederationQueryInfo info;
  auto result = fed.Query(kArtworksQuery, &info);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status() << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "\nAll artworks across the federation (reformulated into "
            << info.union_size << " conjunctive queries, "
            << info.endpoints_scanned << " endpoints scanned, nothing "
            << "materialized):\n";
  for (const wdr::query::Row& row : result->rows) {
    std::cout << "  " << fed.dict().term(row[0]).ToNTriples() << "\n";
  }
  std::cout << "\nNote the cross-endpoint entailments: theScream is an "
               "Artwork because the\nauction house declares soldFor's "
               "domain; lastSupper because the archive's\nFresco class "
               "plugs into the museum's hierarchy.\n";
  return EXIT_SUCCESS;
}
