// The paper's §I motivation: integrating autonomous RDF endpoints.
//
// Two "endpoints" publish data about people; each has its own schema, and
// endpoint B revises its schema while the application runs. The example
// contrasts the two techniques under change:
//
//   - with SATURATION, every schema change forces closure maintenance
//     (here we show both incremental maintenance and what a full
//     recomputation would cost in derived triples);
//   - with REFORMULATION, nothing is recomputed — the next query is simply
//     rewritten against the current schema and stays correct.
#include <cstdlib>
#include <iostream>

#include "io/turtle.h"
#include "query/evaluator.h"
#include "query/sparql_parser.h"
#include "reasoning/saturated_graph.h"
#include "reformulation/reformulator.h"
#include "schema/schema.h"

namespace {

// Endpoint A: a social network.
constexpr const char* kEndpointA = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix a: <http://endpointA.org/> .
a:follows rdfs:domain a:Account ;
          rdfs:range  a:Account .
a:Account rdfs:subClassOf a:Agent .
a:u1 a:follows a:u2 .
a:u2 a:follows a:u3 .
)";

// Endpoint B: an HR directory, initially with a shallow schema.
constexpr const char* kEndpointB = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix b: <http://endpointB.org/> .
b:Employee rdfs:subClassOf b:Person .
b:emp1 a b:Employee .
b:emp2 a b:Contractor .
)";

// B's schema revision: contractors are people too, and every Person is an
// Agent in A's sense (cross-endpoint alignment).
constexpr const char* kEndpointBRevision = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix a: <http://endpointA.org/> .
@prefix b: <http://endpointB.org/> .
b:Contractor rdfs:subClassOf b:Person .
b:Person     rdfs:subClassOf a:Agent .
)";

constexpr const char* kAgentsQuery = R"(
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX a: <http://endpointA.org/>
SELECT ?x WHERE { ?x rdf:type a:Agent }
)";

size_t AnswerByReformulation(wdr::rdf::Graph& graph,
                             const wdr::schema::Vocabulary& vocab,
                             const wdr::query::UnionQuery& query) {
  wdr::reformulation::CloseSchema(graph, vocab);
  wdr::schema::Schema schema = wdr::schema::Schema::FromGraph(graph, vocab);
  wdr::reformulation::Reformulator reformulator(schema, vocab);
  auto reformulated = reformulator.Reformulate(query);
  if (!reformulated.ok()) {
    std::cerr << "reformulation failed: " << reformulated.status() << "\n";
    std::exit(EXIT_FAILURE);
  }
  wdr::query::Evaluator evaluator(graph.store());
  return evaluator.Evaluate(*reformulated).rows.size();
}

}  // namespace

int main() {
  wdr::rdf::Graph graph;
  wdr::schema::Vocabulary vocab =
      wdr::schema::Vocabulary::Intern(graph.dict());

  for (const char* endpoint : {kEndpointA, kEndpointB}) {
    auto parsed = wdr::io::ParseTurtle(endpoint, graph);
    if (!parsed.ok()) {
      std::cerr << "parse error: " << parsed.status() << "\n";
      return EXIT_FAILURE;
    }
  }
  std::cout << "Integrated 2 endpoints: " << graph.size() << " triples.\n";

  auto query = wdr::query::ParseSparql(kAgentsQuery, graph.dict());
  if (!query.ok()) {
    std::cerr << "query error: " << query.status() << "\n";
    return EXIT_FAILURE;
  }

  // Saturation side: build and maintain the closure.
  wdr::reasoning::SaturatedGraph saturated(graph, vocab);
  wdr::query::Evaluator closure_eval(saturated.closure());
  std::cout << "\n[before revision]\n";
  std::cout << "  saturation:    " << closure_eval.Evaluate(*query).rows.size()
            << " agents (closure " << saturated.closure().size()
            << " triples)\n";
  std::cout << "  reformulation: " << AnswerByReformulation(graph, vocab, *query)
            << " agents (graph untouched)\n";

  // Endpoint B revises its schema at run time.
  wdr::rdf::Graph revision;
  wdr::schema::Vocabulary rev_vocab =
      wdr::schema::Vocabulary::Intern(revision.dict());
  (void)rev_vocab;
  auto parsed = wdr::io::ParseTurtle(kEndpointBRevision, revision);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "\n[endpoint B publishes a schema revision: " << *parsed
            << " new constraints]\n";
  size_t maintained = 0;
  revision.store().Match(0, 0, 0, [&](const wdr::rdf::Triple& t) {
    // Re-encode the revision triple in the integrated graph's dictionary.
    wdr::rdf::Triple encoded(
        graph.dict().Intern(revision.dict().term(t.s)),
        graph.dict().Intern(revision.dict().term(t.p)),
        graph.dict().Intern(revision.dict().term(t.o)));
    graph.Insert(encoded);
    maintained += saturated.Insert(encoded);
  });
  std::cout << "  saturation:    maintenance added " << maintained
            << " closure triples\n";

  wdr::query::Evaluator closure_eval2(saturated.closure());
  std::cout << "\n[after revision]\n";
  std::cout << "  saturation:    " << closure_eval2.Evaluate(*query).rows.size()
            << " agents (closure " << saturated.closure().size()
            << " triples)\n";
  std::cout << "  reformulation: " << AnswerByReformulation(graph, vocab, *query)
            << " agents — correct with zero maintenance, the query is\n"
            << "                 simply rewritten against the current schema\n";

  std::cout << "\nThe trade-off is quantified by bench_fig3_thresholds.\n";
  return EXIT_SUCCESS;
}
