// wdr_client — command-line client for the wdr::server framed protocol
// (the counterpart of `wdr_shell --listen=PORT`).
//
// Usage:
//   wdr_client --port=PORT [--host-note] [-e COMMAND ...]
//
// With -e arguments, each is sent as one request and the client exits
// (non-zero on the first ERR); otherwise commands are read from stdin,
// one per line:
//
//   SELECT ...            query (sent as QUERY)
//   INSERT/DELETE DATA    update (sent as UPDATE)
//   .set k=v [k=v ...]    session settings: mode=saturation|reformulation|
//                         backward|datalog|auto|none|default,
//                         plan=0|1|default, encoding=0|1|default,
//                         threads=N, timeout_ms=N
//   .info                 server/session info (epoch, size, plan cache,
//                         auto-mode routing counters)
//   .why                  last auto-mode routing decision (sent as WHY)
//   .ping                 liveness + current epoch
//   .quit                 close the session
//
// Multi-line SPARQL: end a line with '\' to continue it.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "server/client.h"

namespace {

using wdr::server::Client;
using wdr::server::Response;

// Renders one response: head (k=v summary) then the body rows.
void Print(const Response& response) {
  if (!response.ok) {
    std::cerr << "ERR " << response.head << "\n";
    return;
  }
  if (!response.head.empty()) std::cout << "[" << response.head << "]\n";
  if (!response.body.empty()) std::cout << response.body;
}

// Maps one shell-style line onto a protocol request payload; empty return
// means "handled locally" (comments, blank lines).
std::string ToRequest(const std::string& line) {
  if (line.empty() || line[0] == '#') return {};
  if (line[0] == '.') {
    if (line.rfind(".set ", 0) == 0) return "SET " + line.substr(5) + "\n";
    if (line == ".info") return "INFO\n";
    if (line == ".why") return "WHY\n";
    if (line == ".ping") return "PING\n";
    if (line == ".quit") return "BYE\n";
    std::cerr << "unknown command: " << line << "\n";
    return {};
  }
  std::string upper;
  for (char c : line) upper += static_cast<char>(std::toupper(c));
  const bool update = upper.rfind("INSERT", 0) == 0 ||
                      upper.rfind("DELETE", 0) == 0 ||
                      (upper.rfind("PREFIX", 0) == 0 &&
                       upper.find("INSERT") != std::string::npos) ||
                      (upper.rfind("PREFIX", 0) == 0 &&
                       upper.find("DELETE DATA") != std::string::npos);
  return (update ? "UPDATE\n" : "QUERY\n") + line;
}

// Sends one line; returns false if the server reported an error or the
// connection died.
bool RunLine(Client& client, const std::string& line) {
  const std::string payload = ToRequest(line);
  if (payload.empty()) return true;
  auto response = client.Call(payload);
  if (!response.ok()) {
    std::cerr << response.status() << "\n";
    return false;
  }
  Print(response.value());
  return response.value().ok;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  std::vector<std::string> commands;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      port = std::atoi(arg.c_str() + 7);
    } else if (arg == "-e" && i + 1 < argc) {
      commands.push_back(argv[++i]);
    } else {
      std::cerr << "usage: wdr_client --port=PORT [-e COMMAND ...]\n";
      return EXIT_FAILURE;
    }
  }
  if (port <= 0 || port > 65535) {
    std::cerr << "usage: wdr_client --port=PORT [-e COMMAND ...]\n";
    return EXIT_FAILURE;
  }

  Client client;
  const wdr::Status connected = client.Connect(port);
  if (!connected.ok()) {
    std::cerr << connected << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "connected: " << client.greeting() << "\n";

  if (!commands.empty()) {
    for (const std::string& command : commands) {
      if (!RunLine(client, command)) return EXIT_FAILURE;
    }
    return EXIT_SUCCESS;
  }

  std::string line, pending;
  while (std::getline(std::cin, line)) {
    // Backslash continuation for multi-line SPARQL.
    if (!line.empty() && line.back() == '\\') {
      pending += line.substr(0, line.size() - 1);
      pending += '\n';
      continue;
    }
    pending += line;
    if (pending == ".quit") break;
    RunLine(client, pending);
    pending.clear();
    if (!client.connected()) break;
  }
  return EXIT_SUCCESS;
}
