// wdr_shell — a small command-line front end over ReasoningStore, the
// shape of tool a downstream user runs first.
//
// Usage:
//   wdr_shell [--mode=saturation|reformulation|backward|none]
//             [--backend=ordered|flat] [file.ttl ...]
//
// Reads commands from stdin (one per line):
//   SELECT ...          run a SPARQL query
//   INSERT DATA {...}   / DELETE DATA {...}   run an update
//   .load FILE          load a Turtle/N-Triples file
//   .mode MODE          switch reasoning technique at run time
//   .backend ENGINE     switch storage engine (ordered|flat) at run time
//   .stats              triples / closure size
//   .help               this text
//
// Without stdin input (or with --demo) runs a scripted demonstration so
// the binary is exercisable non-interactively.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "store/reasoning_store.h"

namespace {

using wdr::store::ReasoningMode;
using wdr::store::ReasoningStore;

bool ParseMode(const std::string& name, ReasoningMode* mode) {
  if (name == "saturation") {
    *mode = ReasoningMode::kSaturation;
  } else if (name == "reformulation") {
    *mode = ReasoningMode::kReformulation;
  } else if (name == "backward") {
    *mode = ReasoningMode::kBackward;
  } else if (name == "none") {
    *mode = ReasoningMode::kNone;
  } else {
    return false;
  }
  return true;
}

void PrintHelp() {
  std::cout << "commands:\n"
               "  SELECT ...            SPARQL BGP/UNION query\n"
               "  INSERT DATA { ... }   add ground triples\n"
               "  DELETE DATA { ... }   remove ground triples\n"
               "  .load FILE            load Turtle (.ttl) or N-Triples\n"
               "  .explain <s> <p> <o> .  prove why a triple is entailed\n"
               "  .mode MODE            saturation|reformulation|backward|none\n"
               "  .backend ENGINE       ordered|flat storage engine\n"
               "  .stats                store statistics\n"
               "  .help                 this text\n"
               "  .quit                 exit\n";
}

int LoadFile(ReasoningStore& store, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return -1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto loaded = wdr::EndsWith(path, ".nt")
                    ? store.LoadNTriples(buffer.str())
                    : store.LoadTurtle(buffer.str());
  if (!loaded.ok()) {
    std::cerr << path << ": " << loaded.status() << "\n";
    return -1;
  }
  std::cout << "loaded " << *loaded << " triples from " << path << "\n";
  return static_cast<int>(*loaded);
}

void RunCommand(ReasoningStore& store, const std::string& line) {
  if (line.empty()) return;
  if (line[0] == '.') {
    std::istringstream words(line);
    std::string command, argument;
    words >> command >> argument;
    if (command == ".explain") {
      // Everything after ".explain " is one N-Triples statement.
      std::string statement = line.substr(std::string(".explain").size());
      auto proof = store.ExplainTriple(statement);
      if (proof.ok()) {
        std::cout << *proof;
      } else {
        std::cerr << proof.status() << "\n";
      }
      return;
    }
    if (command == ".load") {
      LoadFile(store, argument);
    } else if (command == ".mode") {
      ReasoningMode mode;
      if (ParseMode(argument, &mode)) {
        store.SetMode(mode);
        std::cout << "mode = " << ReasoningModeName(mode) << "\n";
      } else {
        std::cerr << "unknown mode '" << argument << "'\n";
      }
    } else if (command == ".backend") {
      wdr::rdf::StorageBackend backend;
      if (wdr::rdf::ParseStorageBackend(argument, &backend)) {
        store.SetBackend(backend);
        std::cout << "backend = " << wdr::rdf::StorageBackendName(backend)
                  << "\n";
      } else {
        std::cerr << "unknown backend '" << argument << "'\n";
      }
    } else if (command == ".stats") {
      std::cout << "triples: " << store.size()
                << "  effective (with closure): " << store.effective_size()
                << "  mode: " << ReasoningModeName(store.mode())
                << "  backend: "
                << wdr::rdf::StorageBackendName(store.backend()) << "\n";
    } else if (command == ".help") {
      PrintHelp();
    } else if (command == ".quit") {
      std::exit(EXIT_SUCCESS);
    } else {
      std::cerr << "unknown command; try .help\n";
    }
    return;
  }

  // Updates start with INSERT/DELETE (case-insensitive); otherwise query.
  std::string upper;
  for (char c : line) upper += static_cast<char>(std::toupper(c));
  if (upper.rfind("INSERT", 0) == 0 || upper.rfind("DELETE", 0) == 0 ||
      upper.rfind("PREFIX", 0) == 0 || upper.rfind("SELECT", 0) == 0) {
    if (upper.find("SELECT") != std::string::npos) {
      wdr::store::QueryInfo info;
      auto result = store.Query(line, &info);
      if (!result.ok()) {
        std::cerr << result.status() << "\n";
        return;
      }
      for (const wdr::query::Row& row : result->rows) {
        std::cout << "  " << wdr::Join(store.DecodeRow(row), "  ") << "\n";
      }
      std::cout << result->rows.size() << " answer(s) in "
                << static_cast<long long>(info.seconds * 1e6) << "us via "
                << ReasoningModeName(info.mode);
      if (info.mode == ReasoningMode::kReformulation) {
        std::cout << " (" << info.union_size << " CQs)";
      }
      std::cout << "\n";
    } else {
      auto info = store.Update(line);
      if (!info.ok()) {
        std::cerr << info.status() << "\n";
        return;
      }
      std::cout << "+" << info->inserted << " -" << info->deleted
                << " triple(s), closure delta " << info->closure_delta
                << "\n";
    }
    return;
  }
  std::cerr << "unrecognized input; try .help\n";
}

void RunDemo(ReasoningStore& store) {
  const char* script[] = {
      "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> "
      "PREFIX ex: <http://ex.org/> "
      "INSERT DATA { ex:Cat rdfs:subClassOf ex:Mammal . ex:tom a ex:Cat }",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      ".explain <http://ex.org/tom> "
      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
      "<http://ex.org/Mammal> .",
      ".mode reformulation",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      ".backend flat",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      ".stats",
  };
  std::cout << "(no stdin input — running the scripted demo; pipe commands "
               "or use a terminal for interactive use)\n";
  for (const char* line : script) {
    std::cout << "wdr> " << line << "\n";
    RunCommand(store, line);
  }
}

}  // namespace

int main(int argc, char** argv) {
  wdr::store::ReasoningStoreOptions options;
  bool demo = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--mode=", 0) == 0) {
      if (!ParseMode(arg.substr(7), &options.mode)) {
        std::cerr << "unknown mode in " << arg << "\n";
        return EXIT_FAILURE;
      }
    } else if (arg.rfind("--backend=", 0) == 0) {
      if (!wdr::rdf::ParseStorageBackend(arg.substr(10), &options.backend)) {
        std::cerr << "unknown backend in " << arg << "\n";
        return EXIT_FAILURE;
      }
    } else if (arg == "--demo") {
      demo = true;
    } else {
      files.push_back(arg);
    }
  }

  ReasoningStore store(options);
  for (const std::string& file : files) {
    if (LoadFile(store, file) < 0) return EXIT_FAILURE;
  }

  // With no piped input, run the scripted demo so the binary always
  // demonstrates something.
  if (!demo && std::cin.peek() == std::char_traits<char>::eof()) {
    demo = true;
  }
  if (demo) {
    RunDemo(store);
    return EXIT_SUCCESS;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    RunCommand(store, line);
  }
  return EXIT_SUCCESS;
}
