// wdr_shell — a small command-line front end over ReasoningStore, the
// shape of tool a downstream user runs first.
//
// Usage:
//   wdr_shell [--mode=saturation|reformulation|backward|datalog|none|auto]
//             [--backend=ordered|flat|sharded] [--shards=N] [--threads=N]
//             [--query-threads=N] [--plan] [--encoding=on|off] [--explain]
//             [--script=FILE] [--serve=PORT] [--listen=PORT] [file.ttl ...]
//
// With --listen=PORT (or `.listen PORT` at the prompt) the shell starts
// the concurrent query server on the loaded data and — when stdin is not
// a command stream — stays up serving clients until interrupted.
//
// Reads commands from stdin (one per line):
//   SELECT ...          run a SPARQL query
//   INSERT DATA {...}   / DELETE DATA {...}   run an update
//   .load FILE          load a Turtle/N-Triples file
//   .mode MODE          switch reasoning technique at run time ("auto"
//                       routes each query through the online selector)
//   .why                last auto-mode routing decision with its per-route
//                       cost estimates
//   .backend ENGINE     switch storage engine (ordered|flat|sharded) at
//                       run time
//   .shards N           re-partition the sharded backend to N shards
//                       (deferred while scans are open; answers are
//                       identical at any shard count)
//   .threads N          saturation worker threads for closure builds
//   .qthreads N         worker threads for union-query branches
//   .plan on|off        cost-based physical plans (hash joins, batching)
//   .encoding on|off    hierarchy-aware id encoding (LiteMat): collapse
//                       reformulation unions into range scans
//   .explain QUERY      run QUERY, print its operator tree (in plan mode:
//                       the chosen plan with estimated vs actual rows)
//   .profile on|off     per-operator query profiling (EXPLAIN ANALYZE)
//   .trace FILE / off   capture spans; "off" writes JSON lines to FILE
//   .stats              store statistics + live wdr.* metrics
//   .serve PORT / off   live stats endpoint on 127.0.0.1:PORT — /metrics
//                       (Prometheus), /metrics.json, /querylog, /trace
//   .listen PORT / off  multi-client query server on 127.0.0.1:PORT: the
//                       current graph is snapshotted into a concurrent
//                       wdr::server::SnapshotStore and served over the
//                       framed protocol (connect with wdr_client)
//   .slowlog MS / off   flag queries at or above MS milliseconds as slow
//                       in the query log
//   .help               this text
//
// --plan starts the store in plan mode; --explain prints the operator
// tree after every query (combine with --plan for estimated-vs-actual
// cardinalities per operator).
//
// With --script=FILE, commands come from FILE instead of stdin, errors go
// to stderr, and the first failing command terminates the shell with a
// non-zero exit status (so scripts are usable in CI).
//
// Without stdin input (or with --demo) runs a scripted demonstration so
// the binary is exercisable non-interactively.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "io/turtle_writer.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "server/server.h"
#include "server/snapshot_store.h"
#include "store/reasoning_store.h"

namespace {

using wdr::store::ReasoningMode;
using wdr::store::ReasoningStore;

// Path the next ".trace off" exports to; empty = tracing inactive.
std::string g_trace_path;

// The ".serve" / "--serve=" endpoint; stopped on destruction.
wdr::obs::StatsServer g_stats_server;

// The ".listen" / "--listen=" query server and its snapshot-isolated
// store. The snapshot is taken when listening starts: later shell-local
// commands do not feed it — clients update it over the wire.
std::unique_ptr<wdr::server::SnapshotStore> g_snapshot_store;
std::unique_ptr<wdr::server::Server> g_query_server;

// --explain: print the operator tree after every query.
bool g_explain = false;

bool ParseMode(const std::string& name, ReasoningMode* mode) {
  if (name == "saturation") {
    *mode = ReasoningMode::kSaturation;
  } else if (name == "reformulation") {
    *mode = ReasoningMode::kReformulation;
  } else if (name == "backward") {
    *mode = ReasoningMode::kBackward;
  } else if (name == "none") {
    *mode = ReasoningMode::kNone;
  } else if (name == "datalog") {
    *mode = ReasoningMode::kDatalog;
  } else if (name == "auto") {
    *mode = ReasoningMode::kAuto;
  } else {
    return false;
  }
  return true;
}

void PrintHelp() {
  std::cout << "commands:\n"
               "  SELECT ...            SPARQL BGP/UNION query\n"
               "  INSERT DATA { ... }   add ground triples\n"
               "  DELETE DATA { ... }   remove ground triples\n"
               "  .load FILE            load Turtle (.ttl) or N-Triples\n"
               "  .explain <s> <p> <o> .  prove why a triple is entailed\n"
               "  .mode MODE            "
               "saturation|reformulation|backward|datalog|none|auto\n"
               "  .why                  last auto-mode routing decision "
               "(estimates per route)\n"
               "  .backend ENGINE       ordered|flat|sharded storage engine\n"
               "  .shards N             re-partition the sharded backend to N "
               "shards (N >= 1)\n"
               "  .threads N            saturation worker threads (N >= 1)\n"
               "  .qthreads N           union-branch query threads (N >= 1)\n"
               "  .plan on|off          cost-based physical plans (hash "
               "joins)\n"
               "  .encoding on|off      hierarchy-aware id encoding "
               "(reformulation range scans)\n"
               "  .explain SELECT ...   show a query's operator tree (plan "
               "mode: estimated vs actual rows)\n"
               "  .profile on|off       per-operator query profiling\n"
               "  .trace FILE           start span capture\n"
               "  .trace off            stop capture, write JSON lines to "
               "FILE\n"
               "  .stats                store statistics + live metrics\n"
               "  .serve PORT           live stats endpoint on 127.0.0.1:PORT "
               "(/metrics, /metrics.json, /querylog, /trace)\n"
               "  .serve off            stop the stats endpoint\n"
               "  .listen PORT          multi-client query server on "
               "127.0.0.1:PORT (snapshot of the current graph; connect with "
               "wdr_client)\n"
               "  .listen off           stop the query server\n"
               "  .slowlog MS           flag queries >= MS ms as slow in the "
               "query log\n"
               "  .slowlog off          disable the slow-query flag\n"
               "  .help                 this text\n"
               "  .quit                 exit\n";
}

int LoadFile(ReasoningStore& store, const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return -1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto loaded = wdr::EndsWith(path, ".nt")
                    ? store.LoadNTriples(buffer.str())
                    : store.LoadTurtle(buffer.str());
  if (!loaded.ok()) {
    std::cerr << path << ": " << loaded.status() << "\n";
    return -1;
  }
  std::cout << "loaded " << *loaded << " triples from " << path << "\n";
  return static_cast<int>(*loaded);
}

void PrintStats(const ReasoningStore& store) {
  std::cout << "triples: " << store.size()
            << "  effective (with closure): " << store.effective_size()
            << "  mode: " << ReasoningModeName(store.mode()) << "  backend: "
            << wdr::rdf::StorageBackendName(store.backend()) << "\n";
  if (const wdr::rdf::ShardedStore* sharded = store.sharded_store()) {
    std::cout << "shards: " << sharded->shard_count() << " ("
              << wdr::rdf::StorageBackendName(sharded->shard_backend())
              << ")  sizes:";
    for (size_t size : sharded->ShardSizes()) std::cout << " " << size;
    std::cout << "  schema: " << sharded->schema_store().size()
              << "  skew: " << sharded->SkewRatio();
    if (sharded->pending_shard_count() != 0) {
      std::cout << "  pending: " << sharded->pending_shard_count();
    }
    std::cout << "\n";
  }
  const wdr::obs::MetricsSnapshot snapshot =
      wdr::obs::MetricsRegistry::Get().Snapshot();
  for (const auto& [name, value] : snapshot.counters) {
    if (value != 0) std::cout << "  " << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (value != 0) std::cout << "  " << name << " = " << value << "\n";
  }
  for (const wdr::obs::HistogramData& h : snapshot.histograms) {
    if (h.count == 0) continue;
    std::cout << "  " << h.name << "  count=" << h.count
              << "  mean=" << static_cast<long long>(h.MeanNanos() / 1000)
              << "us  p99=" << static_cast<long long>(h.QuantileNanos(0.99) /
                                                      1000)
              << "us\n";
  }
}

bool StopTrace() {
  if (g_trace_path.empty()) {
    std::cerr << "tracing is not active\n";
    return false;
  }
  wdr::obs::SetTraceEnabled(false);
  std::ofstream out(g_trace_path);
  if (!out) {
    std::cerr << "cannot write " << g_trace_path << "\n";
    g_trace_path.clear();
    return false;
  }
  const size_t events = wdr::obs::ExportTraceJsonLines(out);
  std::cout << "wrote " << events << " span(s) to " << g_trace_path << "\n";
  g_trace_path.clear();
  wdr::obs::ClearTrace();
  return true;
}

// Snapshots the shell's current graph into a concurrent SnapshotStore
// (same mode/backend/settings) and starts the framed-protocol query
// server on it.
bool StartListen(const ReasoningStore& store, int port) {
  if (g_query_server != nullptr) {
    g_query_server->Stop();
    g_query_server.reset();
    g_snapshot_store.reset();
  }
  wdr::store::ReasoningStoreOptions options;
  options.mode = store.mode();
  options.backend = store.backend();
  options.query.plan = store.plan_mode();
  options.query.threads = store.query_threads();
  options.saturation.threads = store.saturation_threads();
  options.encoding = store.encoding_enabled();
  if (const wdr::rdf::ShardedStore* sharded = store.sharded_store()) {
    options.shards = sharded->shard_count();
    options.shard_backend = sharded->shard_backend();
  }
  g_snapshot_store =
      std::make_unique<wdr::server::SnapshotStore>(options);
  auto loaded = g_snapshot_store->LoadTurtle(wdr::io::WriteTurtle(
      store.graph(), {{"ex", "http://ex.org/"}}));
  if (!loaded.ok()) {
    std::cerr << "snapshot failed: " << loaded.status() << "\n";
    g_snapshot_store.reset();
    return false;
  }
  wdr::server::ServerOptions server_options;
  server_options.port = port;
  g_query_server = std::make_unique<wdr::server::Server>(*g_snapshot_store,
                                                         server_options);
  wdr::Status status = g_query_server->Start();
  if (!status.ok()) {
    std::cerr << status << "\n";
    g_query_server.reset();
    g_snapshot_store.reset();
    return false;
  }
  std::cout << "query server listening on 127.0.0.1:"
            << g_query_server->port() << " (" << *loaded
            << " triples snapshotted; connect with wdr_client --port="
            << g_query_server->port() << ")\n";
  return true;
}

bool StartServe(int port) {
  if (g_stats_server.running()) g_stats_server.Stop();
  wdr::Status status = g_stats_server.Start(port);
  if (!status.ok()) {
    std::cerr << status << "\n";
    return false;
  }
  std::cout << "serving stats on http://127.0.0.1:" << g_stats_server.port()
            << " (/metrics, /metrics.json, /querylog, /trace)\n";
  return true;
}

// Executes one line; returns false if the command failed (used by --script
// mode to stop with a non-zero exit status).
bool RunCommand(ReasoningStore& store, const std::string& line) {
  if (line.empty() || line[0] == '#') return true;
  if (line[0] == '.') {
    std::istringstream words(line);
    std::string command, argument;
    words >> command >> argument;
    if (command == ".explain") {
      // Everything after ".explain " is either a SPARQL query (query-form
      // explain: run it and print the operator tree) or one N-Triples
      // statement (proof-form explain: why is the triple entailed).
      std::string statement = line.substr(std::string(".explain").size());
      std::string upper;
      for (char c : statement) upper += static_cast<char>(std::toupper(c));
      const size_t first = upper.find_first_not_of(" \t");
      if (first != std::string::npos &&
          (upper.rfind("SELECT", first) == first ||
           upper.rfind("ASK", first) == first ||
           upper.rfind("PREFIX", first) == first)) {
        const bool was_profiling = store.profiling();
        store.SetProfiling(true);
        wdr::store::QueryInfo info;
        auto result = store.Query(statement, &info);
        store.SetProfiling(was_profiling);
        if (!result.ok()) {
          std::cerr << result.status() << "\n";
          return false;
        }
        std::cout << result->rows.size() << " answer(s) in "
                  << static_cast<long long>(info.seconds * 1e6) << "us via "
                  << ReasoningModeName(info.mode)
                  << (store.plan_mode() ? " [plan]" : " [legacy join]")
                  << "\n";
        if (info.profile != nullptr) std::cout << info.profile->Render();
        return true;
      }
      auto proof = store.ExplainTriple(statement);
      if (proof.ok()) {
        std::cout << *proof;
        return true;
      }
      std::cerr << proof.status() << "\n";
      return false;
    }
    if (command == ".load") {
      return LoadFile(store, argument) >= 0;
    }
    if (command == ".mode") {
      ReasoningMode mode;
      if (ParseMode(argument, &mode)) {
        store.SetMode(mode);
        std::cout << "mode = " << ReasoningModeName(mode) << "\n";
        return true;
      }
      std::cerr << "unknown mode '" << argument << "'\n";
      return false;
    }
    if (command == ".why") {
      const auto decision = store.LastAutoDecision();
      if (!decision.has_value()) {
        std::cerr << "no auto-routed query yet (try .mode auto, then run a "
                     "query)\n";
        return false;
      }
      std::cout << "route = " << wdr::analysis::RouteName(decision->route)
                << (decision->fallback ? " (static fallback)" : "")
                << (decision->per_key ? " (per-key history)" : "")
                << "\n  closure: "
                << (decision->closure_available ? "materialized" : "absent")
                << "  model: v" << decision->model_version << "\n  "
                << decision->rationale << "\n";
      return true;
    }
    if (command == ".backend") {
      wdr::rdf::StorageBackend backend;
      if (wdr::rdf::ParseStorageBackend(argument, &backend)) {
        store.SetBackend(backend);
        std::cout << "backend = " << wdr::rdf::StorageBackendName(backend)
                  << "\n";
        return true;
      }
      std::cerr << "unknown backend '" << argument << "'\n";
      return false;
    }
    if (command == ".shards") {
      char* end = nullptr;
      const long shards = std::strtol(argument.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || shards < 1) {
        std::cerr << "usage: .shards N (N >= 1)\n";
        return false;
      }
      if (!store.SetShardCount(static_cast<size_t>(shards))) {
        std::cerr << "backend is not sharded (try .backend sharded)\n";
        return false;
      }
      std::cout << "shards = " << store.shard_count();
      const wdr::rdf::ShardedStore* sharded = store.sharded_store();
      if (sharded != nullptr && sharded->pending_shard_count() != 0) {
        std::cout << " (re-partition to " << sharded->pending_shard_count()
                  << " deferred until open scans close)";
      }
      std::cout << "\n";
      return true;
    }
    if (command == ".threads") {
      char* end = nullptr;
      const long threads = std::strtol(argument.c_str(), &end, 10);
      if (end != nullptr && *end == '\0' && threads >= 1) {
        store.SetSaturationThreads(static_cast<int>(threads));
        std::cout << "saturation threads = " << store.saturation_threads()
                  << "\n";
        return true;
      }
      std::cerr << "usage: .threads N (N >= 1)\n";
      return false;
    }
    if (command == ".qthreads") {
      char* end = nullptr;
      const long threads = std::strtol(argument.c_str(), &end, 10);
      if (end != nullptr && *end == '\0' && threads >= 1) {
        store.SetQueryThreads(static_cast<int>(threads));
        std::cout << "query threads = " << store.query_threads() << "\n";
        return true;
      }
      std::cerr << "usage: .qthreads N (N >= 1)\n";
      return false;
    }
    if (command == ".plan") {
      if (argument == "on" || argument == "off") {
        store.SetPlanMode(argument == "on");
        std::cout << "plan = " << argument << "\n";
        return true;
      }
      std::cerr << "usage: .plan on|off\n";
      return false;
    }
    if (command == ".encoding") {
      if (argument == "on" || argument == "off") {
        store.SetEncoding(argument == "on");
        std::cout << "encoding = " << argument << "\n";
        return true;
      }
      std::cerr << "usage: .encoding on|off\n";
      return false;
    }
    if (command == ".profile") {
      if (argument == "on" || argument == "off") {
        store.SetProfiling(argument == "on");
        std::cout << "profiling = " << argument << "\n";
        return true;
      }
      std::cerr << "usage: .profile on|off\n";
      return false;
    }
    if (command == ".trace") {
      if (argument.empty()) {
        std::cerr << "usage: .trace FILE | .trace off\n";
        return false;
      }
      if (argument == "off") return StopTrace();
      g_trace_path = argument;
      wdr::obs::ClearTrace();
      wdr::obs::SetTraceEnabled(true);
      std::cout << "tracing to " << g_trace_path << " (stop with .trace "
                   "off)\n";
      return true;
    }
    if (command == ".serve") {
      if (argument == "off") {
        if (!g_stats_server.running()) {
          std::cerr << "stats server is not running\n";
          return false;
        }
        g_stats_server.Stop();
        std::cout << "stats server stopped\n";
        return true;
      }
      char* end = nullptr;
      const long port = std::strtol(argument.c_str(), &end, 10);
      if (argument.empty() || end == nullptr || *end != '\0' || port < 0 ||
          port > 65535) {
        std::cerr << "usage: .serve PORT | .serve off\n";
        return false;
      }
      return StartServe(static_cast<int>(port));
    }
    if (command == ".listen") {
      if (argument == "off") {
        if (g_query_server == nullptr) {
          std::cerr << "query server is not running\n";
          return false;
        }
        g_query_server->Stop();
        g_query_server.reset();
        g_snapshot_store.reset();
        std::cout << "query server stopped\n";
        return true;
      }
      char* end = nullptr;
      const long port = std::strtol(argument.c_str(), &end, 10);
      if (argument.empty() || end == nullptr || *end != '\0' || port < 0 ||
          port > 65535) {
        std::cerr << "usage: .listen PORT | .listen off\n";
        return false;
      }
      return StartListen(store, static_cast<int>(port));
    }
    if (command == ".slowlog") {
      if (argument == "off") {
        wdr::obs::QueryLog::Get().SetSlowThresholdNanos(0);
        std::cout << "slowlog = off\n";
        return true;
      }
      char* end = nullptr;
      const long ms = std::strtol(argument.c_str(), &end, 10);
      if (argument.empty() || end == nullptr || *end != '\0' || ms < 1) {
        std::cerr << "usage: .slowlog MS | .slowlog off\n";
        return false;
      }
      wdr::obs::QueryLog::Get().SetSlowThresholdNanos(
          static_cast<uint64_t>(ms) * 1000000ull);
      std::cout << "slowlog = " << ms << "ms\n";
      return true;
    }
    if (command == ".stats") {
      PrintStats(store);
      return true;
    }
    if (command == ".help") {
      PrintHelp();
      return true;
    }
    if (command == ".quit") {
      if (!g_trace_path.empty()) StopTrace();
      std::exit(EXIT_SUCCESS);
    }
    std::cerr << "unknown command; try .help\n";
    return false;
  }

  // Updates start with INSERT/DELETE (case-insensitive); otherwise query.
  std::string upper;
  for (char c : line) upper += static_cast<char>(std::toupper(c));
  if (upper.rfind("INSERT", 0) == 0 || upper.rfind("DELETE", 0) == 0 ||
      upper.rfind("PREFIX", 0) == 0 || upper.rfind("SELECT", 0) == 0 ||
      upper.rfind("ASK", 0) == 0) {
    if (upper.find("SELECT") != std::string::npos ||
        upper.rfind("ASK", 0) == 0) {
      const bool was_profiling = store.profiling();
      if (g_explain) store.SetProfiling(true);
      wdr::store::QueryInfo info;
      auto result = store.Query(line, &info);
      if (g_explain) store.SetProfiling(was_profiling);
      if (!result.ok()) {
        std::cerr << result.status() << "\n";
        return false;
      }
      for (const wdr::query::Row& row : result->rows) {
        std::cout << "  " << wdr::Join(store.DecodeRow(row), "  ") << "\n";
      }
      std::cout << result->rows.size() << " answer(s) in "
                << static_cast<long long>(info.seconds * 1e6) << "us via "
                << ReasoningModeName(info.mode);
      if (info.mode == ReasoningMode::kReformulation) {
        std::cout << " (" << info.union_size << " CQs)";
      }
      std::cout << "\n";
      if (info.profile != nullptr) std::cout << info.profile->Render();
      return true;
    }
    auto info = store.Update(line);
    if (!info.ok()) {
      std::cerr << info.status() << "\n";
      return false;
    }
    std::cout << "+" << info->inserted << " -" << info->deleted
              << " triple(s), closure delta " << info->closure_delta << "\n";
    return true;
  }
  std::cerr << "unrecognized input; try .help\n";
  return false;
}

void RunDemo(ReasoningStore& store) {
  const char* script[] = {
      "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> "
      "PREFIX ex: <http://ex.org/> "
      "INSERT DATA { ex:Cat rdfs:subClassOf ex:Mammal . ex:tom a ex:Cat }",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      ".explain <http://ex.org/tom> "
      "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
      "<http://ex.org/Mammal> .",
      ".mode reformulation",
      ".profile on",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      ".profile off",
      ".encoding on",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      ".encoding off",
      ".threads 2",
      ".qthreads 2",
      ".mode saturation",
      ".backend flat",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      ".plan on",
      ".explain PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x ?y WHERE { ?x rdf:type ?y . ?y rdfs:subClassOf ex:Mammal }",
      ".plan off",
      ".backend sharded",
      ".shards 2",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      ".mode datalog",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      ".mode auto",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      ".why",
      ".stats",
  };
  std::cout << "(no stdin input — running the scripted demo; pipe commands "
               "or use a terminal for interactive use)\n";
  for (const char* line : script) {
    std::cout << "wdr> " << line << "\n";
    RunCommand(store, line);
  }
}

}  // namespace

int main(int argc, char** argv) {
  wdr::store::ReasoningStoreOptions options;
  bool demo = false;
  int listen_port = -1;  // -1 = no --listen flag (0 picks an ephemeral port)
  std::string script_path;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--mode=", 0) == 0) {
      if (!ParseMode(arg.substr(7), &options.mode)) {
        std::cerr << "unknown mode in " << arg << "\n";
        return EXIT_FAILURE;
      }
    } else if (arg.rfind("--backend=", 0) == 0) {
      if (!wdr::rdf::ParseStorageBackend(arg.substr(10), &options.backend)) {
        std::cerr << "unknown backend in " << arg << "\n";
        return EXIT_FAILURE;
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      int shards = std::atoi(arg.substr(9).c_str());
      if (shards < 1) {
        std::cerr << "invalid shard count in " << arg << "\n";
        return EXIT_FAILURE;
      }
      options.shards = static_cast<size_t>(shards);
      // --shards implies the sharded backend; --backend=sharded alone uses
      // the default shard count.
      options.backend = wdr::rdf::StorageBackend::kSharded;
    } else if (arg.rfind("--threads=", 0) == 0) {
      int threads = std::atoi(arg.substr(10).c_str());
      if (threads < 1) {
        std::cerr << "invalid thread count in " << arg << "\n";
        return EXIT_FAILURE;
      }
      options.saturation.threads = threads;
    } else if (arg.rfind("--query-threads=", 0) == 0) {
      int threads = std::atoi(arg.substr(16).c_str());
      if (threads < 1) {
        std::cerr << "invalid thread count in " << arg << "\n";
        return EXIT_FAILURE;
      }
      options.query.threads = threads;
    } else if (arg == "--plan") {
      options.query.plan = true;
    } else if (arg.rfind("--encoding=", 0) == 0) {
      const std::string value = arg.substr(11);
      if (value != "on" && value != "off") {
        std::cerr << "usage: --encoding=on|off\n";
        return EXIT_FAILURE;
      }
      options.encoding = value == "on";
    } else if (arg == "--explain") {
      g_explain = true;
    } else if (arg.rfind("--serve=", 0) == 0) {
      char* end = nullptr;
      const long port = std::strtol(arg.c_str() + 8, &end, 10);
      if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
        std::cerr << "invalid port in " << arg << "\n";
        return EXIT_FAILURE;
      }
      if (!StartServe(static_cast<int>(port))) return EXIT_FAILURE;
    } else if (arg.rfind("--listen=", 0) == 0) {
      char* end = nullptr;
      const long port = std::strtol(arg.c_str() + 9, &end, 10);
      if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
        std::cerr << "invalid port in " << arg << "\n";
        return EXIT_FAILURE;
      }
      listen_port = static_cast<int>(port);
    } else if (arg.rfind("--script=", 0) == 0) {
      script_path = arg.substr(9);
    } else if (arg == "--script" && i + 1 < argc) {
      script_path = argv[++i];
    } else if (arg == "--demo") {
      demo = true;
    } else {
      files.push_back(arg);
    }
  }

  ReasoningStore store(options);
  for (const std::string& file : files) {
    if (LoadFile(store, file) < 0) return EXIT_FAILURE;
  }

  if (listen_port >= 0 && !StartListen(store, listen_port)) {
    return EXIT_FAILURE;
  }

  if (!script_path.empty()) {
    std::ifstream in(script_path);
    if (!in) {
      std::cerr << "cannot open script " << script_path << "\n";
      return EXIT_FAILURE;
    }
    std::string line;
    size_t line_number = 0;
    while (std::getline(in, line)) {
      ++line_number;
      if (!RunCommand(store, line)) {
        std::cerr << script_path << ":" << line_number
                  << ": command failed: " << line << "\n";
        return EXIT_FAILURE;
      }
    }
    if (!g_trace_path.empty()) StopTrace();
    return EXIT_SUCCESS;
  }

  // With --listen and no command stream, stay up serving clients until
  // interrupted — the plain "run me as a server" invocation.
  if (listen_port >= 0 && !demo &&
      std::cin.peek() == std::char_traits<char>::eof()) {
    std::cout << "serving; interrupt (Ctrl-C) to stop\n";
    while (g_query_server != nullptr && g_query_server->running()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    return EXIT_SUCCESS;
  }

  // With no piped input, run the scripted demo so the binary always
  // demonstrates something.
  if (!demo && std::cin.peek() == std::char_traits<char>::eof()) {
    demo = true;
  }
  if (demo) {
    RunDemo(store);
    return EXIT_SUCCESS;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    RunCommand(store, line);
  }
  if (!g_trace_path.empty()) StopTrace();
  return EXIT_SUCCESS;
}
