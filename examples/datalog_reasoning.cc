// The §II-D open issue: answering RDF queries "based on translation to
// Datalog". Shows both halves of the Datalog module:
//
//   1. A plain Datalog program (parsed from text, materialized bottom-up).
//   2. An RDF graph translated to Datalog: the RDFS rules become six
//      Datalog rules over a reified triple(s,p,o) predicate, and
//      materializing them computes exactly the saturation G∞.
#include <cstdlib>
#include <iostream>

#include "datalog/parser.h"
#include "datalog/rdf_datalog.h"
#include "io/turtle.h"
#include "query/sparql_parser.h"
#include "reasoning/saturation.h"

namespace {

constexpr const char* kGenealogy = R"(
% A classic: ancestors.
parent(margaret, victoria).
parent(victoria, edward).
parent(edward, george).
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
)";

constexpr const char* kRdfData = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://example.org/> .
ex:PhdStudent rdfs:subClassOf ex:GradStudent .
ex:GradStudent rdfs:subClassOf ex:Student .
ex:advisor rdfs:domain ex:Student ;
           rdfs:range  ex:Professor .
ex:dana a ex:PhdStudent ;
        ex:advisor ex:ada .
)";

}  // namespace

int main() {
  // --- Part 1: plain Datalog ---------------------------------------------
  auto program = wdr::datalog::ParseDatalog(kGenealogy);
  if (!program.ok()) {
    std::cerr << "datalog parse error: " << program.status() << "\n";
    return EXIT_FAILURE;
  }
  wdr::datalog::EvalStats stats;
  auto db = wdr::datalog::Materialize(*program,
                                      wdr::datalog::Strategy::kSemiNaive,
                                      &stats);
  if (!db.ok()) {
    std::cerr << "materialization error: " << db.status() << "\n";
    return EXIT_FAILURE;
  }
  auto ancestor = program->PredByName("ancestor");
  std::cout << "Genealogy program: " << stats.derived_tuples
            << " tuples derived in " << stats.iterations
            << " semi-naive rounds; ancestor relation:\n";
  for (const wdr::datalog::Tuple& t : db->relation(*ancestor).tuples()) {
    std::cout << "  ancestor(" << program->sym_name(t[0]) << ", "
              << program->sym_name(t[1]) << ")\n";
  }

  // --- Part 2: RDF through Datalog ---------------------------------------
  wdr::rdf::Graph graph;
  wdr::schema::Vocabulary vocab =
      wdr::schema::Vocabulary::Intern(graph.dict());
  auto parsed = wdr::io::ParseTurtle(kRdfData, graph);
  if (!parsed.ok()) {
    std::cerr << "turtle parse error: " << parsed.status() << "\n";
    return EXIT_FAILURE;
  }

  wdr::datalog::RdfDatalogTranslation xlat =
      wdr::datalog::TranslateGraph(graph, vocab);
  auto rdf_db = wdr::datalog::Materialize(
      xlat.program, wdr::datalog::Strategy::kSemiNaive, &stats);
  if (!rdf_db.ok()) {
    std::cerr << "materialization error: " << rdf_db.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nRDF graph (" << graph.size() << " triples) translated to "
            << xlat.program.facts().size() << " facts + "
            << xlat.program.rules().size() << " RDFS rules; "
            << stats.derived_tuples << " triples derived.\n";

  // Cross-check against the native saturator.
  wdr::rdf::TripleStore native =
      wdr::reasoning::Saturator::SaturateGraph(graph, vocab);
  std::cout << "Native saturator closure: " << native.size()
            << " triples; Datalog triple relation: "
            << rdf_db->relation(xlat.triple_pred).size()
            << " tuples (must match).\n";

  // Answer a SPARQL query through the Datalog route.
  auto query = wdr::query::ParseSparql(
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?x WHERE { ?x rdf:type ex:Student }",
      graph.dict());
  if (!query.ok()) {
    std::cerr << "query error: " << query.status() << "\n";
    return EXIT_FAILURE;
  }
  auto answers = wdr::datalog::AnswerViaDatalog(xlat, *rdf_db, *query);
  if (!answers.ok()) {
    std::cerr << "query answering error: " << answers.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nStudents (via Datalog):\n";
  for (const wdr::query::Row& row : answers->rows) {
    std::cout << "  " << graph.dict().term(row[0]).ToNTriples() << "\n";
  }
  return EXIT_SUCCESS;
}
