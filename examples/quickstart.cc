// Quickstart: the paper's running examples, end to end.
//
//   1. Load a tiny graph (Turtle) with an RDFS schema.
//   2. Answer a query by SATURATION: materialize G∞, evaluate q on it.
//   3. Answer the same query by REFORMULATION: rewrite q into q_ref and
//      evaluate it on the *original* graph.
//   Both return the same answers — that is the defining equation
//   q_ref(G) = q(G∞).
#include <cstdlib>
#include <iostream>

#include "io/turtle.h"
#include "query/evaluator.h"
#include "query/sparql_parser.h"
#include "reasoning/saturation.h"
#include "reformulation/reformulator.h"
#include "schema/schema.h"
#include "schema/vocabulary.h"

namespace {

constexpr const char* kData = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex:   <http://example.org/> .

# Schema ("semantic constraints", Fig. 1 bottom)
ex:Cat       rdfs:subClassOf ex:Mammal .
ex:hasFriend rdfs:domain     ex:Person ;
             rdfs:range      ex:Person .

# Facts
ex:tom  a ex:Cat .
ex:anne ex:hasFriend ex:marie .
)";

constexpr const char* kQuery = R"(
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ex:  <http://example.org/>
SELECT ?x WHERE { ?x rdf:type ex:Mammal }
)";

constexpr const char* kPersonQuery = R"(
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ex:  <http://example.org/>
SELECT ?x WHERE { ?x rdf:type ex:Person }
)";

void PrintRows(const wdr::rdf::Graph& g, const wdr::query::ResultSet& rs) {
  for (const wdr::query::Row& row : rs.rows) {
    std::cout << "   ";
    for (wdr::rdf::TermId id : row) {
      std::cout << " " << g.dict().term(id).ToNTriples();
    }
    std::cout << "\n";
  }
  if (rs.rows.empty()) std::cout << "    (no answers)\n";
}

}  // namespace

int main() {
  wdr::rdf::Graph graph;
  wdr::schema::Vocabulary vocab =
      wdr::schema::Vocabulary::Intern(graph.dict());

  auto parsed = wdr::io::ParseTurtle(kData, graph);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status() << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "Loaded " << *parsed << " triples.\n\n";

  for (const char* sparql : {kQuery, kPersonQuery}) {
    auto query = wdr::query::ParseSparql(sparql, graph.dict());
    if (!query.ok()) {
      std::cerr << "query error: " << query.status() << "\n";
      return EXIT_FAILURE;
    }

    std::cout << "Query:" << sparql;

    // Route 1 — saturation: compile the knowledge into the data.
    wdr::reasoning::SaturationStats stats;
    wdr::rdf::TripleStore closure =
        wdr::reasoning::Saturator::SaturateGraph(graph, vocab, &stats);
    wdr::query::Evaluator closure_eval(closure);
    wdr::query::ResultSet via_saturation = closure_eval.Evaluate(*query);
    std::cout << "  via saturation   (" << stats.derived_triples
              << " triples materialized):\n";
    PrintRows(graph, via_saturation);

    // Route 2 — reformulation: compile the knowledge into the query.
    wdr::reformulation::CloseSchema(graph, vocab);
    wdr::schema::Schema schema = wdr::schema::Schema::FromGraph(graph, vocab);
    wdr::reformulation::Reformulator reformulator(schema, vocab);
    auto reformulated = reformulator.Reformulate(*query);
    if (!reformulated.ok()) {
      std::cerr << "reformulation error: " << reformulated.status() << "\n";
      return EXIT_FAILURE;
    }
    wdr::query::Evaluator base_eval(graph.store());
    wdr::query::ResultSet via_reformulation =
        base_eval.Evaluate(*reformulated);
    std::cout << "  via reformulation (union of " << reformulated->size()
              << " conjunctive queries, data untouched):\n";
    PrintRows(graph, via_reformulation);
    std::cout << "\n";
  }

  std::cout << "Both routes return the same answers: q_ref(G) = q(G∞).\n";
  return EXIT_SUCCESS;
}
