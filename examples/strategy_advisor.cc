// The §II-D open issue, automated: measure a workload's actual costs and
// recommend saturation vs. reformulation per query and per workload mix.
//
// Generates a university dataset, measures the Fig. 3 cost profile of a
// hierarchy-top query and a leaf query, then asks the advisor under three
// workload mixes (query-heavy, balanced, update-heavy).
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "analysis/advisor.h"
#include "analysis/measure.h"
#include "common/rng.h"
#include "reformulation/reformulator.h"
#include "workload/queries.h"
#include "workload/university.h"
#include "workload/updates.h"

namespace {

const char* TechniqueName(wdr::analysis::Technique technique) {
  return technique == wdr::analysis::Technique::kSaturation
             ? "SATURATE"
             : "REFORMULATE";
}

}  // namespace

int main() {
  wdr::workload::UniversityConfig config;
  config.universities = 2;
  config.departments_per_university = 3;
  wdr::workload::UniversityData data =
      wdr::workload::GenerateUniversityData(config);
  wdr::reformulation::CloseSchema(data.graph, data.vocab);
  std::cout << "Dataset: " << data.graph.size() << " triples ("
            << data.ontology_triples << " schema).\n\n";

  wdr::Rng rng(2026);
  wdr::workload::UpdateSet wl_updates =
      wdr::workload::MakeUpdateSet(data.graph, data.vocab, 5, rng);
  wdr::analysis::UpdateSample updates;
  updates.instance_insertions = wl_updates.instance_insertions;
  updates.instance_deletions = wl_updates.instance_deletions;
  updates.schema_insertions = wl_updates.schema_insertions;
  updates.schema_deletions = wl_updates.schema_deletions;

  auto queries = wdr::workload::StandardQuerySet(data.graph.dict());

  // Three forecast profiles over the same horizon.
  struct Mix {
    const char* name;
    wdr::analysis::WorkloadForecast forecast;
  };
  Mix mixes[] = {
      {"query-heavy  (10000 runs,    10 updates)",
       {10000, 5, 2, 2, 1}},
      {"balanced     (  200 runs,   200 updates)",
       {200, 100, 50, 30, 20}},
      {"update-heavy (   10 runs,  2000 updates)",
       {10, 1000, 500, 300, 200}},
  };

  for (const char* name : {"Q1", "Q2"}) {
    const wdr::workload::NamedQuery* nq = nullptr;
    for (const auto& candidate : queries) {
      if (candidate.name == name) nq = &candidate;
    }
    auto report = wdr::analysis::MeasureCostProfile(data.graph, data.vocab,
                                                    nq->query, updates);
    if (!report.ok()) {
      std::cerr << "measurement failed: " << report.status() << "\n";
      return EXIT_FAILURE;
    }
    std::cout << nq->name << " — " << nq->description << "\n";
    std::printf(
        "  measured: sat=%.1fms  eval(G∞)=%.3fms  eval(q_ref,G)=%.3fms  "
        "(%zu CQs, %zu answers)\n",
        report->costs.saturation_seconds * 1e3,
        report->costs.eval_saturated_seconds * 1e3,
        report->costs.eval_reformulated_seconds * 1e3,
        report->reformulation_cqs, report->answers);

    for (const Mix& mix : mixes) {
      wdr::analysis::Recommendation rec =
          wdr::analysis::Recommend(report->costs, mix.forecast);
      std::printf("  %-42s -> %-11s (sat %.1fms vs ref %.1fms)\n", mix.name,
                  TechniqueName(rec.technique),
                  rec.saturation_total_seconds * 1e3,
                  rec.reformulation_total_seconds * 1e3);
    }
    std::cout << "\n";
  }

  std::cout << "Leaf queries (Q2) never repay saturation; hierarchy-top\n"
               "queries (Q1) repay it unless updates dominate — the Fig. 3\n"
               "spread, operationalized as an advisor.\n";
  return EXIT_SUCCESS;
}
