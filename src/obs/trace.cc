#include "obs/trace.h"

#include <chrono>
#include <mutex>

namespace wdr::obs {
namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point ProcessStart() {
  static const Clock::time_point start = Clock::now();
  return start;
}

// Ring buffer of completed spans. Only touched while tracing is enabled,
// so a mutex is fine; the disabled hot path never reaches it.
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;  // ring storage, wraps at `capacity`
  size_t capacity = kDefaultTraceCapacity;
  size_t next = 0;  // insertion slot
  bool wrapped = false;
  std::atomic<uint64_t> next_span_id{1};

  void Push(TraceEvent event) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < capacity) {
      events.push_back(std::move(event));
      next = events.size() % capacity;
    } else {
      events[next] = std::move(event);
      next = (next + 1) % capacity;
      wrapped = true;
      WDR_COUNTER_INC("wdr.trace.dropped_spans");
    }
  }

  // Events oldest-first; callers hold `mu`.
  std::vector<TraceEvent> OrderedLocked() const {
    std::vector<TraceEvent> out;
    out.reserve(events.size());
    if (wrapped) {
      for (size_t i = 0; i < events.size(); ++i) {
        out.push_back(events[(next + i) % events.size()]);
      }
    } else {
      out = events;
    }
    return out;
  }
};

TraceBuffer& Buffer() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

// Innermost live traced span / enclosing trace of this thread. New spans
// parent to tls_current_span and join tls_current_trace; TraceContextScope
// seeds both on worker threads.
thread_local uint64_t tls_current_span = 0;
thread_local uint64_t tls_current_trace = 0;

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
}

}  // namespace

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           ProcessStart())
          .count());
}

void SetTraceEnabled(bool enabled) {
  ProcessStart();  // pin the timebase before the first event
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void ClearTrace() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.clear();
  buffer.next = 0;
  buffer.wrapped = false;
}

void SetTraceCapacity(size_t capacity) {
  if (capacity < 1) capacity = 1;
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (capacity == buffer.capacity) return;
  // Re-linearize so the ring invariants hold at the new capacity; keep the
  // newest `capacity` events when shrinking.
  std::vector<TraceEvent> ordered = buffer.OrderedLocked();
  if (ordered.size() > capacity) {
    ordered.erase(ordered.begin(),
                  ordered.begin() + (ordered.size() - capacity));
  }
  buffer.capacity = capacity;
  buffer.events = std::move(ordered);
  buffer.wrapped = buffer.events.size() == capacity;
  buffer.next = buffer.events.size() % capacity;
}

size_t TraceCapacity() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.capacity;
}

std::vector<TraceEvent> TraceEvents() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  return buffer.OrderedLocked();
}

size_t ExportTraceJsonLines(std::ostream& os) {
  std::vector<TraceEvent> events = TraceEvents();
  for (const TraceEvent& e : events) {
    std::string line = "{\"trace\":" + std::to_string(e.trace_id) +
                       ",\"span\":" + std::to_string(e.span_id) +
                       ",\"parent\":" + std::to_string(e.parent_id) +
                       ",\"name\":\"";
    AppendJsonEscaped(line, e.name);
    line += "\",\"start_ns\":" + std::to_string(e.start_nanos) +
            ",\"dur_ns\":" + std::to_string(e.duration_nanos) +
            ",\"attrs\":{";
    bool first = true;
    for (const auto& [key, value] : e.attrs) {
      if (!first) line += ',';
      first = false;
      line += '"';
      AppendJsonEscaped(line, key);
      line += "\":\"";
      AppendJsonEscaped(line, value);
      line += '"';
    }
    line += "}}\n";
    os << line;
  }
  return events.size();
}

TraceContext CurrentTraceContext() {
  return TraceContext{tls_current_trace, tls_current_span};
}

TraceContextScope::TraceContextScope(const TraceContext& context)
    : saved_trace_id_(tls_current_trace), saved_span_id_(tls_current_span) {
  // A zero context means "captured outside any traced span" — adopting it
  // must not detach whatever context this thread already has.
  if (context.trace_id == 0 && context.span_id == 0) return;
  tls_current_trace = context.trace_id;
  tls_current_span = context.span_id;
}

TraceContextScope::~TraceContextScope() {
  tls_current_trace = saved_trace_id_;
  tls_current_span = saved_span_id_;
}

void Span::Begin(const char* name) {
  active_ = true;
  name_ = name;
  start_nanos_ = TraceNowNanos();
  if (TraceEnabled()) {
    traced_ = true;
    span_id_ = Buffer().next_span_id.fetch_add(1, std::memory_order_relaxed);
    parent_id_ = tls_current_span;
    saved_trace_id_ = tls_current_trace;
    // A span with no enclosing trace starts one: its own id is the trace
    // id every descendant (on any thread, via TraceContext) carries.
    trace_id_ = tls_current_trace != 0 ? tls_current_trace : span_id_;
    tls_current_span = span_id_;
    tls_current_trace = trace_id_;
  }
}

void Span::End() {
  uint64_t duration = TraceNowNanos() - start_nanos_;
  if (histogram_ != nullptr) histogram_->RecordNanos(duration);
  if (traced_) {
    tls_current_span = parent_id_;
    tls_current_trace = saved_trace_id_;
    TraceEvent event;
    event.trace_id = trace_id_;
    event.span_id = span_id_;
    event.parent_id = parent_id_;
    event.name = name_;
    event.start_nanos = start_nanos_;
    event.duration_nanos = duration;
    event.attrs = std::move(attrs_);
    Buffer().Push(std::move(event));
  }
}

void Span::AddAttr(const char* key, const std::string& value) {
  if (traced_) attrs_.emplace_back(key, value);
}

void Span::AddAttr(const char* key, uint64_t value) {
  if (traced_) attrs_.emplace_back(key, std::to_string(value));
}

uint64_t Span::ElapsedNanos() const {
  return active_ ? TraceNowNanos() - start_nanos_ : 0;
}

}  // namespace wdr::obs
