#include "obs/trace.h"

#include <chrono>
#include <mutex>

namespace wdr::obs {
namespace internal {
std::atomic<bool> g_trace_enabled{false};
}  // namespace internal

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point ProcessStart() {
  static const Clock::time_point start = Clock::now();
  return start;
}

// Ring buffer of completed spans. Only touched while tracing is enabled,
// so a mutex is fine; the disabled hot path never reaches it.
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;  // ring storage, wraps at kTraceCapacity
  size_t next = 0;                 // insertion slot
  bool wrapped = false;
  std::atomic<uint64_t> next_span_id{1};

  void Push(TraceEvent event) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < kTraceCapacity) {
      events.push_back(std::move(event));
      next = events.size() % kTraceCapacity;
    } else {
      events[next] = std::move(event);
      next = (next + 1) % kTraceCapacity;
      wrapped = true;
    }
  }
};

TraceBuffer& Buffer() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

// Innermost live traced span of this thread (parent of new spans).
thread_local uint64_t tls_current_span = 0;

void AppendJsonEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
}

}  // namespace

uint64_t TraceNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           ProcessStart())
          .count());
}

void SetTraceEnabled(bool enabled) {
  ProcessStart();  // pin the timebase before the first event
  internal::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void ClearTrace() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.clear();
  buffer.next = 0;
  buffer.wrapped = false;
}

std::vector<TraceEvent> TraceEvents() {
  TraceBuffer& buffer = Buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  std::vector<TraceEvent> out;
  out.reserve(buffer.events.size());
  if (buffer.wrapped) {
    for (size_t i = 0; i < buffer.events.size(); ++i) {
      out.push_back(buffer.events[(buffer.next + i) % buffer.events.size()]);
    }
  } else {
    out = buffer.events;
  }
  return out;
}

size_t ExportTraceJsonLines(std::ostream& os) {
  std::vector<TraceEvent> events = TraceEvents();
  for (const TraceEvent& e : events) {
    std::string line = "{\"span\":" + std::to_string(e.span_id) +
                       ",\"parent\":" + std::to_string(e.parent_id) +
                       ",\"name\":\"";
    AppendJsonEscaped(line, e.name);
    line += "\",\"start_ns\":" + std::to_string(e.start_nanos) +
            ",\"dur_ns\":" + std::to_string(e.duration_nanos) +
            ",\"attrs\":{";
    bool first = true;
    for (const auto& [key, value] : e.attrs) {
      if (!first) line += ',';
      first = false;
      line += '"';
      AppendJsonEscaped(line, key);
      line += "\":\"";
      AppendJsonEscaped(line, value);
      line += '"';
    }
    line += "}}\n";
    os << line;
  }
  return events.size();
}

void Span::Begin(const char* name) {
  active_ = true;
  name_ = name;
  start_nanos_ = TraceNowNanos();
  if (TraceEnabled()) {
    traced_ = true;
    span_id_ = Buffer().next_span_id.fetch_add(1, std::memory_order_relaxed);
    parent_id_ = tls_current_span;
    tls_current_span = span_id_;
  }
}

void Span::End() {
  uint64_t duration = TraceNowNanos() - start_nanos_;
  if (histogram_ != nullptr) histogram_->RecordNanos(duration);
  if (traced_) {
    tls_current_span = parent_id_;
    TraceEvent event;
    event.span_id = span_id_;
    event.parent_id = parent_id_;
    event.name = name_;
    event.start_nanos = start_nanos_;
    event.duration_nanos = duration;
    event.attrs = std::move(attrs_);
    Buffer().Push(std::move(event));
  }
}

void Span::AddAttr(const char* key, const std::string& value) {
  if (traced_) attrs_.emplace_back(key, value);
}

void Span::AddAttr(const char* key, uint64_t value) {
  if (traced_) attrs_.emplace_back(key, std::to_string(value));
}

uint64_t Span::ElapsedNanos() const {
  return active_ ? TraceNowNanos() - start_nanos_ : 0;
}

}  // namespace wdr::obs
