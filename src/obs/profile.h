#ifndef WDR_OBS_PROFILE_H_
#define WDR_OBS_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wdr::obs {

// EXPLAIN-ANALYZE-style per-operator statistics for one query execution:
// a tree of operators (union → branch → triple-pattern scan) with, per
// node, rows produced, triples scanned, cursor opens, and inclusive wall
// time. Built only when profiling is requested (a null ProfileNode* turns
// all collection off), so the evaluation hot path pays nothing by default.
struct ProfileNode {
  std::string label;      // operator description, e.g. "scan (?x type :C)"
  uint64_t rows = 0;      // bindings/rows this operator produced
  uint64_t triples = 0;   // triples enumerated from the store
  uint64_t scans = 0;     // cursor opens (Match calls) issued
  double seconds = 0;     // inclusive wall time
  double est_rows = -1;   // planner cardinality estimate; <0 = not planned
  std::vector<std::unique_ptr<ProfileNode>> children;

  ProfileNode() = default;
  explicit ProfileNode(std::string node_label) : label(std::move(node_label)) {}

  ProfileNode& AddChild(std::string child_label);

  // Sums of the per-node stats over the whole subtree (children only,
  // excluding this node's own fields).
  uint64_t TotalScans() const;
  uint64_t TotalTriples() const;

  // Renders the tree as an aligned, indented table:
  //   union (2 branches)      rows=5  scans=0   triples=0   1.203ms
  //     bgp#0                 rows=5  scans=12  triples=84  0.981ms
  //       scan (?x type :C)   rows=5  scans=7   triples=61  0.611ms
  std::string Render() const;

  // Nested JSON object mirroring the tree.
  std::string ToJson() const;
};

}  // namespace wdr::obs

#endif  // WDR_OBS_PROFILE_H_
