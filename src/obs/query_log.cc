#include "obs/query_log.h"

#include <cctype>
#include <mutex>

#include "obs/metrics.h"

namespace wdr::obs {
namespace {

constexpr size_t kDefaultQueryLogCapacity = 1024;

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string QueryLogRecord::ToJsonLine() const {
  std::string out = "{\"id\":" + std::to_string(id) +
                    ",\"trace\":" + std::to_string(trace_id) + ",\"mode\":";
  AppendJsonString(out, mode);
  out += ",\"backend\":";
  AppendJsonString(out, backend);
  out += ",\"plan\":";
  out += plan ? "true" : "false";
  out += ",\"encoding\":";
  out += encoding ? "true" : "false";
  out += ",\"union_size\":" + std::to_string(union_size) +
         ",\"rewrite_steps\":" + std::to_string(rewrite_steps) +
         ",\"pruned_cqs\":" + std::to_string(pruned_cqs) +
         ",\"range_collapses\":" + std::to_string(range_collapses) +
         ",\"fanout\":" + std::to_string(fanout) + ",\"auto\":" +
         (via_auto ? "true" : "false") +
         ",\"est_rows\":" + std::to_string(est_rows) +
         ",\"rows\":" + std::to_string(rows) +
         ",\"scan_cache_hits\":" + std::to_string(scan_cache_hits) +
         ",\"scan_cache_misses\":" + std::to_string(scan_cache_misses) +
         ",\"wall_nanos\":" + std::to_string(wall_nanos) + ",\"slow\":";
  out += slow ? "true" : "false";
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  if (!ok) {
    out += ",\"error\":";
    AppendJsonString(out, error);
  }
  out += ",\"query\":";
  AppendJsonString(out, query);
  out += "}";
  return out;
}

struct QueryLog::Impl {
  mutable std::mutex mu;
  std::vector<QueryLogRecord> records;  // ring storage, wraps at `capacity`
  size_t capacity = kDefaultQueryLogCapacity;
  size_t next = 0;
  bool wrapped = false;
  uint64_t next_id = 1;
  uint64_t slow_threshold_nanos = 0;

  // Records oldest-first; callers hold `mu`.
  std::vector<QueryLogRecord> OrderedLocked() const {
    std::vector<QueryLogRecord> out;
    out.reserve(records.size());
    if (wrapped) {
      for (size_t i = 0; i < records.size(); ++i) {
        out.push_back(records[(next + i) % records.size()]);
      }
    } else {
      out = records;
    }
    return out;
  }
};

QueryLog& QueryLog::Get() {
  static QueryLog* log = new QueryLog();
  return *log;
}

QueryLog::Impl& QueryLog::impl() const {
  // Leaked intentionally (see MetricsRegistry): queries may run during
  // static destruction.
  static Impl* impl = new Impl();
  return *impl;
}

uint64_t QueryLog::Append(QueryLogRecord record) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  record.id = i.next_id++;
  record.slow = i.slow_threshold_nanos != 0 &&
                record.wall_nanos >= i.slow_threshold_nanos;
  WDR_COUNTER_INC("wdr.querylog.records");
  if (record.slow) WDR_COUNTER_INC("wdr.querylog.slow");
  const uint64_t id = record.id;
  if (i.records.size() < i.capacity) {
    i.records.push_back(std::move(record));
    i.next = i.records.size() % i.capacity;
  } else {
    i.records[i.next] = std::move(record);
    i.next = (i.next + 1) % i.capacity;
    i.wrapped = true;
    WDR_COUNTER_INC("wdr.querylog.dropped");
  }
  return id;
}

std::vector<QueryLogRecord> QueryLog::Records() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.OrderedLocked();
}

size_t QueryLog::Export(std::ostream& os) const {
  std::vector<QueryLogRecord> records = Records();
  for (const QueryLogRecord& r : records) {
    os << r.ToJsonLine() << '\n';
  }
  return records.size();
}

void QueryLog::Clear() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.records.clear();
  i.next = 0;
  i.wrapped = false;
}

void QueryLog::SetCapacity(size_t capacity) {
  if (capacity < 1) capacity = 1;
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  if (capacity == i.capacity) return;
  std::vector<QueryLogRecord> ordered = i.OrderedLocked();
  if (ordered.size() > capacity) {
    ordered.erase(ordered.begin(),
                  ordered.begin() + (ordered.size() - capacity));
  }
  i.capacity = capacity;
  i.records = std::move(ordered);
  i.wrapped = i.records.size() == capacity;
  i.next = i.records.size() % capacity;
}

size_t QueryLog::capacity() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.capacity;
}

void QueryLog::SetSlowThresholdNanos(uint64_t nanos) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.slow_threshold_nanos = nanos;
}

uint64_t QueryLog::slow_threshold_nanos() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.slow_threshold_nanos;
}

std::string CanonicalQueryKey(std::string_view text, size_t max_len) {
  std::string out;
  out.reserve(text.size() < max_len ? text.size() : max_len);
  bool in_space = true;  // leading whitespace trims
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out += ' ';
    in_space = false;
    out += c;
    if (out.size() >= max_len) break;
  }
  if (out.size() >= max_len) {
    out.resize(max_len);
    out += "...";
  }
  return out;
}

}  // namespace wdr::obs
