#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wdr::obs {

Status ListenSocket::Start(int port, int backlog) {
  if (listening()) {
    return InvalidArgumentError("socket already listening on port " +
                                std::to_string(port_));
  }
  if (port < 0 || port > 65535) {
    return InvalidArgumentError("invalid port " + std::to_string(port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = InternalError(std::string("bind 127.0.0.1:") +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, backlog) != 0) {
    Status s = InternalError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  // Resolve the ephemeral port before anyone starts accepting.
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  fd_ = fd;
  return Status::Ok();
}

int ListenSocket::Accept() {
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return -1;  // shut down or unrecoverable
  }
}

void ListenSocket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    port_ = 0;
  }
}

bool SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // peer gone or send timeout
    off += static_cast<size_t>(n);
  }
  return true;
}

bool ReadHttpRequestHead(int fd, HttpRequest* request, size_t max_bytes) {
  std::string head;
  char buf[2048];
  while (head.size() < max_bytes &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    head.append(buf, static_cast<size_t>(n));
  }
  // Request line: METHOD SP PATH SP VERSION.
  const size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  request->method = line.substr(0, sp1);
  const size_t sp2 = line.find(' ', sp1 + 1);
  request->path = line.substr(
      sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
  if (request->path.empty()) return false;
  // Strip any query string; the embedded routes take no parameters.
  if (size_t q = request->path.find('?'); q != std::string::npos) {
    request->path.resize(q);
  }
  return true;
}

const char* HttpStatusLine(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 400:
      return "400 Bad Request";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    case 503:
      return "503 Service Unavailable";
    default:
      return "500 Internal Server Error";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.0 ";
  out += HttpStatusLine(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: " + std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace wdr::obs
