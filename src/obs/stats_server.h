#ifndef WDR_OBS_STATS_SERVER_H_
#define WDR_OBS_STATS_SERVER_H_

#include <atomic>
#include <thread>

#include "common/status.h"
#include "obs/http.h"

namespace wdr::obs {

// Minimal embedded HTTP exposition endpoint — the process's live telemetry
// surface, curl-driveable and Prometheus-scrapeable with zero dependencies
// (POSIX sockets only). One blocking accept loop on a dedicated thread,
// one request per connection (HTTP/1.0 semantics, Connection: close), so
// there is no connection state to manage. Binds loopback only: this is an
// operator diagnostic port, not a public listener.
//
// Routes (GET):
//   /             plain-text index of the endpoints
//   /metrics      MetricsRegistry snapshot, Prometheus text format 0.0.4
//   /metrics.json the same snapshot as one JSON object
//   /querylog     QueryLog as JSON lines, oldest first
//   /trace        trace ring buffer as JSON lines, oldest first
// Anything else is 404; non-GET methods are 405.
//
// Each handled request increments wdr.statsserver.requests (and
// wdr.statsserver.not_found for 404s).
class StatsServer {
 public:
  StatsServer() = default;
  ~StatsServer() { Stop(); }
  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  // Binds 127.0.0.1:port (port 0 picks an ephemeral port — see port()),
  // starts the accept thread, and returns. InvalidArgument if already
  // running; Internal with errno detail if the bind/listen fails.
  Status Start(int port);

  // Stops the accept loop and joins the thread. Idempotent; no-op when not
  // running. In-flight responses finish before the socket closes.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (resolved when Start was given 0); 0 when not running.
  int port() const { return port_; }

 private:
  void AcceptLoop();

  std::thread thread_;
  std::atomic<bool> running_{false};
  ListenSocket listener_;
  int port_ = 0;
};

}  // namespace wdr::obs

#endif  // WDR_OBS_STATS_SERVER_H_
