#include "obs/stats_server.h"

#include <unistd.h>

#include <sstream>
#include <string>

#include "obs/http.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace wdr::obs {
namespace {

HttpResponse Handle(const std::string& method, const std::string& path) {
  WDR_COUNTER_INC("wdr.statsserver.requests");
  HttpResponse r;
  if (method != "GET") {
    r.status = 405;
    r.body = "method not allowed\n";
    return r;
  }
  if (path == "/metrics") {
    // Prometheus text exposition format 0.0.4.
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = ToPrometheusText(MetricsRegistry::Get().Snapshot());
  } else if (path == "/metrics.json") {
    r.content_type = "application/json";
    r.body = MetricsRegistry::Get().Snapshot().ToJson();
    r.body += '\n';
  } else if (path == "/querylog") {
    r.content_type = "application/x-ndjson";
    std::ostringstream os;
    QueryLog::Get().Export(os);
    r.body = os.str();
  } else if (path == "/trace") {
    r.content_type = "application/x-ndjson";
    std::ostringstream os;
    ExportTraceJsonLines(os);
    r.body = os.str();
  } else if (path == "/") {
    r.body =
        "wdr stats server\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  metrics snapshot as JSON\n"
        "  /querylog      query log, JSON lines\n"
        "  /trace         trace spans, JSON lines\n";
  } else {
    WDR_COUNTER_INC("wdr.statsserver.not_found");
    r.status = 404;
    r.body = "not found\n";
  }
  return r;
}

void ServeConnection(int fd) {
  HttpRequest request;
  HttpResponse r;
  if (ReadHttpRequestHead(fd, &request)) {
    r = Handle(request.method, request.path);
  } else {
    r = HttpResponse{405, "text/plain", "bad request\n"};
  }
  SendAll(fd, SerializeHttpResponse(r));
}

}  // namespace

Status StatsServer::Start(int port) {
  if (running()) {
    return InvalidArgumentError("stats server already running on port " +
                                std::to_string(port_));
  }
  WDR_RETURN_IF_ERROR(listener_.Start(port));
  port_ = listener_.port();
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void StatsServer::AcceptLoop() {
  while (running()) {
    int fd = listener_.Accept();
    if (fd < 0) break;  // listen socket shut down (Stop) or unrecoverable
    ServeConnection(fd);
    ::close(fd);
  }
}

void StatsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Shutdown unblocks the accept() in the loop thread; Close then releases
  // the descriptor once the loop has observed running_ == false.
  listener_.Shutdown();
  if (thread_.joinable()) thread_.join();
  listener_.Close();
  port_ = 0;
}

}  // namespace wdr::obs
