#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace wdr::obs {
namespace {

struct Response {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

const char* StatusLine(int status) {
  switch (status) {
    case 200:
      return "200 OK";
    case 404:
      return "404 Not Found";
    case 405:
      return "405 Method Not Allowed";
    default:
      return "500 Internal Server Error";
  }
}

Response Handle(const std::string& method, const std::string& path) {
  WDR_COUNTER_INC("wdr.statsserver.requests");
  Response r;
  if (method != "GET") {
    r.status = 405;
    r.body = "method not allowed\n";
    return r;
  }
  if (path == "/metrics") {
    // Prometheus text exposition format 0.0.4.
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = ToPrometheusText(MetricsRegistry::Get().Snapshot());
  } else if (path == "/metrics.json") {
    r.content_type = "application/json";
    r.body = MetricsRegistry::Get().Snapshot().ToJson();
    r.body += '\n';
  } else if (path == "/querylog") {
    r.content_type = "application/x-ndjson";
    std::ostringstream os;
    QueryLog::Get().Export(os);
    r.body = os.str();
  } else if (path == "/trace") {
    r.content_type = "application/x-ndjson";
    std::ostringstream os;
    ExportTraceJsonLines(os);
    r.body = os.str();
  } else if (path == "/") {
    r.body =
        "wdr stats server\n"
        "  /metrics       Prometheus text exposition\n"
        "  /metrics.json  metrics snapshot as JSON\n"
        "  /querylog      query log, JSON lines\n"
        "  /trace         trace spans, JSON lines\n";
  } else {
    WDR_COUNTER_INC("wdr.statsserver.not_found");
    r.status = 404;
    r.body = "not found\n";
  }
  return r;
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing useful to do
    off += static_cast<size_t>(n);
  }
}

void ServeConnection(int fd) {
  // Read until the end of the request head (or a sane cap). The request
  // body, if any, is ignored — every route is GET-shaped.
  std::string head;
  char buf[2048];
  while (head.size() < 16 * 1024 &&
         head.find("\r\n\r\n") == std::string::npos &&
         head.find("\n\n") == std::string::npos) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    head.append(buf, static_cast<size_t>(n));
  }
  // Request line: METHOD SP PATH SP VERSION.
  std::string method, path;
  {
    size_t eol = head.find_first_of("\r\n");
    std::string line = head.substr(0, eol);
    size_t sp1 = line.find(' ');
    if (sp1 != std::string::npos) {
      method = line.substr(0, sp1);
      size_t sp2 = line.find(' ', sp1 + 1);
      path = line.substr(sp1 + 1, sp2 == std::string::npos
                                      ? std::string::npos
                                      : sp2 - sp1 - 1);
    }
  }
  // Strip any query string; routes take no parameters.
  if (size_t q = path.find('?'); q != std::string::npos) path.resize(q);
  Response r = path.empty() ? Response{405, "text/plain", "bad request\n"}
                            : Handle(method, path);
  std::string out = "HTTP/1.0 ";
  out += StatusLine(r.status);
  out += "\r\nContent-Type: ";
  out += r.content_type;
  out += "\r\nContent-Length: " + std::to_string(r.body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += r.body;
  WriteAll(fd, out);
}

}  // namespace

Status StatsServer::Start(int port) {
  if (running()) {
    return InvalidArgumentError("stats server already running on port " +
                                std::to_string(port_));
  }
  if (port < 0 || port > 65535) {
    return InvalidArgumentError("invalid port " + std::to_string(port));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = InternalError(std::string("bind 127.0.0.1:") +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) != 0) {
    Status s = InternalError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return s;
  }
  // Resolve the ephemeral port before the loop starts serving.
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void StatsServer::AcceptLoop() {
  while (running()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (Stop) or unrecoverable
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void StatsServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() unblocks the accept() in the loop thread; close() then
  // releases the descriptor once the loop has observed running_ == false.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

}  // namespace wdr::obs
