#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace wdr::obs {
namespace {

// std::map keeps names sorted for Snapshot(); unique_ptr values keep the
// metric addresses stable across rehash-free growth.
template <typename M>
M& GetOrCreate(std::map<std::string, std::unique_ptr<M>>& table,
               const std::string& name) {
  auto it = table.find(name);
  if (it == table.end()) {
    it = table.emplace(name, std::make_unique<M>()).first;
  }
  return *it->second;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Leaked intentionally: instrumented code may run during static
  // destruction, so the registry must never be destroyed.
  static Impl* impl = new Impl();
  return *impl;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return GetOrCreate(i.counters, name);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return GetOrCreate(i.gauges, name);
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return GetOrCreate(i.histograms, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& i = impl();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(i.mu);
  snap.counters.reserve(i.counters.size());
  for (const auto& [name, counter] : i.counters) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(i.gauges.size());
  for (const auto& [name, gauge] : i.gauges) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(i.histograms.size());
  for (const auto& [name, hist] : i.histograms) {
    HistogramData data;
    data.name = name;
    // Count first, then buckets: concurrent RecordNanos bumps the bucket
    // before the count, so buckets >= count never under-reports quantiles.
    data.count = hist->count();
    data.sum_nanos = hist->sum_nanos();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      data.buckets[b] = hist->buckets_[b].load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

double HistogramData::QuantileNanos(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the quantile sample, rounded up: the p99 of 2 samples is the
  // 2nd (ceil(1.98)), not the 1st.
  uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= target) {
      return static_cast<double>(b == 0 ? 0 : (uint64_t{1} << b) - 1);
    }
  }
  return static_cast<double>(uint64_t{1} << (Histogram::kBuckets - 1));
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramData* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const HistogramData& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramData& h : histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, h.name);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum_nanos\":" + std::to_string(h.sum_nanos) +
           ",\"p50_nanos\":" + std::to_string(h.QuantileNanos(0.5)) +
           ",\"p99_nanos\":" + std::to_string(h.QuantileNanos(0.99)) +
           ",\"buckets\":{";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '"' + std::to_string(b) + "\":" + std::to_string(h.buckets[b]);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

}  // namespace wdr::obs
