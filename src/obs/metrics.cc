#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

namespace wdr::obs {
namespace {

// Map comparator wrapping NaturalNameLess, so the registry itself keeps
// names in the deterministic numeric-aware order Snapshot() promises.
struct NaturalLess {
  bool operator()(const std::string& a, const std::string& b) const {
    return NaturalNameLess(a, b);
  }
};

template <typename M>
using MetricMap = std::map<std::string, std::unique_ptr<M>, NaturalLess>;

// std::map keeps names sorted for Snapshot(); unique_ptr values keep the
// metric addresses stable across rehash-free growth.
template <typename M>
M& GetOrCreate(MetricMap<M>& table, const std::string& name) {
  auto it = table.find(name);
  if (it == table.end()) {
    it = table.emplace(name, std::make_unique<M>()).first;
  }
  return *it->second;
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

bool NaturalNameLess(const std::string& a, const std::string& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const unsigned char ca = static_cast<unsigned char>(a[i]);
    const unsigned char cb = static_cast<unsigned char>(b[j]);
    if (std::isdigit(ca) && std::isdigit(cb)) {
      // Compare the maximal digit runs as integers: skip leading zeros,
      // then shorter run < longer run, then digit-wise.
      size_t ia = i, jb = j;
      while (ia < a.size() && a[ia] == '0') ++ia;
      while (jb < b.size() && b[jb] == '0') ++jb;
      size_t ea = ia, eb = jb;
      while (ea < a.size() && std::isdigit(static_cast<unsigned char>(a[ea])))
        ++ea;
      while (eb < b.size() && std::isdigit(static_cast<unsigned char>(b[eb])))
        ++eb;
      if (ea - ia != eb - jb) return ea - ia < eb - jb;
      for (; ia < ea; ++ia, ++jb) {
        if (a[ia] != b[jb]) return a[ia] < b[jb];
      }
      // Equal value: fewer leading zeros first, to stay a strict order.
      if (ea - i != eb - j) return ea - i < eb - j;
      i = ea;
      j = eb;
      continue;
    }
    if (ca != cb) return ca < cb;
    ++i;
    ++j;
  }
  return a.size() - i < b.size() - j;
}

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  MetricMap<Counter> counters;
  MetricMap<Gauge> gauges;
  MetricMap<Histogram> histograms;
};

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Leaked intentionally: instrumented code may run during static
  // destruction, so the registry must never be destroyed.
  static Impl* impl = new Impl();
  return *impl;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return GetOrCreate(i.counters, name);
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return GetOrCreate(i.gauges, name);
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return GetOrCreate(i.histograms, name);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  Impl& i = impl();
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(i.mu);
  snap.counters.reserve(i.counters.size());
  for (const auto& [name, counter] : i.counters) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(i.gauges.size());
  for (const auto& [name, gauge] : i.gauges) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(i.histograms.size());
  for (const auto& [name, hist] : i.histograms) {
    HistogramData data;
    data.name = name;
    // Count first, then buckets: concurrent RecordNanos bumps the bucket
    // before the count, so buckets >= count never under-reports quantiles.
    data.count = hist->count();
    data.sum_nanos = hist->sum_nanos();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      data.buckets[b] = hist->buckets_[b].load(std::memory_order_relaxed);
    }
    snap.histograms.push_back(std::move(data));
  }
  return snap;
}

// Nominal upper bound of bucket `b` in nanoseconds: bucket b holds values
// with bit_width == b, i.e. [2^(b-1), 2^b - 1]; bucket 0 holds exactly 0.
// The overflow bucket (kBuckets - 1) also absorbs all larger values, so
// its bound is a finite floor, not a true maximum.
static double BucketUpperNanos(int b) {
  return static_cast<double>(b == 0 ? 0 : (uint64_t{1} << b) - 1);
}

double HistogramData::QuantileNanos(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the quantile sample, rounded up: the p99 of 2 samples is the
  // 2nd (ceil(1.98)), not the 1st. q = 0 clamps to rank 1 (the smallest
  // sample); q = 1 is rank `count` (the largest).
  uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative >= target) return BucketUpperNanos(b);
  }
  // Unreached when buckets cover `count` (Snapshot guarantees bucket sums
  // >= count); kept consistent with the overflow bucket's bound.
  return BucketUpperNanos(Histogram::kBuckets - 1);
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramData* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const HistogramData& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramData& h : histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, h.name);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum_nanos\":" + std::to_string(h.sum_nanos) +
           ",\"p50_nanos\":" + std::to_string(h.QuantileNanos(0.5)) +
           ",\"p99_nanos\":" + std::to_string(h.QuantileNanos(0.99)) +
           ",\"buckets\":{";
    bool first_bucket = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '"' + std::to_string(b) + "\":" + std::to_string(h.buckets[b]);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; wdr names are
// dotted, so dots (and anything else) become underscores.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

// Shortest round-trippable decimal for the double (%.17g is exact but
// noisy; %g at default precision is stable and plenty for bucket bounds).
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string pname = PrometheusName(name) + "_total";
    out += "# TYPE " + pname + " counter\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string pname = PrometheusName(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + " " + std::to_string(value) + "\n";
  }
  for (const HistogramData& h : snapshot.histograms) {
    const std::string pname = PrometheusName(h.name) + "_seconds";
    out += "# TYPE " + pname + " histogram\n";
    // Cumulative buckets in seconds over the base-2 nanosecond bounds.
    // Empty buckets inside the occupied range still render (Prometheus
    // requires monotone cumulative series), but long empty tails collapse
    // into +Inf to keep the exposition readable.
    uint64_t cumulative = 0;
    uint64_t total = 0;
    int last_occupied = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      total += h.buckets[b];
      if (h.buckets[b] != 0) last_occupied = b;
    }
    for (int b = 0; b <= last_occupied; ++b) {
      cumulative += h.buckets[b];
      const double le_seconds =
          static_cast<double>(b == 0 ? 0 : (uint64_t{1} << b) - 1) * 1e-9;
      out += pname + "_bucket{le=\"" + FormatDouble(le_seconds) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    // Snapshot reads `count` before the buckets while writers bump the
    // bucket first, so `total` can briefly exceed `count`; the larger value
    // keeps the +Inf bucket and _count consistent with the series.
    const uint64_t count = std::max(h.count, total);
    out += pname + "_bucket{le=\"+Inf\"} " + std::to_string(count) + "\n";
    out += pname + "_sum " +
           FormatDouble(static_cast<double>(h.sum_nanos) * 1e-9) + "\n";
    out += pname + "_count " + std::to_string(count) + "\n";
  }
  return out;
}

}  // namespace wdr::obs
