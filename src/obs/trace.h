#ifndef WDR_OBS_TRACE_H_
#define WDR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace wdr::obs {

// Structured tracing: RAII Span scopes that time a region, optionally
// record the duration into a Histogram, and — when tracing is enabled —
// emit a structured event (trace id, name, start, duration, parent span,
// key=value attrs) into a process-wide in-memory ring buffer exportable as
// JSON lines.
//
// Overhead contract: with tracing disabled (the default) a Span without a
// histogram costs one relaxed atomic load; a Span with a histogram adds
// two clock reads and one histogram record. Everything heavier (event
// allocation, attr copies, buffer locking) happens only while tracing is
// enabled.
//
// Cross-thread propagation: span parentage is tracked per thread, so a
// worker thread started (or woken) inside a traced region does NOT inherit
// the enclosing span by default — its spans would surface as orphan roots.
// The TraceContext capture/adopt API below fixes that: the dispatching
// thread captures its context (trace id + current span id) and each worker
// adopts it for the duration of its work, so parallel-UCQ branches,
// saturation workers and exec operators all attach to the enclosing query
// span and the exported trace is one tree per query at any thread count.

// One completed span, as stored in the ring buffer.
struct TraceEvent {
  uint64_t trace_id = 0;   // root span id of the enclosing trace tree
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  uint64_t start_nanos = 0;  // steady-clock, relative to process start
  uint64_t duration_nanos = 0;
  std::vector<std::pair<std::string, std::string>> attrs;
};

namespace internal {
extern std::atomic<bool> g_trace_enabled;
}  // namespace internal

// Compile-time-inlinable guard: a single relaxed load.
inline bool TraceEnabled() {
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

// Turns trace collection on/off. Enabling does not clear prior events.
void SetTraceEnabled(bool enabled);

// Drops all buffered events.
void ClearTrace();

// Default ring capacity; override at run time with SetTraceCapacity.
inline constexpr size_t kDefaultTraceCapacity = 1 << 16;

// Resizes the span ring buffer (values < 1 clamp to 1). Shrinking keeps
// the newest events. Overwritten-before-export events increment the
// `wdr.trace.dropped_spans` counter.
void SetTraceCapacity(size_t capacity);
size_t TraceCapacity();

// Copies the buffered events, oldest first (the buffer keeps the most
// recent TraceCapacity() spans; older ones are overwritten and counted as
// dropped).
std::vector<TraceEvent> TraceEvents();

// Writes one JSON object per line:
//   {"trace":3,"span":3,"parent":1,"name":"wdr.query","start_ns":…,
//    "dur_ns":…,"attrs":{"rows":"42"}}
// Returns the number of lines written.
size_t ExportTraceJsonLines(std::ostream& os);

// A capturable handle to "where am I in the trace tree": the enclosing
// trace id and the innermost live span id of the capturing thread. Plain
// values — safe to copy into a worker lambda or queue entry.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // adopted as the parent of the adopter's spans
};

// Captures the calling thread's current context. Cheap (two TLS reads);
// returns a zero context when the thread is outside any traced span.
TraceContext CurrentTraceContext();

// RAII adoption: while in scope, spans created by this thread parent to
// `context.span_id` and join `context.trace_id` — the cross-thread half of
// the propagation contract. Restores the thread's previous context on
// destruction, so pooled workers never leak one query's context into the
// next. Adopting a zero context is a no-op scope.
class TraceContextScope {
 public:
  explicit TraceContextScope(const TraceContext& context);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  uint64_t saved_trace_id_;
  uint64_t saved_span_id_;
};

// RAII trace scope. Cheap enough to leave in hot paths: fully inert
// unless it has a histogram sink or tracing is on.
class Span {
 public:
  explicit Span(const char* name, Histogram* histogram = nullptr)
      : histogram_(histogram) {
    if (histogram_ != nullptr || TraceEnabled()) Begin(name);
  }
  ~Span() {
    if (active_) End();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attach a key=value attribute to the trace event. No-ops when the span
  // is not being traced (attrs have no histogram meaning).
  void AddAttr(const char* key, const std::string& value);
  void AddAttr(const char* key, uint64_t value);

  // Elapsed nanoseconds so far (0 for an inert span).
  uint64_t ElapsedNanos() const;

  // Ids of this span while traced; 0 when tracing was off at construction.
  uint64_t span_id() const { return span_id_; }
  uint64_t trace_id() const { return trace_id_; }

 private:
  void Begin(const char* name);  // out of line: clocking + trace setup
  void End();

  Histogram* histogram_ = nullptr;
  bool active_ = false;
  bool traced_ = false;  // emitting an event (tracing was on at Begin)
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t saved_trace_id_ = 0;
  uint64_t start_nanos_ = 0;
  const char* name_ = nullptr;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

// Nanoseconds since process start (steady clock) — the timebase of trace
// events, exposed for tests.
uint64_t TraceNowNanos();

}  // namespace wdr::obs

#endif  // WDR_OBS_TRACE_H_
