#ifndef WDR_OBS_HTTP_H_
#define WDR_OBS_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace wdr::obs {

// Zero-dependency POSIX socket plumbing shared by the telemetry endpoint
// (obs::StatsServer) and the query front-end (wdr::server::Server). Both
// servers are loopback TCP listeners with one blocking accept loop; this
// header owns the parts that are identical — bind/listen/accept/shutdown,
// full-buffer sends, and the HTTP/1.0 request/response framing — so the
// two front doors cannot drift apart on socket handling.

// A bound, listening loopback TCP socket. Start() binds 127.0.0.1:port
// (port 0 picks an ephemeral port, resolved into port()); Shutdown()
// unblocks a concurrent Accept() (which then returns a negative fd) and
// Close() releases the descriptor. The Shutdown/Close split mirrors the
// stop protocol of an accept-loop thread: shut down first, join the loop,
// then close.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  // InvalidArgument for out-of-range ports or when already listening;
  // Internal with errno detail when socket/bind/listen fails.
  Status Start(int port, int backlog = 16);

  // Accepts one connection; blocks. Returns the connection fd, or a
  // negative value when the socket was shut down or accept failed
  // unrecoverably (EINTR is retried internally).
  int Accept();

  void Shutdown();
  void Close();

  bool listening() const { return fd_ >= 0; }
  int port() const { return port_; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

// Sends the whole buffer (retrying partial sends, MSG_NOSIGNAL). Returns
// false when the peer is gone or the send times out; there is nothing
// useful to do beyond closing in that case.
bool SendAll(int fd, std::string_view data);

// One parsed HTTP request head.
struct HttpRequest {
  std::string method;
  std::string path;  // query string stripped
};

// Reads from `fd` until the end of the request head (CRLFCRLF or LFLF,
// capped at `max_bytes`) — tolerating arbitrarily fragmented reads, since
// TCP makes no delivery-unit promises — and parses the request line.
// Returns false on EOF before a complete head, on a cap overflow, or on a
// malformed request line. The request body, if any, is not consumed.
bool ReadHttpRequestHead(int fd, HttpRequest* request,
                         size_t max_bytes = 16 * 1024);

// One response to serialize.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

// Renders status + headers + body as one HTTP/1.0 Connection: close
// response buffer.
std::string SerializeHttpResponse(const HttpResponse& response);

// The reason phrase line for the handful of statuses the embedded servers
// emit ("200 OK", "404 Not Found", ...).
const char* HttpStatusLine(int status);

}  // namespace wdr::obs

#endif  // WDR_OBS_HTTP_H_
