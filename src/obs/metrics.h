#ifndef WDR_OBS_METRICS_H_
#define WDR_OBS_METRICS_H_

#include <atomic>
#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace wdr::obs {

// Process-wide named metrics. The hot path is a single relaxed atomic
// operation per hit (counter increment, gauge store, histogram bucket
// bump); registration and snapshotting take a mutex, so instrument sites
// cache the returned reference (the WDR_COUNTER_* macros below do this
// with a function-local static). Metric names follow the scheme
// `wdr.<layer>.<name>`, e.g. "wdr.store.flat.scans".

// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket latency histogram over nanoseconds: bucket i counts values
// with bit_width(value) == i (exponential base-2 buckets), so 48 buckets
// span sub-nanosecond to ~3 days. The exact sum and count are kept
// alongside the buckets, so Mean() carries no bucketing error; quantiles
// are bucket-resolution (within 2x).
class Histogram {
 public:
  static constexpr int kBuckets = 48;

  void RecordNanos(uint64_t nanos) {
    int bucket = std::bit_width(nanos);
    if (bucket >= kBuckets) bucket = kBuckets - 1;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }
  void RecordSeconds(double seconds) {
    if (seconds < 0) seconds = 0;
    RecordNanos(static_cast<uint64_t>(seconds * 1e9));
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum_nanos() const {
    return sum_nanos_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
};

// Plain-value copy of one histogram, taken by Snapshot().
struct HistogramData {
  std::string name;
  std::array<uint64_t, Histogram::kBuckets> buckets{};
  uint64_t count = 0;
  uint64_t sum_nanos = 0;

  double MeanNanos() const {
    return count == 0 ? 0 : static_cast<double>(sum_nanos) /
                                static_cast<double>(count);
  }
  double MeanSeconds() const { return MeanNanos() / 1e9; }
  // Upper bound of the bucket where the cumulative count crosses `q`, in
  // nanoseconds. Locked-down edges: an empty histogram returns 0 for every
  // q; q <= 0 returns the smallest sample's bucket bound; q >= 1 returns
  // the largest sample's; mass in the overflow bucket (values of 2^46ns
  // ≈ 19.5h and up) reports that bucket's finite nominal bound, 2^47 - 1.
  double QuantileNanos(double q) const;
};

// Plain-value copy of the whole registry at one instant. Each value is an
// individual atomic load, so a snapshot taken concurrently with writers is
// internally consistent per metric (never torn), though metrics recorded
// between two loads may differ in age.
struct MetricsSnapshot {
  // Each section is sorted by name with digit runs compared numerically
  // ("worker.2" < "worker.10"), so snapshots — and everything rendered
  // from them (.stats, JSON, Prometheus text) — are deterministic-ordered
  // and diffable across runs.
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramData> histograms;

  // 0 when absent.
  uint64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;
  // nullptr when absent.
  const HistogramData* histogram(const std::string& name) const;

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  // Histograms serialize count/sum_nanos/mean_nanos plus non-zero buckets.
  std::string ToJson() const;
};

// Numeric-aware name ordering used by MetricsSnapshot: lexicographic,
// except maximal digit runs compare as integers. Exposed for tests and for
// other deterministic renderings.
bool NaturalNameLess(const std::string& a, const std::string& b);

// Renders a snapshot in the Prometheus text exposition format (version
// 0.0.4): counters become `<name>_total`, gauges keep their name, and each
// base-2 histogram becomes a Prometheus histogram in SECONDS — cumulative
// `_bucket{le="..."}` series over the power-of-two bounds plus `+Inf`,
// `_sum`, and `_count`. Metric names are sanitized to [a-zA-Z0-9_:].
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

// The process-wide registry. Get*() registers on first use and always
// returns the same object for the same name; returned references are
// stable for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace wdr::obs

// Cached-counter instrumentation helpers: one-time registry lookup, then a
// single relaxed atomic add per hit.
#define WDR_COUNTER_ADD(name, delta)                                       \
  do {                                                                     \
    static ::wdr::obs::Counter& wdr_counter_cached =                       \
        ::wdr::obs::MetricsRegistry::Get().GetCounter(name);               \
    wdr_counter_cached.Add(delta);                                         \
  } while (0)
#define WDR_COUNTER_INC(name) WDR_COUNTER_ADD(name, 1)

#endif  // WDR_OBS_METRICS_H_
