#include "obs/profile.h"

#include <algorithm>
#include <cstdio>

namespace wdr::obs {
namespace {

void CollectRows(const ProfileNode& node, int depth,
                 std::vector<std::pair<int, const ProfileNode*>>& rows) {
  rows.emplace_back(depth, &node);
  for (const auto& child : node.children) {
    CollectRows(*child, depth + 1, rows);
  }
}

std::string FormatSeconds(double seconds) {
  char buffer[32];
  if (seconds >= 1.0) {
    std::snprintf(buffer, sizeof(buffer), "%.3fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buffer, sizeof(buffer), "%.3fms", seconds * 1e3);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.0fus", seconds * 1e6);
  }
  return buffer;
}

void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

ProfileNode& ProfileNode::AddChild(std::string child_label) {
  children.push_back(std::make_unique<ProfileNode>(std::move(child_label)));
  return *children.back();
}

uint64_t ProfileNode::TotalScans() const {
  uint64_t total = scans;
  for (const auto& child : children) total += child->TotalScans();
  return total;
}

uint64_t ProfileNode::TotalTriples() const {
  uint64_t total = triples;
  for (const auto& child : children) total += child->TotalTriples();
  return total;
}

std::string ProfileNode::Render() const {
  std::vector<std::pair<int, const ProfileNode*>> rows;
  CollectRows(*this, 0, rows);
  size_t label_width = 0;
  for (const auto& [depth, node] : rows) {
    label_width = std::max(label_width,
                           node->label.size() + static_cast<size_t>(depth) * 2);
  }
  std::string out;
  for (const auto& [depth, node] : rows) {
    std::string line(static_cast<size_t>(depth) * 2, ' ');
    line += node->label;
    line.resize(label_width + 2, ' ');
    char stats[160];
    if (node->est_rows >= 0) {
      std::snprintf(stats, sizeof(stats),
                    "rows=%-8llu est=%-8.0f scans=%-8llu triples=%-10llu %s",
                    static_cast<unsigned long long>(node->rows),
                    node->est_rows, static_cast<unsigned long long>(node->scans),
                    static_cast<unsigned long long>(node->triples),
                    FormatSeconds(node->seconds).c_str());
    } else {
      std::snprintf(stats, sizeof(stats),
                    "rows=%-8llu scans=%-8llu triples=%-10llu %s",
                    static_cast<unsigned long long>(node->rows),
                    static_cast<unsigned long long>(node->scans),
                    static_cast<unsigned long long>(node->triples),
                    FormatSeconds(node->seconds).c_str());
    }
    line += stats;
    // Trim trailing spaces left by the %-8 paddings.
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out += line;
    out += '\n';
  }
  return out;
}

std::string ProfileNode::ToJson() const {
  std::string out = "{\"label\":\"";
  AppendEscaped(out, label);
  out += "\",\"rows\":" + std::to_string(rows) +
         ",\"triples\":" + std::to_string(triples) +
         ",\"scans\":" + std::to_string(scans) +
         ",\"seconds\":" + std::to_string(seconds);
  if (est_rows >= 0) out += ",\"est_rows\":" + std::to_string(est_rows);
  out += ",\"children\":[";
  bool first = true;
  for (const auto& child : children) {
    if (!first) out += ',';
    first = false;
    out += child->ToJson();
  }
  out += "]}";
  return out;
}

}  // namespace wdr::obs
