#ifndef WDR_OBS_QUERY_LOG_H_
#define WDR_OBS_QUERY_LOG_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace wdr::obs {

// Structured per-query log: one record per executed query, appended by
// ReasoningStore::Query and kept in a process-wide ring buffer. This is
// the machine-readable complement to the trace buffer — traces answer
// "where did this query spend its time", the query log answers "what
// queries ran, in which mode, at what cost" and is the training feed for
// the cost-model/auto-mode work (analysis::CostProfileFromQueryLog).

// One executed query. Fields with value -1 (signed) mean "not known for
// this execution path" — e.g. est_rows is only available in plan mode.
struct QueryLogRecord {
  // Stamped by QueryLog::Append (monotonically increasing, 1-based).
  uint64_t id = 0;
  // Trace tree id when tracing was on during the query, else 0. Join key
  // into the trace export (`{"trace":N,...}` lines).
  uint64_t trace_id = 0;

  // Canonical query key: the query text with whitespace runs collapsed,
  // truncated to a bounded length. Stable across formatting differences,
  // so it groups repeats of the same query.
  std::string query;

  std::string mode;     // ReasoningModeName: none|saturation|...
  std::string backend;  // storage backend name
  bool plan = false;      // compiled through wdr::exec
  bool encoding = false;  // hierarchy-aware id encoding active

  // Reformulation shape (reformulation mode; defaults elsewhere).
  uint64_t union_size = 1;       // UCQ disjuncts evaluated
  uint64_t rewrite_steps = 0;    // rewrite iterations
  uint64_t pruned_cqs = 0;       // subsumption-pruned disjuncts
  uint64_t range_collapses = 0;  // hierarchy-encoding interval collapses

  // Estimated reformulation fan-out (Reformulator::EstimateFanout) the
  // auto-mode selector computed for this query; 0 when no probe ran. The
  // per-mode cost models divide observed wall time by this, so it is
  // logged in every routed mode, not just reformulation.
  uint64_t fanout = 0;
  // True when the mode above was chosen by the kAuto strategy selector
  // rather than configured statically. The record's `mode` is always the
  // mode that actually evaluated — that keeps the query log a valid
  // training feed for the selector's own cost model.
  bool via_auto = false;

  // Plan summary: estimated-vs-actual cardinality. est_rows is the sum of
  // the planner's per-branch row estimates (-1 when not planned); rows is
  // the actual answer count.
  int64_t est_rows = -1;
  uint64_t rows = 0;

  // Cross-branch scan-cache effectiveness for this query's union.
  uint64_t scan_cache_hits = 0;
  uint64_t scan_cache_misses = 0;

  uint64_t wall_nanos = 0;  // end-to-end, parse included
  // Stamped by Append: wall_nanos >= the slow-query threshold.
  bool slow = false;

  bool ok = true;
  std::string error;  // Status::ToString() when !ok

  // One JSON object (no trailing newline), e.g.:
  //   {"id":1,"trace":3,"mode":"reformulation","backend":"ordered",
  //    "plan":true,"encoding":false,"union_size":14,...,"query":"..."}
  std::string ToJsonLine() const;
};

// Process-wide ring buffer of QueryLogRecords. Appends take a mutex (the
// query path already did orders of magnitude more work); capacity and the
// slow-query threshold are runtime-tunable. Counters:
//   wdr.querylog.records  — total appends
//   wdr.querylog.dropped  — records overwritten before export
//   wdr.querylog.slow     — records at or above the slow threshold
class QueryLog {
 public:
  static QueryLog& Get();

  // Stamps `record.id` and `record.slow`, then stores it (overwriting the
  // oldest record when full). Returns the stamped id.
  uint64_t Append(QueryLogRecord record);

  // Buffered records, oldest first.
  std::vector<QueryLogRecord> Records() const;

  // Writes one JSON object per line, oldest first; returns line count.
  size_t Export(std::ostream& os) const;

  void Clear();

  // Ring capacity (values < 1 clamp to 1; shrinking keeps the newest).
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  // Records with wall_nanos >= threshold are flagged slow and counted in
  // wdr.querylog.slow. 0 disables flagging (the default).
  void SetSlowThresholdNanos(uint64_t nanos);
  uint64_t slow_threshold_nanos() const;

 private:
  QueryLog() = default;
  struct Impl;
  Impl& impl() const;
};

// Canonicalizes query text into a log key: collapses whitespace runs to
// single spaces, trims, and truncates to `max_len` (appending "..." when
// truncated). Exposed for tests.
std::string CanonicalQueryKey(std::string_view text, size_t max_len = 512);

}  // namespace wdr::obs

#endif  // WDR_OBS_QUERY_LOG_H_
