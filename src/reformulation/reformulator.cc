#include "reformulation/reformulator.h"

#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "reasoning/saturation.h"
#include "reformulation/subsumption.h"

namespace wdr::reformulation {
namespace {

using query::BgpQuery;
using query::PatternTerm;
using query::TriplePattern;
using query::UnionQuery;
using query::VarId;
using rdf::TermId;

// Replaces variable `var` with constant `value` throughout `q`'s atoms and
// records the binding so projected occurrences still produce the value.
BgpQuery Substitute(const BgpQuery& q, VarId var, TermId value) {
  BgpQuery out = q;
  for (TriplePattern& atom : out.mutable_atoms()) {
    for (PatternTerm* pos : {&atom.s, &atom.p, &atom.o}) {
      if (pos->is_var() && pos->var == var) {
        *pos = PatternTerm::Constant(value);
      }
    }
  }
  out.Preset(var, value);
  return out;
}

// Replaces atom `index` of `q` with `replacement`.
BgpQuery ReplaceAtom(const BgpQuery& q, size_t index,
                     const TriplePattern& replacement) {
  BgpQuery out = q;
  out.mutable_atoms()[index] = replacement;
  return out;
}

// Generates the one-step rewritings of atom `index` in `q`.
class AtomRewriter {
 public:
  AtomRewriter(const schema::Schema& schema, const schema::Vocabulary& vocab,
               const rdf::HierEncoding* encoding, size_t* fresh_counter)
      : schema_(schema),
        vocab_(vocab),
        encoding_(encoding),
        fresh_counter_(fresh_counter) {}

  // Interval collapses performed across all Rewrite calls so far.
  size_t range_collapses() const { return range_collapses_; }

  template <typename EmitFn>
  void Rewrite(const BgpQuery& q, size_t index, EmitFn&& emit) const {
    const TriplePattern& atom = q.atoms()[index];

    // Range atoms are terminal: a range already denotes a whole closure,
    // and the schema rules it stands for have been applied at emission.
    if (atom.s.is_range() || atom.p.is_range() || atom.o.is_range()) return;

    if (atom.p.is_const() && atom.p.id == vocab_.type) {
      if (atom.o.is_const()) {
        RewriteTypeAtom(q, index, atom, atom.o.id, emit);
      } else {
        // Ground the class variable over the schema's classes; the
        // resulting constant-class atoms are rewritten in later rounds.
        for (TermId c : schema_.classes()) {
          BgpQuery grounded = Substitute(q, atom.o.var, c);
          emit(std::move(grounded));
        }
      }
      return;
    }

    if (atom.p.is_const()) {
      // Hierarchy-encoded collapse: when p's subproperty closure sits on
      // one contiguous id interval, the whole subproperty union becomes a
      // single range-constrained atom. Subproperty rewriting is the only
      // rule firing on a non-type atom, so the range branch is complete on
      // its own (the interval includes p itself).
      if (const rdf::HierInterval* iv = PropertyIntervalFor(atom.p.id)) {
        ++range_collapses_;
        emit(ReplaceAtom(q, index,
                         TriplePattern{atom.s, PatternTerm::Range(iv->lo, iv->hi),
                                       atom.o}));
        return;
      }
      // (s p o) -> (s p1 o) for strict subproperties p1 of p.
      for (TermId p1 : schema_.SubPropertiesOf(atom.p.id)) {
        if (p1 == atom.p.id) continue;
        emit(ReplaceAtom(q, index, TriplePattern{atom.s,
                                                 PatternTerm::Constant(p1),
                                                 atom.o}));
      }
      return;
    }

    // Property-position variable: ground over schema properties + rdf:type.
    for (TermId p : schema_.properties()) {
      if (vocab_.IsSchemaProperty(p)) continue;  // restriction, see header
      emit(Substitute(q, atom.p.var, p));
    }
    emit(Substitute(q, atom.p.var, vocab_.type));
  }

 private:
  template <typename EmitFn>
  void RewriteTypeAtom(const BgpQuery& q, size_t index,
                       const TriplePattern& atom, TermId c,
                       EmitFn&& emit) const {
    // Hierarchy-encoded collapse: when c's subclass closure sits on one
    // contiguous id interval, the rdfs9 union over strict subclasses
    // becomes a single range-constrained atom. Unlike the subproperty
    // case, subclasses can trigger further rules (rdfs2/rdfs3 on a
    // subclass of c), and the range atom is terminal — so the domain and
    // range rewritings must be emitted here for the *whole closure*, not
    // just for c (the fixpoint would otherwise have reached them through
    // the enumerated subclass branches).
    if (const rdf::HierInterval* iv = ClassIntervalFor(c)) {
      ++range_collapses_;
      emit(ReplaceAtom(q, index,
                       TriplePattern{atom.s, atom.p,
                                     PatternTerm::Range(iv->lo, iv->hi)}));
      for (TermId c1 : schema_.SubClassesOf(c)) {
        EmitDomainRange(q, index, atom, c1, emit);
      }
      return;
    }
    // rdfs9 backward: strict subclasses.
    for (TermId c1 : schema_.SubClassesOf(c)) {
      if (c1 == c) continue;
      emit(ReplaceAtom(
          q, index,
          TriplePattern{atom.s, atom.p, PatternTerm::Constant(c1)}));
    }
    EmitDomainRange(q, index, atom, c, emit);
  }

  // rdfs2/rdfs3 backward: one-step domain and range rewritings of
  // (s rdf:type c).
  template <typename EmitFn>
  void EmitDomainRange(const BgpQuery& q, size_t index,
                       const TriplePattern& atom, TermId c,
                       EmitFn&& emit) const {
    // rdfs2 backward: properties with domain c.
    for (TermId p : schema_.PropertiesWithDomain(c)) {
      BgpQuery out = q;
      VarId fresh = NewFreshVar(out);
      out.mutable_atoms()[index] =
          TriplePattern{atom.s, PatternTerm::Constant(p),
                        PatternTerm::Variable(fresh)};
      emit(std::move(out));
    }
    // rdfs3 backward: properties with range c.
    for (TermId p : schema_.PropertiesWithRange(c)) {
      BgpQuery out = q;
      VarId fresh = NewFreshVar(out);
      out.mutable_atoms()[index] =
          TriplePattern{PatternTerm::Variable(fresh),
                        PatternTerm::Constant(p), atom.s};
      emit(std::move(out));
    }
  }

  // The class (property) interval to collapse onto, or null when the
  // encoding is absent, the node is not tree-embeddable, or the closure is
  // trivial (width 1 — a range gains nothing over the point atom).
  const rdf::HierInterval* ClassIntervalFor(TermId c) const {
    if (encoding_ == nullptr) return nullptr;
    const rdf::HierInterval* iv = encoding_->ClassInterval(c);
    return (iv != nullptr && iv->valid && iv->width() >= 2) ? iv : nullptr;
  }
  const rdf::HierInterval* PropertyIntervalFor(TermId p) const {
    if (encoding_ == nullptr) return nullptr;
    const rdf::HierInterval* iv = encoding_->PropertyInterval(p);
    return (iv != nullptr && iv->valid && iv->width() >= 2) ? iv : nullptr;
  }

  VarId NewFreshVar(BgpQuery& q) const {
    return q.AddVar("_ref" + std::to_string((*fresh_counter_)++));
  }

  const schema::Schema& schema_;
  const schema::Vocabulary& vocab_;
  const rdf::HierEncoding* encoding_;  // may be null
  size_t* fresh_counter_;
  // mutable: Rewrite is logically const (pure emission), the collapse
  // count is an observation about it.
  mutable size_t range_collapses_ = 0;
};

// Saturating arithmetic for fan-out estimates: products over atoms can
// overflow size_t long before the rewriting itself would hit its CQ cap.
constexpr size_t kFanoutCap = size_t{1} << 60;

size_t SatAdd(size_t a, size_t b) {
  return (a > kFanoutCap - b) ? kFanoutCap : a + b;
}
size_t SatMul(size_t a, size_t b) {
  if (a == 0 || b == 0) return 0;
  return (a > kFanoutCap / b) ? kFanoutCap : a * b;
}

// Memo key for a BGP. CanonicalKey renames variables positionally, so two
// queries that differ only in variable *names* would collide — append the
// projection names (result-set headers travel with the memoized branches)
// and the distinct flag, which CanonicalKey does not cover.
std::string MemoKey(const BgpQuery& q) {
  std::string key = q.CanonicalKey();
  key += q.distinct() ? "|d1" : "|d0";
  for (const std::string& name : q.ProjectionNames()) {
    key += '|';
    key += name;
  }
  return key;
}

}  // namespace

Result<UnionQuery> Reformulator::Reformulate(const BgpQuery& q,
                                             ReformulationStats* stats) const {
  std::string memo_key = MemoKey(q);
  if (auto it = memo_.find(memo_key); it != memo_.end()) {
    WDR_COUNTER_INC("wdr.reformulation.memo_hits");
    if (stats != nullptr) *stats = it->second.second;
    return it->second.first;
  }

  size_t fresh_counter = 0;
  AtomRewriter rewriter(*schema_, vocab_, options_.encoding, &fresh_counter);

  UnionQuery result;
  std::unordered_set<std::string> seen;
  std::deque<size_t> frontier;  // indexes into result.branches()

  auto add = [&](BgpQuery candidate) -> Status {
    std::string key = candidate.CanonicalKey();
    if (!seen.insert(std::move(key)).second) return Status::Ok();
    if (result.size() >= options_.max_conjunctive_queries) {
      return ResourceExhaustedError(
          "reformulation exceeded " +
          std::to_string(options_.max_conjunctive_queries) +
          " conjunctive queries");
    }
    frontier.push_back(result.size());
    result.AddBranch(std::move(candidate));
    return Status::Ok();
  };

  WDR_RETURN_IF_ERROR(add(q));

  size_t rewrite_steps = 0;
  while (!frontier.empty()) {
    size_t current = frontier.front();
    frontier.pop_front();
    // Branch storage is only appended to, so indexing stays valid; copy the
    // CQ because `add` may reallocate the branch vector.
    BgpQuery cq = result.branches()[current];
    Status status = Status::Ok();
    for (size_t i = 0; i < cq.atoms().size() && status.ok(); ++i) {
      rewriter.Rewrite(cq, i, [&](BgpQuery candidate) {
        ++rewrite_steps;
        if (status.ok()) status = add(std::move(candidate));
      });
    }
    WDR_RETURN_IF_ERROR(status);
  }

  size_t pruned = 0;
  if (options_.minimize) result = MinimizeUnion(result, &pruned);

  WDR_COUNTER_INC("wdr.reformulation.runs");
  WDR_COUNTER_ADD("wdr.reformulation.cqs", result.size());
  WDR_COUNTER_ADD("wdr.reformulation.rewrite_steps", rewrite_steps);
  WDR_COUNTER_ADD("wdr.reformulation.pruned_cqs", pruned);
  WDR_COUNTER_ADD("wdr.reformulation.range_collapses",
                  rewriter.range_collapses());

  ReformulationStats run_stats;
  run_stats.conjunctive_queries = result.size();
  run_stats.total_atoms = result.TotalAtoms();
  run_stats.rewrite_steps = rewrite_steps;
  run_stats.pruned_cqs = pruned;
  run_stats.range_collapses = rewriter.range_collapses();
  if (stats != nullptr) *stats = run_stats;
  if (memo_.size() < kMemoCapacity) {
    memo_.emplace(std::move(memo_key), std::make_pair(result, run_stats));
  }
  return result;
}

FanoutEstimate Reformulator::EstimateFanout(const BgpQuery& q) const {
  if (auto it = memo_.find(MemoKey(q)); it != memo_.end()) {
    FanoutEstimate exact;
    exact.branches = it->second.second.conjunctive_queries;
    exact.range_collapses = it->second.second.range_collapses;
    exact.exact = true;
    return exact;
  }

  const rdf::HierEncoding* encoding = options_.encoding;
  auto class_collapses = [&](TermId c) {
    if (encoding == nullptr) return false;
    const rdf::HierInterval* iv = encoding->ClassInterval(c);
    return iv != nullptr && iv->valid && iv->width() >= 2;
  };
  auto property_collapses = [&](TermId p) {
    if (encoding == nullptr) return false;
    const rdf::HierInterval* iv = encoding->PropertyInterval(p);
    return iv != nullptr && iv->valid && iv->width() >= 2;
  };

  FanoutEstimate est;

  // Rewriting-set size of one non-type atom with constant property p:
  // its subproperty closure enumerated, or one range atom when the
  // encoding collapses it.
  auto property_atom = [&](TermId p) -> size_t {
    if (property_collapses(p)) {
      est.range_collapses = SatAdd(est.range_collapses, 1);
      return 1;
    }
    return schema_->SubPropertiesOf(p).empty()
               ? 1
               : schema_->SubPropertiesOf(p).size();
  };

  // Rewriting-set size of (s rdf:type c): the subclass closure (collapsed
  // to a range atom under the encoding), plus the rdfs2/rdfs3 riders —
  // domain/range properties of every subclass, each dragging in its own
  // subproperty closure. The riders are emitted for the whole closure
  // even when the class enumeration collapses (range atoms are terminal),
  // mirroring AtomRewriter::RewriteTypeAtom exactly.
  auto type_atom = [&](TermId c) -> size_t {
    size_t n;
    if (class_collapses(c)) {
      est.range_collapses = SatAdd(est.range_collapses, 1);
      n = 1;
    } else {
      n = schema_->SubClassesOf(c).empty() ? 1
                                           : schema_->SubClassesOf(c).size();
    }
    for (TermId c1 : schema_->SubClassesOf(c)) {
      for (TermId p : schema_->PropertiesWithDomain(c1)) {
        n = SatAdd(n, property_atom(p));
      }
      for (TermId p : schema_->PropertiesWithRange(c1)) {
        n = SatAdd(n, property_atom(p));
      }
    }
    return n;
  };

  for (const TriplePattern& atom : q.atoms()) {
    if (atom.s.is_range() || atom.p.is_range() || atom.o.is_range()) continue;
    size_t n = 1;
    if (atom.p.is_const() && atom.p.id == vocab_.type) {
      if (atom.o.is_const()) {
        n = type_atom(atom.o.id);
      } else {
        // Class variable: grounded over every schema class, each grounding
        // rewritten as a constant-class type atom; the variable form
        // itself stays a branch.
        n = 1;
        for (TermId c : schema_->classes()) n = SatAdd(n, type_atom(c));
      }
    } else if (atom.p.is_const()) {
      n = property_atom(atom.p.id);
    } else {
      // Property variable: grounded over every non-constraint schema
      // property plus rdf:type, each continuing with its own rewriting.
      n = 1;
      for (TermId p : schema_->properties()) {
        if (vocab_.IsSchemaProperty(p)) continue;
        n = SatAdd(n, property_atom(p));
      }
      n = SatAdd(n, atom.o.is_const() ? type_atom(atom.o.id) : size_t{1});
    }
    est.branches = SatMul(est.branches, n);
  }
  return est;
}

FanoutEstimate Reformulator::EstimateFanout(const UnionQuery& q) const {
  FanoutEstimate total;
  total.branches = 0;
  total.exact = true;
  for (const BgpQuery& branch : q.branches()) {
    FanoutEstimate e = EstimateFanout(branch);
    total.branches = SatAdd(total.branches, e.branches);
    total.range_collapses = SatAdd(total.range_collapses, e.range_collapses);
    total.exact = total.exact && e.exact;
  }
  if (total.branches == 0) total.branches = 1;
  return total;
}

Result<UnionQuery> Reformulator::Reformulate(const UnionQuery& q,
                                             ReformulationStats* stats) const {
  UnionQuery result;
  // Solution modifiers are query-level and survive rewriting untouched.
  result.SetAsk(q.ask());
  result.SetLimit(q.limit());
  result.SetOffset(q.offset());
  ReformulationStats total;
  for (const BgpQuery& branch : q.branches()) {
    ReformulationStats branch_stats;
    WDR_ASSIGN_OR_RETURN(UnionQuery branch_ref,
                         Reformulate(branch, &branch_stats));
    for (const BgpQuery& cq : branch_ref.branches()) {
      result.AddBranch(cq);
    }
    total.conjunctive_queries += branch_stats.conjunctive_queries;
    total.total_atoms += branch_stats.total_atoms;
    total.rewrite_steps += branch_stats.rewrite_steps;
    total.pruned_cqs += branch_stats.pruned_cqs;
    total.range_collapses += branch_stats.range_collapses;
  }
  if (stats != nullptr) *stats = total;
  return result;
}

size_t CloseSchema(rdf::Graph& graph, const schema::Vocabulary& vocab) {
  rdf::TripleStore schema_triples;
  graph.store().Match(0, 0, 0, [&](const rdf::Triple& t) {
    if (vocab.IsSchemaProperty(t.p)) schema_triples.Insert(t);
  });
  reasoning::Saturator saturator(vocab, &graph.dict());
  rdf::TripleStore closed = saturator.Saturate(schema_triples);
  size_t added = 0;
  closed.Match(0, 0, 0, [&](const rdf::Triple& t) {
    if (graph.store().Insert(t)) ++added;
  });
  return added;
}

}  // namespace wdr::reformulation
