#ifndef WDR_REFORMULATION_REFORMULATOR_H_
#define WDR_REFORMULATION_REFORMULATOR_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/status.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/hier_encoding.h"
#include "schema/schema.h"
#include "schema/vocabulary.h"

namespace wdr::reformulation {

struct ReformulationOptions {
  // Safety valve: reformulation can be exponential in the number of atoms
  // (the paper: "syntactically larger reformulated queries"). Exceeding the
  // cap yields ResourceExhausted rather than unbounded memory use.
  size_t max_conjunctive_queries = 200000;
  // Prune disjuncts subsumed by other disjuncts (see subsumption.h). Costs
  // O(|UCQ|^2) homomorphism checks at rewrite time, pays back at every
  // evaluation; ablated by bench_reformulation.
  bool minimize = false;
  // Hierarchy-aware encoding (LiteMat) the current dictionary id space was
  // permuted under, or null when ids are encoding-free. When a queried
  // class (property) has a valid interval, its subclass (subproperty)
  // rewriting union collapses to a single range-constrained atom; invalid
  // nodes fall back to the classic per-node enumeration. The caller must
  // guarantee the encoding matches the query's and schema's id space
  // (same schema version).
  const rdf::HierEncoding* encoding = nullptr;
};

// A cheap prediction of a query's reformulation size, computed from the
// schema closures alone — no branch is ever materialized. The auto-mode
// strategy selector calls this on every query, so it must stay O(closure
// sizes), not O(|UCQ|).
struct FanoutEstimate {
  // Estimated |UCQ| (conjunctive queries, original included): the product
  // over atoms of each atom's rewriting-set size. An upper bound — the
  // fixpoint's canonical-form dedup can only shrink it. Saturating.
  size_t branches = 1;
  // Interval collapses the hierarchy encoding would apply (enumerations
  // replaced by one range atom); already reflected in `branches`.
  size_t range_collapses = 0;
  // True when the estimate was read off a memoized rewriting and is the
  // exact post-dedup size.
  bool exact = false;
};

struct ReformulationStats {
  size_t conjunctive_queries = 0;  // |UCQ| including the original query
  size_t total_atoms = 0;
  size_t rewrite_steps = 0;  // one-step rewritings applied (pre-dedup)
  size_t pruned_cqs = 0;     // disjuncts removed by minimization
  // Hierarchy-encoding interval collapses: subclass/subproperty unions
  // replaced by a single range-constrained atom (0 when the encoding is
  // off — each collapse stands for a whole enumerated branch family).
  size_t range_collapses = 0;
};

// Query reformulation for the RDFS fragment (§II-B, following the EDBT'13
// algorithm the paper's Fig. 3 is drawn from). Turns a BGP query q into a
// union of BGP queries q_ref with the defining property
//
//     q_ref(G) = q(G∞)
//
// for any graph G whose *schema triples are closed* (see CloseSchema below;
// schema closure is tiny and is maintained eagerly by systems implementing
// reformulation — the saturation/reformulation trade-off concerns the
// instance-level entailment, which dwarfs it).
//
// The rewriting is a fixpoint over a set of CQs. One step rewrites a single
// atom, possibly substituting a query variable with a schema constant
// (needed when variables occur in class or property positions — the
// "blurred" RDF fragment of the paper's §II-B):
//
//   (s rdf:type c)   ->  (s rdf:type c1)     for c1 a strict subclass of c
//   (s rdf:type c)   ->  (s p _f)            for p with domain c
//   (s rdf:type c)   ->  (_f p s)            for p with range c
//   (s p o), p ≠ type -> (s p1 o)            for p1 a strict subproperty of p
//   (s rdf:type ?c)  ->  σ{?c=c} (s rdf:type c)   for each schema class c
//   (s ?p o)         ->  σ{?p=p} (s p o)     for each schema property p,
//                                            and for p = rdf:type
//
// Fixpoint iteration composes these (e.g. subclass then domain then
// subproperty), and duplicate CQs are pruned via a canonical form.
//
// Known restriction (shared with the literature the paper cites): the
// rewriting assumes schema triples are not themselves derivable from
// instance triples (no property is declared a subproperty of an RDFS
// constraint property).
// A Reformulator instance is a snapshot of ONE schema version: it holds the
// Schema's closures (and optionally a hierarchy encoding) by reference and
// memoizes per-query rewriting results against them. Owners tracking a
// schema version counter (see store::ReasoningStore) must drop and rebuild
// the instance when the counter moves — that one invalidation point covers
// the closures, the encoding, and the memo alike. Not thread-safe: the memo
// mutates under const Reformulate.
class Reformulator {
 public:
  Reformulator(const schema::Schema& schema, const schema::Vocabulary& vocab,
               ReformulationOptions options = {})
      : schema_(&schema), vocab_(vocab), options_(options) {}

  // Reformulates one BGP query into a UCQ. The first branch is always the
  // original query.
  Result<query::UnionQuery> Reformulate(const query::BgpQuery& q,
                                        ReformulationStats* stats = nullptr) const;

  // Reformulates each branch and concatenates the results.
  Result<query::UnionQuery> Reformulate(const query::UnionQuery& q,
                                        ReformulationStats* stats = nullptr) const;

  // Estimates the fan-out Reformulate(q) would produce, without expanding:
  // exact (from the memo) when this query was already rewritten under the
  // current schema version, an O(closure) upper bound otherwise.
  FanoutEstimate EstimateFanout(const query::BgpQuery& q) const;
  // Sum over branches; exact iff every branch hit the memo.
  FanoutEstimate EstimateFanout(const query::UnionQuery& q) const;

 private:
  // Bounds the per-instance memo (each entry holds a whole UCQ, which can
  // be large for deep hierarchies). Benches and repeated dashboards loop
  // over far fewer distinct queries than this.
  static constexpr size_t kMemoCapacity = 256;

  const schema::Schema* schema_;  // not owned
  schema::Vocabulary vocab_;
  ReformulationOptions options_;
  // Canonical query key -> reformulated UCQ + its stats. Lives exactly as
  // long as this instance, i.e. one schema version.
  mutable std::unordered_map<std::string,
                             std::pair<query::UnionQuery, ReformulationStats>>
      memo_;
};

// Saturates the schema component of `graph` in place: extracts the triples
// whose property is an RDFS constraint property, closes them under the
// entailment rules (rdfs5/rdfs11 transitivity), and inserts the derived
// schema triples back. Returns the number of triples added. Reformulation's
// correctness contract q_ref(G) = q(G∞) is stated for schema-closed graphs.
size_t CloseSchema(rdf::Graph& graph, const schema::Vocabulary& vocab);

}  // namespace wdr::reformulation

#endif  // WDR_REFORMULATION_REFORMULATOR_H_
