#include "reformulation/subsumption.h"

#include <optional>
#include <vector>

namespace wdr::reformulation {
namespace {

using query::BgpQuery;
using query::PatternTerm;
using query::TriplePattern;
using query::VarId;
using rdf::TermId;

// A term of the subsumption problem: constant, variable, or id range
// (hierarchy-encoded atoms). A range stands for a fixed set of ids, not a
// variable: it unifies only with the identical range, never binds, and a
// general-side variable may not map onto it (a variable maps to ONE
// specific-side term; a range denotes many).
struct STerm {
  enum class Kind : uint8_t { kConst, kVar, kRange };
  Kind kind = Kind::kVar;
  uint32_t id = 0;
  uint32_t id2 = 0;  // kRange upper bound

  friend bool operator==(const STerm&, const STerm&) = default;
};

STerm MakeTerm(const PatternTerm& t) {
  if (t.is_const()) return STerm{STerm::Kind::kConst, t.id, 0};
  if (t.is_range()) return STerm{STerm::Kind::kRange, t.id, t.id2};
  return STerm{STerm::Kind::kVar, t.var, 0};
}

// The answer-tuple term of projection position `var`: a preset variable
// counts as its constant (that is what the row will contain).
STerm HeadTerm(const BgpQuery& q, VarId var) {
  auto it = q.preset().find(var);
  if (it != q.preset().end()) return STerm{STerm::Kind::kConst, it->second, 0};
  return STerm{STerm::Kind::kVar, var, 0};
}

// Variable mapping from `general`'s variables to specific-side terms.
class Mapping {
 public:
  explicit Mapping(size_t var_count) : slots_(var_count) {}

  // Unifies general-side `g` with specific-side `s`; records an undo entry.
  bool Unify(const STerm& g, const STerm& s,
             std::vector<VarId>& bound_here) {
    if (g.kind != STerm::Kind::kVar) return g == s;
    // A variable maps only to a constant or another variable; mapping a
    // variable onto a range would equate "one value" with "any value in
    // the interval" and wrongly conclude subsumption.
    if (s.kind == STerm::Kind::kRange) return false;
    std::optional<STerm>& slot = slots_[g.id];
    if (!slot.has_value()) {
      slot = s;
      bound_here.push_back(g.id);
      return true;
    }
    return *slot == s;
  }

  void Undo(const std::vector<VarId>& bound_here) {
    for (VarId v : bound_here) slots_[v].reset();
  }

 private:
  std::vector<std::optional<STerm>> slots_;
};

// Backtracking search: map every atom of `general` onto some atom of
// `specific` consistently with `mapping`.
bool MapAtoms(const BgpQuery& general, const BgpQuery& specific,
              size_t atom_index, Mapping& mapping) {
  if (atom_index == general.atoms().size()) return true;
  const TriplePattern& g = general.atoms()[atom_index];
  for (const TriplePattern& s : specific.atoms()) {
    std::vector<VarId> bound_here;
    bool ok = mapping.Unify(MakeTerm(g.s), MakeTerm(s.s), bound_here) &&
              mapping.Unify(MakeTerm(g.p), MakeTerm(s.p), bound_here) &&
              mapping.Unify(MakeTerm(g.o), MakeTerm(s.o), bound_here);
    if (ok && MapAtoms(general, specific, atom_index + 1, mapping)) {
      return true;
    }
    mapping.Undo(bound_here);
  }
  return false;
}

}  // namespace

bool Subsumes(const BgpQuery& general, const BgpQuery& specific) {
  if (general.projection().size() != specific.projection().size()) {
    return false;
  }
  Mapping mapping(general.var_count());
  std::vector<VarId> head_bound;
  for (size_t i = 0; i < general.projection().size(); ++i) {
    STerm g = HeadTerm(general, general.projection()[i]);
    STerm s = HeadTerm(specific, specific.projection()[i]);
    if (!mapping.Unify(g, s, head_bound)) return false;
  }
  return MapAtoms(general, specific, 0, mapping);
}

query::UnionQuery MinimizeUnion(const query::UnionQuery& ucq,
                                size_t* pruned) {
  std::vector<const BgpQuery*> survivors;
  for (const BgpQuery& candidate : ucq.branches()) {
    bool subsumed = false;
    for (const BgpQuery* survivor : survivors) {
      if (Subsumes(*survivor, candidate)) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) continue;
    // The new disjunct may in turn subsume earlier survivors.
    std::vector<const BgpQuery*> kept;
    for (const BgpQuery* survivor : survivors) {
      if (!Subsumes(candidate, *survivor)) kept.push_back(survivor);
    }
    kept.push_back(&candidate);
    survivors = std::move(kept);
  }
  query::UnionQuery result;
  for (const BgpQuery* survivor : survivors) result.AddBranch(*survivor);
  if (pruned != nullptr) *pruned = ucq.size() - result.size();
  return result;
}

}  // namespace wdr::reformulation
