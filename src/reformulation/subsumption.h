#ifndef WDR_REFORMULATION_SUBSUMPTION_H_
#define WDR_REFORMULATION_SUBSUMPTION_H_

#include <cstddef>

#include "query/query.h"

namespace wdr::reformulation {

// Conjunctive-query subsumption and UCQ minimization.
//
// Reformulation produces unions with redundant disjuncts: grounding a
// class/property variable yields CQs whose answers the original (variable)
// CQ already returns, and diamond hierarchies yield rewritings reachable
// along multiple paths. Evaluating redundant disjuncts is pure waste — the
// classical fix is to prune every CQ subsumed by another disjunct
// (evaluation of "large, complex reformulated queries" is the open issue
// of §II-D; minimization is the first lever).
//
// `general` subsumes `specific` iff there is a homomorphism h from the
// terms of `general` to the terms of `specific` such that
//   - h is the identity on constants,
//   - h maps the answer tuple of `general` onto the answer tuple of
//     `specific` position-wise (a preset variable counts as its constant),
//   - h maps every atom of `general` onto some atom of `specific`.
// Then every answer of `specific` over any graph is an answer of
// `general`, so `specific` can be dropped from a union containing both.
bool Subsumes(const query::BgpQuery& general, const query::BgpQuery& specific);

// Returns `ucq` minus the disjuncts subsumed by another disjunct (among
// mutually-subsuming duplicates the earliest survives). The result is
// answer-equivalent to the input over every graph (property-tested).
// `pruned` (optional) receives the number of dropped disjuncts.
query::UnionQuery MinimizeUnion(const query::UnionQuery& ucq,
                                size_t* pruned = nullptr);

}  // namespace wdr::reformulation

#endif  // WDR_REFORMULATION_SUBSUMPTION_H_
