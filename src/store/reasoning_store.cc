#include "store/reasoning_store.h"

#include "backward/backward_evaluator.h"
#include "common/timer.h"
#include "io/ntriples.h"
#include "io/turtle.h"
#include "query/sparql_parser.h"
#include "reasoning/explain.h"
#include "reasoning/saturation.h"
#include "store/update_parser.h"

namespace wdr::store {

const char* ReasoningModeName(ReasoningMode mode) {
  switch (mode) {
    case ReasoningMode::kNone:
      return "none";
    case ReasoningMode::kSaturation:
      return "saturation";
    case ReasoningMode::kReformulation:
      return "reformulation";
    case ReasoningMode::kBackward:
      return "backward";
  }
  return "unknown";
}

ReasoningStore::ReasoningStore(ReasoningStoreOptions options)
    : options_(options),
      graph_(options.backend),
      vocab_(schema::Vocabulary::Intern(graph_.dict())) {
  if (options_.mode == ReasoningMode::kSaturation) {
    saturated_.emplace(graph_, vocab_);
  }
}

size_t ReasoningStore::effective_size() const {
  return saturated_.has_value() ? saturated_->closure().size()
                                : graph_.size();
}

void ReasoningStore::SetMode(ReasoningMode mode) {
  if (mode == options_.mode) return;
  options_.mode = mode;
  if (mode == ReasoningMode::kSaturation) {
    saturated_.emplace(graph_, vocab_);
  } else {
    saturated_.reset();
  }
}

void ReasoningStore::SetBackend(rdf::StorageBackend backend) {
  if (backend == options_.backend) return;
  options_.backend = backend;
  graph_.SetBackend(backend);
  // The closure store follows the base graph's backend; rebuild it.
  if (saturated_.has_value()) saturated_.emplace(graph_, vocab_);
}

void ReasoningStore::RecloseSchema() {
  for (const rdf::Triple& t : derived_schema_) graph_.Erase(t);
  derived_schema_.clear();

  rdf::TripleStore schema_triples;
  graph_.store().Match(0, 0, 0, [&](const rdf::Triple& t) {
    if (vocab_.IsSchemaProperty(t.p)) schema_triples.Insert(t);
  });
  reasoning::Saturator saturator(vocab_, &graph_.dict());
  rdf::TripleStore closed = saturator.Saturate(schema_triples);
  closed.Match(0, 0, 0, [&](const rdf::Triple& t) {
    if (graph_.Insert(t)) derived_schema_.push_back(t);
  });
}

void ReasoningStore::OnUpdate(bool schema_changed) {
  if (schema_changed) {
    RecloseSchema();
    schema_cache_.reset();
  }
}

const schema::Schema& ReasoningStore::CachedSchema() {
  if (!schema_cache_.has_value()) {
    schema_cache_ = schema::Schema::FromGraph(graph_, vocab_);
  }
  return *schema_cache_;
}

Result<size_t> ReasoningStore::LoadTurtle(std::string_view text) {
  WDR_ASSIGN_OR_RETURN(size_t added, io::ParseTurtle(text, graph_));
  OnUpdate(/*schema_changed=*/true);
  if (saturated_.has_value()) saturated_.emplace(graph_, vocab_);
  return added;
}

Result<size_t> ReasoningStore::LoadNTriples(std::string_view text) {
  WDR_ASSIGN_OR_RETURN(size_t added, io::ParseNTriples(text, graph_));
  OnUpdate(/*schema_changed=*/true);
  if (saturated_.has_value()) saturated_.emplace(graph_, vocab_);
  return added;
}

Result<query::ResultSet> ReasoningStore::Query(std::string_view sparql,
                                               QueryInfo* info) {
  Timer timer;
  WDR_ASSIGN_OR_RETURN(query::UnionQuery q,
                       query::ParseSparql(sparql, graph_.dict()));
  Result<query::ResultSet> result = Dispatch(q, info);
  if (info != nullptr) {
    info->mode = options_.mode;
    info->seconds = timer.ElapsedSeconds();
  }
  return result;
}

Result<query::ResultSet> ReasoningStore::Dispatch(const query::UnionQuery& q,
                                                  QueryInfo* info) {
  switch (options_.mode) {
    case ReasoningMode::kNone: {
      query::Evaluator evaluator(graph_.store());
      return evaluator.Evaluate(q);
    }
    case ReasoningMode::kSaturation: {
      query::Evaluator evaluator(saturated_->closure());
      return evaluator.Evaluate(q);
    }
    case ReasoningMode::kReformulation: {
      reformulation::Reformulator reformulator(CachedSchema(), vocab_,
                                               options_.reformulation);
      WDR_ASSIGN_OR_RETURN(query::UnionQuery reformulated,
                           reformulator.Reformulate(q));
      if (info != nullptr) info->union_size = reformulated.size();
      query::Evaluator evaluator(graph_.store());
      return evaluator.Evaluate(reformulated);
    }
    case ReasoningMode::kBackward: {
      backward::BackwardChainingEvaluator evaluator(graph_.store(),
                                                    CachedSchema(), vocab_);
      return evaluator.Evaluate(q);
    }
  }
  return InternalError("unknown reasoning mode");
}

std::vector<std::string> ReasoningStore::DecodeRow(
    const query::Row& row) const {
  std::vector<std::string> out;
  out.reserve(row.size());
  for (rdf::TermId id : row) {
    out.push_back(id == rdf::kNullTermId ? "UNBOUND"
                                         : graph_.dict().term(id).ToNTriples());
  }
  return out;
}

Result<std::string> ReasoningStore::ExplainTriple(
    std::string_view ntriples_line) {
  rdf::Graph scratch;
  WDR_ASSIGN_OR_RETURN(size_t parsed, io::ParseNTriples(ntriples_line, scratch));
  if (parsed != 1) {
    return InvalidArgumentError("expected exactly one N-Triples statement");
  }
  rdf::Triple target;
  scratch.store().Match(0, 0, 0, [&](const rdf::Triple& t) {
    target = rdf::Triple(graph_.dict().Intern(scratch.dict().term(t.s)),
                         graph_.dict().Intern(scratch.dict().term(t.p)),
                         graph_.dict().Intern(scratch.dict().term(t.o)));
  });

  const rdf::StoreView* closure = nullptr;
  rdf::TripleStore transient;
  if (saturated_.has_value()) {
    closure = &saturated_->closure();
  } else {
    transient = reasoning::Saturator::SaturateGraph(graph_, vocab_);
    closure = &transient;
  }
  WDR_ASSIGN_OR_RETURN(
      reasoning::Explanation explanation,
      reasoning::Explain(graph_.store(), *closure, vocab_, &graph_.dict(),
                         target));
  return reasoning::FormatExplanation(graph_, graph_.store(), explanation);
}

UpdateInfo ReasoningStore::Insert(const rdf::Triple& t) {
  Timer timer;
  UpdateInfo info;
  // A triple previously present only as a derived schema edge becomes an
  // asserted one: stop tracking it as derived.
  for (auto it = derived_schema_.begin(); it != derived_schema_.end(); ++it) {
    if (*it == t) {
      derived_schema_.erase(it);
      break;
    }
  }
  info.inserted = graph_.Insert(t) ? 1 : 0;
  if (saturated_.has_value()) info.closure_delta = saturated_->Insert(t);
  OnUpdate(vocab_.IsSchemaProperty(t.p));
  info.seconds = timer.ElapsedSeconds();
  return info;
}

UpdateInfo ReasoningStore::Erase(const rdf::Triple& t) {
  Timer timer;
  UpdateInfo info;
  info.deleted = graph_.Erase(t) ? 1 : 0;
  if (saturated_.has_value()) info.closure_delta = saturated_->Erase(t);
  // Re-closing may legitimately re-add the erased triple if it is still
  // entailed by the remaining schema (deleting an entailed triple is a
  // no-op on the semantics, as the paper's §II-B maintenance discussion
  // assumes).
  OnUpdate(vocab_.IsSchemaProperty(t.p));
  info.seconds = timer.ElapsedSeconds();
  return info;
}

Result<UpdateInfo> ReasoningStore::Update(std::string_view sparql_update) {
  Timer timer;
  WDR_ASSIGN_OR_RETURN(std::vector<UpdateOp> ops,
                       ParseSparqlUpdate(sparql_update, graph_.dict()));
  UpdateInfo total;
  for (const UpdateOp& op : ops) {
    for (const rdf::Triple& t : op.triples) {
      UpdateInfo step = op.is_insert ? Insert(t) : Erase(t);
      total.inserted += step.inserted;
      total.deleted += step.deleted;
      total.closure_delta += step.closure_delta;
    }
  }
  total.seconds = timer.ElapsedSeconds();
  return total;
}

}  // namespace wdr::store
