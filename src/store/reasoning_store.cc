#include "store/reasoning_store.h"

#include <cstdlib>
#include <cstring>

#include "analysis/live_profile.h"
#include "backward/backward_evaluator.h"
#include "common/timer.h"
#include "io/ntriples.h"
#include "io/turtle.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "query/sparql_parser.h"
#include "reasoning/explain.h"
#include "reasoning/saturation.h"
#include "store/update_parser.h"

namespace wdr::store {
namespace {

// Per-update latency histograms, split by schema vs instance triple: the
// paper's cost model treats the two very differently (schema updates
// re-close the schema; instance updates run DRed in saturation mode), and
// the analysis advisor consumes exactly this split.
obs::Histogram& UpdateHistogram(bool is_schema, bool is_insert) {
  const char* name = is_schema
                         ? (is_insert ? "wdr.store.update.schema_insert"
                                      : "wdr.store.update.schema_delete")
                         : (is_insert ? "wdr.store.update.instance_insert"
                                      : "wdr.store.update.instance_delete");
  return obs::MetricsRegistry::Get().GetHistogram(name);
}

// The selector's Route for an executed static mode (kAuto routes only to
// the four reasoning techniques; kNone never goes through the selector).
analysis::Route RouteOf(ReasoningMode mode) {
  switch (mode) {
    case ReasoningMode::kSaturation:
      return analysis::Route::kSaturation;
    case ReasoningMode::kBackward:
      return analysis::Route::kBackward;
    case ReasoningMode::kDatalog:
      return analysis::Route::kDatalog;
    default:
      return analysis::Route::kReformulation;
  }
}

// Planner statistics over a store. A sharded store is built shard-locally
// — one pass per member (schema + each shard), folded with
// exec::Statistics::Merge — so the per-member passes stay cache-resident
// and the merge API gets exercised exactly as a distributed build would.
exec::Statistics BuildStoreStats(const rdf::StoreView& store) {
  const auto* sharded = dynamic_cast<const rdf::ShardedStore*>(&store);
  if (sharded == nullptr) return exec::Statistics::Build(store);
  exec::Statistics stats = exec::Statistics::Build(sharded->schema_store());
  for (size_t i = 0; i < sharded->shard_count(); ++i) {
    stats.Merge(exec::Statistics::Build(sharded->shard(i)));
  }
  return stats;
}

ReasoningMode ModeOf(analysis::Route route) {
  switch (route) {
    case analysis::Route::kSaturation:
      return ReasoningMode::kSaturation;
    case analysis::Route::kReformulation:
      return ReasoningMode::kReformulation;
    case analysis::Route::kBackward:
      return ReasoningMode::kBackward;
    case analysis::Route::kDatalog:
      return ReasoningMode::kDatalog;
  }
  return ReasoningMode::kReformulation;
}

}  // namespace

bool EncodingModeDefault() {
  static const bool value = [] {
    const char* env = std::getenv("WDR_ENCODING");
    return env != nullptr && env[0] == '1' && env[1] == '\0';
  }();
  return value;
}

const char* ReasoningModeName(ReasoningMode mode) {
  switch (mode) {
    case ReasoningMode::kNone:
      return "none";
    case ReasoningMode::kSaturation:
      return "saturation";
    case ReasoningMode::kReformulation:
      return "reformulation";
    case ReasoningMode::kBackward:
      return "backward";
    case ReasoningMode::kDatalog:
      return "datalog";
    case ReasoningMode::kAuto:
      return "auto";
  }
  return "unknown";
}

ReasoningMode ReasoningModeDefault() {
  static const ReasoningMode value = [] {
    const char* env = std::getenv("WDR_MODE");
    if (env == nullptr) return ReasoningMode::kSaturation;
    if (std::strcmp(env, "none") == 0) return ReasoningMode::kNone;
    if (std::strcmp(env, "saturation") == 0) return ReasoningMode::kSaturation;
    if (std::strcmp(env, "reformulation") == 0)
      return ReasoningMode::kReformulation;
    if (std::strcmp(env, "backward") == 0) return ReasoningMode::kBackward;
    if (std::strcmp(env, "datalog") == 0) return ReasoningMode::kDatalog;
    if (std::strcmp(env, "auto") == 0) return ReasoningMode::kAuto;
    return ReasoningMode::kSaturation;
  }();
  return value;
}

ReasoningStore::ReasoningStore(ReasoningStoreOptions options)
    : options_(options),
      graph_(options.backend),
      vocab_(schema::Vocabulary::Intern(graph_.dict())) {
  ConfigureShardedStore();
  if (options_.mode == ReasoningMode::kSaturation) {
    saturated_.emplace(graph_, vocab_, /*enable_owl=*/false,
                       options_.saturation);
  }
}

void ReasoningStore::ConfigureShardedStore() {
  if (options_.backend != rdf::StorageBackend::kSharded) return;
  if (options_.shards < 1) options_.shards = 1;
  auto replacement = std::make_unique<rdf::ShardedStore>(
      options_.shards, options_.shard_backend);
  // Broadcasting the constraint predicates keeps every shard's local join
  // view complete for the RDFS rules (reasoning/saturation.cc's
  // shard-local propagation requires exactly this set).
  replacement->SetBroadcastPredicates(
      {vocab_.sub_class_of, vocab_.sub_property_of, vocab_.domain,
       vocab_.range, vocab_.owl_inverse_of});
  graph_.AdoptStore(std::move(replacement));
}

bool ReasoningStore::SetShardCount(size_t n) {
  auto* sharded = dynamic_cast<rdf::ShardedStore*>(&graph_.store());
  if (sharded == nullptr) return false;
  if (n < 1) n = 1;
  options_.shards = n;
  sharded->SetShardCount(n);
  stats_cache_.reset();
  closure_stats_cache_.reset();
  if (saturated_.has_value()) {
    // The snapshot copy (and its closure, built via MakeEmpty) follows the
    // base store's layout — including a still-pending count: MakeEmpty
    // resolves pending first, so the closure never lags the target layout.
    saturated_.emplace(graph_, vocab_, /*enable_owl=*/false,
                       options_.saturation);
  }
  sharded->PublishGauges();
  return true;
}

size_t ReasoningStore::effective_size() const {
  return saturated_.has_value() ? saturated_->closure().size()
                                : graph_.size();
}

void ReasoningStore::SetMode(ReasoningMode mode) {
  if (mode == options_.mode) return;
  options_.mode = mode;
  stats_cache_.reset();  // statistics follow the mode's queried store
  closure_stats_cache_.reset();
  if (mode == ReasoningMode::kSaturation) {
    if (!saturated_.has_value()) {
      saturated_.emplace(graph_, vocab_, /*enable_owl=*/false,
                         options_.saturation);
    }
  } else if (mode == ReasoningMode::kAuto) {
    // Inherit whatever closure exists (a warm start from kSaturation);
    // from here its lifecycle belongs to the selector's lazy
    // materialization / drop policy.
    EnsureSelector();
  } else {
    saturated_.reset();
  }
}

void ReasoningStore::SetBackend(rdf::StorageBackend backend) {
  if (backend == options_.backend) return;
  options_.backend = backend;
  stats_cache_.reset();
  closure_stats_cache_.reset();
  graph_.SetBackend(backend);
  // SetBackend installed a default-constructed sharded store; swap in one
  // configured from the options (shard count, broadcast predicates).
  ConfigureShardedStore();
  // The closure store follows the base graph's backend; rebuild it.
  if (saturated_.has_value()) {
    saturated_.emplace(graph_, vocab_, /*enable_owl=*/false,
                       options_.saturation);
  }
}

void ReasoningStore::SetSaturationThreads(int threads) {
  options_.saturation.threads = threads < 1 ? 1 : threads;
  if (saturated_.has_value()) {
    saturated_->set_saturation_options(options_.saturation);
  }
}

void ReasoningStore::SetQueryThreads(int threads) {
  options_.query.threads = threads < 1 ? 1 : threads;
}

void ReasoningStore::RecloseSchema() {
  for (const rdf::Triple& t : derived_schema_) graph_.Erase(t);
  derived_schema_.clear();

  rdf::TripleStore schema_triples;
  graph_.store().Match(0, 0, 0, [&](const rdf::Triple& t) {
    if (vocab_.IsSchemaProperty(t.p)) schema_triples.Insert(t);
  });
  reasoning::Saturator saturator(vocab_, &graph_.dict());
  rdf::TripleStore closed = saturator.Saturate(schema_triples);
  closed.Match(0, 0, 0, [&](const rdf::Triple& t) {
    if (graph_.Insert(t)) derived_schema_.push_back(t);
  });
}

void ReasoningStore::OnUpdate(bool schema_changed) {
  stats_cache_.reset();
  closure_stats_cache_.reset();
  // The Datalog translation bakes the facts in; any update invalidates it.
  datalog_cache_.reset();
  if (selector_ != nullptr) selector_->NoteUpdate();
  if (schema_changed) {
    RecloseSchema();
    schema_cache_.reset();
    // One counter invalidates everything derived from the schema: the
    // encoding (rebuilt lazily at the next Query) and the cached
    // Reformulators with their memos.
    ++schema_version_;
    reformulator_cache_.reset();
    reformulator_plain_cache_.reset();
  }
}

void ReasoningStore::SetEncoding(bool on) {
  if (on == options_.encoding) return;
  options_.encoding = on;
  // The reformulator snapshot bakes in the encoding pointer; rebuild it
  // either way. Turning the encoding off keeps the permuted id space — it
  // is a valid id space, only the union collapse stops.
  reformulator_cache_.reset();
  if (!on) encoding_.reset();
}

const rdf::HierEncoding* ReasoningStore::CachedEncoding() {
  if (!options_.encoding) return nullptr;
  if (!encoding_.has_value() || encoding_->version() != schema_version_) {
    RebuildEncoding();
  }
  return &*encoding_;
}

void ReasoningStore::RebuildEncoding() {
  obs::Span span("wdr.store.encoding.rebuild");
  Timer timer;
  // Build against the current (pre-permutation) id space, then switch the
  // whole store over: dictionary + triples, the derived-schema bookkeeping,
  // the interned vocabulary ids, and the closure in saturation mode. Every
  // cache keyed by ids is stale afterwards.
  rdf::HierEncoding encoding =
      rdf::HierEncoding::Build(CachedSchema(), graph_.dict());
  encoding.set_version(schema_version_);
  graph_.ApplyPermutation(encoding.permutation());
  for (rdf::Triple& t : derived_schema_) {
    t = rdf::Triple(encoding.Remap(t.s), encoding.Remap(t.p),
                    encoding.Remap(t.o));
  }
  vocab_ = schema::Vocabulary::Intern(graph_.dict());
  if (saturated_.has_value()) {
    saturated_.emplace(graph_, vocab_, /*enable_owl=*/false,
                       options_.saturation);
  }
  schema_cache_.reset();
  stats_cache_.reset();
  closure_stats_cache_.reset();
  // The permutation moved every id the translation's sym tables bake in.
  datalog_cache_.reset();
  reformulator_cache_.reset();
  // The schema version is unchanged by a rebuild, so the plain cache's
  // version check would wrongly pass — reset it explicitly (its baked-in
  // schema ids were just permuted).
  reformulator_plain_cache_.reset();
  encoding_ = std::move(encoding);
  WDR_COUNTER_INC("wdr.store.encoding.rebuilds");
  obs::MetricsRegistry::Get()
      .GetHistogram("wdr.store.encoding.rebuild_seconds")
      .RecordSeconds(timer.ElapsedSeconds());
}

reformulation::Reformulator& ReasoningStore::CachedReformulator() {
  // Resolve the encoding first: its rebuild permutes ids and resets the
  // schema cache this snapshot is built over.
  const rdf::HierEncoding* encoding = CachedEncoding();
  if (!reformulator_cache_.has_value() ||
      reformulator_version_ != schema_version_) {
    reformulation::ReformulationOptions ref_options = options_.reformulation;
    ref_options.encoding = encoding;
    reformulator_cache_.emplace(CachedSchema(), vocab_, ref_options);
    reformulator_version_ = schema_version_;
  }
  return *reformulator_cache_;
}

reformulation::Reformulator& ReasoningStore::CachedPlainReformulator() {
  if (!reformulator_plain_cache_.has_value() ||
      reformulator_plain_version_ != schema_version_) {
    reformulation::ReformulationOptions ref_options = options_.reformulation;
    ref_options.encoding = nullptr;
    reformulator_plain_cache_.emplace(CachedSchema(), vocab_, ref_options);
    reformulator_plain_version_ = schema_version_;
  }
  return *reformulator_plain_cache_;
}

const schema::Schema& ReasoningStore::CachedSchema() {
  if (!schema_cache_.has_value()) {
    schema_cache_ = schema::Schema::FromGraph(graph_, vocab_);
  }
  return *schema_cache_;
}

const exec::Statistics& ReasoningStore::CachedStats(bool over_closure) {
  // One flavor per queried store, so a saturation-routed query plans over
  // closure statistics while a reformulation-routed one (same store, auto
  // mode or a per-read override) plans over base-graph statistics.
  if (over_closure && saturated_.has_value()) {
    if (!closure_stats_cache_.has_value()) {
      closure_stats_cache_ = BuildStoreStats(saturated_->closure());
    }
    return *closure_stats_cache_;
  }
  if (!stats_cache_.has_value()) {
    stats_cache_ = BuildStoreStats(graph_.store());
  }
  return *stats_cache_;
}

const datalog::RdfDatalogTranslation& ReasoningStore::CachedDatalog() {
  if (!datalog_cache_.has_value()) {
    Timer timer;
    datalog_cache_ = datalog::TranslateGraph(graph_, vocab_);
    obs::MetricsRegistry::Get()
        .GetHistogram("wdr.store.datalog.translate")
        .RecordSeconds(timer.ElapsedSeconds());
  }
  return *datalog_cache_;
}

analysis::StrategySelector& ReasoningStore::EnsureSelector() {
  if (selector_ == nullptr) {
    selector_ = std::make_unique<analysis::StrategySelector>();
    // Cold-start prior: whatever the process-global histograms already
    // know (possibly nothing — the selector then falls back statically
    // until the first window refresh).
    selector_->SetPrior(analysis::CostProfileFromMetrics(
        obs::MetricsRegistry::Get().Snapshot()));
  }
  return *selector_;
}

std::optional<analysis::RouteDecision> ReasoningStore::LastAutoDecision()
    const {
  std::lock_guard<std::mutex> lock(*decisions_mu_);
  if (decisions_.empty()) return std::nullopt;
  return decisions_.back();
}

Result<size_t> ReasoningStore::LoadTurtle(std::string_view text) {
  obs::Span span("wdr.store.load");
  WDR_ASSIGN_OR_RETURN(size_t added, io::ParseTurtle(text, graph_));
  OnUpdate(/*schema_changed=*/true);
  if (saturated_.has_value()) {
    saturated_.emplace(graph_, vocab_, /*enable_owl=*/false,
                       options_.saturation);
  }
  WDR_COUNTER_ADD("wdr.store.loaded_triples", added);
  span.AddAttr("triples", static_cast<uint64_t>(added));
  return added;
}

Result<size_t> ReasoningStore::LoadNTriples(std::string_view text) {
  obs::Span span("wdr.store.load");
  WDR_ASSIGN_OR_RETURN(size_t added, io::ParseNTriples(text, graph_));
  OnUpdate(/*schema_changed=*/true);
  if (saturated_.has_value()) {
    saturated_.emplace(graph_, vocab_, /*enable_owl=*/false,
                       options_.saturation);
  }
  WDR_COUNTER_ADD("wdr.store.loaded_triples", added);
  span.AddAttr("triples", static_cast<uint64_t>(added));
  return added;
}

namespace {

// Finishes a query-log record from the run's diagnostics. Shared by
// Query() and Execute() so both paths log identical shapes.
void CompleteRecord(obs::QueryLogRecord& record, const QueryInfo& qinfo,
                    const query::EvalStats& eval_stats,
                    const Result<query::ResultSet>& result) {
  record.union_size = qinfo.union_size;
  record.rewrite_steps = qinfo.reformulation.rewrite_steps;
  record.pruned_cqs = qinfo.reformulation.pruned_cqs;
  record.range_collapses = qinfo.reformulation.range_collapses;
  if (eval_stats.est_rows >= 0) {
    record.est_rows = static_cast<int64_t>(eval_stats.est_rows);
  }
  record.scan_cache_hits = eval_stats.scan_cache_hits;
  record.scan_cache_misses = eval_stats.scan_cache_misses;
  record.wall_nanos = static_cast<uint64_t>(qinfo.seconds * 1e9);
  record.ok = result.ok();
  if (result.ok()) {
    record.rows = result.value().rows.size();
  } else {
    record.error = result.status().ToString();
  }
}

// The all-or-nothing half of cooperative cancellation: the evaluator stops
// early and returns partial rows; this turns a tripped condition into an
// error so callers never mistake a truncated answer set for a complete one.
Status ReadInterrupted(const query::EvaluatorOptions& eval) {
  if (eval.cancel != nullptr &&
      eval.cancel->load(std::memory_order_relaxed)) {
    return CancelledError("query cancelled");
  }
  if (eval.deadline_nanos != 0 && SteadyNowNanos() >= eval.deadline_nanos) {
    return DeadlineExceededError("query deadline exceeded");
  }
  return Status::Ok();
}

}  // namespace

Result<query::ResultSet> ReasoningStore::Query(std::string_view sparql,
                                               QueryInfo* info) {
  obs::Span span("wdr.store.query");
  WDR_COUNTER_INC("wdr.store.queries");

  Timer timer;
  // Start the structured query-log record; every exit appends it (errors
  // included), so /querylog carries one record per executed query.
  obs::QueryLogRecord record;
  record.trace_id = span.trace_id();

  // Route diagnostics through a local QueryInfo when the caller passed
  // none — the query log wants them either way.
  QueryInfo local_info;
  QueryInfo& qinfo = info != nullptr ? *info : local_info;
  query::EvalStats eval_stats;

  // In kAuto mode the executed mode is only known after PrepareInternal
  // routed the query; the latency histogram and diagnostics follow the
  // routed mode so the online cost model trains on real route costs.
  ReasoningMode executed_mode = options_.mode;
  bool via_auto = false;
  double est_seconds = -1;

  Result<query::ResultSet> result = [&]() -> Result<query::ResultSet> {
    WDR_ASSIGN_OR_RETURN(PreparedQuery prepared,
                         PrepareInternal(sparql, ReadOptions{}, &record));
    executed_mode = prepared.mode;
    via_auto = prepared.via_auto;
    est_seconds = prepared.est_seconds;
    std::shared_ptr<obs::ProfileNode> profile;
    if (profiling_ && info != nullptr) {
      profile = std::make_shared<obs::ProfileNode>();
      profile->label = std::string("query [mode=") +
                       ReasoningModeName(prepared.mode) + "]";
    }
    Result<query::ResultSet> r =
        ExecuteInternal(prepared, &qinfo, profile.get(), &eval_stats);
    qinfo.profile = std::move(profile);
    return r;
  }();

  span.AddAttr("mode", ReasoningModeName(executed_mode));
  qinfo.mode = executed_mode;
  qinfo.seconds = timer.ElapsedSeconds();
  obs::MetricsRegistry::Get()
      .GetHistogram(std::string("wdr.store.query.") +
                    ReasoningModeName(executed_mode))
      .RecordSeconds(qinfo.seconds);
  if (via_auto) {
    analysis::RecordEstimateError(RouteOf(executed_mode), est_seconds,
                                  qinfo.seconds);
  }
  CompleteRecord(record, qinfo, eval_stats, result);
  obs::QueryLog::Get().Append(std::move(record));
  return result;
}

Result<PreparedQuery> ReasoningStore::Prepare(std::string_view sparql,
                                              const ReadOptions& options) {
  obs::Span span("wdr.store.prepare");
  Timer timer;
  obs::QueryLogRecord record;
  record.trace_id = span.trace_id();
  Result<PreparedQuery> prepared = PrepareInternal(sparql, options, &record);
  if (!prepared.ok()) {
    // A failed prepare is a query that never reaches Execute; log it here
    // so the one-record-per-query invariant holds on the split path too.
    WDR_COUNTER_INC("wdr.store.queries");
    record.ok = false;
    record.error = prepared.status().ToString();
    record.wall_nanos = static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9);
    obs::QueryLog::Get().Append(std::move(record));
  }
  return prepared;
}

Result<query::ResultSet> ReasoningStore::Execute(const PreparedQuery& prepared,
                                                 QueryInfo* info) const {
  obs::Histogram& latency = obs::MetricsRegistry::Get().GetHistogram(
      std::string("wdr.store.query.") + ReasoningModeName(prepared.mode));
  obs::Span span("wdr.store.query", &latency);
  span.AddAttr("mode", ReasoningModeName(prepared.mode));
  WDR_COUNTER_INC("wdr.store.queries");
  Timer timer;

  QueryInfo local_info;
  QueryInfo& qinfo = info != nullptr ? *info : local_info;
  query::EvalStats eval_stats;
  std::shared_ptr<obs::ProfileNode> profile;
  // Profiling renders labels through the dictionary — a shared mutable
  // structure concurrent Prepares intern into. Concurrent callers (the
  // server) keep profiling off; single-threaded callers get the full tree.
  if (profiling_ && info != nullptr) {
    profile = std::make_shared<obs::ProfileNode>();
    profile->label =
        std::string("query [mode=") + ReasoningModeName(prepared.mode) + "]";
  }
  Result<query::ResultSet> result =
      ExecuteInternal(prepared, &qinfo, profile.get(), &eval_stats);
  qinfo.profile = std::move(profile);
  qinfo.mode = prepared.mode;
  qinfo.seconds = prepared.prepare_seconds + timer.ElapsedSeconds();
  if (prepared.via_auto) {
    analysis::RecordEstimateError(RouteOf(prepared.mode),
                                  prepared.est_seconds, qinfo.seconds);
  }

  obs::QueryLogRecord record = prepared.record;
  record.trace_id = span.trace_id();
  CompleteRecord(record, qinfo, eval_stats, result);
  obs::QueryLog::Get().Append(std::move(record));
  return result;
}

void ReasoningStore::Warm() {
  if (options_.encoding) CachedEncoding();
  CachedSchema();
  CachedStats(/*over_closure=*/false);
  if (saturated_.has_value()) CachedStats(/*over_closure=*/true);
  CachedReformulator();
  // The plain flavor only differs when the encoding is on (it IS the
  // plain one otherwise).
  if (options_.encoding) CachedPlainReformulator();
}

Result<PreparedQuery> ReasoningStore::PrepareInternal(
    std::string_view sparql, const ReadOptions& ropts,
    obs::QueryLogRecord* record) {
  Timer timer;
  PreparedQuery prepared;
  prepared.mode = ropts.mode.value_or(options_.mode);
  if (prepared.mode == ReasoningMode::kSaturation && !saturated_.has_value()) {
    return FailedPreconditionError(
        "saturation mode needs a materialized closure: the store's mode is "
        "neither kSaturation nor kAuto-with-closure");
  }
  const bool want_encoding = ropts.encoding.value_or(options_.encoding);
  if (want_encoding && !options_.encoding) {
    return FailedPreconditionError(
        "hierarchy encoding is not enabled on this store (it permutes the "
        "shared id space and cannot be materialized per session)");
  }

  // Resolve the encoding before parsing: a pending rebuild permutes the
  // dictionary id space, and the query's interned ids must land in the
  // final space. Frozen prepares never rebuild — a stale encoding just
  // means classic reformulation for this query.
  const rdf::HierEncoding* enc = nullptr;
  if (options_.encoding) {
    if (ropts.frozen) {
      if (encoding_.has_value() && encoding_->version() == schema_version_) {
        enc = &*encoding_;
      }
    } else {
      enc = CachedEncoding();
    }
  }
  const bool use_encoding = want_encoding && enc != nullptr;

  query::EvaluatorOptions eval = options_.query;
  eval.dict = &graph_.dict();
  eval.plan = ropts.plan.value_or(eval.plan);
  if (ropts.threads.has_value()) {
    eval.threads = *ropts.threads < 1 ? 1 : *ropts.threads;
  }
  eval.cancel = ropts.cancel;
  eval.deadline_nanos = ropts.deadline_nanos;

  // Prefill the log record before parsing so failures carry full context.
  record->query = obs::CanonicalQueryKey(sparql);
  record->mode = ReasoningModeName(prepared.mode);
  record->backend = rdf::StorageBackendName(options_.backend);
  record->plan = eval.plan;
  record->encoding = use_encoding;

  WDR_ASSIGN_OR_RETURN(query::UnionQuery q,
                       query::ParseSparql(sparql, graph_.dict()));

  if (prepared.mode == ReasoningMode::kAuto) {
    analysis::StrategySelector& selector = EnsureSelector();
    if (selector.NeedsRefresh()) {
      selector.Refresh(obs::QueryLog::Get().Records(),
                       obs::MetricsRegistry::Get().Snapshot());
    }

    // Cheap per-query features: the reformulation fan-out probe (exact on
    // a memo hit, an O(closure) bound otherwise) and a statistics bound on
    // the query's smallest scan.
    reformulation::Reformulator& probe =
        (options_.encoding && !use_encoding) ? CachedPlainReformulator()
                                             : CachedReformulator();
    const reformulation::FanoutEstimate fanout = probe.EstimateFanout(q);
    analysis::QueryFeatures features;
    features.fanout = static_cast<double>(fanout.branches);
    features.fanout_exact = fanout.exact;
    features.atoms = q.TotalAtoms();
    const exec::Statistics& base_stats = CachedStats(/*over_closure=*/false);
    if (!base_stats.empty()) {
      double best = -1;
      for (const query::BgpQuery& branch : q.branches()) {
        for (const query::TriplePattern& atom : branch.atoms()) {
          const double est = base_stats.Estimate(
              atom.s.is_var() ? exec::BoundMode::kWild
                              : exec::BoundMode::kConst,
              atom.p.is_var() ? exec::BoundMode::kWild
                              : exec::BoundMode::kConst,
              atom.p.is_var() ? 0 : atom.p.id,
              atom.o.is_var() ? exec::BoundMode::kWild
                              : exec::BoundMode::kConst);
          if (best < 0 || est < best) best = est;
        }
      }
      features.est_rows = best;
    }

    analysis::RouteDecision decision = selector.Decide(
        record->query, features, saturated_.has_value(), graph_.size());

    // Closure lifecycle advice. Materializing is safe even under the
    // server's frozen prepares: it fills an empty optional no concurrent
    // Execute can be referencing, and permutes no ids. Dropping is not —
    // concurrent saturation-routed Executes may hold cursors into the
    // closure — so it only happens on non-frozen (externally synchronized)
    // prepares.
    if (decision.materialize_closure && !saturated_.has_value()) {
      saturated_.emplace(graph_, vocab_, /*enable_owl=*/false,
                         options_.saturation);
      closure_stats_cache_.reset();
      selector.ClosureMaterialized();
      decision.closure_available = true;
    } else if (decision.drop_closure && saturated_.has_value() &&
               !ropts.frozen && options_.mode == ReasoningMode::kAuto &&
               !ropts.mode.has_value()) {
      saturated_.reset();
      closure_stats_cache_.reset();
      selector.ClosureDropped();
    }

    prepared.mode = ModeOf(decision.route);
    prepared.via_auto = true;
    prepared.est_seconds =
        decision.est_seconds[static_cast<size_t>(decision.route)];
    record->mode = ReasoningModeName(prepared.mode);
    record->fanout = fanout.branches;
    record->via_auto = true;
    {
      std::lock_guard<std::mutex> lock(*decisions_mu_);
      decisions_.push_back(std::move(decision));
      if (decisions_.size() > 8) decisions_.pop_front();
    }
  }

  if (eval.plan && eval.stats == nullptr) {
    // Hand the planner cached statistics so it never pays the O(store)
    // build per query and never degrades on a fresh store. The flavor
    // follows the (routed) mode's queried store.
    eval.stats =
        &CachedStats(prepared.mode == ReasoningMode::kSaturation);
  }

  if (prepared.mode == ReasoningMode::kReformulation) {
    // Rewriting happens at prepare time: the reformulator's memo is shared
    // mutable state, and baking the UCQ into the PreparedQuery makes
    // Execute pure. An encoding-enabled store serves sessions that opted
    // out (and frozen prepares that found the encoding stale) from the
    // classic-reformulator cache.
    reformulation::Reformulator& reformulator =
        (options_.encoding && !use_encoding) ? CachedPlainReformulator()
                                             : CachedReformulator();
    reformulation::ReformulationStats ref_stats;
    double rewrite_seconds = 0;
    Result<query::UnionQuery> reformulated_or = [&] {
      ScopedTimer<> rewrite_timer(rewrite_seconds);
      return reformulator.Reformulate(q, &ref_stats);
    }();
    WDR_ASSIGN_OR_RETURN(prepared.query, std::move(reformulated_or));
    obs::MetricsRegistry::Get()
        .GetHistogram("wdr.store.reformulation.rewrite")
        .RecordSeconds(rewrite_seconds);
    prepared.union_size = prepared.query.size();
    prepared.reformulation = ref_stats;
    prepared.rewrite_seconds = rewrite_seconds;
  } else {
    prepared.query = std::move(q);
  }
  if (prepared.mode == ReasoningMode::kBackward) {
    prepared.schema = &CachedSchema();
  }
  if (prepared.mode == ReasoningMode::kDatalog) {
    prepared.datalog = &CachedDatalog();
  }
  prepared.eval = eval;
  prepared.prepare_seconds = timer.ElapsedSeconds();
  prepared.record = *record;
  return prepared;
}

Result<query::ResultSet> ReasoningStore::ExecuteInternal(
    const PreparedQuery& prepared, QueryInfo* info, obs::ProfileNode* profile,
    query::EvalStats* collect) const {
  query::EvaluatorOptions eval_options = prepared.eval;
  eval_options.collect = collect;
  if (info != nullptr) {
    info->union_size = prepared.union_size;
    info->reformulation = prepared.reformulation;
  }
  if (prepared.mode == ReasoningMode::kSaturation && !saturated_.has_value()) {
    return FailedPreconditionError("closure dropped since this query was "
                                   "prepared (mode changed?)");
  }

  // Pin the queried store's epoch for the whole evaluation: a pinned flat
  // store defers compaction, so cursors into its arrays stay valid even
  // if a (misbehaving) writer mutates underneath — and the pin count is
  // how the snapshot tests assert reader visibility.
  const rdf::StoreView& queried =
      prepared.mode == ReasoningMode::kSaturation ? saturated_->closure()
                                                  : graph_.store();
  rdf::EpochPin pin(queried);

  Result<query::ResultSet> result = [&]() -> Result<query::ResultSet> {
    switch (prepared.mode) {
      case ReasoningMode::kNone:
      case ReasoningMode::kSaturation: {
        query::Evaluator evaluator(queried, eval_options);
        return evaluator.Evaluate(prepared.query, profile);
      }
      case ReasoningMode::kReformulation: {
        if (profile != nullptr) {
          obs::ProfileNode& rewrite = profile->AddChild(
              "reformulate (" + std::to_string(prepared.union_size) +
              " CQs, " + std::to_string(prepared.reformulation.pruned_cqs) +
              " pruned)");
          rewrite.rows = prepared.union_size;
          rewrite.seconds = prepared.rewrite_seconds;
        }
        query::Evaluator evaluator(queried, eval_options);
        return evaluator.Evaluate(prepared.query, profile);
      }
      case ReasoningMode::kBackward: {
        backward::BackwardOptions boptions;
        boptions.plan = eval_options.plan;
        boptions.hash_joins = eval_options.hash_joins;
        boptions.batch_rows = eval_options.batch_rows;
        boptions.stats = eval_options.stats;
        backward::BackwardChainingEvaluator evaluator(
            graph_.store(), *prepared.schema, vocab_, boptions);
        if (profile == nullptr) return evaluator.Evaluate(prepared.query);
        backward::BackwardStats stats;
        double seconds = 0;
        Result<query::ResultSet> result = [&] {
          ScopedTimer<> eval_timer(seconds);
          return evaluator.Evaluate(prepared.query, &stats);
        }();
        obs::ProfileNode& node = profile->AddChild(
            "backward_join (" + std::to_string(stats.atom_alternatives) +
            " alternatives)");
        node.scans = stats.index_probes;
        node.seconds = seconds;
        profile->seconds += seconds;
        if (result.ok()) {
          node.rows = result.value().rows.size();
          profile->rows = result.value().rows.size();
        }
        return result;
      }
      case ReasoningMode::kDatalog: {
        if (prepared.datalog == nullptr) {
          return FailedPreconditionError(
              "datalog translation missing from the prepared query");
        }
        datalog::EvalStats dstats;
        double seconds = 0;
        Result<query::ResultSet> result = [&] {
          ScopedTimer<> eval_timer(seconds);
          return datalog::AnswerViaMagicUnion(
              *prepared.datalog, prepared.query,
              profile != nullptr ? &dstats : nullptr);
        }();
        if (profile != nullptr) {
          obs::ProfileNode& node = profile->AddChild(
              "datalog_magic (" + std::to_string(dstats.derived_tuples) +
              " derived, " + std::to_string(dstats.iterations) +
              " iterations)");
          node.seconds = seconds;
          profile->seconds += seconds;
          if (result.ok()) {
            node.rows = result.value().rows.size();
            profile->rows = result.value().rows.size();
          }
        }
        return result;
      }
      case ReasoningMode::kAuto:
        // Prepare always routes kAuto to a static mode; reaching Execute
        // with it is a programming error.
        return InternalError("kAuto must be routed at prepare time");
    }
    return InternalError("unknown reasoning mode");
  }();
  if (result.ok()) {
    // A tripped cancellation leaves a truncated row set; surface it as an
    // error rather than an answer.
    WDR_RETURN_IF_ERROR(ReadInterrupted(eval_options));
  }
  return result;
}

std::vector<std::string> ReasoningStore::DecodeRow(
    const query::Row& row) const {
  std::vector<std::string> out;
  out.reserve(row.size());
  for (rdf::TermId id : row) {
    out.push_back(id == rdf::kNullTermId ? "UNBOUND"
                                         : graph_.dict().term(id).ToNTriples());
  }
  return out;
}

Result<std::string> ReasoningStore::ExplainTriple(
    std::string_view ntriples_line) {
  rdf::Graph scratch;
  WDR_ASSIGN_OR_RETURN(size_t parsed, io::ParseNTriples(ntriples_line, scratch));
  if (parsed != 1) {
    return InvalidArgumentError("expected exactly one N-Triples statement");
  }
  rdf::Triple target;
  scratch.store().Match(0, 0, 0, [&](const rdf::Triple& t) {
    target = rdf::Triple(graph_.dict().Intern(scratch.dict().term(t.s)),
                         graph_.dict().Intern(scratch.dict().term(t.p)),
                         graph_.dict().Intern(scratch.dict().term(t.o)));
  });

  const rdf::StoreView* closure = nullptr;
  rdf::TripleStore transient;
  if (saturated_.has_value()) {
    closure = &saturated_->closure();
  } else {
    transient = reasoning::Saturator::SaturateGraph(graph_, vocab_);
    closure = &transient;
  }
  WDR_ASSIGN_OR_RETURN(
      reasoning::Explanation explanation,
      reasoning::Explain(graph_.store(), *closure, vocab_, &graph_.dict(),
                         target));
  return reasoning::FormatExplanation(graph_, graph_.store(), explanation);
}

UpdateInfo ReasoningStore::Insert(const rdf::Triple& t) {
  UpdateInfo info;
  const bool is_schema = vocab_.IsSchemaProperty(t.p);
  {
    ScopedTimer<> timer(info.seconds);
    // A triple previously present only as a derived schema edge becomes an
    // asserted one: stop tracking it as derived.
    for (auto it = derived_schema_.begin(); it != derived_schema_.end();
         ++it) {
      if (*it == t) {
        derived_schema_.erase(it);
        break;
      }
    }
    info.inserted = graph_.Insert(t) ? 1 : 0;
    if (saturated_.has_value()) info.closure_delta = saturated_->Insert(t);
    OnUpdate(is_schema);
  }
  UpdateHistogram(is_schema, /*is_insert=*/true).RecordSeconds(info.seconds);
  return info;
}

UpdateInfo ReasoningStore::Erase(const rdf::Triple& t) {
  UpdateInfo info;
  const bool is_schema = vocab_.IsSchemaProperty(t.p);
  {
    ScopedTimer<> timer(info.seconds);
    info.deleted = graph_.Erase(t) ? 1 : 0;
    if (saturated_.has_value()) info.closure_delta = saturated_->Erase(t);
    // Re-closing may legitimately re-add the erased triple if it is still
    // entailed by the remaining schema (deleting an entailed triple is a
    // no-op on the semantics, as the paper's §II-B maintenance discussion
    // assumes).
    OnUpdate(is_schema);
  }
  UpdateHistogram(is_schema, /*is_insert=*/false).RecordSeconds(info.seconds);
  return info;
}

Result<UpdateInfo> ReasoningStore::Update(std::string_view sparql_update) {
  obs::Span span("wdr.store.update");
  Timer timer;
  WDR_ASSIGN_OR_RETURN(std::vector<UpdateOp> ops,
                       ParseSparqlUpdate(sparql_update, graph_.dict()));
  UpdateInfo total;
  for (const UpdateOp& op : ops) {
    for (const rdf::Triple& t : op.triples) {
      UpdateInfo step = op.is_insert ? Insert(t) : Erase(t);
      total.inserted += step.inserted;
      total.deleted += step.deleted;
      total.closure_delta += step.closure_delta;
    }
  }
  total.seconds = timer.ElapsedSeconds();
  span.AddAttr("inserted", static_cast<uint64_t>(total.inserted));
  span.AddAttr("deleted", static_cast<uint64_t>(total.deleted));
  return total;
}

}  // namespace wdr::store
