#include "store/update_parser.h"

#include <cctype>
#include <string>

#include "io/turtle.h"
#include "rdf/graph.h"

namespace wdr::store {
namespace {

// Case-insensitive scanner over the update request, extracting the PREFIX
// prologue and the `INSERT DATA { ... }` / `DELETE DATA { ... }` blocks.
// Block contents are handed to the Turtle parser (prefix declarations are
// prepended), then re-encoded into the caller's dictionary.
class UpdateScanner {
 public:
  UpdateScanner(std::string_view text, rdf::Dictionary& dict)
      : text_(text), dict_(dict) {}

  Result<std::vector<UpdateOp>> Run() {
    std::vector<UpdateOp> ops;
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      if (ConsumeKeyword("PREFIX")) {
        WDR_RETURN_IF_ERROR(CollectPrefix());
        continue;
      }
      bool is_insert;
      if (ConsumeKeyword("INSERT")) {
        is_insert = true;
      } else if (ConsumeKeyword("DELETE")) {
        is_insert = false;
      } else if (Peek() == ';') {
        Next();
        continue;
      } else {
        return Error("expected INSERT DATA, DELETE DATA or PREFIX");
      }
      SkipWhitespaceAndComments();
      if (!ConsumeKeyword("DATA")) {
        return Error(
            "only INSERT DATA / DELETE DATA are supported (no WHERE "
            "templates)");
      }
      WDR_ASSIGN_OR_RETURN(std::string block, CollectBlock());
      UpdateOp op;
      op.is_insert = is_insert;
      WDR_RETURN_IF_ERROR(ParseBlock(block, op.triples));
      ops.push_back(std::move(op));
    }
    if (ops.empty()) return Error("empty update request");
    return ops;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char Next() {
    char c = Peek();
    if (c == '\n') ++line_;
    ++pos_;
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Next();
      } else if (c == '#') {
        while (!AtEnd() && Peek() != '\n') Next();
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& message) const {
    return ParseError("line " + std::to_string(line_) + ": " + message);
  }

  bool ConsumeKeyword(std::string_view keyword) {
    SkipWhitespaceAndComments();
    for (size_t i = 0; i < keyword.size(); ++i) {
      char c = pos_ + i < text_.size() ? text_[pos_ + i] : '\0';
      if (std::toupper(static_cast<unsigned char>(c)) != keyword[i]) {
        return false;
      }
    }
    char after =
        pos_ + keyword.size() < text_.size() ? text_[pos_ + keyword.size()] : '\0';
    if (std::isalnum(static_cast<unsigned char>(after)) || after == '_') {
      return false;
    }
    for (size_t i = 0; i < keyword.size(); ++i) Next();
    return true;
  }

  // `PREFIX p: <iri>` — collected verbatim for the Turtle parser.
  Status CollectPrefix() {
    SkipWhitespaceAndComments();
    size_t start = pos_;
    while (!AtEnd() && Peek() != '>') Next();
    if (AtEnd()) return Error("unterminated PREFIX declaration");
    Next();  // '>'
    prologue_ += "PREFIX ";
    prologue_ += std::string(text_.substr(start, pos_ - start));
    prologue_ += '\n';
    return Status::Ok();
  }

  Result<std::string> CollectBlock() {
    SkipWhitespaceAndComments();
    if (Peek() != '{') return Error("expected '{' opening the data block");
    Next();
    size_t start = pos_;
    // Data blocks contain ground triples only; literals may contain braces.
    bool in_literal = false;
    while (!AtEnd()) {
      char c = Peek();
      if (c == '"' ) in_literal = !in_literal;
      if (c == '\\' && in_literal) {
        Next();
        if (!AtEnd()) Next();
        continue;
      }
      if (c == '}' && !in_literal) break;
      Next();
    }
    if (AtEnd()) return Error("unterminated data block");
    std::string block(text_.substr(start, pos_ - start));
    Next();  // '}'
    return block;
  }

  Status ParseBlock(const std::string& block,
                    std::vector<rdf::Triple>& out) {
    // The Turtle grammar wants statements terminated with '.'; tolerate a
    // missing final dot as SPARQL UPDATE data blocks commonly omit it.
    std::string document = prologue_ + block;
    size_t end = document.find_last_not_of(" \t\r\n");
    if (end != std::string::npos && document[end] != '.') {
      document += " .";
    }
    rdf::Graph scratch;
    auto parsed = io::ParseTurtle(document, scratch);
    if (!parsed.ok()) return parsed.status();
    scratch.store().Match(0, 0, 0, [&](const rdf::Triple& t) {
      out.push_back(rdf::Triple(dict_.Intern(scratch.dict().term(t.s)),
                                dict_.Intern(scratch.dict().term(t.p)),
                                dict_.Intern(scratch.dict().term(t.o))));
    });
    return Status::Ok();
  }

  std::string_view text_;
  rdf::Dictionary& dict_;
  size_t pos_ = 0;
  size_t line_ = 1;
  std::string prologue_;
};

}  // namespace

Result<std::vector<UpdateOp>> ParseSparqlUpdate(std::string_view text,
                                                rdf::Dictionary& dict) {
  return UpdateScanner(text, dict).Run();
}

}  // namespace wdr::store
