#ifndef WDR_STORE_UPDATE_PARSER_H_
#define WDR_STORE_UPDATE_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace wdr::store {

// One parsed update operation: a batch of ground triples to add or remove.
struct UpdateOp {
  bool is_insert = true;
  std::vector<rdf::Triple> triples;
};

// Parses the SPARQL UPDATE subset the store supports:
//
//   PREFIX ex: <http://ex.org/>
//   INSERT DATA { ex:a ex:p ex:b . ex:a a ex:C } ;
//   DELETE DATA { ex:old ex:p ex:gone }
//
// Blocks use Turtle syntax (prefixed names, `a`, `;`/`,` lists, literals);
// only ground triples are allowed — INSERT/DELETE WHERE templates are out
// of scope. Terms are interned into `dict`; nothing is inserted anywhere.
Result<std::vector<UpdateOp>> ParseSparqlUpdate(std::string_view text,
                                                rdf::Dictionary& dict);

}  // namespace wdr::store

#endif  // WDR_STORE_UPDATE_PARSER_H_
