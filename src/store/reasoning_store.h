#ifndef WDR_STORE_REASONING_STORE_H_
#define WDR_STORE_REASONING_STORE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/strategy_selector.h"
#include "common/status.h"
#include "datalog/rdf_datalog.h"
#include "exec/statistics.h"
#include "obs/profile.h"
#include "obs/query_log.h"
#include "query/evaluator.h"
#include "rdf/graph.h"
#include "rdf/hier_encoding.h"
#include "rdf/sharded_store.h"
#include "reasoning/saturated_graph.h"
#include "reformulation/reformulator.h"
#include "schema/schema.h"
#include "schema/vocabulary.h"

namespace wdr::store {

// How the store answers queries with respect to RDF entailment — the
// technique families the paper classifies (§II-B, §II-C), plus the online
// selector that picks among them per query (§II-D's open issue).
enum class ReasoningMode {
  // No reasoning: plain evaluation over explicit triples only.
  kNone,
  // Forward chaining: an incrementally maintained closure G∞ is queried
  // (OWLIM / Oracle style). Cheap queries, maintenance on update.
  kSaturation,
  // Query rewriting: q is reformulated into a UCQ evaluated on G
  // (EDBT'13 style). Zero maintenance, costlier queries.
  kReformulation,
  // Run-time backward chaining: per-atom expansion inside the join
  // (AllegroGraph / Virtuoso style). Zero maintenance.
  kBackward,
  // Datalog translation + magic sets, evaluated per query against the
  // base facts (§II-D: "translation to Datalog"). Zero maintenance; the
  // translation is cached between updates.
  kDatalog,
  // Adaptive: every query is routed to one of the four static techniques
  // above by an online-fitted cost model (analysis::StrategySelector).
  // Queries never execute "in kAuto" — Prepare resolves the route, so a
  // PreparedQuery always carries a static mode.
  kAuto,
};

const char* ReasoningModeName(ReasoningMode mode);

// Process-wide default for the hierarchy-aware encoding toggle: true iff
// the environment variable WDR_ENCODING is exactly "1" (mirroring
// exec::PlanModeDefault / WDR_PLAN, so the whole test suite can be flipped
// encoding-on without touching call sites).
bool EncodingModeDefault();

// Process-wide default reasoning mode: the WDR_MODE environment variable
// when it names a mode exactly ("none", "saturation", "reformulation",
// "backward", "datalog", "auto"), kSaturation otherwise. Same pattern as
// WDR_PLAN / WDR_ENCODING: the whole test suite can be flipped onto a mode
// (CI runs WDR_MODE=auto) without touching call sites.
ReasoningMode ReasoningModeDefault();

struct ReasoningStoreOptions {
  ReasoningMode mode = ReasoningModeDefault();
  // Storage engine for the base graph and (in saturation mode) the closure.
  rdf::StorageBackend backend = rdf::StorageBackend::kOrdered;
  // kSharded only: number of subject-hash partitions (values < 1 clamp to
  // 1) and the storage engine of each partition. Schema triples (the RDFS
  // constraint predicates plus owl:inverseOf) are broadcast to a shared
  // schema member so shard-local saturation stays complete. Answers are
  // identical at any shard count.
  size_t shards = rdf::ShardedStore::kDefaultShardCount;
  rdf::StorageBackend shard_backend = rdf::StorageBackend::kFlat;
  // Passed through to the reformulation engine (kReformulation mode).
  reformulation::ReformulationOptions reformulation;
  // Passed through to the saturator (kSaturation mode): threads for the
  // closure build and for DRed re-derivation. Answers are identical at any
  // thread count.
  reasoning::SaturationOptions saturation;
  // Passed through to the query evaluator in every mode: union-branch
  // worker threads and the cross-branch scan cache (most effective in
  // kReformulation mode, where unions are large). Answers are identical
  // at any setting.
  query::EvaluatorOptions query;
  // Hierarchy-aware id encoding (LiteMat; rdf/hier_encoding.h): permute
  // the dictionary so subclass/subproperty closures occupy contiguous id
  // intervals and collapse reformulation unions into range scans. Answers
  // are identical either way; the encoding trades a rebuild on schema
  // change for O(1)-branch rewritings.
  bool encoding = EncodingModeDefault();
};

// Per-read overrides and controls for Prepare()/Execute(). Default-
// constructed, a ReadOptions changes nothing: the store's own settings
// apply. The server's sessions are the main client — each session carries
// its own ReadOptions so many clients with different mode/plan/encoding
// settings can share one store.
struct ReadOptions {
  // Reasoning-mode override. kSaturation is only accepted when the store
  // has a materialized closure (configured kSaturation, or kAuto after the
  // selector materialized one); otherwise Prepare returns
  // FailedPrecondition — building a closure per query would be neither
  // cheap nor the technique the caller asked for. kAuto routes this one
  // query through the strategy selector.
  std::optional<ReasoningMode> mode;
  // Plan-based evaluation override (see SetPlanMode).
  std::optional<bool> plan;
  // Hierarchy-encoding override. `true` requires the store's encoding to
  // be enabled (the encoding permutes the global id space; it cannot be
  // materialized per session) — FailedPrecondition otherwise. `false` on
  // an encoding-enabled store rewrites through a plain (classic)
  // reformulator instead of the interval-collapsing one.
  std::optional<bool> encoding;
  // Union-branch worker threads override (values < 1 clamp to 1).
  std::optional<int> threads;
  // Cooperative cancellation, threaded into the evaluator (see
  // query::EvaluatorOptions): Execute returns Cancelled once `*cancel` is
  // true, DeadlineExceeded once `deadline_nanos` (absolute steady-clock
  // nanos, SteadyNowNanos time base; 0 = none) has passed. Partial rows
  // are discarded, never returned.
  const std::atomic<bool>* cancel = nullptr;
  uint64_t deadline_nanos = 0;
  // Frozen prepare: never rebuild the hierarchy encoding (a rebuild
  // permutes the dictionary id space under every concurrent reader's
  // feet). If the encoding is stale, reformulation falls back to the
  // classic rewriting for this query. The server prepares frozen; its
  // writer refreshes the encoding via Warm() before publishing.
  bool frozen = false;
};

// A parsed, rewritten, ready-to-evaluate query: the output of Prepare()
// and the input of Execute(). Splitting the two is what makes concurrent
// reads safe: Prepare touches shared mutable state (interning query terms
// into the dictionary, filling caches) and must be externally serialized
// with other Prepares; Execute is const and id-pure, so any number of
// Executes run concurrently against a frozen store. A PreparedQuery may
// be Executed repeatedly (the server's per-session plan cache does) as
// long as the store is not updated in between.
struct PreparedQuery {
  ReasoningMode mode = ReasoningMode::kNone;
  // The evaluable form: the parsed query, already reformulated into a UCQ
  // in kReformulation mode.
  query::UnionQuery query;
  // Fully resolved evaluator knobs (dict, cached statistics, cancellation).
  query::EvaluatorOptions eval;
  // Schema snapshot for kBackward (null in other modes). Borrowed from the
  // store's cache; valid until the next update.
  const schema::Schema* schema = nullptr;
  // Datalog translation for kDatalog (null in other modes). Borrowed from
  // the store's cache; valid until the next update.
  const datalog::RdfDatalogTranslation* datalog = nullptr;
  // Set when kAuto routed this query: `mode` above is the routed static
  // mode, and Execute scores the selector's estimate against the actual
  // wall time (wdr.auto.est_error_pct).
  bool via_auto = false;
  double est_seconds = -1;  // selector's estimate for the routed mode
  // Rewrite diagnostics captured at prepare time (kReformulation).
  size_t union_size = 1;
  reformulation::ReformulationStats reformulation;
  double rewrite_seconds = 0;
  // Parse + rewrite wall time, folded into QueryInfo::seconds by Execute.
  double prepare_seconds = 0;
  // Query-log prefill (canonical key, mode, backend, plan/encoding flags);
  // Execute copies and completes it, one appended record per execution.
  obs::QueryLogRecord record;
};

// Per-query diagnostics.
struct QueryInfo {
  ReasoningMode mode = ReasoningMode::kNone;
  size_t union_size = 1;     // UCQ disjuncts evaluated (reformulation)
  double seconds = 0;        // wall-clock, parse included
  // Rewriting shape (kReformulation mode; zeros elsewhere).
  reformulation::ReformulationStats reformulation;
  // Per-operator EXPLAIN-ANALYZE tree; set only when the store's
  // profiling flag is on (see SetProfiling). Render() pretty-prints it.
  std::shared_ptr<obs::ProfileNode> profile;
};

// Counts of applied update operations.
struct UpdateInfo {
  size_t inserted = 0;          // base triples added
  size_t deleted = 0;           // base triples removed
  size_t closure_delta = 0;     // |closure changes| (saturation mode)
  double seconds = 0;
};

// The library's front door: an RDF store whose query answers always
// reflect RDFS entailment, under a pluggable technique. Invariant: for the
// same data, Query() returns the same answers in every reasoning mode
// except kNone (property-tested) — the modes differ only in where the
// reasoning cost is paid, which is the whole subject of the paper.
//
// The store keeps its schema component closed at all times (tiny, and the
// correctness precondition of the rewriting techniques); the base/derived
// schema distinction is tracked so schema deletions retract closure edges.
class ReasoningStore {
 public:
  explicit ReasoningStore(ReasoningStoreOptions options = {});

  // Not copyable (holds a maintained closure); movable.
  ReasoningStore(const ReasoningStore&) = delete;
  ReasoningStore& operator=(const ReasoningStore&) = delete;
  ReasoningStore(ReasoningStore&&) = default;
  ReasoningStore& operator=(ReasoningStore&&) = default;

  // --- Loading ------------------------------------------------------------

  // Parses and inserts data; returns the number of new triples.
  Result<size_t> LoadTurtle(std::string_view text);
  Result<size_t> LoadNTriples(std::string_view text);

  // --- Querying -----------------------------------------------------------

  // Answers a SPARQL BGP/UNION query under the configured mode.
  // Equivalent to Prepare() + Execute(); one query-log record either way.
  Result<query::ResultSet> Query(std::string_view sparql,
                                 QueryInfo* info = nullptr);

  // Parses (interning query terms into the dictionary), resolves the
  // per-read settings against the store's own, and — in reformulation
  // mode — rewrites, yielding a ready-to-evaluate PreparedQuery. MUTATES
  // shared state (dictionary, lazy caches): callers running concurrent
  // reads must serialize all Prepare calls (and DecodeRow) among
  // themselves; see wdr::server::SnapshotStore. A failed Prepare appends
  // its own query-log record (parse errors are queries too).
  Result<PreparedQuery> Prepare(std::string_view sparql,
                                const ReadOptions& options = {});

  // Evaluates a PreparedQuery. Const and touches no lazily-filled cache:
  // safe to call from many threads at once (against a store no writer is
  // mutating), each execution pinning the queried store's epoch for its
  // duration (StoreView::PinEpoch — the flat backend defers compaction
  // while pins are held). Returns Cancelled / DeadlineExceeded and
  // discards rows when the prepared read's cancellation tripped. Appends
  // one query-log record per call.
  Result<query::ResultSet> Execute(const PreparedQuery& prepared,
                                   QueryInfo* info = nullptr) const;

  // Fills every lazy cache the read path can touch — hierarchy encoding
  // (when enabled), schema view, planner statistics, both reformulator
  // flavors — so subsequent frozen Prepares rebuild nothing. The server's
  // writer calls this before publishing a store to readers.
  void Warm();

  // Decodes a result row to N-Triples term strings.
  std::vector<std::string> DecodeRow(const query::Row& row) const;

  // Explains why a triple holds: `ntriples_line` is one N-Triples
  // statement ("<s> <p> <o> ."); the result is a rendered proof from
  // asserted triples through the entailment rules (see reasoning/explain.h
  // — the §II-C "justifications"). Works in every mode (the closure is
  // computed transiently if the store is not in saturation mode). NotFound
  // if the triple is not entailed.
  Result<std::string> ExplainTriple(std::string_view ntriples_line);

  // --- Updating -----------------------------------------------------------

  // Executes a SPARQL UPDATE request: a sequence of
  //   INSERT DATA { <ground triples> }   and
  //   DELETE DATA { <ground triples> }
  // operations (separated by ';'), with PREFIX declarations and Turtle
  // abbreviations allowed inside the blocks. In saturation mode the
  // closure is maintained incrementally (DRed for deletes).
  Result<UpdateInfo> Update(std::string_view sparql_update);

  // Programmatic single-triple updates.
  UpdateInfo Insert(const rdf::Triple& t);
  UpdateInfo Erase(const rdf::Triple& t);

  // --- Mode control ---------------------------------------------------------

  ReasoningMode mode() const { return options_.mode; }

  // Switches technique at run time: entering kSaturation builds the
  // closure; leaving it drops the closure — except into kAuto, which
  // inherits whatever closure exists and hands its lifecycle to the
  // selector (lazy materialization / drop; see DESIGN.md).
  void SetMode(ReasoningMode mode);

  // The most recent kAuto routing decision (the shell's `.why`), or
  // nullopt if no auto-routed query ran yet. Thread-safe against
  // concurrent Prepares.
  std::optional<analysis::RouteDecision> LastAutoDecision() const;

  // The auto-mode selector, created lazily at the first kAuto-routed
  // Prepare (null before that). Exposed for tests and diagnostics.
  const analysis::StrategySelector* selector() const {
    return selector_.get();
  }

  rdf::StorageBackend backend() const { return options_.backend; }

  // Switches the storage engine at run time, carrying the data over (and
  // rebuilding the closure in saturation mode). No-op if unchanged.
  void SetBackend(rdf::StorageBackend backend);

  // Changes the shard count of the sharded base store (values < 1 clamp to
  // 1) and rebuilds the closure in saturation mode. Returns false when the
  // backend is not kSharded. Re-partitioning defers under open scans or
  // epoch pins and applies at the next mutation (see
  // rdf::ShardedStore::SetShardCount); deferral still returns true.
  bool SetShardCount(size_t n);
  size_t shard_count() const {
    const rdf::ShardedStore* s = sharded_store();
    return s == nullptr ? 1 : s->shard_count();
  }
  // The sharded base store, or null when the backend is not kSharded.
  const rdf::ShardedStore* sharded_store() const {
    return dynamic_cast<const rdf::ShardedStore*>(&graph_.store());
  }

  // Sets the saturation worker-thread count for subsequent closure builds
  // and maintenance propagation (values < 1 clamp to 1). Does not trigger
  // a rebuild — the current closure is already correct.
  void SetSaturationThreads(int threads);
  int saturation_threads() const { return options_.saturation.threads; }

  // Sets the worker-thread count for the branches of subsequent union
  // queries (values < 1 clamp to 1) — most useful in kReformulation mode,
  // where reformulated unions carry many branches. Answers are identical
  // at any thread count.
  void SetQueryThreads(int threads);
  int query_threads() const { return options_.query.threads; }

  // Toggles plan-based evaluation: queries (and, in kBackward mode, the
  // chaining join) compile into the shared wdr::exec physical-plan IR with
  // cost-based join order and hash joins. The store lazily builds and
  // caches per-predicate statistics over the queried store (base graph, or
  // the closure in kSaturation mode) and invalidates them on every update,
  // load, mode switch, and backend switch — so the planner always sees
  // fresh statistics and never takes the degraded path. Answers are
  // identical either way.
  void SetPlanMode(bool on) { options_.query.plan = on; }
  bool plan_mode() const { return options_.query.plan; }

  // Toggles the hierarchy-aware id encoding (kReformulation's union
  // collapse; see ReasoningStoreOptions::encoding). Turning it on is lazy:
  // the permutation is built and applied at the next Query(), and rebuilt
  // whenever the schema changes (the encoding is versioned by the store's
  // schema version counter). Turning it off stops the collapse but leaves
  // the current id space in place — a permuted id space is a perfectly
  // valid id space. Answers are identical either way.
  void SetEncoding(bool on);
  bool encoding_enabled() const { return options_.encoding; }
  // The live encoding snapshot, or null when disabled or not yet built.
  const rdf::HierEncoding* encoding() const {
    return encoding_.has_value() ? &*encoding_ : nullptr;
  }
  // Bumped on every schema-changing update; the encoding and the cached
  // Reformulator (whose memo rides on it) are valid iff their recorded
  // version equals this counter.
  uint64_t schema_version() const { return schema_version_; }

  // Toggles per-query operator profiling. When on, Query() fills
  // QueryInfo::profile with a per-operator stats tree. Off by default:
  // profiling adds a timer read per join operator.
  void SetProfiling(bool on) { profiling_ = on; }
  bool profiling() const { return profiling_; }

  // --- Introspection --------------------------------------------------------

  rdf::Graph& graph() { return graph_; }
  const rdf::Graph& graph() const { return graph_; }
  const schema::Vocabulary& vocab() const { return vocab_; }
  // Base triples (user-visible data, including the closed schema).
  size_t size() const { return graph_.size(); }
  // Closure size in saturation mode; base size otherwise.
  size_t effective_size() const;

 private:
  // Replaces the default-constructed sharded base store with one
  // configured from the options (shard count, per-shard backend, broadcast
  // predicates from the vocabulary). No-op unless backend == kSharded.
  void ConfigureShardedStore();

  // Re-closes the schema component after a schema change: previously
  // derived schema edges are retracted and re-derived from the current
  // base schema.
  void RecloseSchema();

  // Invalidate caches after any update.
  void OnUpdate(bool schema_changed);

  const schema::Schema& CachedSchema();

  // Statistics over the queried store: the maintained closure when
  // `over_closure` (the saturation route; requires saturated_), the base
  // graph otherwise. Cached per flavor, invalidated on every update.
  const exec::Statistics& CachedStats(bool over_closure);

  // The encoding for the current schema version (building or rebuilding it
  // if needed), or null when the toggle is off. Rebuilding permutes the
  // dictionary id space — call only at a point where no TermIds are held
  // outside the store (Query() calls it before parsing).
  const rdf::HierEncoding* CachedEncoding();
  void RebuildEncoding();

  // Datalog translation of the current base graph (kDatalog route),
  // rebuilt lazily after updates.
  const datalog::RdfDatalogTranslation& CachedDatalog();

  // Creates the auto-mode selector on first use, seeded with a
  // metrics-derived cost prior.
  analysis::StrategySelector& EnsureSelector();

  // Reformulator snapshot for the current schema version; carries the
  // memoized per-query rewritings until the schema version moves.
  reformulation::Reformulator& CachedReformulator();
  // Like CachedReformulator but always classic (no interval collapse),
  // serving sessions that opt out of the encoding on an encoding-enabled
  // store.
  reformulation::Reformulator& CachedPlainReformulator();

  // Prepare() minus the query-log bookkeeping: fills `record`'s prefix
  // fields (query key, mode, backend, flags) before parsing so the caller
  // can log failures with full context.
  Result<PreparedQuery> PrepareInternal(std::string_view sparql,
                                        const ReadOptions& options,
                                        obs::QueryLogRecord* record);

  // Execute() minus span/record assembly. `collect`, when non-null,
  // receives the evaluator's EvalStats (est-vs-actual cardinality,
  // scan-cache traffic) for the query-log record.
  Result<query::ResultSet> ExecuteInternal(const PreparedQuery& prepared,
                                           QueryInfo* info,
                                           obs::ProfileNode* profile,
                                           query::EvalStats* collect) const;

  ReasoningStoreOptions options_;
  bool profiling_ = false;
  rdf::Graph graph_;
  schema::Vocabulary vocab_;

  // Schema edges present only by entailment (kept closed in graph_).
  std::vector<rdf::Triple> derived_schema_;

  // kSaturation state; in kAuto mode present iff the selector's lazy
  // materialization policy built it.
  std::optional<reasoning::SaturatedGraph> saturated_;

  // Lazily rebuilt constraint view for the rewriting modes.
  std::optional<schema::Schema> schema_cache_;

  // Lazily rebuilt planner statistics, one flavor per queried store (see
  // CachedStats).
  std::optional<exec::Statistics> stats_cache_;          // base graph
  std::optional<exec::Statistics> closure_stats_cache_;  // closure

  // kAuto state: the online selector (lazily created at the first
  // auto-routed Prepare; mutated only on the externally-serialized
  // Prepare/update path) and a short ring of recent routing decisions for
  // `.why` / WHY, behind its own mutex because const readers
  // (LastAutoDecision) run concurrently with Prepares. unique_ptrs keep
  // the store movable.
  std::unique_ptr<analysis::StrategySelector> selector_;
  std::unique_ptr<std::mutex> decisions_mu_ =
      std::make_unique<std::mutex>();
  std::deque<analysis::RouteDecision> decisions_;

  // kDatalog state: the translation of the current base graph (facts baked
  // in), built lazily at the first kDatalog-routed Prepare after each
  // update.
  std::optional<datalog::RdfDatalogTranslation> datalog_cache_;

  // Hierarchy-aware encoding state (see SetEncoding). The version counter
  // starts at 1 so a default-constructed HierEncoding (version 0) always
  // reads as stale.
  uint64_t schema_version_ = 1;
  std::optional<rdf::HierEncoding> encoding_;
  std::optional<reformulation::Reformulator> reformulator_cache_;
  uint64_t reformulator_version_ = 0;
  // Classic (encoding-free) flavor; see CachedPlainReformulator.
  std::optional<reformulation::Reformulator> reformulator_plain_cache_;
  uint64_t reformulator_plain_version_ = 0;
};

}  // namespace wdr::store

#endif  // WDR_STORE_REASONING_STORE_H_
