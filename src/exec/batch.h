// Columnar batch of rows flowing between physical operators. All reasoning
// paths in this repo bind 32-bit ids — rdf::TermId for triple stores,
// datalog::Sym for Datalog relations — so one Value type serves every
// client and batches are plain flat arrays of uint32_t.
#ifndef WDR_EXEC_BATCH_H_
#define WDR_EXEC_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wdr::exec {

// Shared value type: rdf::TermId and datalog::Sym are both uint32_t.
using Value = uint32_t;

// Column index inside a plan's row schema.
using ColId = uint32_t;
inline constexpr ColId kNoColumn = 0xffffffffu;

// Fixed-capacity column-major buffer: column c occupies the contiguous
// range [c * capacity, c * capacity + rows). Operators own one Batch,
// fill it row by row, and push it downstream when full (and once more,
// partially filled, at end of stream).
class Batch {
 public:
  static constexpr size_t kDefaultRows = 1024;

  Batch() = default;
  Batch(size_t width, size_t capacity) { Reset(width, capacity); }

  void Reset(size_t width, size_t capacity) {
    width_ = width;
    capacity_ = capacity;
    rows_ = 0;
    data_.assign(width * capacity, 0);
  }

  size_t width() const { return width_; }
  size_t capacity() const { return capacity_; }
  size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  bool full() const { return rows_ >= capacity_; }

  Value* col(size_t c) { return data_.data() + c * capacity_; }
  const Value* col(size_t c) const { return data_.data() + c * capacity_; }

  Value at(size_t c, size_t r) const { return data_[c * capacity_ + r]; }
  Value& at(size_t c, size_t r) { return data_[c * capacity_ + r]; }

  void set_rows(size_t n) { rows_ = n; }
  void Clear() { rows_ = 0; }

 private:
  size_t width_ = 0;
  size_t capacity_ = 0;
  size_t rows_ = 0;
  std::vector<Value> data_;
};

}  // namespace wdr::exec

#endif  // WDR_EXEC_BATCH_H_
