#include "exec/planner.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "exec/source.h"

namespace wdr::exec {
namespace {

using VarCols = std::unordered_map<uint32_t, ColId>;
using PresetMap = std::unordered_map<uint32_t, Value>;

// All variable keys a conjunct can bind, across alternatives (pattern
// positions and unification-grounded variables alike).
std::unordered_set<uint32_t> ConjunctVars(const PlanConjunct& conjunct) {
  std::unordered_set<uint32_t> vars;
  for (const AtomAlt& alt : conjunct.alts) {
    for (const AtomTerm& term : alt.terms) {
      if (term.kind == AtomTerm::Kind::kVar) vars.insert(term.var);
    }
    for (const auto& [var, value] : alt.var_eq) {
      (void)value;
      vars.insert(var);
    }
  }
  return vars;
}

// Estimated matches of one alternative given the currently bound
// variables. Presets count as known constants, pipeline-bound variables as
// run-time-bound, everything else as wild.
double AltEstimate(const AtomAlt& alt, size_t source,
                   const CardinalityEstimator& estimator,
                   const PresetMap& presets, const VarCols& bound) {
  const size_t arity = alt.terms.size();
  std::vector<Value> values(arity, 0);
  std::vector<Value> values_hi(arity, 0);
  std::vector<uint8_t> modes(arity, CardinalityEstimator::kWild);
  for (size_t i = 0; i < arity; ++i) {
    const AtomTerm& term = alt.terms[i];
    switch (term.kind) {
      case AtomTerm::Kind::kConst:
        values[i] = term.value;
        modes[i] = CardinalityEstimator::kConst;
        break;
      case AtomTerm::Kind::kVar: {
        auto preset = presets.find(term.var);
        if (preset != presets.end()) {
          values[i] = preset->second;
          modes[i] = CardinalityEstimator::kConst;
        } else if (bound.count(term.var) != 0) {
          modes[i] = CardinalityEstimator::kRuntime;
        }
        break;
      }
      case AtomTerm::Kind::kRange:
        values[i] = term.value;
        values_hi[i] = term.value2;
        modes[i] = CardinalityEstimator::kRange;
        break;
      case AtomTerm::Kind::kAny:
        break;
    }
  }
  return estimator.Estimate(source, values.data(), values_hi.data(),
                            modes.data(), arity);
}

double ConjunctEstimate(const PlanConjunct& conjunct,
                        const CardinalityEstimator& estimator,
                        const PresetMap& presets, const VarCols& bound) {
  double total = 0;
  for (const AtomAlt& alt : conjunct.alts) {
    total += AltEstimate(alt, conjunct.source, estimator, presets, bound);
  }
  return total;
}

// Fewest positions an alternative of this conjunct leaves unbound — the
// bound-first ranking signal of the degraded path.
size_t MinUnboundPositions(const PlanConjunct& conjunct,
                           const PresetMap& presets, const VarCols& bound) {
  size_t best = std::numeric_limits<size_t>::max();
  for (const AtomAlt& alt : conjunct.alts) {
    size_t unbound = 0;
    for (const AtomTerm& term : alt.terms) {
      // kAny carries no constraint; kConst and kRange positions are
      // constrained by the pattern itself and never count as unbound.
      if (term.kind == AtomTerm::Kind::kVar && presets.count(term.var) == 0 &&
          bound.count(term.var) == 0) {
        ++unbound;
      }
    }
    best = std::min(best, unbound);
  }
  return best;
}

// Lowers one conjunct into the alts of a scan or bound-loop node.
// `base_col` is the first output column this node may assign (0 for a leaf
// scan or a hash-join build side, the input width for a bound loop);
// `var_col` maps upstream-bound variables (inputs for a bound loop; empty
// for leaves). Newly bound variables are appended to `produced` in
// deterministic first-appearance order. `extra_presets` materializes
// preset variables as constant columns (only used on the plan's first
// node, for projected presets).
struct LoweredConjunct {
  std::vector<ScanAlt> alts;
  std::vector<std::pair<uint32_t, ColId>> produced;  // var → new column
};

LoweredConjunct LowerConjunct(
    const PlanConjunct& conjunct, ColId base_col, const VarCols& var_col,
    const PresetMap& presets, bool allow_inputs,
    const std::vector<std::pair<uint32_t, Value>>& extra_presets) {
  LoweredConjunct out;
  VarCols new_cols;
  ColId next = base_col;
  auto col_of_new = [&](uint32_t var) {
    auto it = new_cols.find(var);
    if (it != new_cols.end()) return it->second;
    const ColId col = next++;
    new_cols.emplace(var, col);
    out.produced.emplace_back(var, col);
    return col;
  };
  // Pass 1: fix the produced-column layout (shared by every alternative).
  for (const AtomAlt& alt : conjunct.alts) {
    for (const AtomTerm& term : alt.terms) {
      if (term.kind != AtomTerm::Kind::kVar) continue;
      if (presets.count(term.var) != 0 || var_col.count(term.var) != 0) {
        continue;
      }
      col_of_new(term.var);
    }
    for (const auto& [var, value] : alt.var_eq) {
      (void)value;
      if (presets.count(var) != 0 || var_col.count(var) != 0) continue;
      col_of_new(var);
    }
  }
  for (const auto& [var, value] : extra_presets) {
    (void)value;
    col_of_new(var);
  }
  // Pass 2: lower each alternative against that layout.
  for (const AtomAlt& alt : conjunct.alts) {
    ScanAlt lowered;
    lowered.slots.reserve(alt.terms.size());
    bool impossible = false;
    std::unordered_set<uint32_t> covered;
    // Variables this alternative grounds via unification: any pattern
    // position they occupy must scan as that constant (binding the
    // variable first, then matching — the legacy semantics), not as an
    // unconstrained output that a preset would silently overwrite.
    PresetMap eq;
    for (const auto& [var, value] : alt.var_eq) {
      if (presets.count(var) != 0 || var_col.count(var) != 0) continue;
      auto [it, inserted] = eq.emplace(var, value);
      if (!inserted && it->second != value) impossible = true;
    }
    for (const AtomTerm& term : alt.terms) {
      switch (term.kind) {
        case AtomTerm::Kind::kConst:
          lowered.slots.push_back(Slot::Const(term.value));
          break;
        case AtomTerm::Kind::kVar: {
          auto preset = presets.find(term.var);
          if (preset != presets.end()) {
            lowered.slots.push_back(Slot::Const(preset->second));
          } else if (auto it = var_col.find(term.var); it != var_col.end()) {
            lowered.slots.push_back(Slot::Input(it->second));
          } else if (auto eqit = eq.find(term.var); eqit != eq.end()) {
            lowered.slots.push_back(Slot::Const(eqit->second));
          } else {
            lowered.slots.push_back(Slot::Output(new_cols.at(term.var)));
            covered.insert(term.var);
          }
          break;
        }
        case AtomTerm::Kind::kRange:
          lowered.slots.push_back(Slot::Range(term.value, term.value2));
          break;
        case AtomTerm::Kind::kAny:
          lowered.slots.push_back(Slot::Any());
          break;
      }
    }
    for (const auto& [var, value] : alt.var_eq) {
      auto preset = presets.find(var);
      if (preset != presets.end()) {
        // Both sides constant: decidable now.
        if (preset->second != value) impossible = true;
        continue;
      }
      if (auto it = var_col.find(var); it != var_col.end()) {
        if (!allow_inputs) {
          impossible = true;  // leaf cannot check an upstream column
          continue;
        }
        lowered.checks.emplace_back(it->second, value);
        continue;
      }
      if (covered.insert(var).second) {
        lowered.presets.emplace_back(new_cols.at(var), value);
      }
    }
    if (impossible) continue;
    // A produced column this alternative neither scans nor grounds stays
    // null, matching the legacy unbound-variable behaviour.
    for (const auto& [var, col] : out.produced) {
      if (covered.count(var) != 0) continue;
      bool in_extra = false;
      for (const auto& [pvar, pvalue] : extra_presets) {
        (void)pvalue;
        if (pvar == var) in_extra = true;
      }
      if (in_extra) continue;
      lowered.presets.emplace_back(col, 0);
    }
    for (const auto& [var, value] : extra_presets) {
      lowered.presets.emplace_back(new_cols.at(var), value);
    }
    out.alts.push_back(std::move(lowered));
  }
  return out;
}

// Wraps a leaf scan of the planner's partitioned source in a kExchange
// gather node with per-partition row estimates. Only single-alternative
// leaves qualify (BGP and Datalog atoms; backward-chaining multi-alt
// leaves mix patterns with different splits) and only when every slot is
// decided at plan time (no kInput probes).
std::unique_ptr<PlanNode> WrapExchange(std::unique_ptr<PlanNode> leaf,
                                       const PlannerOptions& options) {
  const PartitionedSource* part = options.partitioned;
  if (part == nullptr || leaf->source != options.partitioned_source ||
      leaf->alts.size() != 1 || part->PartitionCount() <= 1) {
    return leaf;
  }
  const ScanAlt& alt = leaf->alts[0];
  const size_t arity = alt.slots.size();
  std::vector<Value> values(arity, 0);
  std::vector<Value> values_hi(arity, 0);
  std::vector<uint8_t> bound(arity, TupleSource::kUnbound);
  for (size_t i = 0; i < arity; ++i) {
    const Slot& slot = alt.slots[i];
    switch (slot.kind) {
      case Slot::Kind::kConst:
        values[i] = slot.value;
        bound[i] = TupleSource::kPoint;
        break;
      case Slot::Kind::kRange:
        values[i] = slot.value;
        values_hi[i] = slot.value2;
        bound[i] = TupleSource::kRange;
        break;
      case Slot::Kind::kInput:
        return leaf;  // per-row binding: split unknown while planning
      case Slot::Kind::kOutput:
      case Slot::Kind::kAny:
        break;
    }
  }
  auto exchange = std::make_unique<PlanNode>(OpKind::kExchange);
  exchange->width = leaf->width;
  exchange->est_rows = leaf->est_rows;
  exchange->source = leaf->source;
  const size_t parts = part->PartitionCount();
  exchange->fragment_est.reserve(parts);
  for (size_t i = 0; i < parts; ++i) {
    exchange->fragment_est.push_back(part->EstimatePartition(
        i, values.data(), values_hi.data(), bound.data()));
  }
  exchange->label = "exchange[" + leaf->label + "]";
  exchange->children.push_back(std::move(leaf));
  return exchange;
}

}  // namespace

double StatisticsEstimator::Estimate(size_t /*source*/, const Value* values,
                                     const Value* values_hi,
                                     const uint8_t* modes,
                                     size_t /*arity*/) const {
  auto mode = [](uint8_t m) {
    switch (m) {
      case CardinalityEstimator::kConst:
        return BoundMode::kConst;
      case CardinalityEstimator::kRuntime:
        return BoundMode::kRuntime;
      case CardinalityEstimator::kRange:
        return BoundMode::kRange;
      default:
        return BoundMode::kWild;
    }
  };
  auto hi = [&](size_t i) {
    return modes[i] == CardinalityEstimator::kRange ? values_hi[i] : values[i];
  };
  return stats_->EstimateRange(mode(modes[0]), mode(modes[1]), values[1],
                               hi(1), mode(modes[2]), values[2], hi(2));
}

CompiledPlan PlanConjunctive(const ConjunctiveSpec& spec,
                             const PlannerOptions& options) {
  CompiledPlan compiled;
  if (spec.conjuncts.empty() || options.estimator == nullptr) return compiled;
  const CardinalityEstimator& estimator = *options.estimator;

  PresetMap presets;
  for (const auto& [var, value] : spec.presets) presets.emplace(var, value);
  // Projected preset variables must be materialized as columns; the
  // plan's first node emits them as per-row constants.
  std::vector<std::pair<uint32_t, Value>> projected_presets;
  for (uint32_t var : spec.projection) {
    auto it = presets.find(var);
    if (it == presets.end()) continue;
    bool already = false;
    for (const auto& [pvar, pvalue] : projected_presets) {
      (void)pvalue;
      if (pvar == var) already = true;
    }
    if (!already) projected_presets.emplace_back(var, it->second);
  }

  const size_t n = spec.conjuncts.size();
  std::vector<bool> placed(n, false);
  VarCols var_col;
  std::unique_ptr<PlanNode> root;
  double current_est = -1;

  // Solo (nothing bound) estimates drive both the first pick and the
  // hash-join build-side cost.
  std::vector<double> solo(n, 0);
  for (size_t i = 0; i < n; ++i) {
    solo[i] = ConjunctEstimate(spec.conjuncts[i], estimator, presets, {});
  }

  for (size_t step = 0; step < n; ++step) {
    // --- Pick the next conjunct. ---------------------------------------
    size_t pick = n;
    double pick_probe = -1;
    bool pick_connected = false;
    if (root == nullptr) {
      for (size_t i = 0; i < n; ++i) {
        if (pick == n || solo[i] < solo[pick]) pick = i;
      }
    } else if (options.cost_based) {
      double best_out = 0;
      for (size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        const auto vars = ConjunctVars(spec.conjuncts[i]);
        bool connected = false;
        for (uint32_t v : vars) {
          if (var_col.count(v) != 0) connected = true;
        }
        const double probe = connected
                                 ? ConjunctEstimate(spec.conjuncts[i],
                                                    estimator, presets, var_col)
                                 : solo[i];
        const double out_est = current_est * probe;
        // Prefer any connected conjunct over a cartesian product.
        const bool better =
            pick == n || (connected && !pick_connected) ||
            (connected == pick_connected && out_est < best_out);
        if (better) {
          pick = i;
          best_out = out_est;
          pick_probe = probe;
          pick_connected = connected;
        }
      }
    } else {
      // Degraded path: greedy bound-first — prefer connected conjuncts
      // with the fewest unbound positions, then the smallest solo
      // estimate, then written order.
      size_t best_unbound = 0;
      double best_solo = 0;
      for (size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        const auto vars = ConjunctVars(spec.conjuncts[i]);
        bool connected = false;
        for (uint32_t v : vars) {
          if (var_col.count(v) != 0) connected = true;
        }
        const size_t unbound =
            MinUnboundPositions(spec.conjuncts[i], presets, var_col);
        const bool better =
            pick == n || (connected && !pick_connected) ||
            (connected == pick_connected &&
             (unbound < best_unbound ||
              (unbound == best_unbound && solo[i] < best_solo)));
        if (better) {
          pick = i;
          best_unbound = unbound;
          best_solo = solo[i];
          pick_connected = connected;
        }
      }
    }
    const PlanConjunct& conjunct = spec.conjuncts[pick];
    placed[pick] = true;

    // --- Build the operator. -------------------------------------------
    if (root == nullptr) {
      LoweredConjunct lowered =
          LowerConjunct(conjunct, 0, {}, presets, /*allow_inputs=*/false,
                        projected_presets);
      auto node = std::make_unique<PlanNode>(OpKind::kIndexScan);
      node->source = conjunct.source;
      node->alts = std::move(lowered.alts);
      node->width = static_cast<uint32_t>(lowered.produced.size());
      node->est_rows = solo[pick];
      node->label = conjunct.label;
      for (const auto& [var, col] : lowered.produced) var_col[var] = col;
      root = WrapExchange(std::move(node), options);
      current_est = solo[pick];
      continue;
    }

    const uint32_t in_width = root->width;
    // Hash join when the one-off build of the right side is cheaper than
    // an index seek per outer row. Requires at least one equality key and
    // a single alternative-compatible build scan (always expressible).
    bool use_hash = false;
    if (options.cost_based && options.hash_joins && pick_connected) {
      const double bnl_cost =
          current_est * (options.index_seek_cost + pick_probe);
      const double hash_cost = options.hash_build_cost * solo[pick] +
                               current_est * (1.0 + pick_probe);
      use_hash = hash_cost < bnl_cost;
    }

    if (use_hash) {
      // Build side: an independent leaf scan of the conjunct; shared
      // variables become build columns paired with their probe columns.
      LoweredConjunct lowered =
          LowerConjunct(conjunct, 0, {}, presets, /*allow_inputs=*/false, {});
      auto build = std::make_unique<PlanNode>(OpKind::kIndexScan);
      build->source = conjunct.source;
      build->alts = std::move(lowered.alts);
      build->width = static_cast<uint32_t>(lowered.produced.size());
      build->est_rows = solo[pick];
      build->label = conjunct.label;

      auto join = std::make_unique<PlanNode>(OpKind::kHashJoin);
      for (const auto& [var, col] : lowered.produced) {
        auto it = var_col.find(var);
        if (it != var_col.end()) {
          join->keys.emplace_back(it->second, col);
        } else {
          join->payload.push_back(col);
        }
      }
      if (join->keys.empty()) {
        // No shared column surfaced (can happen when sharing is only via
        // var_eq constants): fall back to a bound loop below.
        use_hash = false;
      } else {
        ColId out_col = in_width;
        for (const auto& [var, col] : lowered.produced) {
          if (var_col.count(var) != 0) continue;
          var_col[var] = out_col++;
        }
        join->width = in_width + static_cast<uint32_t>(join->payload.size());
        join->est_rows = current_est * pick_probe;
        join->label = "hash_join[" + conjunct.label + "]";
        join->children.push_back(std::move(root));
        join->children.push_back(WrapExchange(std::move(build), options));
        root = std::move(join);
        compiled.used_hash_join = true;
      }
    }
    if (!use_hash) {
      LoweredConjunct lowered = LowerConjunct(
          conjunct, in_width, var_col, presets, /*allow_inputs=*/true, {});
      auto node = std::make_unique<PlanNode>(OpKind::kBoundNestedLoopJoin);
      node->source = conjunct.source;
      node->alts = std::move(lowered.alts);
      node->width = in_width + static_cast<uint32_t>(lowered.produced.size());
      node->est_rows =
          options.cost_based && pick_probe >= 0 ? current_est * pick_probe : -1;
      node->label = "bound_loop[" + conjunct.label + "]";
      for (const auto& [var, col] : lowered.produced) var_col[var] = col;
      node->children.push_back(std::move(root));
      root = std::move(node);
    }
    if (options.cost_based) {
      current_est *= pick_probe >= 0 ? pick_probe : solo[pick];
    }
  }

  if (!options.cost_based) current_est = -1;

  // --- Projection / dedup / limit tail. --------------------------------
  auto project = std::make_unique<PlanNode>(OpKind::kProject);
  project->width = static_cast<uint32_t>(spec.projection.size());
  for (uint32_t var : spec.projection) {
    auto it = var_col.find(var);
    project->cols.push_back(it == var_col.end() ? kNoColumn : it->second);
  }
  project->est_rows = current_est;
  project->label = "project";
  project->children.push_back(std::move(root));
  root = std::move(project);

  if (spec.distinct) {
    auto dedup = std::make_unique<PlanNode>(OpKind::kHashDedup);
    dedup->width = root->width;
    dedup->est_rows = current_est;
    dedup->label = "dedup";
    dedup->children.push_back(std::move(root));
    root = std::move(dedup);
  }
  if (spec.limit != SIZE_MAX || spec.offset != 0) {
    auto limit = std::make_unique<PlanNode>(OpKind::kLimit);
    limit->width = root->width;
    limit->limit = spec.limit;
    limit->offset = spec.offset;
    limit->est_rows = current_est < 0
                          ? -1
                          : std::min(current_est,
                                     static_cast<double>(
                                         spec.limit == SIZE_MAX
                                             ? std::numeric_limits<
                                                   double>::max()
                                             : static_cast<double>(spec.limit)));
    limit->label = "limit";
    limit->children.push_back(std::move(root));
    root = std::move(limit);
  }

  compiled.root = std::move(root);
  compiled.est_rows = current_est;
  return compiled;
}

}  // namespace wdr::exec
