// Batch-at-a-time push executor for the physical-plan IR. Operators are
// run depth-first; each owns one output Batch it fills and pushes
// downstream when full. Output order is deterministic for a fixed plan,
// source contents, and batch size: scans stream sources in index order,
// bound loops preserve outer order, and hash joins keep build-side
// insertion order inside each bucket while streaming the probe side in
// order.
#ifndef WDR_EXEC_EXECUTOR_H_
#define WDR_EXEC_EXECUTOR_H_

#include <cstddef>
#include <vector>

#include "exec/batch.h"
#include "exec/plan.h"
#include "exec/source.h"
#include "obs/profile.h"

namespace wdr::exec {

struct ExecOptions {
  size_t batch_rows = Batch::kDefaultRows;
};

// Per-row output callback: `row` holds `width` values laid out in the
// plan root's column order. Return false to stop execution early (ASK,
// LIMIT reached upstream in the driving evaluator).
using RowSink = FunctionRef<bool(const Value* row, size_t width)>;

// Runs `plan` against `sources` (indexed by PlanNode::source), streaming
// result rows to `emit` in deterministic order. When `profile` is
// non-null, one child per plan node is appended under it with estimated
// vs. actual cardinalities (and scan/triple counts for scan operators).
// Returns false iff `emit` requested an early stop.
bool Run(const PlanNode& plan, const std::vector<const TupleSource*>& sources,
         const ExecOptions& options, RowSink emit,
         obs::ProfileNode* profile = nullptr);

}  // namespace wdr::exec

#endif  // WDR_EXEC_EXECUTOR_H_
