#include "exec/statistics.h"

#include <algorithm>

namespace wdr::exec {
namespace {

double PerPredicate(const PredicateStats& ps, bool s_bound, bool o_bound) {
  double est = static_cast<double>(ps.count);
  if (s_bound) est /= static_cast<double>(std::max<uint64_t>(1, ps.distinct_subjects));
  if (o_bound) est /= static_cast<double>(std::max<uint64_t>(1, ps.distinct_objects));
  return est;
}

// Redistributes `hist` over [old_min, old_max] proportionally into
// `out` over [new_min, new_max] (a superset interval).
void RebinInto(const std::vector<uint32_t>& hist, Value old_min, Value old_max,
               std::vector<uint32_t>& out, Value new_min, Value new_max) {
  if (hist.empty()) return;
  const double old_w =
      (static_cast<double>(old_max) - old_min + 1) / hist.size();
  const double new_w =
      (static_cast<double>(new_max) - new_min + 1) / out.size();
  for (size_t b = 0; b < hist.size(); ++b) {
    if (hist[b] == 0) continue;
    // Drop the whole old bucket into the new bucket holding its midpoint;
    // finer splitting buys nothing at equal bucket counts.
    const double mid = static_cast<double>(old_min) + old_w * (b + 0.5);
    auto nb = static_cast<size_t>((mid - new_min) / new_w);
    if (nb >= out.size()) nb = out.size() - 1;
    out[nb] += hist[b];
  }
}

}  // namespace

void Statistics::Merge(const Statistics& other) {
  total_ += other.total_;
  for (const auto& [pred, theirs] : other.preds_) {
    auto [it, inserted] = preds_.try_emplace(pred, theirs);
    if (inserted) continue;
    PredicateStats& ours = it->second;
    ours.count += theirs.count;
    ours.distinct_subjects += theirs.distinct_subjects;
    ours.distinct_objects = std::min(
        ours.count, ours.distinct_objects + theirs.distinct_objects);
    if (theirs.obj_hist.empty()) continue;
    if (ours.obj_hist.empty()) {
      ours.obj_min = theirs.obj_min;
      ours.obj_max = theirs.obj_max;
      ours.obj_hist = theirs.obj_hist;
      continue;
    }
    const Value mn = std::min(ours.obj_min, theirs.obj_min);
    const Value mx = std::max(ours.obj_max, theirs.obj_max);
    std::vector<uint32_t> merged(kObjectHistogramBuckets, 0);
    RebinInto(ours.obj_hist, ours.obj_min, ours.obj_max, merged, mn, mx);
    RebinInto(theirs.obj_hist, theirs.obj_min, theirs.obj_max, merged, mn, mx);
    ours.obj_min = mn;
    ours.obj_max = mx;
    ours.obj_hist = std::move(merged);
  }
}

double Statistics::Estimate(BoundMode s, BoundMode p, Value p_value,
                            BoundMode o) const {
  const bool s_bound = s != BoundMode::kWild;
  const bool o_bound = o != BoundMode::kWild;
  if (p == BoundMode::kConst) {
    const PredicateStats* ps = Predicate(p_value);
    return ps == nullptr ? 0.0 : PerPredicate(*ps, s_bound, o_bound);
  }
  double total = 0;
  for (const auto& [pred, ps] : preds_) {
    total += PerPredicate(ps, s_bound, o_bound);
  }
  if (p == BoundMode::kRuntime && !preds_.empty()) {
    total /= static_cast<double>(preds_.size());
  }
  return total;
}

double Statistics::ObjectRangeEstimate(const PredicateStats& ps, Value lo,
                                       Value hi) {
  if (ps.obj_hist.empty() || hi < ps.obj_min || lo > ps.obj_max || hi < lo) {
    return 0.0;
  }
  const double clip_lo = std::max<double>(lo, ps.obj_min);
  const double clip_hi = std::min<double>(hi, ps.obj_max);
  const double width = static_cast<double>(ps.obj_max) - ps.obj_min + 1;
  const double bucket_w = width / static_cast<double>(ps.obj_hist.size());
  double distinct_in = 0;
  for (size_t b = 0; b < ps.obj_hist.size(); ++b) {
    if (ps.obj_hist[b] == 0) continue;
    const double b_lo = static_cast<double>(ps.obj_min) + bucket_w * b;
    const double b_hi = b_lo + bucket_w;
    const double overlap =
        std::min(clip_hi + 1, b_hi) - std::max(clip_lo, b_lo);
    if (overlap <= 0) continue;
    distinct_in += ps.obj_hist[b] * std::min(1.0, overlap / bucket_w);
  }
  // In-range distinct objects times the average multiplicity per object.
  return distinct_in * static_cast<double>(ps.count) /
         static_cast<double>(std::max<uint64_t>(1, ps.distinct_objects));
}

double Statistics::EstimateRange(BoundMode s, BoundMode p, Value p_lo,
                                 Value p_hi, BoundMode o, Value o_lo,
                                 Value o_hi) const {
  // kRange subjects price as wild: there is no subject histogram, and
  // over-estimating keeps the planner conservative.
  const bool s_bound = s == BoundMode::kConst || s == BoundMode::kRuntime;
  const bool o_point = o == BoundMode::kConst || o == BoundMode::kRuntime;
  auto per_pred = [&](const PredicateStats& ps) {
    double est;
    if (o == BoundMode::kRange) {
      est = ObjectRangeEstimate(ps, o_lo, o_hi);
    } else {
      est = static_cast<double>(ps.count);
      if (o_point) {
        est /= static_cast<double>(
            std::max<uint64_t>(1, ps.distinct_objects));
      }
    }
    if (s_bound) {
      est /= static_cast<double>(
          std::max<uint64_t>(1, ps.distinct_subjects));
    }
    return est;
  };
  if (p == BoundMode::kConst) {
    const PredicateStats* ps = Predicate(p_lo);
    return ps == nullptr ? 0.0 : per_pred(*ps);
  }
  if (p == BoundMode::kRange) {
    double total = 0;
    for (const auto& [pred, ps] : preds_) {
      if (pred >= p_lo && pred <= p_hi) total += per_pred(ps);
    }
    return total;
  }
  double total = 0;
  for (const auto& [pred, ps] : preds_) total += per_pred(ps);
  if (p == BoundMode::kRuntime && !preds_.empty()) {
    total /= static_cast<double>(preds_.size());
  }
  return total;
}

}  // namespace wdr::exec
