#include "exec/statistics.h"

#include <algorithm>

namespace wdr::exec {
namespace {

double PerPredicate(const PredicateStats& ps, bool s_bound, bool o_bound) {
  double est = static_cast<double>(ps.count);
  if (s_bound) est /= static_cast<double>(std::max<uint64_t>(1, ps.distinct_subjects));
  if (o_bound) est /= static_cast<double>(std::max<uint64_t>(1, ps.distinct_objects));
  return est;
}

}  // namespace

double Statistics::Estimate(BoundMode s, BoundMode p, Value p_value,
                            BoundMode o) const {
  const bool s_bound = s != BoundMode::kWild;
  const bool o_bound = o != BoundMode::kWild;
  if (p == BoundMode::kConst) {
    const PredicateStats* ps = Predicate(p_value);
    return ps == nullptr ? 0.0 : PerPredicate(*ps, s_bound, o_bound);
  }
  double total = 0;
  for (const auto& [pred, ps] : preds_) {
    total += PerPredicate(ps, s_bound, o_bound);
  }
  if (p == BoundMode::kRuntime && !preds_.empty()) {
    total /= static_cast<double>(preds_.size());
  }
  return total;
}

}  // namespace wdr::exec
