#include "exec/executor.h"

#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wdr::exec {
namespace {

// Batch-level sink between operators. Returns false to stop the producer.
using BatchSink = std::function<bool(Batch&)>;

uint64_t Mix(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

// A ScanAlt lowered against a concrete source arity: constants baked into
// the pattern buffer, input/output positions split out, and repeated
// output columns turned into tuple-level equality checks.
struct CompiledAlt {
  std::vector<Value> values;
  std::vector<Value> values_hi;  // kRange upper bounds (parallel to values)
  std::vector<uint8_t> bound;
  bool has_range = false;  // any bound[i] == TupleSource::kRange
  std::vector<std::pair<uint32_t, ColId>> inputs;      // src pos ← input col
  std::vector<std::pair<ColId, uint32_t>> outputs;     // out col ← src pos
  std::vector<std::pair<uint32_t, uint32_t>> repeats;  // tuple[a] == tuple[b]
  const ScanAlt* alt = nullptr;

  // Routes through the range entry point only when a range is present, so
  // point-only plans keep the exact pre-range call path.
  bool Scan(const TupleSource& src,
            FunctionRef<bool(const Value*)> fn) const {
    if (has_range) {
      return src.ScanRange(values.data(), values_hi.data(), bound.data(), fn);
    }
    return src.Scan(values.data(), bound.data(), fn);
  }
};

CompiledAlt CompileAlt(const ScanAlt& alt) {
  CompiledAlt c;
  c.alt = &alt;
  const size_t arity = alt.slots.size();
  c.values.assign(arity, 0);
  c.values_hi.assign(arity, 0);
  c.bound.assign(arity, 0);
  // First source position already bound to each output column, to catch a
  // variable repeated inside one atom.
  std::vector<std::pair<ColId, uint32_t>> first_pos;
  for (uint32_t i = 0; i < arity; ++i) {
    const Slot& slot = alt.slots[i];
    switch (slot.kind) {
      case Slot::Kind::kConst:
        c.values[i] = slot.value;
        c.bound[i] = 1;
        break;
      case Slot::Kind::kInput:
        c.bound[i] = 1;
        c.inputs.emplace_back(i, slot.col);
        break;
      case Slot::Kind::kOutput: {
        bool seen = false;
        for (const auto& [col, pos] : first_pos) {
          if (col == slot.col) {
            c.repeats.emplace_back(pos, i);
            seen = true;
            break;
          }
        }
        if (!seen) {
          first_pos.emplace_back(slot.col, i);
          c.outputs.emplace_back(slot.col, i);
        }
        break;
      }
      case Slot::Kind::kRange:
        c.values[i] = slot.value;
        c.values_hi[i] = slot.value2;
        c.bound[i] = TupleSource::kRange;
        c.has_range = true;
        break;
      case Slot::Kind::kAny:
        break;
    }
  }
  return c;
}

class Executor {
 public:
  Executor(const std::vector<const TupleSource*>& sources,
           const ExecOptions& options)
      : sources_(sources),
        batch_rows_(options.batch_rows == 0 ? 1 : options.batch_rows) {}

  uint64_t scans = 0;
  uint64_t triples = 0;
  uint64_t batches = 0;
  uint64_t hash_build_rows = 0;
  uint64_t exchange_rows = 0;
  uint64_t exchange_bytes = 0;

  bool RunNode(const PlanNode& node, obs::ProfileNode* profile,
               const BatchSink& sink) {
    obs::ProfileNode* stats = nullptr;
    if (profile != nullptr) {
      stats = &profile->AddChild(node.label.empty() ? OpKindName(node.kind)
                                                    : node.label);
      stats->est_rows = node.est_rows;
    }
    switch (node.kind) {
      case OpKind::kIndexScan:
        return RunScan(node, stats, sink);
      case OpKind::kBoundNestedLoopJoin:
        return RunBoundLoop(node, stats, sink);
      case OpKind::kHashJoin:
        return RunHashJoin(node, stats, sink);
      case OpKind::kFilter:
        return RunFilter(node, stats, sink);
      case OpKind::kProject:
        return RunProject(node, stats, sink);
      case OpKind::kHashDedup:
        return RunDedup(node, stats, sink);
      case OpKind::kUnion:
        return RunUnion(node, stats, sink);
      case OpKind::kLimit:
        return RunLimit(node, stats, sink);
      case OpKind::kExchange:
        return RunExchange(node, stats, sink);
    }
    return true;
  }

 private:
  // Pushes a (possibly partial) batch downstream and resets it. Returns
  // false when the consumer wants no more rows.
  bool Flush(Batch& out, obs::ProfileNode* stats, const BatchSink& sink) {
    if (out.empty()) return true;
    if (stats != nullptr) stats->rows += out.rows();
    ++batches;
    const bool keep = sink(out);
    out.Clear();
    return keep;
  }

  bool RunScan(const PlanNode& node, obs::ProfileNode* stats,
               const BatchSink& sink) {
    const TupleSource& src = *sources_[node.source];
    Batch out(node.width, batch_rows_);
    bool keep = true;
    for (const ScanAlt& alt : node.alts) {
      if (!keep) break;
      CompiledAlt c = CompileAlt(alt);
      ++scans;
      if (stats != nullptr) ++stats->scans;
      c.Scan(src, [&](const Value* tuple) {
        ++triples;
        if (stats != nullptr) ++stats->triples;
        for (const auto& [a, b] : c.repeats) {
          if (tuple[a] != tuple[b]) return true;
        }
        const size_t r = out.rows();
        for (const auto& [col, pos] : c.outputs) out.at(col, r) = tuple[pos];
        for (const auto& [col, v] : alt.presets) out.at(col, r) = v;
        out.set_rows(r + 1);
        if (out.full()) keep = Flush(out, stats, sink);
        return keep;
      });
    }
    if (keep) keep = Flush(out, stats, sink);
    return keep;
  }

  bool RunBoundLoop(const PlanNode& node, obs::ProfileNode* stats,
                    const BatchSink& sink) {
    const TupleSource& src = *sources_[node.source];
    const size_t in_width = node.children[0]->width;
    std::vector<CompiledAlt> alts;
    alts.reserve(node.alts.size());
    for (const ScanAlt& alt : node.alts) alts.push_back(CompileAlt(alt));

    Batch out(node.width, batch_rows_);
    bool keep = true;  // declared before the lambda below runs inside RunNode
    RunNode(*node.children[0], stats, [&](Batch& in) {
      for (size_t r = 0; r < in.rows(); ++r) {
        for (CompiledAlt& c : alts) {
          bool applies = true;
          for (const auto& [col, v] : c.alt->checks) {
            if (in.at(col, r) != v) {
              applies = false;
              break;
            }
          }
          if (!applies) continue;
          for (const auto& [pos, col] : c.inputs) {
            c.values[pos] = in.at(col, r);
          }
          ++scans;
          if (stats != nullptr) ++stats->scans;
          c.Scan(src, [&](const Value* tuple) {
            ++triples;
            if (stats != nullptr) ++stats->triples;
            for (const auto& [a, b] : c.repeats) {
              if (tuple[a] != tuple[b]) return true;
            }
            const size_t o = out.rows();
            for (size_t col = 0; col < in_width; ++col) {
              out.at(col, o) = in.at(col, r);
            }
            for (const auto& [col, pos] : c.outputs) {
              out.at(col, o) = tuple[pos];
            }
            for (const auto& [col, v] : c.alt->presets) out.at(col, o) = v;
            out.set_rows(o + 1);
            if (out.full()) keep = Flush(out, stats, sink);
            return keep;
          });
          if (!keep) return false;
        }
      }
      return true;
    });
    if (keep) keep = Flush(out, stats, sink);
    return keep;
  }

  bool RunHashJoin(const PlanNode& node, obs::ProfileNode* stats,
                   const BatchSink& sink) {
    const PlanNode& probe = *node.children[0];
    const PlanNode& build = *node.children[1];
    const size_t build_width = build.width;
    const size_t probe_width = probe.width;

    // Row-major build-side row store plus per-row hashes; the bucket index
    // is a flat chained hash table (heads/next arrays, no per-bucket heap
    // allocation) built once after the build side drains. Chains are
    // filled in reverse so each bucket lists rows in insertion order —
    // probe output order is deterministic — and entries are verified
    // against the probe key (the table is keyed by hash only).
    std::vector<Value> build_rows;
    std::vector<uint64_t> hashes;
    if (build.est_rows >= 0) {
      const size_t hint = static_cast<size_t>(build.est_rows) + 1;
      build_rows.reserve(hint * build_width);
      hashes.reserve(hint);
    }
    RunNode(build, stats, [&](Batch& in) {
      for (size_t r = 0; r < in.rows(); ++r) {
        for (size_t col = 0; col < build_width; ++col) {
          build_rows.push_back(in.at(col, r));
        }
        uint64_t h = 0xcbf29ce484222325ull;
        for (const auto& [pcol, bcol] : node.keys) {
          (void)pcol;
          h = Mix(h, in.at(bcol, r));
        }
        hashes.push_back(h);
        ++hash_build_rows;
      }
      return true;
    });

    const size_t n = hashes.size();
    if (n == 0) return true;  // no matches possible; skip the probe
    size_t bucket_count = 16;
    while (bucket_count < n * 2) bucket_count <<= 1;
    const uint64_t mask = bucket_count - 1;
    std::vector<int64_t> heads(bucket_count, -1);
    std::vector<int64_t> chain(n, -1);
    for (size_t i = n; i-- > 0;) {
      const size_t b = static_cast<size_t>(hashes[i] & mask);
      chain[i] = heads[b];
      heads[b] = static_cast<int64_t>(i);
    }

    Batch out(node.width, batch_rows_);
    bool keep = RunNode(probe, stats, [&](Batch& in) {
      for (size_t r = 0; r < in.rows(); ++r) {
        uint64_t h = 0xcbf29ce484222325ull;
        for (const auto& [pcol, bcol] : node.keys) {
          (void)bcol;
          h = Mix(h, in.at(pcol, r));
        }
        for (int64_t idx = heads[static_cast<size_t>(h & mask)]; idx >= 0;
             idx = chain[static_cast<size_t>(idx)]) {
          if (hashes[static_cast<size_t>(idx)] != h) continue;
          const Value* brow =
              build_rows.data() + static_cast<size_t>(idx) * build_width;
          bool match = true;
          for (const auto& [pcol, bcol] : node.keys) {
            if (in.at(pcol, r) != brow[bcol]) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          const size_t o = out.rows();
          for (size_t col = 0; col < probe_width; ++col) {
            out.at(col, o) = in.at(col, r);
          }
          for (size_t i = 0; i < node.payload.size(); ++i) {
            out.at(probe_width + i, o) = brow[node.payload[i]];
          }
          out.set_rows(o + 1);
          if (out.full()) {
            if (!Flush(out, stats, sink)) return false;
          }
        }
      }
      return true;
    });
    if (keep) keep = Flush(out, stats, sink);
    return keep;
  }

  bool RunFilter(const PlanNode& node, obs::ProfileNode* stats,
                 const BatchSink& sink) {
    Batch out(node.width, batch_rows_);
    bool keep = RunNode(*node.children[0], stats, [&](Batch& in) {
      for (size_t r = 0; r < in.rows(); ++r) {
        bool pass = true;
        for (const FilterPred& pred : node.preds) {
          const Value lhs = in.at(pred.col, r);
          const Value rhs =
              pred.other != kNoColumn ? in.at(pred.other, r) : pred.value;
          if (lhs != rhs) {
            pass = false;
            break;
          }
        }
        if (!pass) continue;
        const size_t o = out.rows();
        for (size_t col = 0; col < node.width; ++col) {
          out.at(col, o) = in.at(col, r);
        }
        out.set_rows(o + 1);
        if (out.full()) {
          if (!Flush(out, stats, sink)) return false;
        }
      }
      return true;
    });
    if (keep) keep = Flush(out, stats, sink);
    return keep;
  }

  bool RunProject(const PlanNode& node, obs::ProfileNode* stats,
                  const BatchSink& sink) {
    Batch out(node.width, batch_rows_);
    bool keep = RunNode(*node.children[0], stats, [&](Batch& in) {
      for (size_t r = 0; r < in.rows(); ++r) {
        const size_t o = out.rows();
        for (size_t i = 0; i < node.cols.size(); ++i) {
          out.at(i, o) = node.cols[i] == kNoColumn ? 0 : in.at(node.cols[i], r);
        }
        out.set_rows(o + 1);
        if (out.full()) {
          if (!Flush(out, stats, sink)) return false;
        }
      }
      return true;
    });
    if (keep) keep = Flush(out, stats, sink);
    return keep;
  }

  bool RunDedup(const PlanNode& node, obs::ProfileNode* stats,
                const BatchSink& sink) {
    const size_t width = node.width;
    // Seen-set as row store + hash buckets (full-row verification: a
    // hash-only set would drop distinct rows on collision).
    std::vector<Value> seen_rows;
    std::unordered_map<uint64_t, std::vector<uint32_t>> seen;
    if (node.est_rows >= 0) {
      const size_t hint = static_cast<size_t>(node.est_rows) + 1;
      seen_rows.reserve(hint * width);
      seen.reserve(hint);
    }
    Batch out(width, batch_rows_);
    bool keep = RunNode(*node.children[0], stats, [&](Batch& in) {
      for (size_t r = 0; r < in.rows(); ++r) {
        uint64_t h = 0xcbf29ce484222325ull;
        for (size_t col = 0; col < width; ++col) h = Mix(h, in.at(col, r));
        std::vector<uint32_t>& bucket = seen[h];
        bool duplicate = false;
        for (uint32_t idx : bucket) {
          const Value* row = seen_rows.data() + size_t{idx} * width;
          bool same = true;
          for (size_t col = 0; col < width; ++col) {
            if (row[col] != in.at(col, r)) {
              same = false;
              break;
            }
          }
          if (same) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;
        const uint32_t idx = static_cast<uint32_t>(
            width == 0 ? bucket.size() : seen_rows.size() / width);
        for (size_t col = 0; col < width; ++col) {
          seen_rows.push_back(in.at(col, r));
        }
        bucket.push_back(idx);
        const size_t o = out.rows();
        for (size_t col = 0; col < width; ++col) {
          out.at(col, o) = in.at(col, r);
        }
        out.set_rows(o + 1);
        if (out.full()) {
          if (!Flush(out, stats, sink)) return false;
        }
      }
      return true;
    });
    if (keep) keep = Flush(out, stats, sink);
    return keep;
  }

  bool RunUnion(const PlanNode& node, obs::ProfileNode* stats,
                const BatchSink& sink) {
    for (const auto& child : node.children) {
      const bool keep = RunNode(*child, stats, [&](Batch& in) {
        if (stats != nullptr) stats->rows += in.rows();
        return sink(in);
      });
      if (!keep) return false;
    }
    return true;
  }

  // Gather over a partitioned leaf scan. Rows stream through unchanged
  // (the merged scan of a sharded store already interleaves partitions in
  // index order); the exchange accounts which partition produced each row
  // so the profile shows est-vs-actual per fragment, and totals feed the
  // wdr.shard.exchange.* counters.
  bool RunExchange(const PlanNode& node, obs::ProfileNode* stats,
                   const BatchSink& sink) {
    const PlanNode& child = *node.children[0];
    const auto* part =
        dynamic_cast<const PartitionedSource*>(sources_[node.source]);
    // Row→fragment attribution from the child scan's partitioning column
    // (slot 0, the subject): per-row when the column is emitted, whole-scan
    // when it is a constant, totals only otherwise (subject dropped).
    enum class Attr : uint8_t { kNone, kColumn, kConst };
    Attr attr = Attr::kNone;
    ColId attr_col = kNoColumn;
    size_t const_frag = 0;
    const size_t frags = node.fragment_est.size();
    std::vector<uint64_t> frag_rows(frags, 0);
    if (part != nullptr && frags != 0 && !child.alts.empty() &&
        !child.alts[0].slots.empty()) {
      const Slot& s0 = child.alts[0].slots[0];
      if (s0.kind == Slot::Kind::kOutput) {
        attr = Attr::kColumn;
        attr_col = s0.col;
      } else if (s0.kind == Slot::Kind::kConst) {
        attr = Attr::kConst;
        const_frag = part->PartitionOf(s0.value) % frags;
      }
    }
    uint64_t rows = 0;
    const bool keep = RunNode(child, stats, [&](Batch& in) {
      rows += in.rows();
      if (stats != nullptr) stats->rows += in.rows();
      if (attr == Attr::kColumn) {
        for (size_t r = 0; r < in.rows(); ++r) {
          const size_t f = part->PartitionOf(in.at(attr_col, r));
          if (f < frags) ++frag_rows[f];
        }
      } else if (attr == Attr::kConst) {
        frag_rows[const_frag] += in.rows();
      }
      return sink(in);
    });
    exchange_rows += rows;
    exchange_bytes += rows * node.width * sizeof(Value);
    if (stats != nullptr) {
      for (size_t i = 0; i < frags; ++i) {
        obs::ProfileNode& f = stats->AddChild("fragment." + std::to_string(i));
        f.est_rows = node.fragment_est[i];
        f.rows = frag_rows[i];
      }
    }
    return keep;
  }

  bool RunLimit(const PlanNode& node, obs::ProfileNode* stats,
                const BatchSink& sink) {
    size_t skipped = 0;
    size_t emitted = 0;
    bool sink_stop = false;
    Batch out(node.width, batch_rows_);
    RunNode(*node.children[0], stats, [&](Batch& in) {
      for (size_t r = 0; r < in.rows(); ++r) {
        if (skipped < node.offset) {
          ++skipped;
          continue;
        }
        if (emitted >= node.limit) return false;
        const size_t o = out.rows();
        for (size_t col = 0; col < node.width; ++col) {
          out.at(col, o) = in.at(col, r);
        }
        out.set_rows(o + 1);
        ++emitted;
        if (out.full()) {
          if (!Flush(out, stats, sink)) {
            sink_stop = true;
            return false;
          }
        }
        if (emitted >= node.limit) return false;
      }
      return true;
    });
    if (!sink_stop && !Flush(out, stats, sink)) sink_stop = true;
    return !sink_stop;
  }

  const std::vector<const TupleSource*>& sources_;
  const size_t batch_rows_;
};

}  // namespace

bool Run(const PlanNode& plan, const std::vector<const TupleSource*>& sources,
         const ExecOptions& options, RowSink emit, obs::ProfileNode* profile) {
  const auto start = std::chrono::steady_clock::now();
  // Operator-level trace scope: inert unless tracing is on; parents to the
  // enclosing branch/worker span (adopted via TraceContext on pool threads).
  obs::Span span("wdr.exec.run");
  Executor executor(sources, options);
  uint64_t rows = 0;
  std::vector<Value> row(plan.width);
  const bool ok = executor.RunNode(plan, profile, [&](Batch& batch) {
    for (size_t r = 0; r < batch.rows(); ++r) {
      for (size_t col = 0; col < batch.width(); ++col) {
        row[col] = batch.at(col, r);
      }
      ++rows;
      if (!emit(row.data(), row.size())) return false;
    }
    return true;
  });
  if (profile != nullptr && !profile->children.empty()) {
    profile->children.back()->seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  span.AddAttr("rows", rows);
  WDR_COUNTER_ADD("wdr.exec.rows", rows);
  WDR_COUNTER_ADD("wdr.exec.batches", executor.batches);
  WDR_COUNTER_ADD("wdr.exec.scans", executor.scans);
  WDR_COUNTER_ADD("wdr.exec.triples", executor.triples);
  WDR_COUNTER_ADD("wdr.exec.hash_build_rows", executor.hash_build_rows);
  if (executor.exchange_rows != 0) {
    WDR_COUNTER_ADD("wdr.shard.exchange.rows", executor.exchange_rows);
    WDR_COUNTER_ADD("wdr.shard.exchange.bytes", executor.exchange_bytes);
  }
  return ok;
}

}  // namespace wdr::exec
