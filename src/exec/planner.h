// Cost-based planner over conjunctive specs. Clients (BGP evaluation,
// Datalog rule bodies, backward chaining) describe a conjunction of atoms
// — each a disjunction of alternatives over some TupleSource — and get
// back a physical plan: join order chosen greedily by estimated output
// cardinality, join algorithm chosen per step (hash join when building the
// right side once beats re-seeking the index per outer row, bound-first
// index lookup otherwise). When statistics are missing or stale the
// planner degrades to the legacy greedy bound-first order with nested
// loops only.
#ifndef WDR_EXEC_PLANNER_H_
#define WDR_EXEC_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/batch.h"
#include "exec/plan.h"
#include "exec/statistics.h"

namespace wdr::exec {

class PartitionedSource;  // source.h

// Planning-time atom position: a constant, a variable (identified by an
// arbitrary caller-chosen key), an ignored position, or an inclusive id
// range (hierarchy-encoded reformulation; range positions bind nothing).
struct AtomTerm {
  enum class Kind : uint8_t { kConst, kVar, kAny, kRange };
  Kind kind = Kind::kAny;
  Value value = 0;
  Value value2 = 0;  // kRange upper bound (inclusive)
  uint32_t var = 0;

  static AtomTerm Const(Value v) { return {Kind::kConst, v, 0, 0}; }
  static AtomTerm Var(uint32_t v) { return {Kind::kVar, 0, 0, v}; }
  static AtomTerm Any() { return {Kind::kAny, 0, 0, 0}; }
  static AtomTerm Range(Value lo, Value hi) {
    return {Kind::kRange, lo, hi, 0};
  }
};

// One way a conjunct can match. `var_eq` lists variables this alternative
// grounds to a constant without a pattern position (backward chaining:
// rule unification can bind a query variable away).
struct AtomAlt {
  std::vector<AtomTerm> terms;
  std::vector<std::pair<uint32_t, Value>> var_eq;
};

struct PlanConjunct {
  size_t source = 0;          // TupleSource index at execution time
  std::vector<AtomAlt> alts;  // >= 1; cardinalities sum across alternatives
  std::string label;          // operator label, e.g. "scan(?x type C)"
};

struct ConjunctiveSpec {
  std::vector<PlanConjunct> conjuncts;
  // Variables fixed to constants before evaluation (query presets).
  std::vector<std::pair<uint32_t, Value>> presets;
  // Output columns, by variable key. A variable bound nowhere projects the
  // null value 0.
  std::vector<uint32_t> projection;
  bool distinct = false;
  size_t limit = SIZE_MAX;
  size_t offset = 0;
};

// Cardinality oracle the planner consults. `modes[i]` uses the
// CardinalityEstimator::k* constants below.
class CardinalityEstimator {
 public:
  static constexpr uint8_t kWild = 0;     // unconstrained
  static constexpr uint8_t kConst = 1;    // bound to values[i]
  static constexpr uint8_t kRuntime = 2;  // bound to an unknown run-time value
  static constexpr uint8_t kRange = 3;    // in [values[i], values_hi[i]]

  virtual ~CardinalityEstimator() = default;
  // `values_hi` holds the upper bounds of kRange positions (may be null
  // when no position is kRange).
  virtual double Estimate(size_t source, const Value* values,
                          const Value* values_hi, const uint8_t* modes,
                          size_t arity) const = 0;
};

// Statistics-backed estimator for triple-shaped sources (arity 3,
// predicate in the middle).
class StatisticsEstimator final : public CardinalityEstimator {
 public:
  explicit StatisticsEstimator(const Statistics& stats) : stats_(&stats) {}
  double Estimate(size_t source, const Value* values, const Value* values_hi,
                  const uint8_t* modes, size_t arity) const override;

 private:
  const Statistics* stats_;
};

// Store-backed estimator for the degraded path: run-time-bound positions
// are treated as wild (the store cannot price an unknown value), which
// over-estimates — exactly the conservative direction the greedy
// bound-first fallback wants.
template <typename Store>
class StoreEstimator final : public CardinalityEstimator {
 public:
  explicit StoreEstimator(const Store& store) : store_(&store) {}
  double Estimate(size_t /*source*/, const Value* values,
                  const Value* values_hi, const uint8_t* modes,
                  size_t /*arity*/) const override {
    bool any_range = false;
    for (size_t i = 0; i < 3; ++i) any_range |= modes[i] == kRange;
    if (any_range) {
      // Push the interval into the store's range estimate when the store
      // supports it; otherwise a range position prices as wild below
      // (over-estimating, the conservative direction).
      if constexpr (requires(const Store& s, typename Store::Range r) {
                      s.EstimateCountRange(Store::MakeRangePlan(r, r, r));
                    }) {
        auto range = [&](size_t i) {
          typename Store::Range r{};
          if (modes[i] == kConst) {
            r.lo = r.hi = values[i];
          } else if (modes[i] == kRange) {
            r.lo = values[i];
            r.hi = values_hi[i];
          }
          return r;
        };
        return static_cast<double>(store_->EstimateCountRange(
            Store::MakeRangePlan(range(0), range(1), range(2))));
      }
    }
    return static_cast<double>(store_->EstimateCount(
        modes[0] == kConst ? values[0] : 0, modes[1] == kConst ? values[1] : 0,
        modes[2] == kConst ? values[2] : 0));
  }

 private:
  const Store* store_;
};

struct PlannerOptions {
  const CardinalityEstimator* estimator = nullptr;  // required
  // Cost-based mode: order by estimated output cardinality and pick hash
  // joins where they win. Off → greedy bound-first order, nested loops
  // only (the degraded path for empty/stale statistics).
  bool cost_based = true;
  bool hash_joins = true;
  // Relative cost constants: one hash-table insert per build row, and one
  // index seek per outer row of a bound nested loop (an index seek is a
  // few binary-search probes; a hash probe is the unit).
  double hash_build_cost = 1.5;
  double index_seek_cost = 4.0;
  // When source index `partitioned_source` of the evaluation is
  // horizontally partitioned (a sharded store), point `partitioned` at its
  // PartitionedSource face: the planner then wraps full-table leaf scans
  // of that source in kExchange gather nodes carrying per-partition row
  // estimates, and the executor reports per-fragment actuals against them.
  const PartitionedSource* partitioned = nullptr;
  size_t partitioned_source = 0;
};

struct CompiledPlan {
  std::unique_ptr<PlanNode> root;  // null when the spec has no conjuncts
  double est_rows = -1;            // pre-dedup root estimate; <0 = unknown
  bool used_hash_join = false;
};

CompiledPlan PlanConjunctive(const ConjunctiveSpec& spec,
                             const PlannerOptions& options);

}  // namespace wdr::exec

#endif  // WDR_EXEC_PLANNER_H_
