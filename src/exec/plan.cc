#include "exec/plan.h"

#include <cstdio>
#include <cstdlib>

namespace wdr::exec {
namespace {

void RenderInto(const PlanNode& node, int depth, std::string& out) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += node.label.empty() ? OpKindName(node.kind) : node.label;
  if (node.est_rows >= 0) {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "  (est %.0f rows)", node.est_rows);
    out += buffer;
  }
  if (!node.fragment_est.empty()) {
    out += "  fragments[";
    for (size_t i = 0; i < node.fragment_est.size(); ++i) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%s%.0f", i == 0 ? "" : " ",
                    node.fragment_est[i]);
      out += buffer;
    }
    out += ']';
  }
  out += '\n';
  for (const auto& child : node.children) RenderInto(*child, depth + 1, out);
}

}  // namespace

bool PlanModeDefault() {
  static const bool value = [] {
    const char* env = std::getenv("WDR_PLAN");
    return env != nullptr && env[0] == '1' && env[1] == '\0';
  }();
  return value;
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kIndexScan:
      return "index_scan";
    case OpKind::kBoundNestedLoopJoin:
      return "bound_loop";
    case OpKind::kHashJoin:
      return "hash_join";
    case OpKind::kFilter:
      return "filter";
    case OpKind::kProject:
      return "project";
    case OpKind::kHashDedup:
      return "dedup";
    case OpKind::kUnion:
      return "union";
    case OpKind::kLimit:
      return "limit";
    case OpKind::kExchange:
      return "exchange";
  }
  return "?";
}

std::string PlanNode::Render() const {
  std::string out;
  RenderInto(*this, 0, out);
  return out;
}

}  // namespace wdr::exec
