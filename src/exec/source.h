// TupleSource: the seam between physical-plan operators and concrete
// relations. The executor only ever asks a source to (a) estimate how many
// tuples match a partially-bound pattern and (b) stream those tuples.
// StoreSource adapts anything triple-store-shaped (rdf::StoreView,
// rdf::UnionStore); the Datalog layer provides a RelationSource of its own.
#ifndef WDR_EXEC_SOURCE_H_
#define WDR_EXEC_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/batch.h"

namespace wdr::exec {

// Minimal non-owning callable reference, so the per-tuple scan callback
// crosses the virtual TupleSource boundary without a std::function
// allocation. The referenced callable must outlive the call (the executor
// only ever passes stack lambdas down synchronous calls).
template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        fn_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return fn_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*fn_)(void*, Args...);
};

// A relation of fixed arity the executor can scan with some columns bound.
// `values`/`bound` are arrays of length arity(); bound[i] != 0 means column
// i must equal values[i] (this is an explicit mask, NOT a 0-sentinel:
// Datalog symbol 0 is a legal constant).
class TupleSource {
 public:
  // Codes of the `bound` mask. Plain Scan/EstimateBound only see kUnbound
  // and kPoint; the *Range entry points add kRange, meaning column i must
  // lie in the inclusive interval [values[i], values_hi[i]] (hierarchy-
  // encoded reformulation compiles subclass closures into such columns).
  static constexpr uint8_t kUnbound = 0;
  static constexpr uint8_t kPoint = 1;
  static constexpr uint8_t kRange = 2;

  virtual ~TupleSource() = default;

  virtual size_t arity() const = 0;

  // Estimated number of matching tuples, for run-time fallback decisions
  // and dedup-set pre-reservation.
  virtual double EstimateBound(const Value* values,
                               const uint8_t* bound) const = 0;

  // Streams every matching tuple to `fn` (argument: arity() values). Stops
  // early when fn returns false; returns false iff it stopped early.
  virtual bool Scan(const Value* values, const uint8_t* bound,
                    FunctionRef<bool(const Value*)> fn) const = 0;

  // Range-aware variants; `bound` may additionally contain kRange. The
  // defaults treat range columns as unbound (estimate) or post-filter them
  // (scan), so sources that cannot seek ranges stay correct; stores with
  // ordered indexes override to push the interval into the scan window.
  virtual double EstimateRange(const Value* values, const Value* values_hi,
                               const uint8_t* bound) const {
    (void)values_hi;
    std::vector<uint8_t> relaxed(bound, bound + arity());
    for (uint8_t& b : relaxed) {
      if (b == kRange) b = kUnbound;
    }
    return EstimateBound(values, relaxed.data());
  }

  virtual bool ScanRange(const Value* values, const Value* values_hi,
                         const uint8_t* bound,
                         FunctionRef<bool(const Value*)> fn) const {
    const size_t n = arity();
    std::vector<uint8_t> relaxed(bound, bound + n);
    bool any_range = false;
    for (uint8_t& b : relaxed) {
      if (b == kRange) {
        b = kUnbound;
        any_range = true;
      }
    }
    if (!any_range) return Scan(values, bound, fn);
    return Scan(values, relaxed.data(), [&](const Value* tuple) {
      for (size_t i = 0; i < n; ++i) {
        if (bound[i] == kRange &&
            (tuple[i] < values[i] || tuple[i] > values_hi[i])) {
          return true;  // outside the interval: skip, keep scanning
        }
      }
      return fn(tuple);
    });
  }
};

// Optional side-interface of a TupleSource whose tuples live in disjoint
// horizontal partitions (e.g. a StoreSource over rdf::ShardedStore). A
// source advertises it by additionally deriving from PartitionedSource;
// the planner discovers it via dynamic_cast and wraps leaf scans of the
// source in a kExchange node carrying per-partition row estimates, and
// the executor attributes actual rows back to partitions with
// PartitionOf. Purely observational: scans still stream the merged
// relation, the exchange only accounts for which fragment produced what.
class PartitionedSource {
 public:
  virtual ~PartitionedSource() = default;

  virtual size_t PartitionCount() const = 0;

  // Partition owning tuples whose partitioning column equals `v` (for
  // triple stores: the subject). Values of broadcast tuples (schema) get
  // an owner too — attribution, not routing, so an arbitrary stable
  // answer is fine.
  virtual size_t PartitionOf(Value v) const = 0;

  // Estimated tuples partition `i` contributes to the given pattern
  // (same contract as TupleSource::EstimateRange).
  virtual double EstimatePartition(size_t i, const Value* values,
                                   const Value* values_hi,
                                   const uint8_t* bound) const = 0;
};

// Adapter over any triple-store-shaped type exposing
// EstimateCount(s, p, o) and Match(s, p, o, fn) with kNullTermId (0) as
// the wildcard — rdf::StoreView and rdf::UnionStore both qualify.
template <typename Store>
class StoreSource final : public TupleSource {
 public:
  explicit StoreSource(const Store& store) : store_(&store) {}

  size_t arity() const override { return 3; }

  double EstimateBound(const Value* values,
                       const uint8_t* bound) const override {
    return static_cast<double>(store_->EstimateCount(bound[0] ? values[0] : 0,
                                                     bound[1] ? values[1] : 0,
                                                     bound[2] ? values[2] : 0));
  }

  bool Scan(const Value* values, const uint8_t* bound,
            FunctionRef<bool(const Value*)> fn) const override {
    bool keep = true;
    store_->Match(bound[0] ? values[0] : 0, bound[1] ? values[1] : 0,
                  bound[2] ? values[2] : 0, [&](const auto& t) {
                    Value row[3] = {t.s, t.p, t.o};
                    keep = fn(row);
                    return keep;
                  });
    return keep;
  }

  // Range pushdown: the store seeks the interval as one contiguous index
  // window instead of post-filtering a full-position scan.
  double EstimateRange(const Value* values, const Value* values_hi,
                       const uint8_t* bound) const override {
    return static_cast<double>(store_->EstimateCountRange(
        MakePlan(values, values_hi, bound)));
  }

  bool ScanRange(const Value* values, const Value* values_hi,
                 const uint8_t* bound,
                 FunctionRef<bool(const Value*)> fn) const override {
    bool keep = true;
    store_->MatchPlan(MakePlan(values, values_hi, bound), [&](const auto& t) {
      Value row[3] = {t.s, t.p, t.o};
      keep = fn(row);
      return keep;
    });
    return keep;
  }

 private:
  static auto MakePlan(const Value* values, const Value* values_hi,
                       const uint8_t* bound) {
    auto range = [&](size_t i) {
      typename Store::Range r{};  // default: unconstrained
      if (bound[i] == kPoint) {
        r.lo = r.hi = values[i];
      } else if (bound[i] == kRange) {
        r.lo = values[i];
        r.hi = values_hi[i];
      }
      return r;
    };
    return Store::MakeRangePlan(range(0), range(1), range(2));
  }

  const Store* store_;  // not owned
};

}  // namespace wdr::exec

#endif  // WDR_EXEC_SOURCE_H_
