// Per-predicate cardinality statistics over a triple store, feeding the
// cost-based planner: triple count plus distinct subject/object counts per
// predicate give selectivities for every bound/wild combination of a
// triple pattern. Built in one O(store) pass; staleness is detected by
// comparing total_triples() against the live store size.
#ifndef WDR_EXEC_STATISTICS_H_
#define WDR_EXEC_STATISTICS_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "exec/batch.h"

namespace wdr::exec {

struct PredicateStats {
  uint64_t count = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
};

// How a pattern position is constrained when asking for an estimate.
enum class BoundMode : uint8_t {
  kWild,     // unconstrained
  kConst,    // bound to a known constant
  kRuntime,  // bound at run time to a value unknown while planning
};

class Statistics {
 public:
  Statistics() = default;

  // One pass over any store exposing Match(s, p, o, fn) with 0-wildcards
  // (rdf::StoreView, rdf::UnionStore).
  template <typename Store>
  static Statistics Build(const Store& store) {
    Statistics stats;
    std::unordered_map<Value, std::pair<std::unordered_set<Value>,
                                        std::unordered_set<Value>>>
        distinct;
    store.Match(0, 0, 0, [&](const auto& t) {
      ++stats.total_;
      ++stats.preds_[t.p].count;
      auto& [subjects, objects] = distinct[t.p];
      subjects.insert(t.s);
      objects.insert(t.o);
      return true;
    });
    for (auto& [p, sets] : distinct) {
      PredicateStats& ps = stats.preds_[p];
      ps.distinct_subjects = sets.first.size();
      ps.distinct_objects = sets.second.size();
    }
    return stats;
  }

  uint64_t total_triples() const { return total_; }
  bool empty() const { return total_ == 0; }
  size_t distinct_predicates() const { return preds_.size(); }

  const PredicateStats* Predicate(Value p) const {
    auto it = preds_.find(p);
    return it == preds_.end() ? nullptr : &it->second;
  }

  // Estimated matches of a triple pattern. Only the predicate's *value*
  // matters (statistics are per-predicate): a kConst predicate selects its
  // bucket, kRuntime averages over buckets, kWild sums them. Subject and
  // object positions contribute 1/distinct selectivity when bound, whether
  // the value is known or not.
  double Estimate(BoundMode s, BoundMode p, Value p_value, BoundMode o) const;

 private:
  uint64_t total_ = 0;
  std::unordered_map<Value, PredicateStats> preds_;
};

}  // namespace wdr::exec

#endif  // WDR_EXEC_STATISTICS_H_
