// Per-predicate cardinality statistics over a triple store, feeding the
// cost-based planner: triple count plus distinct subject/object counts per
// predicate give selectivities for every bound/wild combination of a
// triple pattern. Built in one O(store) pass; staleness is detected by
// comparing total_triples() against the live store size.
#ifndef WDR_EXEC_STATISTICS_H_
#define WDR_EXEC_STATISTICS_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/batch.h"

namespace wdr::exec {

// Buckets of the per-predicate object histogram backing range estimates.
inline constexpr size_t kObjectHistogramBuckets = 64;

struct PredicateStats {
  uint64_t count = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
  // Equi-width histogram of the predicate's distinct object ids over
  // [obj_min, obj_max], for pricing id-range constraints (hierarchy-
  // encoded reformulation scans object intervals).
  Value obj_min = 0;
  Value obj_max = 0;
  std::vector<uint32_t> obj_hist;  // empty until built
};

// How a pattern position is constrained when asking for an estimate.
enum class BoundMode : uint8_t {
  kWild,     // unconstrained
  kConst,    // bound to a known constant
  kRuntime,  // bound at run time to a value unknown while planning
  kRange,    // bound to an inclusive id interval known while planning
};

class Statistics {
 public:
  Statistics() = default;

  // One pass over any store exposing Match(s, p, o, fn) with 0-wildcards
  // (rdf::StoreView, rdf::UnionStore).
  template <typename Store>
  static Statistics Build(const Store& store) {
    Statistics stats;
    std::unordered_map<Value, std::pair<std::unordered_set<Value>,
                                        std::unordered_set<Value>>>
        distinct;
    store.Match(0, 0, 0, [&](const auto& t) {
      ++stats.total_;
      ++stats.preds_[t.p].count;
      auto& [subjects, objects] = distinct[t.p];
      subjects.insert(t.s);
      objects.insert(t.o);
      return true;
    });
    for (auto& [p, sets] : distinct) {
      PredicateStats& ps = stats.preds_[p];
      ps.distinct_subjects = sets.first.size();
      ps.distinct_objects = sets.second.size();
      // Object histogram: distinct ids per equi-width bucket. Range
      // estimates scale the in-range distinct count by the predicate's
      // average object multiplicity (count / distinct_objects).
      const auto& objs = sets.second;
      if (objs.empty()) continue;
      Value mn = *objs.begin();
      Value mx = mn;
      for (Value v : objs) {
        if (v < mn) mn = v;
        if (v > mx) mx = v;
      }
      ps.obj_min = mn;
      ps.obj_max = mx;
      ps.obj_hist.assign(kObjectHistogramBuckets, 0);
      const double width = static_cast<double>(mx) - mn + 1;
      for (Value v : objs) {
        auto b = static_cast<size_t>((static_cast<double>(v) - mn) / width *
                                     kObjectHistogramBuckets);
        if (b >= kObjectHistogramBuckets) b = kObjectHistogramBuckets - 1;
        ++ps.obj_hist[b];
      }
    }
    return stats;
  }

  // Folds another store's statistics into this one, for composing
  // shard-local statistics into a global view without a merged O(store)
  // pass. Counts add exactly. Distinct subjects add exactly under the
  // sharded layout (a predicate's triples are either all in the schema
  // store or subject-hash-partitioned, so per-member subject sets are
  // disjoint); distinct objects can repeat across members, so their sum is
  // capped at the predicate count (a bounded overcount that only softens
  // 1/distinct selectivities). Object histograms are re-binned
  // proportionally over the union [min, max] interval.
  void Merge(const Statistics& other);

  uint64_t total_triples() const { return total_; }
  bool empty() const { return total_ == 0; }
  size_t distinct_predicates() const { return preds_.size(); }

  const PredicateStats* Predicate(Value p) const {
    auto it = preds_.find(p);
    return it == preds_.end() ? nullptr : &it->second;
  }

  // Estimated matches of a triple pattern. Only the predicate's *value*
  // matters (statistics are per-predicate): a kConst predicate selects its
  // bucket, kRuntime averages over buckets, kWild sums them. Subject and
  // object positions contribute 1/distinct selectivity when bound, whether
  // the value is known or not.
  double Estimate(BoundMode s, BoundMode p, Value p_value, BoundMode o) const;

  // Range-aware form: a kRange predicate sums the buckets with keys in
  // [p_lo, p_hi]; a kRange object prices the interval against the
  // predicate's object histogram. A kRange subject degrades to wild (no
  // subject histogram — conservative). The point/wild modes reduce to
  // Estimate's behaviour exactly.
  double EstimateRange(BoundMode s, BoundMode p, Value p_lo, Value p_hi,
                       BoundMode o, Value o_lo, Value o_hi) const;

  // Estimated triples with predicate stats `ps` and object in [lo, hi].
  static double ObjectRangeEstimate(const PredicateStats& ps, Value lo,
                                    Value hi);

 private:
  uint64_t total_ = 0;
  std::unordered_map<Value, PredicateStats> preds_;
};

}  // namespace wdr::exec

#endif  // WDR_EXEC_STATISTICS_H_
