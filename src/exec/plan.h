// Physical-plan IR shared by the query evaluator, the Datalog
// materializer, and the backward-chaining evaluator. A plan is a tree of
// operators over columnar batches of uint32 values; the planner
// (planner.h) builds plans, the executor (executor.h) runs them.
#ifndef WDR_EXEC_PLAN_H_
#define WDR_EXEC_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "exec/batch.h"

namespace wdr::exec {

enum class OpKind : uint8_t {
  kIndexScan,            // leaf: stream a source, emit output columns
  kBoundNestedLoopJoin,  // per input row, probe a source with bound columns
  kHashJoin,             // children = {probe, build}; build side drained first
  kFilter,               // keep rows passing all predicates
  kProject,              // reorder/drop columns
  kHashDedup,            // keep the first occurrence of each row
  kUnion,                // concatenate children (identical schemas)
  kLimit,                // skip `offset` rows, pass at most `limit`
  kExchange,             // gather fragments of a partitioned scan (see below)
};

const char* OpKindName(OpKind kind);

// Process-wide default for the `plan` knobs of every evaluator that
// compiles into this IR (query, Datalog, backward chaining): true iff the
// environment variable WDR_PLAN is exactly "1" (read once). Lets one CI
// matrix entry run the entire test suite through the planner while the
// regular entry keeps the legacy joins as reference.
bool PlanModeDefault();

// One position of a source pattern as seen by a scan or bound-loop
// operator.
struct Slot {
  enum class Kind : uint8_t {
    kConst,   // position must equal `value`
    kInput,   // position must equal input column `col` (bound-loop only)
    kOutput,  // position is emitted into output column `col`
    kAny,     // position unconstrained and dropped
    kRange,   // position must lie in [value, value2]; never emitted
  };

  Kind kind = Kind::kAny;
  Value value = 0;
  Value value2 = 0;  // kRange upper bound (inclusive)
  ColId col = kNoColumn;

  static Slot Const(Value v) { return {Kind::kConst, v, 0, kNoColumn}; }
  static Slot Input(ColId c) { return {Kind::kInput, 0, 0, c}; }
  static Slot Output(ColId c) { return {Kind::kOutput, 0, 0, c}; }
  static Slot Any() { return {Kind::kAny, 0, 0, kNoColumn}; }
  static Slot Range(Value lo, Value hi) {
    return {Kind::kRange, lo, hi, kNoColumn};
  }
};

// One way a conjunct can match. Backward chaining expands an atom into
// several alternatives (the original pattern plus every rule rewriting);
// plain BGP and Datalog atoms have exactly one. All alternatives of a node
// produce the same output columns: a column an alternative's slots do not
// cover must appear in its presets.
struct ScanAlt {
  std::vector<Slot> slots;  // one per source column
  // Output column := constant, applied to every emitted row (variables a
  // rewriting grounds without a matching pattern position).
  std::vector<std::pair<ColId, Value>> presets;
  // Input column must equal constant for this alternative to apply
  // (bound-loop only: variables already bound upstream that a rewriting
  // grounds).
  std::vector<std::pair<ColId, Value>> checks;
};

// col == other (when other != kNoColumn), else col == value.
struct FilterPred {
  ColId col = kNoColumn;
  ColId other = kNoColumn;
  Value value = 0;
};

struct PlanNode {
  OpKind kind;
  uint32_t width = 0;  // output column count
  std::vector<std::unique_ptr<PlanNode>> children;

  // kIndexScan / kBoundNestedLoopJoin: which TupleSource, and how to match.
  size_t source = 0;
  std::vector<ScanAlt> alts;

  // kHashJoin: equality keys as (probe column, build column) pairs, plus
  // the build columns appended after the probe columns in the output
  // (build key columns are omitted — they duplicate probe columns).
  std::vector<std::pair<ColId, ColId>> keys;
  std::vector<ColId> payload;

  // kFilter.
  std::vector<FilterPred> preds;

  // kProject: output column i reads input column cols[i]; kNoColumn emits
  // the null value 0 (a projected variable the body never binds).
  std::vector<ColId> cols;

  // kLimit.
  size_t limit = SIZE_MAX;
  size_t offset = 0;

  // kExchange: planner estimate of the rows each partition of the child
  // scan contributes (one entry per partition). The executor reports the
  // actual per-partition counts next to these in the profile, so EXPLAIN
  // shows est-vs-actual per fragment.
  std::vector<double> fragment_est;

  double est_rows = -1;  // planner cardinality estimate; <0 = unknown
  std::string label;     // human-readable operator description

  explicit PlanNode(OpKind k) : kind(k) {}

  // Indented tree with per-operator estimates, for EXPLAIN output.
  std::string Render() const;
};

}  // namespace wdr::exec

#endif  // WDR_EXEC_PLAN_H_
