#include "federation/federation.h"

#include "common/timer.h"
#include "io/turtle.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/sparql_parser.h"
#include "reasoning/saturation.h"
#include "reformulation/reformulator.h"
#include "rdf/graph.h"
#include "schema/schema.h"

namespace wdr::federation {

Federation::Federation(rdf::StorageBackend backend)
    : vocab_(schema::Vocabulary::Intern(dict_)), backend_(backend) {}

EndpointId Federation::AddEndpoint(std::string name) {
  endpoints_.push_back(Endpoint{std::move(name), rdf::MakeStore(backend_)});
  return endpoints_.size() - 1;
}

Result<size_t> Federation::LoadTurtle(EndpointId id, std::string_view text) {
  if (id >= endpoints_.size()) {
    return InvalidArgumentError("unknown endpoint id");
  }
  rdf::Graph scratch;
  WDR_ASSIGN_OR_RETURN(size_t parsed, io::ParseTurtle(text, scratch));
  (void)parsed;
  // Re-encode into the shared dictionary, then hand the store one batch so
  // log-structured backends can bulk-load instead of inserting one by one.
  std::vector<rdf::Triple> encoded;
  encoded.reserve(scratch.size());
  bool any_schema = false;
  scratch.store().Match(0, 0, 0, [&](const rdf::Triple& t) {
    encoded.emplace_back(dict_.Intern(scratch.dict().term(t.s)),
                         dict_.Intern(scratch.dict().term(t.p)),
                         dict_.Intern(scratch.dict().term(t.o)));
    any_schema |= vocab_.IsSchemaProperty(encoded.back().p);
  });
  const size_t added = endpoints_[id].store->InsertBatch(encoded);
  if (any_schema && added != 0) ++schema_rev_;
  return added;
}

bool Federation::Insert(EndpointId id, const rdf::Triple& t) {
  const bool inserted = endpoints_[id].store->Insert(t);
  if (inserted && vocab_.IsSchemaProperty(t.p)) ++schema_rev_;
  return inserted;
}

bool Federation::Erase(EndpointId id, const rdf::Triple& t) {
  const bool erased = endpoints_[id].store->Erase(t);
  if (erased && vocab_.IsSchemaProperty(t.p)) ++schema_rev_;
  return erased;
}

size_t Federation::size() const {
  size_t total = 0;
  for (const Endpoint& endpoint : endpoints_) total += endpoint.store->size();
  return total;
}

rdf::TripleStore Federation::ClosedFederatedSchemaStore() const {
  rdf::TripleStore merged;
  for (const Endpoint& endpoint : endpoints_) {
    endpoint.store->Match(0, 0, 0, [&](const rdf::Triple& t) {
      if (vocab_.IsSchemaProperty(t.p)) merged.Insert(t);
    });
  }
  reasoning::Saturator saturator(vocab_, &dict_);
  return saturator.Saturate(merged);
}

Federation::SchemaCache& Federation::CachedSchemaCache() {
  if (schema_cache_ == nullptr || schema_cache_rev_ != schema_rev_) {
    schema_cache_ =
        std::make_unique<SchemaCache>(ClosedFederatedSchemaStore(), vocab_);
    schema_cache_rev_ = schema_rev_;
    WDR_COUNTER_INC("wdr.federation.schema_rebuilds");
  }
  return *schema_cache_;
}

Result<query::ResultSet> Federation::Query(std::string_view sparql,
                                           FederationQueryInfo* info) {
  WDR_ASSIGN_OR_RETURN(query::UnionQuery q,
                       query::ParseSparql(sparql, dict_));
  return Query(q, info);
}

Result<query::ResultSet> Federation::Query(const query::UnionQuery& q,
                                           FederationQueryInfo* info) {
  static obs::Histogram& latency =
      obs::MetricsRegistry::Get().GetHistogram("wdr.federation.query");
  obs::Span span("wdr.federation.query", &latency);
  WDR_COUNTER_INC("wdr.federation.queries");
  Timer timer;
  // The schemas of all endpoints combine: constraints from any endpoint
  // apply to facts from any other. The closed merged schema is cached
  // against the schema revision counter: only a schema-triple change
  // rebuilds it, so instance-heavy workloads stop paying a re-closure and
  // a fresh reformulator (with a cold memo) on every query.
  SchemaCache& cache = CachedSchemaCache();
  WDR_ASSIGN_OR_RETURN(query::UnionQuery reformulated,
                       cache.reformulator.Reformulate(q));

  // Evaluate over closed schema ∪ endpoints, copying nothing.
  rdf::UnionStore view;
  view.AddMember(&cache.closed_schema);
  for (const Endpoint& endpoint : endpoints_) {
    view.AddMember(endpoint.store.get());
  }
  view.EnableMemberStats();
  query::EvaluatorOptions eval_options = query_options_;
  eval_options.dict = &dict_;
  query::FederatedEvaluator evaluator(view, eval_options);
  query::ResultSet result = evaluator.Evaluate(reformulated);

  // Member 0 is the synthetic closed-schema store; endpoints follow.
  // Snapshot by value: the live counters are atomics.
  const std::vector<rdf::UnionStore::MemberStats> member_stats =
      view.member_stats();
  uint64_t endpoint_rows = 0;
  uint64_t endpoint_matches = 0;
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    endpoint_matches += member_stats[i + 1].matches;
    endpoint_rows += member_stats[i + 1].rows;
  }
  WDR_COUNTER_ADD("wdr.federation.endpoint_calls", endpoint_matches);
  WDR_COUNTER_ADD("wdr.federation.endpoint_rows", endpoint_rows);

  if (info != nullptr) {
    info->union_size = reformulated.size();
    info->endpoints_scanned = endpoints_.size();
    info->seconds = timer.ElapsedSeconds();
    info->endpoints.clear();
    for (size_t i = 0; i < endpoints_.size(); ++i) {
      info->endpoints.push_back({endpoints_[i].name,
                                 member_stats[i + 1].matches,
                                 member_stats[i + 1].rows});
    }
  }
  return result;
}

}  // namespace wdr::federation
