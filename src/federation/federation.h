#ifndef WDR_FEDERATION_FEDERATION_H_
#define WDR_FEDERATION_FEDERATION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/evaluator.h"
#include "rdf/dictionary.h"
#include "rdf/store_view.h"
#include "rdf/triple_store.h"
#include "rdf/union_store.h"
#include "reformulation/reformulator.h"
#include "schema/schema.h"
#include "schema/vocabulary.h"

namespace wdr::federation {

using EndpointId = size_t;

// Per-query diagnostics.
struct FederationQueryInfo {
  // One entry per endpoint probed during evaluation.
  struct EndpointStats {
    std::string name;
    uint64_t matches = 0;  // index probes sent to this endpoint
    uint64_t rows = 0;     // triples this endpoint contributed (post-dedup)
  };

  size_t union_size = 1;        // reformulation disjuncts evaluated
  size_t endpoints_scanned = 0;
  double seconds = 0;
  std::vector<EndpointStats> endpoints;
};

// A federation of autonomous RDF endpoints — the paper's §I scenario:
// "typical Semantic Web scenarios involve integrating data from several
// RDF repositories ... authored independently, [with] their own sets of
// semantic constraints; computing prior to query answering all the
// consequences of facts from any endpoint and constraints from any
// (other) endpoint is not feasible."
//
// Accordingly the federation answers queries by REFORMULATION only: each
// query is rewritten against the current union of all endpoint schemas
// and evaluated over the set-union of endpoint stores (no endpoint's data
// is copied or saturated). Constraints from one endpoint apply to facts
// from any other, which is exactly the cross-endpoint entailment the
// quote is about: q over the federation returns q(G∞) of the merged
// graph (property-tested against merging + saturating).
//
// Terms are interned in one shared dictionary (a real deployment would
// ship mappings; dictionary mechanics are orthogonal to the algorithms).
class Federation {
 public:
  // `backend` selects the storage engine every endpoint store uses.
  explicit Federation(
      rdf::StorageBackend backend = rdf::StorageBackend::kOrdered);

  // Registers an empty endpoint and returns its id.
  EndpointId AddEndpoint(std::string name);

  size_t endpoint_count() const { return endpoints_.size(); }
  const std::string& endpoint_name(EndpointId id) const {
    return endpoints_[id].name;
  }
  const rdf::StoreView& endpoint_store(EndpointId id) const {
    return *endpoints_[id].store;
  }

  // Loads Turtle data into one endpoint. Returns new-triple count.
  Result<size_t> LoadTurtle(EndpointId id, std::string_view text);

  // Single-triple endpoint updates (terms must be interned via dict()).
  bool Insert(EndpointId id, const rdf::Triple& t);
  bool Erase(EndpointId id, const rdf::Triple& t);

  // Answers a SPARQL query over the federation (reformulation + federated
  // evaluation; set semantics across endpoints).
  Result<query::ResultSet> Query(std::string_view sparql,
                                 FederationQueryInfo* info = nullptr);

  // Programmatic variant; constants must be interned via dict().
  Result<query::ResultSet> Query(const query::UnionQuery& q,
                                 FederationQueryInfo* info = nullptr);

  rdf::Dictionary& dict() { return dict_; }
  const schema::Vocabulary& vocab() const { return vocab_; }

  // Total triples across endpoints (duplicates counted per endpoint).
  size_t size() const;

  rdf::StorageBackend backend() const { return backend_; }

  // Worker threads for the branches of the reformulated union (values < 1
  // clamp to 1); see EvaluatorOptions::threads. Answers are identical at
  // any thread count.
  void SetQueryThreads(int threads) {
    query_options_.threads = threads < 1 ? 1 : threads;
  }
  int query_threads() const { return query_options_.threads; }

  // Toggles plan-based evaluation of the reformulated union: branches
  // compile into the shared wdr::exec physical-plan IR with cost-based
  // join order and hash joins. Statistics are built once per query over
  // the federated view (endpoints are autonomous, so there is no stable
  // store to cache against). Answers are identical either way.
  void SetPlanMode(bool on) { query_options_.plan = on; }
  bool plan_mode() const { return query_options_.plan; }

  // Bumped whenever a schema triple (an RDFS constraint predicate) is
  // inserted into or erased from any endpoint; the cached closed federated
  // schema below is valid iff its recorded revision equals this counter.
  uint64_t schema_revision() const { return schema_rev_; }

 private:
  struct Endpoint {
    std::string name;
    std::unique_ptr<rdf::StoreView> store;
  };

  // Everything Query derives from the merged endpoint schemas, rebuilt
  // only when the schema revision moves: the closed schema store (held by
  // stable address — queries use it as a UnionStore member), the
  // constraint view over it, and the reformulator (whose per-query memo
  // now survives across queries). Instance-only updates leave all of it
  // untouched.
  struct SchemaCache {
    rdf::TripleStore closed_schema;
    schema::Schema schema;
    reformulation::Reformulator reformulator;  // points into `schema`

    SchemaCache(rdf::TripleStore closed, const schema::Vocabulary& vocab)
        : closed_schema(std::move(closed)),
          schema(schema::Schema::FromStore(closed_schema, vocab)),
          reformulator(schema, vocab) {}
  };

  // The cache for the current schema revision, (re)building it if stale.
  SchemaCache& CachedSchemaCache();

  // The union of all endpoints' schema triples, closed (rdfs5/rdfs11).
  rdf::TripleStore ClosedFederatedSchemaStore() const;

  rdf::Dictionary dict_;
  schema::Vocabulary vocab_;
  rdf::StorageBackend backend_;
  query::EvaluatorOptions query_options_;
  std::vector<Endpoint> endpoints_;
  uint64_t schema_rev_ = 1;
  uint64_t schema_cache_rev_ = 0;  // 0 = never built
  std::unique_ptr<SchemaCache> schema_cache_;
};

}  // namespace wdr::federation

#endif  // WDR_FEDERATION_FEDERATION_H_
