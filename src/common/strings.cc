#include "common/strings.h"

#include <cctype>

namespace wdr {

std::vector<std::string_view> Split(std::string_view input, char delimiter) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.push_back(input.substr(start));
      break;
    }
    pieces.push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string FormatWithCommas(long long value) {
  bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out += ',';
    out += *it;
    ++count;
  }
  if (negative) out += '-';
  return std::string(out.rbegin(), out.rend());
}

}  // namespace wdr
