#include "common/status.h"

namespace wdr {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status ParseError(std::string message) {
  return Status(StatusCode::kParseError, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

}  // namespace wdr
