#ifndef WDR_COMMON_STRINGS_H_
#define WDR_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace wdr {

// Splits `input` on `delimiter`, keeping empty pieces.
std::vector<std::string_view> Split(std::string_view input, char delimiter);

// Removes ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view input);

// True if `input` begins with / ends with the given affix.
bool StartsWith(std::string_view input, std::string_view prefix);
bool EndsWith(std::string_view input, std::string_view suffix);

// Joins `pieces` with `separator`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);

// Formats `value` with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatWithCommas(long long value);

}  // namespace wdr

#endif  // WDR_COMMON_STRINGS_H_
