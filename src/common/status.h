#ifndef WDR_COMMON_STATUS_H_
#define WDR_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace wdr {

// Error taxonomy for all fallible operations in the library. The project
// does not use exceptions; fallible functions return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kFailedPrecondition,
  kDeadlineExceeded,
  kCancelled,
  kUnavailable,
};

// Returns a stable human-readable name for `code`, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no message
// allocation), and carries a diagnostic message on the error path.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Convenience factories mirroring the StatusCode enumerators.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status ParseError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status InternalError(std::string message);
Status FailedPreconditionError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);
Status UnavailableError(std::string message);

// Holds either a value of type T or an error Status. Accessing the value of
// an error Result is a programming bug and aborts via assert in debug
// builds; callers must check ok() first.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

// Propagates an error Status from an expression that yields a Status.
#define WDR_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::wdr::Status wdr_status_tmp_ = (expr);      \
    if (!wdr_status_tmp_.ok()) return wdr_status_tmp_; \
  } while (false)

// Evaluates a Result<T> expression, propagating errors, else binds `lhs`.
#define WDR_STATUS_CONCAT_INNER_(a, b) a##b
#define WDR_STATUS_CONCAT_(a, b) WDR_STATUS_CONCAT_INNER_(a, b)
#define WDR_ASSIGN_OR_RETURN(lhs, expr) \
  WDR_ASSIGN_OR_RETURN_IMPL_(WDR_STATUS_CONCAT_(wdr_result_tmp_, __LINE__), \
                             lhs, expr)
#define WDR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace wdr

#endif  // WDR_COMMON_STATUS_H_
