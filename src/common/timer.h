#ifndef WDR_COMMON_TIMER_H_
#define WDR_COMMON_TIMER_H_

#include <chrono>

namespace wdr {

// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wdr

#endif  // WDR_COMMON_TIMER_H_
