#ifndef WDR_COMMON_TIMER_H_
#define WDR_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace wdr {

// Absolute steady-clock nanos, the time base of every deadline in the
// library (query::EvaluatorOptions::deadline_nanos and the server's
// per-query timeouts): deadline = SteadyNowNanos() + budget.
inline uint64_t SteadyNowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Monotonic wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// RAII stopwatch: on destruction, delivers the elapsed seconds to a
// `double&` (overwriting) or to any callable taking a double — e.g. a
// lambda recording into an obs::Histogram. Replaces the manual
// `Timer t; ...; out = t.ElapsedSeconds();` idiom; note the sink is
// written at scope exit, so the timed region must be an enclosing block
// that closes before the sink is read.
template <typename Sink = double*>
class ScopedTimer {
 public:
  explicit ScopedTimer(double& out) : sink_(&out) {}
  ~ScopedTimer() { Deliver(timer_.ElapsedSeconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  // Seconds elapsed so far, without waiting for destruction.
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 protected:
  explicit ScopedTimer(Sink sink) : sink_(std::move(sink)) {}

 private:
  void Deliver(double seconds) {
    if constexpr (std::is_same_v<Sink, double*>) {
      *sink_ = seconds;
    } else {
      sink_(seconds);
    }
  }

  Timer timer_;
  Sink sink_;
};

// Deduction helper: `ScopedCallbackTimer t([&](double s) { ... });`
template <typename Fn>
class ScopedCallbackTimer : public ScopedTimer<Fn> {
 public:
  explicit ScopedCallbackTimer(Fn fn) : ScopedTimer<Fn>(std::move(fn)) {}
};

}  // namespace wdr

#endif  // WDR_COMMON_TIMER_H_
