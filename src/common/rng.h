#ifndef WDR_COMMON_RNG_H_
#define WDR_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>

namespace wdr {

// Deterministic pseudo-random source. All generators and property tests in
// the project draw from this wrapper so runs are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  // Uniform real in [0, 1).
  double UniformReal() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  // Bernoulli draw with success probability `p`.
  bool Chance(double p) { return UniformReal() < p; }

  // Zipf-like skewed pick in [0, n): smaller indexes are more likely.
  // Used by workload generators to model popularity skew.
  int64_t Skewed(int64_t n) {
    if (n <= 1) return 0;
    double u = UniformReal();
    // Quadratic skew: density ~ 2(1-x); cheap and monotone.
    double x = 1.0 - std::sqrt(1.0 - u);
    int64_t index = static_cast<int64_t>(x * static_cast<double>(n));
    return index >= n ? n - 1 : index;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wdr

#endif  // WDR_COMMON_RNG_H_
