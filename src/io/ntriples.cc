#include "io/ntriples.h"

#include <vector>

#include "io/term_lexer.h"

namespace wdr::io {

using internal::Cursor;

Result<size_t> ParseNTriples(std::string_view text, rdf::Graph& graph) {
  Cursor cursor(text);
  // Encode while parsing, insert once at the end: the batch path lets
  // log-structured backends bulk-load instead of paying per-triple updates.
  std::vector<rdf::Triple> triples;
  while (true) {
    cursor.SkipWhitespaceAndComments();
    if (cursor.AtEnd()) break;

    // Subject: IRI or blank node.
    rdf::Term subject;
    if (cursor.Peek() == '<') {
      WDR_ASSIGN_OR_RETURN(subject, cursor.ParseIriRef());
    } else if (cursor.Peek() == '_') {
      WDR_ASSIGN_OR_RETURN(subject, cursor.ParseBlankNode());
    } else {
      return cursor.Error("subject must be an IRI or blank node");
    }

    cursor.SkipWhitespaceAndComments();
    // Predicate: IRI only.
    WDR_ASSIGN_OR_RETURN(rdf::Term predicate, cursor.ParseIriRef());

    cursor.SkipWhitespaceAndComments();
    // Object: IRI, blank node or literal.
    rdf::Term object;
    if (cursor.Peek() == '<') {
      WDR_ASSIGN_OR_RETURN(object, cursor.ParseIriRef());
    } else if (cursor.Peek() == '_') {
      WDR_ASSIGN_OR_RETURN(object, cursor.ParseBlankNode());
    } else if (cursor.Peek() == '"') {
      WDR_ASSIGN_OR_RETURN(object, cursor.ParseLiteral());
    } else {
      return cursor.Error("object must be an IRI, blank node or literal");
    }

    cursor.SkipWhitespaceAndComments();
    if (!cursor.Consume(".")) {
      return cursor.Error("expected '.' terminating the statement");
    }
    triples.push_back(graph.Encode(subject, predicate, object));
  }
  return graph.InsertBatch(triples);
}

std::string WriteNTriples(const rdf::Graph& graph) {
  std::string out;
  graph.store().Match(0, 0, 0, [&](const rdf::Triple& t) {
    out += graph.Decode(t);
    out += '\n';
  });
  return out;
}

}  // namespace wdr::io
