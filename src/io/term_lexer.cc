#include "io/term_lexer.h"

#include <cctype>

namespace wdr::io::internal {

void Cursor::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Next();
    } else if (c == '#') {
      while (!AtEnd() && Peek() != '\n') Next();
    } else {
      break;
    }
  }
}

bool Cursor::Consume(std::string_view token) {
  if (text_.substr(pos_, token.size()) != token) return false;
  for (size_t i = 0; i < token.size(); ++i) Next();
  return true;
}

Status Cursor::Error(const std::string& message) const {
  return ParseError("line " + std::to_string(line_) + ": " + message);
}

Result<rdf::Term> Cursor::ParseIriRef() {
  if (Peek() != '<') return Error("expected '<' starting an IRI");
  Next();
  std::string iri;
  while (!AtEnd() && Peek() != '>') {
    char c = Next();
    if (c == '\n') return Error("newline inside IRI");
    iri += c;
  }
  if (AtEnd()) return Error("unterminated IRI");
  Next();  // consume '>'
  if (iri.empty()) return Error("empty IRI");
  return rdf::Term::Iri(std::move(iri));
}

Result<rdf::Term> Cursor::ParseBlankNode() {
  if (Peek() != '_' || PeekAt(1) != ':') {
    return Error("expected '_:' starting a blank node");
  }
  Next();
  Next();
  std::string label;
  while (!AtEnd()) {
    char c = Peek();
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
        c == '.') {
      label += Next();
    } else {
      break;
    }
  }
  // A trailing '.' belongs to the statement terminator, not the label.
  while (!label.empty() && label.back() == '.') {
    label.pop_back();
    --pos_;
  }
  if (label.empty()) return Error("empty blank node label");
  return rdf::Term::Blank(std::move(label));
}

Result<rdf::Term> Cursor::ParseLiteral() {
  if (Peek() != '"') return Error("expected '\"' starting a literal");
  Next();
  std::string lexical;
  while (true) {
    if (AtEnd()) return Error("unterminated literal");
    char c = Next();
    if (c == '"') break;
    if (c == '\\') {
      if (AtEnd()) return Error("dangling escape in literal");
      char e = Next();
      switch (e) {
        case 't':
          lexical += '\t';
          break;
        case 'n':
          lexical += '\n';
          break;
        case 'r':
          lexical += '\r';
          break;
        case '"':
          lexical += '"';
          break;
        case '\\':
          lexical += '\\';
          break;
        default:
          return Error(std::string("unsupported escape '\\") + e + "'");
      }
    } else {
      lexical += c;
    }
  }
  std::string datatype;
  std::string language;
  if (Peek() == '@') {
    Next();
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '-') {
        language += Next();
      } else {
        break;
      }
    }
    if (language.empty()) return Error("empty language tag");
  } else if (Peek() == '^' && PeekAt(1) == '^' && PeekAt(2) == '<') {
    // `^^pfx:name` datatypes are left unconsumed for dialect parsers
    // (Turtle) that know the prefix table.
    Next();
    Next();
    WDR_ASSIGN_OR_RETURN(rdf::Term dt, ParseIriRef());
    datatype = dt.lexical;
  }
  return rdf::Term::Literal(std::move(lexical), std::move(datatype),
                            std::move(language));
}

}  // namespace wdr::io::internal
