#ifndef WDR_IO_TERM_LEXER_H_
#define WDR_IO_TERM_LEXER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/term.h"

namespace wdr::io::internal {

// Character-level cursor shared by the N-Triples and Turtle parsers.
// Tracks line numbers for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset >= text_.size() ? '\0' : text_[pos_ + offset];
  }
  char Next() {
    char c = Peek();
    if (c == '\n') ++line_;
    ++pos_;
    return c;
  }
  size_t line() const { return line_; }

  // Skips whitespace and `#` comments (to end of line).
  void SkipWhitespaceAndComments();

  // True (and consumes) if the next characters are exactly `token`.
  bool Consume(std::string_view token);

  // Parses `<iri>`. Cursor must be at '<'.
  Result<rdf::Term> ParseIriRef();
  // Parses `_:label`. Cursor must be at '_'.
  Result<rdf::Term> ParseBlankNode();
  // Parses `"lexical"` with optional `@lang` or `^^<dt>`. Cursor at '"'.
  Result<rdf::Term> ParseLiteral();

  // Formats an error with the current line number.
  Status Error(const std::string& message) const;

 private:
  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

}  // namespace wdr::io::internal

#endif  // WDR_IO_TERM_LEXER_H_
