#ifndef WDR_IO_TURTLE_WRITER_H_
#define WDR_IO_TURTLE_WRITER_H_

#include <string>
#include <utility>
#include <vector>

#include "rdf/graph.h"

namespace wdr::io {

// Serializes `graph` as Turtle: declares the given prefixes (pairs of
// prefix label and namespace IRI) plus rdf:/rdfs: by default, compacts
// IRIs under them, abbreviates rdf:type as `a`, and groups triples by
// subject with `;` predicate lists and `,` object lists. The output parses
// back to the same graph (round-trip tested).
std::string WriteTurtle(
    const rdf::Graph& graph,
    const std::vector<std::pair<std::string, std::string>>& prefixes = {});

}  // namespace wdr::io

#endif  // WDR_IO_TURTLE_WRITER_H_
