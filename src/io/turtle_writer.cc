#include "io/turtle_writer.h"

#include <algorithm>
#include <cctype>

#include "rdf/triple.h"
#include "schema/vocabulary.h"

namespace wdr::io {
namespace {

// A local name must be a plain identifier for the prefixed form to
// round-trip through our parser.
bool IsSafeLocalName(std::string_view local) {
  if (local.empty()) return false;
  for (char c : local) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

class TurtleWriter {
 public:
  TurtleWriter(const rdf::Graph& graph,
               std::vector<std::pair<std::string, std::string>> prefixes)
      : graph_(graph), prefixes_(std::move(prefixes)) {
    // Longest namespace first so the most specific prefix wins.
    std::sort(prefixes_.begin(), prefixes_.end(),
              [](const auto& a, const auto& b) {
                return a.second.size() > b.second.size();
              });
    type_id_ = graph.dict().LookupIri(schema::iri::kType);
  }

  std::string Run() {
    std::string out;
    for (const auto& [label, ns] : prefixes_) {
      out += "@prefix " + label + ": <" + ns + "> .\n";
    }
    if (!prefixes_.empty()) out += "\n";

    // Group by subject (the SPO scan is already subject-ordered) and by
    // predicate within the subject.
    rdf::TermId current_subject = rdf::kNullTermId;
    rdf::TermId current_predicate = rdf::kNullTermId;
    bool open = false;
    graph_.store().Match(0, 0, 0, [&](const rdf::Triple& t) {
      if (t.s != current_subject) {
        if (open) out += " .\n";
        out += Render(t.s);
        out += ' ';
        out += RenderPredicate(t.p);
        out += ' ';
        out += Render(t.o);
        current_subject = t.s;
        current_predicate = t.p;
        open = true;
      } else if (t.p != current_predicate) {
        out += " ;\n    ";
        out += RenderPredicate(t.p);
        out += ' ';
        out += Render(t.o);
        current_predicate = t.p;
      } else {
        out += " , ";
        out += Render(t.o);
      }
    });
    if (open) out += " .\n";
    return out;
  }

 private:
  std::string RenderPredicate(rdf::TermId id) {
    if (id == type_id_) return "a";
    return Render(id);
  }

  std::string Render(rdf::TermId id) {
    const rdf::Term& term = graph_.dict().term(id);
    if (term.is_iri()) {
      for (const auto& [label, ns] : prefixes_) {
        if (term.lexical.size() > ns.size() &&
            term.lexical.compare(0, ns.size(), ns) == 0) {
          std::string local = term.lexical.substr(ns.size());
          if (IsSafeLocalName(local)) return label + ":" + local;
        }
      }
    }
    return term.ToNTriples();
  }

  const rdf::Graph& graph_;
  std::vector<std::pair<std::string, std::string>> prefixes_;
  rdf::TermId type_id_ = rdf::kNullTermId;
};

}  // namespace

std::string WriteTurtle(
    const rdf::Graph& graph,
    const std::vector<std::pair<std::string, std::string>>& prefixes) {
  std::vector<std::pair<std::string, std::string>> all = prefixes;
  all.emplace_back("rdf", schema::iri::kRdfNs);
  all.emplace_back("rdfs", schema::iri::kRdfsNs);
  return TurtleWriter(graph, std::move(all)).Run();
}

}  // namespace wdr::io
