#ifndef WDR_IO_NTRIPLES_H_
#define WDR_IO_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "rdf/graph.h"

namespace wdr::io {

// Parses N-Triples text (one `<s> <p> <o> .` statement per line, `#`
// comments, blank nodes `_:label`, literals with `^^<dt>` / `@lang`) into
// `graph`. Reports the first error with its line number. Returns the number
// of triples parsed (duplicates count once).
Result<size_t> ParseNTriples(std::string_view text, rdf::Graph& graph);

// Serializes the whole graph in SPO order.
std::string WriteNTriples(const rdf::Graph& graph);

}  // namespace wdr::io

#endif  // WDR_IO_NTRIPLES_H_
