#include "io/turtle.h"

#include <cctype>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/term_lexer.h"
#include "schema/vocabulary.h"

namespace wdr::io {
namespace {

using internal::Cursor;

// Characters allowed inside the local part of a prefixed name.
bool IsLocalNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

class TurtleParser {
 public:
  TurtleParser(std::string_view text, rdf::Graph& graph)
      : cursor_(text), graph_(graph) {}

  Result<size_t> Run() {
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.AtEnd()) break;
      WDR_RETURN_IF_ERROR(ParseStatement());
    }
    // One batch insert at the end so log-structured backends bulk-load.
    return graph_.InsertBatch(pending_);
  }

 private:
  Status ParseStatement() {
    if (cursor_.Peek() == '@') {
      return ParseAtDirective();
    }
    // SPARQL-style PREFIX (case-insensitive, no trailing dot).
    if ((cursor_.Peek() == 'P' || cursor_.Peek() == 'p') &&
        LooksLikePrefixKeyword()) {
      return ParsePrefixBody(/*expect_dot=*/false);
    }
    return ParseTriples();
  }

  bool LooksLikePrefixKeyword() {
    static constexpr std::string_view kUpper = "PREFIX";
    for (size_t i = 0; i < kUpper.size(); ++i) {
      char c = cursor_.PeekAt(i);
      if (std::toupper(static_cast<unsigned char>(c)) != kUpper[i]) {
        return false;
      }
    }
    char after = cursor_.PeekAt(kUpper.size());
    if (!std::isspace(static_cast<unsigned char>(after))) return false;
    for (size_t i = 0; i < kUpper.size(); ++i) cursor_.Next();
    return true;
  }

  Status ParseAtDirective() {
    cursor_.Next();  // '@'
    if (cursor_.Consume("prefix")) {
      return ParsePrefixBody(/*expect_dot=*/true);
    }
    if (cursor_.Consume("base")) {
      return cursor_.Error("@base is not supported; use absolute IRIs");
    }
    return cursor_.Error("unknown @ directive");
  }

  Status ParsePrefixBody(bool expect_dot) {
    cursor_.SkipWhitespaceAndComments();
    std::string prefix;
    while (!cursor_.AtEnd() && cursor_.Peek() != ':') {
      char c = cursor_.Peek();
      if (std::isspace(static_cast<unsigned char>(c))) break;
      prefix += cursor_.Next();
    }
    if (cursor_.Peek() != ':') {
      return cursor_.Error("expected ':' in prefix declaration");
    }
    cursor_.Next();
    cursor_.SkipWhitespaceAndComments();
    WDR_ASSIGN_OR_RETURN(rdf::Term iri, cursor_.ParseIriRef());
    prefixes_[prefix] = iri.lexical;
    if (expect_dot) {
      cursor_.SkipWhitespaceAndComments();
      if (!cursor_.Consume(".")) {
        return cursor_.Error("expected '.' after @prefix directive");
      }
    }
    return Status::Ok();
  }

  Status ParseTriples() {
    WDR_ASSIGN_OR_RETURN(rdf::Term subject, ParseSubject());
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      WDR_ASSIGN_OR_RETURN(rdf::Term predicate, ParsePredicate());
      while (true) {
        cursor_.SkipWhitespaceAndComments();
        WDR_ASSIGN_OR_RETURN(rdf::Term object, ParseObject());
        pending_.push_back(graph_.Encode(subject, predicate, object));
        cursor_.SkipWhitespaceAndComments();
        if (!cursor_.Consume(",")) break;
      }
      if (cursor_.Consume(";")) {
        cursor_.SkipWhitespaceAndComments();
        // A ';' may be trailing before the final '.'.
        if (cursor_.Peek() == '.') break;
        continue;
      }
      break;
    }
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.Consume(".")) {
      return cursor_.Error("expected '.' terminating the statement");
    }
    return Status::Ok();
  }

  Result<rdf::Term> ParseSubject() {
    char c = cursor_.Peek();
    if (c == '<') return cursor_.ParseIriRef();
    if (c == '_') return cursor_.ParseBlankNode();
    if (c == '[' || c == '(') {
      return cursor_.Error("anonymous nodes / collections not supported");
    }
    return ParsePrefixedName();
  }

  Result<rdf::Term> ParsePredicate() {
    char c = cursor_.Peek();
    if (c == 'a' && IsKeywordBoundary(cursor_.PeekAt(1))) {
      cursor_.Next();
      return rdf::Term::Iri(schema::iri::kType);
    }
    if (c == '<') return cursor_.ParseIriRef();
    return ParsePrefixedName();
  }

  Result<rdf::Term> ParseObject() {
    char c = cursor_.Peek();
    if (c == '<') return cursor_.ParseIriRef();
    if (c == '_') return cursor_.ParseBlankNode();
    if (c == '"') return ParseLiteralWithPrefixedDatatype();
    if (c == '[' || c == '(') {
      return cursor_.Error("anonymous nodes / collections not supported");
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '+' || c == '-') {
      return ParseNumericLiteral();
    }
    return ParsePrefixedName();
  }

  // After the `a` keyword comes a term, never ':' (which would make it a
  // prefixed name with prefix "a") nor a local-name character.
  static bool IsKeywordBoundary(char c) {
    return std::isspace(static_cast<unsigned char>(c)) || c == '<' ||
           c == '_' || c == '"' || c == '\0';
  }

  Result<rdf::Term> ParseLiteralWithPrefixedDatatype() {
    // Cursor::ParseLiteral handles `^^<iri>`; handle `^^p:name` here by
    // parsing the quoted part first, then checking for a prefixed datatype.
    WDR_ASSIGN_OR_RETURN(rdf::Term literal, cursor_.ParseLiteral());
    if (literal.datatype.empty() && literal.language.empty() &&
        cursor_.Peek() == '^' && cursor_.PeekAt(1) == '^') {
      cursor_.Next();
      cursor_.Next();
      WDR_ASSIGN_OR_RETURN(rdf::Term dt, ParsePrefixedName());
      literal.datatype = dt.lexical;
    }
    return literal;
  }

  Result<rdf::Term> ParseNumericLiteral() {
    std::string digits;
    bool is_decimal = false;
    if (cursor_.Peek() == '+' || cursor_.Peek() == '-') {
      digits += cursor_.Next();
    }
    while (!cursor_.AtEnd()) {
      char c = cursor_.Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits += cursor_.Next();
      } else if (c == '.' &&
                 std::isdigit(static_cast<unsigned char>(cursor_.PeekAt(1)))) {
        is_decimal = true;
        digits += cursor_.Next();
      } else {
        break;
      }
    }
    if (digits.empty() || digits == "+" || digits == "-") {
      return cursor_.Error("malformed numeric literal");
    }
    const char* xsd = is_decimal ? "http://www.w3.org/2001/XMLSchema#decimal"
                                 : "http://www.w3.org/2001/XMLSchema#integer";
    return rdf::Term::Literal(std::move(digits), xsd);
  }

  Result<rdf::Term> ParsePrefixedName() {
    std::string prefix;
    while (!cursor_.AtEnd() && cursor_.Peek() != ':') {
      char c = cursor_.Peek();
      if (!IsLocalNameChar(c)) break;
      prefix += cursor_.Next();
    }
    if (cursor_.Peek() != ':') {
      return cursor_.Error("expected a prefixed name");
    }
    cursor_.Next();
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return cursor_.Error("undeclared prefix '" + prefix + ":'");
    }
    std::string local;
    while (!cursor_.AtEnd() && IsLocalNameChar(cursor_.Peek())) {
      local += cursor_.Next();
    }
    return rdf::Term::Iri(it->second + local);
  }

  Cursor cursor_;
  rdf::Graph& graph_;
  std::unordered_map<std::string, std::string> prefixes_;
  std::vector<rdf::Triple> pending_;  // encoded triples, inserted in Run()
};

}  // namespace

Result<size_t> ParseTurtle(std::string_view text, rdf::Graph& graph) {
  return TurtleParser(text, graph).Run();
}

}  // namespace wdr::io
