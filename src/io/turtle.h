#ifndef WDR_IO_TURTLE_H_
#define WDR_IO_TURTLE_H_

#include <string_view>

#include "common/status.h"
#include "rdf/graph.h"

namespace wdr::io {

// Parses a practical Turtle subset into `graph`:
//   - `@prefix p: <iri> .` and SPARQL-style `PREFIX p: <iri>` directives
//   - `@base <iri> .` is rejected (absolute IRIs only)
//   - prefixed names (`p:local`), IRIs, blank nodes, literals
//   - the `a` keyword for rdf:type
//   - predicate lists with `;` and object lists with `,`
// Collections `( ... )` and anonymous nodes `[ ... ]` are not supported and
// produce a ParseError. Returns the number of distinct triples added.
Result<size_t> ParseTurtle(std::string_view text, rdf::Graph& graph);

}  // namespace wdr::io

#endif  // WDR_IO_TURTLE_H_
