#ifndef WDR_ANALYSIS_STRATEGY_SELECTOR_H_
#define WDR_ANALYSIS_STRATEGY_SELECTOR_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/advisor.h"
#include "analysis/thresholds.h"
#include "obs/metrics.h"
#include "obs/query_log.h"

namespace wdr::analysis {

// Per-query strategy selection — the runtime half of the paper's §II-D
// open issue ("automatizing the choice between these two techniques"),
// generalized from the advisor's one-shot workload recommendation to a
// per-query, online-fitted decision in the spirit of VLog's
// Reasoner::chooseMostEfficientAlgo. The selector owns no store state: it
// consumes query features (reformulation fan-out probe, statistics
// bounds), a sliding window of structured query-log records, and the live
// metrics snapshot, and produces routing decisions the store executes
// (store::ReasoningMode::kAuto).

// The four static evaluation routes a query can be sent down. Values
// index the per-route arrays below.
enum class Route : uint8_t {
  kSaturation = 0,     // query the maintained closure G∞
  kReformulation = 1,  // rewrite into a UCQ over G
  kBackward = 2,       // backward chaining inside the join
  kDatalog = 3,        // Datalog translation + magic sets
};
inline constexpr size_t kRouteCount = 4;
const char* RouteName(Route route);

// Per-query features the store extracts cheaply at prepare time. All are
// estimates: the fan-out comes from Reformulator::EstimateFanout (exact
// only on a memo hit), the row bound from exec::Statistics.
struct QueryFeatures {
  double fanout = 1;        // estimated reformulation |UCQ| (>= 1)
  bool fanout_exact = false;
  size_t atoms = 1;         // BGP join width
  double est_rows = -1;     // statistics row bound; < 0 when unknown
};

// One fitted per-route cost model: cost(q) = base + per_branch * fanout(q),
// optionally scaled by the query's relative row bound. per_branch is only
// nonzero for the routes whose cost grows with the rewriting fan-out
// (reformulation, backward); the closure- and materialization-backed
// routes pre-paid that cost.
struct RouteModel {
  double base = 0;        // seconds
  double per_branch = 0;  // seconds per estimated UCQ branch
  double mean_rows = 0;   // mean answer rows over the fitted window
  size_t samples = 0;     // window records behind the fit
  bool from_prior = false;  // no window data: values derive from the prior
};

// One routing decision, as recorded in the store's decision ring and
// rendered by the shell's `.why`.
struct RouteDecision {
  Route route = Route::kReformulation;
  // Predicted seconds per route (indexed by Route); infinity marks a route
  // that was not viable for this query (no closure, no cost data).
  std::array<double, kRouteCount> est_seconds{};
  QueryFeatures features;
  bool closure_available = false;
  // Stale model: no per-route cost data existed, so the decision is the
  // safe static fallback (saturation when the closure is materialized,
  // reformulation otherwise) rather than a fitted choice.
  bool fallback = false;
  // Estimate came from the per-query-key memory rather than the
  // parametric per-route model (repeated queries route near-oracle).
  bool per_key = false;
  // Lifecycle advice for the store's lazy closure policy: build the
  // closure now (the forgone savings have paid for it), or drop it (the
  // advisor has seen maintenance dominate for two refreshes).
  bool materialize_closure = false;
  bool drop_closure = false;
  uint64_t model_version = 0;  // Refresh() generation the decision used
  std::string rationale;       // one-line human-readable explanation
};

// Online strategy selector. Not thread-safe: the store calls Decide /
// Refresh / NoteUpdate from its externally-serialized prepare/update path
// (see store::ReasoningStore). The only cross-thread feedback —
// estimated-vs-actual error from concurrent Executes — goes through the
// lock-free metrics registry via the free function RecordEstimateError.
class StrategySelector {
 public:
  struct Options {
    // Decisions between model refits from the query-log window.
    size_t refresh_every = 32;
    // Newest query-log records considered per refit.
    size_t window = 256;
    // A route needs at least this many window records to be considered
    // fitted; below it the route falls back to the prior (or infinity).
    size_t min_route_samples = 2;
    // Materialize the closure once the accumulated estimated savings of
    // the saturation route exceed this multiple of the estimated closure
    // build cost AND the advisor recommends saturation on the observed
    // query/update mix.
    double materialize_payback = 1.0;
    // Drop a materialized closure when the advisor has priced
    // reformulation at least this factor below saturation for two
    // consecutive refreshes (hysteresis against flapping).
    double drop_after_factor = 2.0;
  };

  StrategySelector() : StrategySelector(Options{}) {}
  explicit StrategySelector(Options options);

  // Sets the cold-start prior (typically CostProfileFromMetrics at store
  // construction). Routes without window data price from this.
  void SetPrior(const CostProfile& prior);

  // True when Decide wants fresh window data first (never refreshed, or
  // refresh_every decisions have passed). The caller owns the feed:
  //   if (selector.NeedsRefresh())
  //     selector.Refresh(obs::QueryLog::Get().Records(),
  //                      obs::MetricsRegistry::Get().Snapshot());
  bool NeedsRefresh() const;

  // Refits the per-route models and the per-query-key memory from the
  // newest `options().window` records of `records`, refreshes the prior
  // from `snapshot`, and re-evaluates the closure lifecycle advice.
  // Bumps wdr.auto.model_refreshes.
  void Refresh(const std::vector<obs::QueryLogRecord>& records,
               const obs::MetricsSnapshot& snapshot);

  // Routes one query. `query_key` is the canonical query-log key (the
  // per-key memory joins on it); `closure_available` gates the saturation
  // route; `store_size` feeds the closure build-cost heuristic when no
  // measured build exists. Bumps wdr.auto.decisions.<route>.
  RouteDecision Decide(const std::string& query_key,
                       const QueryFeatures& features, bool closure_available,
                       size_t store_size);

  // Signals one store-level update (maintenance pressure for the advisor's
  // forecast; drives the materialize/drop lifecycle).
  void NoteUpdate();

  // Called by the store after it materialized / dropped the closure on
  // this selector's advice, so the advice resets.
  void ClosureMaterialized();
  void ClosureDropped();

  uint64_t model_version() const { return model_version_; }
  const Options& options() const { return options_; }
  const CostProfile& prior() const { return prior_; }
  const std::array<RouteModel, kRouteCount>& route_models() const {
    return route_models_;
  }

 private:
  // Per-route estimate for one query, infinity when unpriceable. Sets
  // `per_key` when the per-key memory supplied the value.
  double EstimateRoute(Route route, const std::string& query_key,
                       const QueryFeatures& features, bool* per_key) const;

  Options options_;
  CostProfile prior_;
  bool has_prior_ = false;

  std::array<RouteModel, kRouteCount> route_models_{};
  // Canonical query key -> mean observed seconds per route (and sample
  // count), over the last fitted window. Repeated queries — the common
  // case the paper's Fig. 3 thresholds are about — route on their own
  // measured history, which is exactly the per-query oracle once every
  // route has been seen.
  struct KeyStats {
    std::array<double, kRouteCount> mean_seconds{};
    std::array<uint32_t, kRouteCount> samples{};
  };
  std::unordered_map<std::string, KeyStats> per_key_;

  uint64_t model_version_ = 0;
  size_t decisions_since_refresh_ = 0;
  uint64_t updates_since_refresh_ = 0;

  // Closure lifecycle state.
  double forgone_sat_savings_seconds_ = 0;
  double estimated_build_seconds_ = 0;
  bool advisor_prefers_saturation_ = false;
  int drop_votes_ = 0;  // consecutive refreshes pricing maintenance out
};

// Records one estimated-vs-actual outcome for a routed query: bumps the
// dimensionless wdr.auto.est_error_pct histogram (absolute relative error
// in percent, bucketed base-2 like every histogram) and the per-route
// actual-latency histogram wdr.auto.actual.<route>. Lock-free; safe from
// concurrent Execute threads.
void RecordEstimateError(Route route, double estimated_seconds,
                         double actual_seconds);

}  // namespace wdr::analysis

#endif  // WDR_ANALYSIS_STRATEGY_SELECTOR_H_
