#include "analysis/thresholds.h"

#include <cmath>

namespace wdr::analysis {
namespace {

double AmortizationThreshold(double one_time_cost, double per_run_saturated,
                             double per_run_reformulated) {
  double gain_per_run = per_run_reformulated - per_run_saturated;
  if (gain_per_run <= 0) return INFINITY;
  if (one_time_cost <= 0) return 0;
  return std::ceil(one_time_cost / gain_per_run);
}

}  // namespace

Thresholds ComputeThresholds(const CostProfile& costs) {
  Thresholds t;
  t.saturation =
      AmortizationThreshold(costs.saturation_seconds,
                            costs.eval_saturated_seconds,
                            costs.eval_reformulated_seconds);
  t.instance_insert =
      AmortizationThreshold(costs.maintain_instance_insert_seconds,
                            costs.eval_saturated_seconds,
                            costs.eval_reformulated_seconds);
  t.instance_delete =
      AmortizationThreshold(costs.maintain_instance_delete_seconds,
                            costs.eval_saturated_seconds,
                            costs.eval_reformulated_seconds);
  t.schema_insert =
      AmortizationThreshold(costs.maintain_schema_insert_seconds,
                            costs.eval_saturated_seconds,
                            costs.eval_reformulated_seconds);
  t.schema_delete =
      AmortizationThreshold(costs.maintain_schema_delete_seconds,
                            costs.eval_saturated_seconds,
                            costs.eval_reformulated_seconds);
  return t;
}

std::string FormatThreshold(double threshold) {
  if (std::isinf(threshold)) return "never";
  long long n = static_cast<long long>(threshold);
  return std::to_string(n);
}

}  // namespace wdr::analysis
