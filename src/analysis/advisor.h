#ifndef WDR_ANALYSIS_ADVISOR_H_
#define WDR_ANALYSIS_ADVISOR_H_

#include <string>

#include "analysis/thresholds.h"

namespace wdr::analysis {

// Expected workload over some horizon (counts, not rates — the horizon
// cancels out of the comparison).
struct WorkloadForecast {
  double query_runs = 0;
  double instance_inserts = 0;
  double instance_deletes = 0;
  double schema_inserts = 0;
  double schema_deletes = 0;
};

enum class Technique {
  kSaturation,
  kReformulation,
};

struct Recommendation {
  Technique technique = Technique::kReformulation;
  // Predicted total costs (seconds) over the forecast horizon.
  double saturation_total_seconds = 0;
  double reformulation_total_seconds = 0;
  std::string rationale;
};

// The §II-D open issue "automatizing ... the choice between these two
// techniques, based on a quantitative evaluation of the application
// setting": given a measured cost profile and a forecast, predicts the
// total cost of each technique and recommends the cheaper one.
//
//   saturation total   = C_sat + Σ_u n_u * C_maint(u) + n_q * C_eval(q,G∞)
//   reformulation total = n_q * C_eval(q_ref, G)
Recommendation Recommend(const CostProfile& costs,
                         const WorkloadForecast& forecast);

}  // namespace wdr::analysis

#endif  // WDR_ANALYSIS_ADVISOR_H_
