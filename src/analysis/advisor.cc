#include "analysis/advisor.h"

#include <cmath>

namespace wdr::analysis {

Recommendation Recommend(const CostProfile& costs,
                         const WorkloadForecast& forecast) {
  Recommendation rec;
  rec.saturation_total_seconds =
      costs.saturation_seconds +
      forecast.query_runs * costs.eval_saturated_seconds +
      forecast.instance_inserts * costs.maintain_instance_insert_seconds +
      forecast.instance_deletes * costs.maintain_instance_delete_seconds +
      forecast.schema_inserts * costs.maintain_schema_insert_seconds +
      forecast.schema_deletes * costs.maintain_schema_delete_seconds;
  rec.reformulation_total_seconds =
      forecast.query_runs * costs.eval_reformulated_seconds;

  if (rec.saturation_total_seconds <= rec.reformulation_total_seconds) {
    rec.technique = Technique::kSaturation;
    double ratio = rec.saturation_total_seconds > 0
                       ? rec.reformulation_total_seconds /
                             rec.saturation_total_seconds
                       : INFINITY;
    rec.rationale =
        "saturate: the workload re-runs queries often enough relative to "
        "updates that maintaining the closure is " +
        std::to_string(ratio) + "x cheaper than always reformulating";
  } else {
    rec.technique = Technique::kReformulation;
    double ratio = rec.reformulation_total_seconds > 0
                       ? rec.saturation_total_seconds /
                             rec.reformulation_total_seconds
                       : INFINITY;
    rec.rationale =
        "reformulate: updates dominate query repetition, so keeping the "
        "graph unsaturated is " +
        std::to_string(ratio) + "x cheaper than maintaining the closure";
  }
  return rec;
}

}  // namespace wdr::analysis
