#ifndef WDR_ANALYSIS_THRESHOLDS_H_
#define WDR_ANALYSIS_THRESHOLDS_H_

#include <string>

namespace wdr::analysis {

// Measured costs for one query on one graph (seconds). This is the input
// of the Fig. 3 threshold computation.
struct CostProfile {
  // One-time cost of saturating the graph (independent of the query).
  double saturation_seconds = 0;
  // One-time cost of rewriting q into q_ref (re-done after schema changes;
  // typically tiny, reported separately as in the EDBT'13 setup).
  double reformulation_seconds = 0;
  // Per-run cost of evaluating q over the saturated graph G∞.
  double eval_saturated_seconds = 0;
  // Per-run cost of evaluating the (already rewritten) q_ref over G.
  double eval_reformulated_seconds = 0;
  // Per-update cost of maintaining the saturation, by update kind.
  double maintain_instance_insert_seconds = 0;
  double maintain_instance_delete_seconds = 0;
  double maintain_schema_insert_seconds = 0;
  double maintain_schema_delete_seconds = 0;
};

// The five Fig. 3 series. Each threshold is the minimum number of query
// runs n such that (one-time cost) + n * eval_saturated <= n *
// eval_reformulated, i.e. the number of runs needed to amortize paying
// that one-time cost instead of always reformulating. Infinity (INFINITY)
// when reformulated evaluation is at least as fast as saturated evaluation
// — then saturation never pays off for this query, one of the paper's key
// observations.
struct Thresholds {
  double saturation = 0;
  double instance_insert = 0;
  double instance_delete = 0;
  double schema_insert = 0;
  double schema_delete = 0;
};

// Computes the Fig. 3 thresholds from a measured cost profile.
Thresholds ComputeThresholds(const CostProfile& costs);

// Renders a threshold as the figure's axis does: an integer count, or
// "never" for infinity.
std::string FormatThreshold(double threshold);

}  // namespace wdr::analysis

#endif  // WDR_ANALYSIS_THRESHOLDS_H_
