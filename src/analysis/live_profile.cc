#include "analysis/live_profile.h"

#include <algorithm>

namespace wdr::analysis {
namespace {

double HistogramMean(const obs::MetricsSnapshot& snapshot,
                     const std::string& name) {
  const obs::HistogramData* h = snapshot.histogram(name);
  return h == nullptr ? 0 : h->MeanSeconds();
}

}  // namespace

CostProfile CostProfileFromMetrics(const obs::MetricsSnapshot& snapshot) {
  CostProfile costs;
  costs.saturation_seconds = HistogramMean(snapshot, "wdr.saturation.build");
  costs.reformulation_seconds =
      HistogramMean(snapshot, "wdr.store.reformulation.rewrite");
  costs.eval_saturated_seconds =
      HistogramMean(snapshot, "wdr.store.query.saturation");
  // The reformulation-mode query histogram covers rewrite + evaluation;
  // CostProfile wants evaluation of the already-rewritten UCQ only.
  costs.eval_reformulated_seconds =
      std::max(0.0, HistogramMean(snapshot, "wdr.store.query.reformulation") -
                        costs.reformulation_seconds);
  costs.maintain_instance_insert_seconds =
      HistogramMean(snapshot, "wdr.store.update.instance_insert");
  costs.maintain_instance_delete_seconds =
      HistogramMean(snapshot, "wdr.store.update.instance_delete");
  costs.maintain_schema_insert_seconds =
      HistogramMean(snapshot, "wdr.store.update.schema_insert");
  costs.maintain_schema_delete_seconds =
      HistogramMean(snapshot, "wdr.store.update.schema_delete");
  return costs;
}

bool MetricsCoverComparison(const obs::MetricsSnapshot& snapshot) {
  const obs::HistogramData* sat =
      snapshot.histogram("wdr.store.query.saturation");
  const obs::HistogramData* ref =
      snapshot.histogram("wdr.store.query.reformulation");
  return sat != nullptr && sat->count > 0 && ref != nullptr && ref->count > 0;
}

}  // namespace wdr::analysis
