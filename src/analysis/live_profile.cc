#include "analysis/live_profile.h"

#include <algorithm>

namespace wdr::analysis {
namespace {

double HistogramMean(const obs::MetricsSnapshot& snapshot,
                     const std::string& name) {
  const obs::HistogramData* h = snapshot.histogram(name);
  return h == nullptr ? 0 : h->MeanSeconds();
}

}  // namespace

CostProfile CostProfileFromMetrics(const obs::MetricsSnapshot& snapshot) {
  CostProfile costs;
  costs.saturation_seconds = HistogramMean(snapshot, "wdr.saturation.build");
  costs.reformulation_seconds =
      HistogramMean(snapshot, "wdr.store.reformulation.rewrite");
  costs.eval_saturated_seconds =
      HistogramMean(snapshot, "wdr.store.query.saturation");
  // The reformulation-mode query histogram covers rewrite + evaluation;
  // CostProfile wants evaluation of the already-rewritten UCQ only.
  costs.eval_reformulated_seconds =
      std::max(0.0, HistogramMean(snapshot, "wdr.store.query.reformulation") -
                        costs.reformulation_seconds);
  costs.maintain_instance_insert_seconds =
      HistogramMean(snapshot, "wdr.store.update.instance_insert");
  costs.maintain_instance_delete_seconds =
      HistogramMean(snapshot, "wdr.store.update.instance_delete");
  costs.maintain_schema_insert_seconds =
      HistogramMean(snapshot, "wdr.store.update.schema_insert");
  costs.maintain_schema_delete_seconds =
      HistogramMean(snapshot, "wdr.store.update.schema_delete");
  return costs;
}

CostProfile CostProfileFromQueryLog(
    const std::vector<obs::QueryLogRecord>& records,
    const obs::MetricsSnapshot& snapshot) {
  // Start from the metrics-derived profile (build + maintenance costs are
  // not per-query observable), then overwrite the query-side costs with
  // the means over the supplied records.
  CostProfile costs = CostProfileFromMetrics(snapshot);
  double sat_nanos = 0, ref_nanos = 0;
  uint64_t sat_count = 0, ref_count = 0;
  for (const obs::QueryLogRecord& r : records) {
    if (!r.ok) continue;  // failed queries have no meaningful eval cost
    if (r.mode == "saturation") {
      sat_nanos += static_cast<double>(r.wall_nanos);
      ++sat_count;
    } else if (r.mode == "reformulation") {
      ref_nanos += static_cast<double>(r.wall_nanos);
      ++ref_count;
    }
  }
  // Cold start: a window with no records for a mode says nothing about
  // that mode's cost — keep the metrics-derived value already in `costs`
  // rather than zeroing it (a zero would make the unobserved mode look
  // free to anything ranking techniques by this profile).
  if (sat_count != 0) {
    costs.eval_saturated_seconds =
        sat_nanos * 1e-9 / static_cast<double>(sat_count);
  }
  // Record wall time covers rewrite + evaluation (same shape as the
  // reformulation-mode histogram); CostProfile wants evaluation only.
  if (ref_count != 0) {
    costs.eval_reformulated_seconds =
        std::max(0.0, ref_nanos * 1e-9 / static_cast<double>(ref_count) -
                          costs.reformulation_seconds);
  }
  return costs;
}

bool MetricsCoverComparison(const obs::MetricsSnapshot& snapshot) {
  const obs::HistogramData* sat =
      snapshot.histogram("wdr.store.query.saturation");
  const obs::HistogramData* ref =
      snapshot.histogram("wdr.store.query.reformulation");
  return sat != nullptr && sat->count > 0 && ref != nullptr && ref->count > 0;
}

}  // namespace wdr::analysis
