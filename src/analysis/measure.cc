#include "analysis/measure.h"

#include "common/timer.h"
#include "query/evaluator.h"
#include "rdf/hier_encoding.h"
#include "reasoning/saturated_graph.h"
#include "reformulation/reformulator.h"
#include "schema/schema.h"

namespace wdr::analysis {
namespace {

// Rewrites the query's constants (and preset values) through the encoding
// permutation so it addresses the re-encoded graph's id space.
query::BgpQuery RemapQuery(const query::BgpQuery& q,
                           const rdf::HierEncoding& encoding) {
  query::BgpQuery out = q;
  for (query::TriplePattern& atom : out.mutable_atoms()) {
    for (query::PatternTerm* pos : {&atom.s, &atom.p, &atom.o}) {
      if (pos->is_const()) pos->id = encoding.Remap(pos->id);
    }
  }
  for (const auto& [var, value] : q.preset()) {
    out.Preset(var, encoding.Remap(value));
  }
  return out;
}

// Average seconds per update: applies each update (timed), rolls it back
// (untimed). `apply` and `undo` take a triple.
template <typename ApplyFn, typename UndoFn>
double TimePerUpdate(const std::vector<rdf::Triple>& updates, ApplyFn&& apply,
                     UndoFn&& undo) {
  if (updates.empty()) return 0;
  double total = 0;
  for (const rdf::Triple& t : updates) {
    Timer timer;
    apply(t);
    total += timer.ElapsedSeconds();
    undo(t);
  }
  return total / static_cast<double>(updates.size());
}

}  // namespace

Result<MeasureReport> MeasureCostProfile(const rdf::Graph& graph,
                                         const schema::Vocabulary& vocab,
                                         const query::BgpQuery& q,
                                         const UpdateSample& updates,
                                         const MeasureOptions& options) {
  MeasureReport report;
  report.base_triples = graph.size();

  // One-time saturation cost.
  Timer timer;
  reasoning::SaturatedGraph saturated(graph, vocab, /*enable_owl=*/false,
                                      options.saturation);
  report.costs.saturation_seconds = timer.ElapsedSeconds();
  report.closure_triples = saturated.closure().size();

  const int reps = options.query_repetitions < 1 ? 1 : options.query_repetitions;

  // Per-run evaluation over G∞.
  {
    query::Evaluator evaluator(saturated.closure(), options.query);
    timer.Reset();
    for (int r = 0; r < reps; ++r) {
      query::ResultSet result = evaluator.Evaluate(q);
      report.answers = result.rows.size();
    }
    report.costs.eval_saturated_seconds =
        timer.ElapsedSeconds() / static_cast<double>(reps);
  }

  // Rewriting cost (once — the rewriting of a repeated query is reused
  // until the schema changes), then per-run evaluation of q_ref over G.
  // With options.encoding the one-time cost additionally covers building
  // the hierarchy encoding and re-encoding a graph snapshot, and q_ref
  // carries range atoms instead of per-node union branches.
  if (options.encoding) {
    timer.Reset();
    schema::Schema schema = schema::Schema::FromGraph(graph, vocab);
    rdf::Graph encoded = graph;
    rdf::HierEncoding hier = rdf::HierEncoding::Build(schema, encoded.dict());
    encoded.ApplyPermutation(hier.permutation());
    schema::Vocabulary enc_vocab = schema::Vocabulary::Intern(encoded.dict());
    schema::Schema enc_schema = schema::Schema::FromGraph(encoded, enc_vocab);
    reformulation::ReformulationOptions ref_options;
    ref_options.encoding = &hier;
    reformulation::Reformulator reformulator(enc_schema, enc_vocab,
                                             ref_options);
    WDR_ASSIGN_OR_RETURN(query::UnionQuery reformulated,
                         reformulator.Reformulate(RemapQuery(q, hier)));
    report.costs.reformulation_seconds = timer.ElapsedSeconds();
    report.reformulation_cqs = reformulated.size();

    query::Evaluator evaluator(encoded.store(), options.query);
    timer.Reset();
    for (int r = 0; r < reps; ++r) {
      query::ResultSet result = evaluator.Evaluate(reformulated);
      (void)result;
    }
    report.costs.eval_reformulated_seconds =
        timer.ElapsedSeconds() / static_cast<double>(reps);
  } else {
    timer.Reset();
    schema::Schema schema = schema::Schema::FromGraph(graph, vocab);
    reformulation::Reformulator reformulator(schema, vocab);
    WDR_ASSIGN_OR_RETURN(query::UnionQuery reformulated,
                         reformulator.Reformulate(q));
    report.costs.reformulation_seconds = timer.ElapsedSeconds();
    report.reformulation_cqs = reformulated.size();

    query::Evaluator evaluator(graph.store(), options.query);
    timer.Reset();
    for (int r = 0; r < reps; ++r) {
      query::ResultSet result = evaluator.Evaluate(reformulated);
      (void)result;
    }
    report.costs.eval_reformulated_seconds =
        timer.ElapsedSeconds() / static_cast<double>(reps);
  }

  // Maintenance costs: apply to the maintained closure, roll back.
  report.costs.maintain_instance_insert_seconds = TimePerUpdate(
      updates.instance_insertions,
      [&](const rdf::Triple& t) { saturated.Insert(t); },
      [&](const rdf::Triple& t) { saturated.Erase(t); });
  report.costs.maintain_instance_delete_seconds = TimePerUpdate(
      updates.instance_deletions,
      [&](const rdf::Triple& t) { saturated.Erase(t); },
      [&](const rdf::Triple& t) { saturated.Insert(t); });
  report.costs.maintain_schema_insert_seconds = TimePerUpdate(
      updates.schema_insertions,
      [&](const rdf::Triple& t) { saturated.Insert(t); },
      [&](const rdf::Triple& t) { saturated.Erase(t); });
  report.costs.maintain_schema_delete_seconds = TimePerUpdate(
      updates.schema_deletions,
      [&](const rdf::Triple& t) { saturated.Erase(t); },
      [&](const rdf::Triple& t) { saturated.Insert(t); });

  return report;
}

}  // namespace wdr::analysis
