#ifndef WDR_ANALYSIS_MEASURE_H_
#define WDR_ANALYSIS_MEASURE_H_

#include <vector>

#include "analysis/thresholds.h"
#include "common/status.h"
#include "query/evaluator.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "reasoning/saturation.h"
#include "schema/vocabulary.h"

namespace wdr::analysis {

// Updates to exercise when measuring maintenance costs. Insertions must not
// be present in the graph; deletions must be present.
struct UpdateSample {
  std::vector<rdf::Triple> instance_insertions;
  std::vector<rdf::Triple> instance_deletions;
  std::vector<rdf::Triple> schema_insertions;
  std::vector<rdf::Triple> schema_deletions;
};

struct MeasureOptions {
  // Query evaluations are repeated and averaged.
  int query_repetitions = 3;
  // Applied to the closure build and maintenance being measured, so the
  // thresholds reflect the deployment's actual saturation configuration
  // (parallel saturation lowers the amortization point).
  reasoning::SaturationOptions saturation;
  // Applied to both evaluations being compared (q over G∞ and q_ref over
  // G), so the thresholds reflect the deployment's query configuration.
  // Branch-parallel evaluation and the scan cache speed up the
  // reformulated side far more than the saturated side (large unions vs.
  // single BGPs), raising the measured saturation thresholds. The plan
  // knob (EvaluatorOptions::plan) rides along too: with it on, both sides
  // are measured under cost-based physical plans (statistics are built
  // per evaluation — leave `stats` null; the graphs being measured are
  // snapshots).
  query::EvaluatorOptions query;
  // Measure the reformulated side under the hierarchy-aware id encoding
  // (rdf/hier_encoding.h): a snapshot of the graph is re-encoded so that
  // subclass/subproperty closures occupy contiguous id intervals, and the
  // rewriting collapses those unions into range atoms. The one-time
  // encoding build is charged to reformulation_seconds (it amortizes like
  // the rewriting itself: redone only on schema change). Answers are
  // identical either way.
  bool encoding = false;
};

// Side measurements produced along the way, reported by the benches.
struct MeasureReport {
  CostProfile costs;
  size_t closure_triples = 0;
  size_t base_triples = 0;
  size_t reformulation_cqs = 0;
  size_t answers = 0;
};

// Measures the full Fig. 3 cost profile of `q` on `graph` (which must be
// schema-closed for reformulation to be exact — see reformulation docs):
//
//   - saturation cost and |G∞|
//   - per-run cost of q over G∞
//   - the one-time rewriting cost of q into q_ref (re-done only when the
//     schema changes, so not charged per run — matching the threshold
//     definition, which compares evaluation costs)
//   - per-run cost of evaluating q_ref over G
//   - per-update closure maintenance cost for the four update kinds
//     (each update is applied to the maintained closure, timed, and rolled
//     back untimed, so measurements are independent)
//
// Returns ResourceExhausted if the reformulation exceeds its CQ cap.
Result<MeasureReport> MeasureCostProfile(const rdf::Graph& graph,
                                         const schema::Vocabulary& vocab,
                                         const query::BgpQuery& q,
                                         const UpdateSample& updates,
                                         const MeasureOptions& options = {});

}  // namespace wdr::analysis

#endif  // WDR_ANALYSIS_MEASURE_H_
