#ifndef WDR_ANALYSIS_LIVE_PROFILE_H_
#define WDR_ANALYSIS_LIVE_PROFILE_H_

#include <vector>

#include "analysis/thresholds.h"
#include "obs/metrics.h"
#include "obs/query_log.h"

namespace wdr::analysis {

// Builds a CostProfile from live wdr::obs metrics instead of a dedicated
// measurement run: each cost is the mean of the corresponding latency
// histogram accumulated while the store served real traffic.
//
//   saturation_seconds            <- wdr.saturation.build
//   reformulation_seconds         <- wdr.store.reformulation.rewrite
//   eval_saturated_seconds        <- wdr.store.query.saturation
//   eval_reformulated_seconds     <- wdr.store.query.reformulation minus
//                                    the rewrite mean (the query histogram
//                                    times rewrite + evaluation together)
//   maintain_*_seconds            <- wdr.store.update.{instance,schema}_*
//
// Histograms with no recordings contribute 0; callers that need a full
// profile should check MetricsCoverComparison() first.
CostProfile CostProfileFromMetrics(const obs::MetricsSnapshot& snapshot);

// Whether the snapshot has at least one recording for both per-query
// histograms the saturation-vs-reformulation comparison hinges on
// (wdr.store.query.saturation and wdr.store.query.reformulation). Without
// both, Recommend() over CostProfileFromMetrics() output is one-sided.
bool MetricsCoverComparison(const obs::MetricsSnapshot& snapshot);

// Like CostProfileFromMetrics, but the per-query costs come from the
// structured query log instead of the process-global latency histograms:
// eval_saturated/eval_reformulated are the mean wall time of successful
// records in the corresponding mode (rewrite time subtracted for the
// reformulation side, same convention as above), so the profile reflects
// exactly the queries in `records` — e.g. one tenant's recent window —
// rather than everything the process ever ran. Build/maintenance costs are
// per-record invisible and still come from `snapshot`. Modes with no
// successful records in the window keep the metrics-derived value (an
// empty or single-mode window must not make the unobserved mode look
// free); only when the histograms are empty too does a cost read 0.
CostProfile CostProfileFromQueryLog(
    const std::vector<obs::QueryLogRecord>& records,
    const obs::MetricsSnapshot& snapshot);

}  // namespace wdr::analysis

#endif  // WDR_ANALYSIS_LIVE_PROFILE_H_
