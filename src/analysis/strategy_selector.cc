#include "analysis/strategy_selector.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "analysis/live_profile.h"

namespace wdr::analysis {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Closure build cost when no measured wdr.saturation.build sample exists
// yet: a per-triple constant in the right order of magnitude for the
// in-memory saturator. Only used to gate lazy materialization; the first
// real build replaces it through the metrics-derived prior.
constexpr double kBuildSecondsPerTriple = 50e-9;

int RouteOfMode(const std::string& mode) {
  if (mode == "saturation") return static_cast<int>(Route::kSaturation);
  if (mode == "reformulation") return static_cast<int>(Route::kReformulation);
  if (mode == "backward") return static_cast<int>(Route::kBackward);
  if (mode == "datalog") return static_cast<int>(Route::kDatalog);
  return -1;  // none / unknown: not a reasoning route
}

// The fan-out feature of one log record: the probe's estimate when it ran,
// the realized union size for reformulation records otherwise.
double RecordFanout(const obs::QueryLogRecord& r) {
  if (r.fanout > 0) return static_cast<double>(r.fanout);
  if (r.mode == "reformulation" && r.union_size > 0) {
    return static_cast<double>(r.union_size);
  }
  return 1.0;
}

std::string FormatSeconds(double seconds) {
  if (!std::isfinite(seconds)) return "n/a";
  char buf[32];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  }
  return buf;
}

}  // namespace

const char* RouteName(Route route) {
  switch (route) {
    case Route::kSaturation:
      return "saturation";
    case Route::kReformulation:
      return "reformulation";
    case Route::kBackward:
      return "backward";
    case Route::kDatalog:
      return "datalog";
  }
  return "unknown";
}

StrategySelector::StrategySelector(Options options) : options_(options) {
  if (options_.refresh_every < 1) options_.refresh_every = 1;
  if (options_.window < 1) options_.window = 1;
  if (options_.min_route_samples < 1) options_.min_route_samples = 1;
  for (RouteModel& m : route_models_) m.base = kInf;
}

void StrategySelector::SetPrior(const CostProfile& prior) {
  prior_ = prior;
  has_prior_ = true;
  estimated_build_seconds_ = prior_.saturation_seconds;
  if (model_version_ != 0) return;  // fitted models take precedence
  // Prior-backed models so a selector that never refreshed (cold store,
  // first queries) still prices saturation vs reformulation.
  for (size_t i = 0; i < kRouteCount; ++i) {
    RouteModel& m = route_models_[i];
    m = RouteModel{};
    m.from_prior = true;
    switch (static_cast<Route>(i)) {
      case Route::kSaturation:
        m.base = prior_.eval_saturated_seconds > 0
                     ? prior_.eval_saturated_seconds
                     : kInf;
        break;
      case Route::kReformulation: {
        const double flat =
            prior_.reformulation_seconds + prior_.eval_reformulated_seconds;
        m.base = flat > 0 ? flat : kInf;
        break;
      }
      case Route::kBackward:
      case Route::kDatalog:
        m.base = kInf;
        break;
    }
  }
}

bool StrategySelector::NeedsRefresh() const {
  return model_version_ == 0 ||
         decisions_since_refresh_ >= options_.refresh_every;
}

void StrategySelector::Refresh(
    const std::vector<obs::QueryLogRecord>& records,
    const obs::MetricsSnapshot& snapshot) {
  // Sliding window: the newest options_.window records.
  const size_t begin =
      records.size() > options_.window ? records.size() - options_.window : 0;

  // The live profile refreshes the prior: query-side costs from the window
  // where observed, metrics-derived (or the static prior) elsewhere —
  // build and maintenance costs are only visible through the histograms.
  CostProfile live = CostProfileFromQueryLog(
      std::vector<obs::QueryLogRecord>(records.begin() +
                                           static_cast<ptrdiff_t>(begin),
                                       records.end()),
      snapshot);
  if (has_prior_) {
    // Keep static-prior fields the live metrics have no data for.
    if (live.saturation_seconds == 0)
      live.saturation_seconds = prior_.saturation_seconds;
    if (live.reformulation_seconds == 0)
      live.reformulation_seconds = prior_.reformulation_seconds;
    if (live.eval_saturated_seconds == 0)
      live.eval_saturated_seconds = prior_.eval_saturated_seconds;
    if (live.eval_reformulated_seconds == 0)
      live.eval_reformulated_seconds = prior_.eval_reformulated_seconds;
    if (live.maintain_instance_insert_seconds == 0)
      live.maintain_instance_insert_seconds =
          prior_.maintain_instance_insert_seconds;
    if (live.maintain_instance_delete_seconds == 0)
      live.maintain_instance_delete_seconds =
          prior_.maintain_instance_delete_seconds;
    if (live.maintain_schema_insert_seconds == 0)
      live.maintain_schema_insert_seconds =
          prior_.maintain_schema_insert_seconds;
    if (live.maintain_schema_delete_seconds == 0)
      live.maintain_schema_delete_seconds =
          prior_.maintain_schema_delete_seconds;
  }
  prior_ = live;
  has_prior_ = true;
  estimated_build_seconds_ = prior_.saturation_seconds;

  // Per-route through-origin fits and the per-key memory.
  double wall_sum[kRouteCount] = {};
  double fanout_sum[kRouteCount] = {};
  double rows_sum[kRouteCount] = {};
  size_t counts[kRouteCount] = {};
  size_t ok_records = 0;
  per_key_.clear();
  for (size_t i = begin; i < records.size(); ++i) {
    const obs::QueryLogRecord& r = records[i];
    if (!r.ok) continue;
    const int route = RouteOfMode(r.mode);
    if (route < 0) continue;
    ++ok_records;
    const double wall = static_cast<double>(r.wall_nanos) * 1e-9;
    wall_sum[route] += wall;
    fanout_sum[route] += RecordFanout(r);
    rows_sum[route] += static_cast<double>(r.rows);
    ++counts[route];
    KeyStats& ks = per_key_[r.query];
    const double n = static_cast<double>(++ks.samples[route]);
    ks.mean_seconds[route] += (wall - ks.mean_seconds[route]) / n;
  }

  for (size_t i = 0; i < kRouteCount; ++i) {
    RouteModel& m = route_models_[i];
    m = RouteModel{};
    if (counts[i] >= options_.min_route_samples) {
      m.samples = counts[i];
      m.mean_rows = rows_sum[i] / static_cast<double>(counts[i]);
      const Route route = static_cast<Route>(i);
      if (route == Route::kReformulation || route == Route::kBackward) {
        // Fan-out-linear: these routes pay per rewriting branch.
        m.per_branch = wall_sum[i] / std::max(1.0, fanout_sum[i]);
      } else {
        // Flat: the closure / materialization pre-paid the reasoning.
        m.base = wall_sum[i] / static_cast<double>(counts[i]);
      }
      continue;
    }
    // No window data: price from the prior where it has an opinion
    // (saturation and reformulation — the two techniques the static
    // CostProfile measures); backward and Datalog stay unpriced until the
    // log has seen them.
    m.from_prior = true;
    switch (static_cast<Route>(i)) {
      case Route::kSaturation:
        m.base = prior_.eval_saturated_seconds > 0
                     ? prior_.eval_saturated_seconds
                     : kInf;
        break;
      case Route::kReformulation: {
        const double flat =
            prior_.reformulation_seconds + prior_.eval_reformulated_seconds;
        m.base = flat > 0 ? flat : kInf;
        break;
      }
      case Route::kBackward:
      case Route::kDatalog:
        m.base = kInf;
        break;
    }
  }

  // Advisor pass over the observed mix: does saturation pay for itself at
  // this window's query/update ratio? Drives lazy materialization and the
  // hysteresis drop votes.
  WorkloadForecast forecast;
  forecast.query_runs = static_cast<double>(ok_records);
  forecast.instance_inserts = static_cast<double>(updates_since_refresh_);
  if (forecast.query_runs > 0 &&
      (prior_.eval_saturated_seconds > 0 ||
       prior_.eval_reformulated_seconds > 0)) {
    const Recommendation rec = Recommend(prior_, forecast);
    advisor_prefers_saturation_ = rec.technique == Technique::kSaturation;
    if (rec.reformulation_total_seconds > 0 &&
        rec.saturation_total_seconds >=
            options_.drop_after_factor * rec.reformulation_total_seconds) {
      ++drop_votes_;
    } else {
      drop_votes_ = 0;
    }
  } else {
    advisor_prefers_saturation_ = false;
    drop_votes_ = 0;
  }

  updates_since_refresh_ = 0;
  decisions_since_refresh_ = 0;
  ++model_version_;
  WDR_COUNTER_INC("wdr.auto.model_refreshes");
}

double StrategySelector::EstimateRoute(Route route,
                                       const std::string& query_key,
                                       const QueryFeatures& features,
                                       bool* per_key) const {
  // Level 1: this exact query's measured history — the per-query oracle
  // once every route has been tried on it.
  if (auto it = per_key_.find(query_key); it != per_key_.end()) {
    const KeyStats& ks = it->second;
    const size_t i = static_cast<size_t>(route);
    if (ks.samples[i] > 0) {
      if (per_key != nullptr) *per_key = true;
      return ks.mean_seconds[i];
    }
  }
  // Level 2: the parametric per-route model.
  const RouteModel& m = route_models_[static_cast<size_t>(route)];
  if (!std::isfinite(m.base) && m.per_branch == 0) return kInf;
  double cost = (std::isfinite(m.base) ? m.base : 0) +
                m.per_branch * std::max(1.0, features.fanout);
  // Statistics row bound: scale within the route by the query's relative
  // expected output. Clamped — the bound is coarse and must refine the
  // estimate, not dominate it.
  if (features.est_rows >= 0 && m.mean_rows > 0 && m.samples > 0) {
    const double scale = std::clamp(
        (1.0 + features.est_rows) / (1.0 + m.mean_rows), 0.5, 2.0);
    cost *= scale;
  }
  return cost;
}

RouteDecision StrategySelector::Decide(const std::string& query_key,
                                       const QueryFeatures& features,
                                       bool closure_available,
                                       size_t store_size) {
  ++decisions_since_refresh_;

  RouteDecision d;
  d.features = features;
  d.closure_available = closure_available;
  d.model_version = model_version_;

  bool any_viable = false;
  double sat_hypothetical = kInf;  // saturation cost if the closure existed
  for (size_t i = 0; i < kRouteCount; ++i) {
    const Route route = static_cast<Route>(i);
    bool per_key = false;
    double est = EstimateRoute(route, query_key, features, &per_key);
    if (route == Route::kSaturation) {
      sat_hypothetical = est;
      if (!closure_available) est = kInf;  // not routable without a closure
    }
    d.est_seconds[i] = est;
    if (std::isfinite(est) &&
        (!any_viable || est < d.est_seconds[static_cast<size_t>(d.route)])) {
      d.route = route;
      d.per_key = per_key;
      any_viable = true;
    }
  }

  if (!any_viable) {
    // Stale / cold model: no route is priceable. Fall back to the safe
    // static mode — the maintained closure when there is one (queries on
    // G∞ are never wrong, only possibly not optimal), zero-maintenance
    // reformulation otherwise.
    d.route = closure_available ? Route::kSaturation : Route::kReformulation;
    d.fallback = true;
    d.rationale = "no cost data (model v" + std::to_string(model_version_) +
                  "): safe static fallback to " + RouteName(d.route);
    WDR_COUNTER_INC("wdr.auto.fallbacks");
  } else {
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "est sat=%s ref=%s bwd=%s dl=%s fanout=%.0f%s -> %s (%s, model v%llu)",
        FormatSeconds(d.est_seconds[0]).c_str(),
        FormatSeconds(d.est_seconds[1]).c_str(),
        FormatSeconds(d.est_seconds[2]).c_str(),
        FormatSeconds(d.est_seconds[3]).c_str(), features.fanout,
        features.fanout_exact ? "" : "~", RouteName(d.route),
        d.per_key ? "per-key history" : "per-route model",
        static_cast<unsigned long long>(model_version_));
    d.rationale = line;
  }

  // Lazy-materialization bookkeeping: every query that would have been
  // cheaper on a (nonexistent) closure adds its forgone savings; once they
  // cover the estimated build cost and the advisor agrees the workload
  // mix supports maintenance, advise the store to build.
  if (!closure_available) {
    const double chosen = d.est_seconds[static_cast<size_t>(d.route)];
    if (std::isfinite(sat_hypothetical) && std::isfinite(chosen) &&
        sat_hypothetical < chosen) {
      forgone_sat_savings_seconds_ += chosen - sat_hypothetical;
    }
    double build = estimated_build_seconds_;
    if (build <= 0) {
      build = static_cast<double>(store_size) * kBuildSecondsPerTriple;
    }
    if (advisor_prefers_saturation_ && build > 0 &&
        forgone_sat_savings_seconds_ >=
            options_.materialize_payback * build) {
      d.materialize_closure = true;
    }
  } else if (drop_votes_ >= 2) {
    d.drop_closure = true;
  }

  obs::MetricsRegistry::Get()
      .GetCounter(std::string("wdr.auto.decisions.") + RouteName(d.route))
      .Add(1);
  return d;
}

void StrategySelector::NoteUpdate() { ++updates_since_refresh_; }

void StrategySelector::ClosureMaterialized() {
  forgone_sat_savings_seconds_ = 0;
  drop_votes_ = 0;
  WDR_COUNTER_INC("wdr.auto.closure_materializations");
}

void StrategySelector::ClosureDropped() {
  forgone_sat_savings_seconds_ = 0;
  drop_votes_ = 0;
  advisor_prefers_saturation_ = false;
  WDR_COUNTER_INC("wdr.auto.closure_drops");
}

void RecordEstimateError(Route route, double estimated_seconds,
                         double actual_seconds) {
  if (!std::isfinite(estimated_seconds) || estimated_seconds < 0 ||
      actual_seconds < 0) {
    return;  // fallback decisions carry no estimate to score
  }
  const double err_pct = 100.0 *
                         std::fabs(estimated_seconds - actual_seconds) /
                         std::max(actual_seconds, 1e-9);
  obs::MetricsRegistry::Get()
      .GetHistogram("wdr.auto.est_error_pct")
      .RecordNanos(static_cast<uint64_t>(std::min(err_pct, 1e9)));
  obs::MetricsRegistry::Get()
      .GetHistogram(std::string("wdr.auto.actual.") + RouteName(route))
      .RecordSeconds(actual_seconds);
}

}  // namespace wdr::analysis
