#include "query/evaluator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "exec/executor.h"
#include "exec/planner.h"
#include "exec/source.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/dictionary.h"
#include "rdf/sharded_store.h"

namespace wdr::query {
namespace {

using rdf::kNullTermId;
using rdf::StoreView;
using rdf::Triple;
using rdf::UnionStore;

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Cooperative-cancellation probe built from EvaluatorOptions::cancel /
// deadline_nanos. The flag costs one relaxed load per probe; the deadline
// clock is only read every kClockStride probes (a syscall-adjacent clock
// read per enumerated triple would dominate small scans). Each evaluation
// thread carries its own probe by value so the stride counter is never
// shared; the underlying atomic flag is what coordinates across threads.
class CancelProbe {
 public:
  CancelProbe() = default;
  explicit CancelProbe(const EvaluatorOptions& options)
      : cancel_(options.cancel), deadline_(options.deadline_nanos) {}

  bool enabled() const { return cancel_ != nullptr || deadline_ != 0; }

  // True once the flag has been raised or the deadline has passed; sticky.
  bool Expired() {
    if (expired_) return true;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      expired_ = true;
    } else if (deadline_ != 0 && (++ticks_ & (kClockStride - 1)) == 0 &&
               NowNanos() >= deadline_) {
      expired_ = true;
    }
    return expired_;
  }

 private:
  static constexpr uint64_t kClockStride = 4096;  // power of two
  const std::atomic<bool>* cancel_ = nullptr;
  uint64_t deadline_ = 0;
  uint64_t ticks_ = 0;
  bool expired_ = false;
};

// Lowers `target` to `value` if smaller (atomic fetch-min).
void AtomicMin(std::atomic<size_t>& target, size_t value) {
  size_t current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

// Per-atom operator statistics gathered during a profiled join. Indexed by
// atom position in the query, not by join order, so the profile tree reads
// in the order the query was written. Timing is one interval per atom
// activation (raw clock reads accumulated into `nanos`, not a Timer object
// per Match call); `nanos` is INCLUSIVE — an atom's time contains the time
// of every operator nested under it, so a parent's time is never smaller
// than a child's.
struct AtomStats {
  uint64_t scans = 0;    // live cursor opens (scan-cache replays open none)
  uint64_t triples = 0;  // triples enumerated (from the store or the cache)
  uint64_t rows = 0;     // bindings successfully extended
  uint64_t nanos = 0;    // inclusive: contains nested operators' time
};

// Cross-branch scan-signature cache, shared by every branch of one union
// evaluation (and by every worker when the branches run in parallel).
// Reformulated UCQs are grids of structurally similar BGPs, so the same
// resolved (s,p,o) scans — leading atoms shared verbatim between branches,
// and fully-ground or bound inner probes re-resolved to the same ids —
// recur dozens of times; the cache replays a completed scan as a flat
// vector instead of re-opening store cursors. Replayed sequences are the
// exact triple order the live cursor produced, so answers are bit-identical
// with the cache on or off.
//
// Concurrency: lookups take a shared lock, insertions a unique lock.
// Entries are never erased while the evaluation runs, so replay pointers
// stay valid after the lock is released (values are heap vectors behind
// stable unique_ptrs). Two workers missing the same signature may both
// materialize it; the first insert wins and the duplicate is dropped.
class ScanCache {
 public:
  // Per-signature cap: scans longer than this are marked oversized and
  // always stream live, so one unselective pattern cannot pin a large
  // slice of the store.
  static constexpr size_t kMaxCachedTriples = 1 << 16;
  // Caps on distinct signatures and on total cached triples (inner atoms
  // resolve against every outer binding, so the key space can be large).
  static constexpr size_t kMaxEntries = 1 << 16;
  static constexpr size_t kMaxTotalTriples = 1 << 22;

  struct Lookup {
    const std::vector<Triple>* triples = nullptr;  // replay on hit
    bool oversized = false;  // known too big: stream live, skip the tee
  };

  Lookup Find(const Triple& key) {
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      auto it = map_.find(key);
      if (it != map_.end()) {
        if (it->second == nullptr) {
          misses_.fetch_add(1, std::memory_order_relaxed);
          return {nullptr, true};
        }
        hits_.fetch_add(1, std::memory_order_relaxed);
        return {it->second.get(), false};
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return {nullptr, false};
  }

  // Records the completed scan for `key`, consuming `*triples` (the
  // caller's tee buffer is moved from, not copied); `triples == nullptr`
  // records an oversized marker instead. Returns the sequence now cached
  // under `key` — the one just stored, or an earlier winner's identical
  // copy — so the caller can replay it; nullptr when only a marker is (or
  // could be) recorded, in which case the caller's buffer was not consumed.
  const std::vector<Triple>* Insert(const Triple& key,
                                    std::vector<Triple>* triples) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (triples != nullptr &&
        total_triples_ + triples->size() > kMaxTotalTriples) {
      triples = nullptr;  // budget exhausted: degrade to a marker
    }
    auto it = map_.find(key);
    if (it == map_.end()) {
      if (map_.size() >= kMaxEntries) return nullptr;
      it = map_.try_emplace(key).first;
      if (triples != nullptr) {
        total_triples_ += triples->size();
        it->second =
            std::make_unique<std::vector<Triple>>(std::move(*triples));
      }
    }
    return it->second.get();
  }

  // Memoized greedy-ordering cardinality estimate for `key`, true on hit.
  // On the ordered store EstimateCount is itself a capped scan, and the
  // greedy pass re-estimates the same resolved pattern for every binding
  // of every branch (e.g. (?y type C) once per outer ?x) — the memo makes
  // each distinct estimate one probe per union evaluation. Estimates are
  // deterministic store functions, so memoization cannot change the join
  // order a branch picks.
  bool FindEstimate(const Triple& key, size_t* count) {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = estimates_.find(key);
    if (it == estimates_.end()) return false;
    *count = it->second;
    return true;
  }

  void InsertEstimate(const Triple& key, size_t count) {
    std::unique_lock<std::shared_mutex> lock(mutex_);
    if (estimates_.size() >= kMaxEntries) return;
    estimates_.emplace(key, count);
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  void FlushCounters() const {
    WDR_COUNTER_ADD("wdr.query.scan_cache.hits", hits());
    WDR_COUNTER_ADD("wdr.query.scan_cache.misses", misses());
  }

 private:
  std::shared_mutex mutex_;
  std::unordered_map<Triple, std::unique_ptr<std::vector<Triple>>,
                     rdf::TripleHash>
      map_;
  std::unordered_map<Triple, size_t, rdf::TripleHash> estimates_;
  size_t total_triples_ = 0;  // guarded by mutex_
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

// Lazily-built, process-wide pool of parked query workers. Branch-parallel
// union evaluation is latency-sensitive — whole evaluations complete in
// microseconds to milliseconds — and creating a handful of threads costs
// ~100µs, an order of magnitude more than waking parked ones. The pool
// grows to the largest worker count ever requested and parks its threads
// between queries; threads live for the rest of the process (the singleton
// is deliberately leaked so no destructor ever races a parked worker).
// One dispatch runs at a time; concurrent dispatches from different
// evaluator instances serialize on the dispatch mutex.
class WorkerPool {
 public:
  static WorkerPool& Get() {
    static WorkerPool* pool = new WorkerPool();
    return *pool;
  }

  // Runs job(id) for id in [1, extra] on pool threads while the calling
  // thread runs job(0); returns when every invocation has finished.
  // `job` must not re-enter Dispatch (a pool worker blocking on the
  // dispatch mutex while its own dispatcher waits for it would deadlock).
  void Dispatch(int extra, const std::function<void(int)>& job) {
    if (extra <= 0) {
      job(0);
      return;
    }
    std::unique_lock<std::mutex> dispatch_lock(dispatch_mutex_);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      while (static_cast<int>(threads_.size()) < extra) {
        const int id = static_cast<int>(threads_.size()) + 1;
        threads_.emplace_back([this, id] { WorkerLoop(id); });
      }
      job_ = &job;
      active_ = extra;
      remaining_ = extra;
      ++generation_;
    }
    work_ready_.notify_all();
    job(0);  // the caller's share, concurrent with the pool workers
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }

 private:
  WorkerPool() = default;

  void WorkerLoop(int id) {
    uint64_t seen = 0;
    for (;;) {
      const std::function<void(int)>* job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock, [&] { return generation_ != seen; });
        seen = generation_;
        if (id > active_) continue;  // this round needs fewer workers
        job = job_;
      }
      (*job)(id);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--remaining_ == 0) done_.notify_one();
      }
    }
  }

  std::mutex dispatch_mutex_;  // serializes whole dispatches
  std::mutex mutex_;           // guards all state below
  std::condition_variable work_ready_;
  std::condition_variable done_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* job_ = nullptr;
  int active_ = 0;
  int remaining_ = 0;
  uint64_t generation_ = 0;
};

// Resolves a pattern position under the current bindings: a constant, a
// bound variable's value, or 0 (wildcard) for an unbound variable.
TermId Resolve(const PatternTerm& t, const std::vector<TermId>& bindings) {
  if (t.is_const()) return t.id;
  return bindings[t.var];
}

// Range-aware resolution: a constant or bound variable pins a point, an
// unbound variable is unconstrained, and a range term carries its own
// inclusive bounds into the scan plan.
rdf::TermRange ResolveRange(const PatternTerm& t,
                            const std::vector<TermId>& bindings) {
  if (t.is_const()) return rdf::TermRange::Point(t.id);
  if (t.is_range()) return rdf::TermRange{t.id, t.id2};
  return rdf::TermRange::Pattern(bindings[t.var]);
}

bool HasRangeTerm(const TriplePattern& a) {
  return a.s.is_range() || a.p.is_range() || a.o.is_range();
}

// Recursive bound-first join over the atoms of `q`. Store is any type
// with the StoreView Match/EstimateCount surface (the storage seam itself
// or the federation's UnionStore).
template <typename Store>
class BgpJoin {
 public:
  BgpJoin(const Store& store, const BgpQuery& q, bool greedy = true)
      : store_(store),
        q_(q),
        greedy_(greedy),
        bindings_(q.var_count(), kNullTermId) {
    for (const auto& [var, value] : q.preset()) bindings_[var] = value;
  }

  // Runs the join; `emit` returns false to stop enumeration early (used
  // by ASK and LIMIT, where computing further solutions is wasted work).
  template <typename EmitFn>
  void Run(EmitFn&& emit) {
    remaining_.resize(q_.atoms().size());
    for (size_t i = 0; i < remaining_.size(); ++i) remaining_[i] = i;
    // One tee buffer per join depth: a nested activation must not clobber
    // the buffer its parent is still filling.
    if (cache_ != nullptr) scratch_.resize(q_.atoms().size());
    Recurse(emit);
  }

  // Enables per-atom stats collection; `stats` must outlive Run() and have
  // one entry per query atom.
  void set_stats(std::vector<AtomStats>* stats) { stats_ = stats; }

  // Shares `cache` (may be null) across this join's scans; see ScanCache.
  // `eager` selects materialize-first misses: the scan is completed into
  // the tee and published BEFORE its triples are processed, so concurrent
  // branches hit the entry after one scan's latency instead of a whole
  // subtree's, and even the publishing branch joins from the flat copy
  // rather than a live cursor. Bounded queries (ASK / LIMIT) pass eager =
  // false: they may stop mid-scan, and pre-reading a scan to completion
  // would do work their early-cancellation exists to avoid.
  void set_scan_cache(ScanCache* cache, bool eager = true) {
    cache_ = cache;
    eager_cache_ = eager;
  }

  // Attaches a cooperative-cancellation probe (may be null); checked per
  // enumerated triple, so a cancelled join stops mid-scan. `probe` must
  // outlive Run().
  void set_cancel(CancelProbe* probe) { cancel_probe_ = probe; }

  const std::vector<TermId>& bindings() const { return bindings_; }

 private:
  template <typename EmitFn>
  void Recurse(EmitFn&& emit) {
    if (stopped_) return;
    if (remaining_.empty()) {
      if (!internal_emit(emit)) stopped_ = true;
      return;
    }
    const size_t depth = q_.atoms().size() - remaining_.size();
    // Pick the cheapest atom under current bindings (or the first
    // remaining one when greedy ordering is disabled). A single remaining
    // atom needs no cost-estimation pass: it is the choice either way, and
    // leaf-level recursion is the hottest path of the join.
    size_t best_pos = 0;
    if (greedy_ && remaining_.size() > 1) {
      size_t best_cost = SIZE_MAX;
      for (size_t i = 0; i < remaining_.size(); ++i) {
        const TriplePattern& a = q_.atoms()[remaining_[i]];
        // Range atoms bypass the Triple-keyed estimate memo: their key
        // space is bound pairs, not points.
        size_t cost =
            HasRangeTerm(a)
                ? store_.EstimateCountRange(rdf::PlanRangeScan(
                      ResolveRange(a.s, bindings_),
                      ResolveRange(a.p, bindings_),
                      ResolveRange(a.o, bindings_)))
                : EstimateCost(Resolve(a.s, bindings_),
                               Resolve(a.p, bindings_),
                               Resolve(a.o, bindings_));
        if (cost < best_cost) {
          best_cost = cost;
          best_pos = i;
        }
      }
    }
    size_t atom_index = remaining_[best_pos];
    remaining_.erase(remaining_.begin() + best_pos);
    const TriplePattern& atom = q_.atoms()[atom_index];

    AtomStats* as = stats_ ? &(*stats_)[atom_index] : nullptr;
    auto process = [&](const Triple& t) {
      if (cancel_probe_ != nullptr && cancel_probe_->Expired()) {
        stopped_ = true;
        return false;
      }
      if (as) ++as->triples;
      // Bind unbound variable positions, enforcing repeated-variable
      // consistency (e.g. ?x ?p ?x). At most three variables bind per
      // triple, so the undo log is a fixed array, not an allocation.
      VarId bound_here[3];
      size_t bound_count = 0;
      bool ok = TryBind(atom.s, t.s, bound_here, bound_count) &&
                TryBind(atom.p, t.p, bound_here, bound_count) &&
                TryBind(atom.o, t.o, bound_here, bound_count);
      if (ok) {
        if (as) ++as->rows;
        Recurse(emit);
      }
      while (bound_count > 0) {
        bindings_[bound_here[--bound_count]] = kNullTermId;
      }
      return !stopped_;
    };
    auto match = [&] {
      if (HasRangeTerm(atom)) {
        // Range scans skip the scan cache (its Triple keys cannot carry
        // range bounds); they are single contiguous index scans already.
        if (as) ++as->scans;
        store_.MatchPlan(
            rdf::PlanRangeScan(ResolveRange(atom.s, bindings_),
                               ResolveRange(atom.p, bindings_),
                               ResolveRange(atom.o, bindings_)),
            process);
        return;
      }
      Match(depth, Resolve(atom.s, bindings_), Resolve(atom.p, bindings_),
            Resolve(atom.o, bindings_), as, process);
    };
    if (as) {
      const uint64_t start = NowNanos();
      match();
      as->nanos += NowNanos() - start;
    } else {
      match();
    }

    remaining_.insert(remaining_.begin() + best_pos, atom_index);
  }

  // One cardinality estimate for the greedy ordering pass, memoized in
  // the shared cache when one is attached (a cached scan's length is the
  // exact count, which the estimate approximates — but the memo stores
  // the store's own estimate so ordering is identical with and without
  // the cache).
  size_t EstimateCost(TermId s, TermId p, TermId o) {
    if (cache_ == nullptr || (s | p | o) == 0) {
      return store_.EstimateCount(s, p, o);
    }
    const Triple key(s, p, o);
    size_t cost = 0;
    if (cache_->FindEstimate(key, &cost)) return cost;
    cost = store_.EstimateCount(s, p, o);
    cache_->InsertEstimate(key, cost);
    return cost;
  }

  // One pattern scan, through the shared scan cache when one is attached:
  // replay a memoized sequence, or tee the live scan into a depth-local
  // buffer and memoize it if it ran to completion within the size cap.
  template <typename ProcessFn>
  void Match(size_t depth, TermId s, TermId p, TermId o, AtomStats* as,
             ProcessFn&& process) {
    if (cache_ == nullptr || (s | p | o) == 0) {
      if (as) ++as->scans;
      store_.Match(s, p, o, process);
      return;
    }
    const Triple key(s, p, o);
    const ScanCache::Lookup found = cache_->Find(key);
    if (found.triples != nullptr) {
      for (const Triple& t : *found.triples) {
        if (!process(t)) return;
      }
      return;
    }
    if (as) ++as->scans;
    if (found.oversized) {
      store_.Match(s, p, o, process);
      return;
    }
    std::vector<Triple>& tee = scratch_[depth];
    tee.clear();
    if (eager_cache_) {
      // Materialize-first: read the whole scan, publish, then process the
      // flat copy (the winner's copy on an insert race — identical bytes).
      bool oversized = false;
      store_.Match(s, p, o, [&](const Triple& t) {
        if (tee.size() >= ScanCache::kMaxCachedTriples) {
          oversized = true;
          return false;
        }
        tee.push_back(t);
        return true;
      });
      if (oversized) {
        cache_->Insert(key, nullptr);  // marker: always stream live
        store_.Match(s, p, o, process);
        return;
      }
      const std::vector<Triple>* stored = cache_->Insert(key, &tee);
      for (const Triple& t : stored != nullptr ? *stored : tee) {
        if (!process(t)) return;
      }
      return;
    }
    // Lazy: tee alongside processing so an early stop aborts the scan too.
    bool completed = true;
    bool oversized = false;
    store_.Match(s, p, o, [&](const Triple& t) {
      if (!oversized) {
        if (tee.size() < ScanCache::kMaxCachedTriples) {
          tee.push_back(t);
        } else {
          oversized = true;
        }
      }
      const bool keep_going = process(t);
      // An early-stopped scan is a prefix, not the sequence: uncacheable.
      if (!keep_going) completed = false;
      return keep_going;
    });
    if (completed) cache_->Insert(key, oversized ? nullptr : &tee);
  }

  // Adapts emit callbacks returning void (never stop) or bool.
  template <typename EmitFn>
  bool internal_emit(EmitFn&& emit) {
    if constexpr (std::is_void_v<decltype(emit(bindings_))>) {
      emit(bindings_);
      return true;
    } else {
      return emit(bindings_);
    }
  }

  bool TryBind(const PatternTerm& term, TermId value, VarId (&bound_here)[3],
               size_t& bound_count) {
    if (term.is_const()) return term.id == value;
    // Range terms never bind: the scan plan already guarantees the value
    // lies inside the range.
    if (term.is_range()) return true;
    TermId& slot = bindings_[term.var];
    if (slot == kNullTermId) {
      slot = value;
      bound_here[bound_count++] = term.var;
      return true;
    }
    return slot == value;
  }

  const Store& store_;
  const BgpQuery& q_;
  bool greedy_;
  bool stopped_ = false;
  std::vector<TermId> bindings_;
  std::vector<size_t> remaining_;
  std::vector<AtomStats>* stats_ = nullptr;  // not owned; null = no profiling
  CancelProbe* cancel_probe_ = nullptr;      // not owned; null = no deadline
  ScanCache* cache_ = nullptr;               // not owned; null = no caching
  bool eager_cache_ = true;                  // see set_scan_cache
  std::vector<std::vector<Triple>> scratch_;  // per-depth tee buffers
};

// Short human label for a term: the IRI fragment / last path segment, or
// the raw id when no dictionary is available.
std::string TermLabel(const rdf::Dictionary* dict, TermId id) {
  if (dict == nullptr || !dict->Contains(id)) {
    return "#" + std::to_string(id);
  }
  const std::string& lex = dict->term(id).lexical;
  size_t pos = lex.find_last_of("/#");
  if (pos != std::string::npos && pos + 1 < lex.size()) {
    return lex.substr(pos + 1);
  }
  return lex;
}

std::string PatternTermLabel(const BgpQuery& q, const rdf::Dictionary* dict,
                             const PatternTerm& t) {
  if (t.is_const()) return TermLabel(dict, t.id);
  if (t.is_range()) {
    return "[" + TermLabel(dict, t.id) + ".." + TermLabel(dict, t.id2) + "]";
  }
  return "?" + q.var_name(t.var);
}

std::string AtomLabel(const BgpQuery& q, const rdf::Dictionary* dict,
                      const TriplePattern& a) {
  return "scan(" + PatternTermLabel(q, dict, a.s) + " " +
         PatternTermLabel(q, dict, a.p) + " " +
         PatternTermLabel(q, dict, a.o) + ")";
}

// Copies per-atom join stats into `parent` as one child per atom, in
// written query order. Per-atom seconds are inclusive (see AtomStats).
void FillAtomProfile(obs::ProfileNode& parent, const BgpQuery& q,
                     const rdf::Dictionary* dict,
                     const std::vector<AtomStats>& stats) {
  for (size_t i = 0; i < q.atoms().size(); ++i) {
    obs::ProfileNode& child = parent.AddChild(AtomLabel(q, dict, q.atoms()[i]));
    child.rows = stats[i].rows;
    child.triples = stats[i].triples;
    child.scans = stats[i].scans;
    child.seconds = static_cast<double>(stats[i].nanos) * 1e-9;
  }
}

// ---------------------------------------------------------------------------
// Plan-mode evaluation: compile a BGP into the shared wdr::exec IR and run
// it batch-at-a-time. The legacy recursive join above stays selectable
// (EvaluatorOptions::plan = false, the default) for differential testing.
// ---------------------------------------------------------------------------

// TupleSource over a triple-store-shaped Store, routed through the union
// evaluation's ScanCache when one is attached: resolved (s,p,o) scans are
// replayed from the memoized flat vectors exactly as the legacy join's
// Match does (same keys, same eager/lazy split, same oversized markers),
// and cardinality estimates reuse the memo. One instance serves one
// single-threaded executor; parallel workers construct their own (the
// underlying ScanCache itself is the thread-safe shared layer).
template <typename Store>
class CachedStoreSource final : public exec::TupleSource,
                                public exec::PartitionedSource {
 public:
  CachedStoreSource(const Store& store, ScanCache* cache, bool eager)
      : store_(&store), cache_(cache), eager_(eager) {
    if constexpr (std::is_base_of_v<rdf::StoreView, Store>) {
      sharded_ = dynamic_cast<const rdf::ShardedStore*>(&store);
    }
  }

  size_t arity() const override { return 3; }

  // PartitionedSource face, live when the store is sharded: the planner
  // wraps full-table scans in exchange nodes against these per-shard
  // estimates, and the executor attributes actual rows back with
  // PartitionOf. Estimates cover the shard's instance triples; broadcast
  // schema rows are attributed to their subject's hash owner at run time
  // (a visible est-vs-actual gap only on schema-heavy scans).
  size_t PartitionCount() const override {
    return sharded_ == nullptr ? 1 : sharded_->shard_count();
  }

  size_t PartitionOf(exec::Value v) const override {
    return sharded_ == nullptr ? 0 : sharded_->OwnerShard(v);
  }

  double EstimatePartition(size_t i, const exec::Value* values,
                           const exec::Value* values_hi,
                           const uint8_t* bound) const override {
    if (sharded_ == nullptr) {
      return EstimateRange(values, values_hi, bound);
    }
    return static_cast<double>(sharded_->shard(i).EstimateCountRange(
        RangePlan(values, values_hi, bound)));
  }

  double EstimateBound(const exec::Value* values,
                       const uint8_t* bound) const override {
    const TermId s = bound[0] ? values[0] : kNullTermId;
    const TermId p = bound[1] ? values[1] : kNullTermId;
    const TermId o = bound[2] ? values[2] : kNullTermId;
    if (cache_ == nullptr || (s | p | o) == 0) {
      return static_cast<double>(store_->EstimateCount(s, p, o));
    }
    const Triple key(s, p, o);
    size_t count = 0;
    if (cache_->FindEstimate(key, &count)) return static_cast<double>(count);
    count = store_->EstimateCount(s, p, o);
    cache_->InsertEstimate(key, count);
    return static_cast<double>(count);
  }

  bool Scan(const exec::Value* values, const uint8_t* bound,
            exec::FunctionRef<bool(const exec::Value*)> fn) const override {
    const TermId s = bound[0] ? values[0] : kNullTermId;
    const TermId p = bound[1] ? values[1] : kNullTermId;
    const TermId o = bound[2] ? values[2] : kNullTermId;
    bool keep = true;
    auto process = [&](const Triple& t) {
      exec::Value row[3] = {t.s, t.p, t.o};
      keep = fn(row);
      return keep;
    };
    if (cache_ == nullptr || (s | p | o) == 0) {
      store_->Match(s, p, o, process);
      return keep;
    }
    const Triple key(s, p, o);
    const ScanCache::Lookup found = cache_->Find(key);
    if (found.triples != nullptr) {
      for (const Triple& t : *found.triples) {
        if (!process(t)) return keep;
      }
      return keep;
    }
    if (found.oversized) {
      store_->Match(s, p, o, process);
      return keep;
    }
    // Pipelined operators nest scans (an outer scan callback drives inner
    // probes), so tee buffers are a per-activation stack, not one scratch.
    if (depth_ >= pool_.size()) pool_.emplace_back();
    std::vector<Triple>& tee = pool_[depth_++];
    tee.clear();
    if (eager_) {
      bool oversized = false;
      store_->Match(s, p, o, [&](const Triple& t) {
        if (tee.size() >= ScanCache::kMaxCachedTriples) {
          oversized = true;
          return false;
        }
        tee.push_back(t);
        return true;
      });
      if (oversized) {
        cache_->Insert(key, nullptr);
        store_->Match(s, p, o, process);
      } else {
        const std::vector<Triple>* stored = cache_->Insert(key, &tee);
        for (const Triple& t : stored != nullptr ? *stored : tee) {
          if (!process(t)) break;
        }
      }
    } else {
      bool completed = true;
      bool oversized = false;
      store_->Match(s, p, o, [&](const Triple& t) {
        if (!oversized) {
          if (tee.size() < ScanCache::kMaxCachedTriples) {
            tee.push_back(t);
          } else {
            oversized = true;
          }
        }
        const bool keep_going = process(t);
        if (!keep_going) completed = false;
        return keep_going;
      });
      if (completed) cache_->Insert(key, oversized ? nullptr : &tee);
    }
    --depth_;
    return keep;
  }

  // Range scans bypass the ScanCache entirely (its Triple keys cannot
  // carry interval bounds) and go straight to the store's range window.
  double EstimateRange(const exec::Value* values, const exec::Value* values_hi,
                       const uint8_t* bound) const override {
    return static_cast<double>(
        store_->EstimateCountRange(RangePlan(values, values_hi, bound)));
  }

  bool ScanRange(const exec::Value* values, const exec::Value* values_hi,
                 const uint8_t* bound,
                 exec::FunctionRef<bool(const exec::Value*)> fn)
      const override {
    bool keep = true;
    store_->MatchPlan(RangePlan(values, values_hi, bound),
                      [&](const Triple& t) {
                        exec::Value row[3] = {t.s, t.p, t.o};
                        keep = fn(row);
                        return keep;
                      });
    return keep;
  }

 private:
  static rdf::ScanPlan RangePlan(const exec::Value* values,
                                 const exec::Value* values_hi,
                                 const uint8_t* bound) {
    auto range = [&](size_t i) {
      if (bound[i] == exec::TupleSource::kPoint) {
        return rdf::TermRange::Point(values[i]);
      }
      if (bound[i] == exec::TupleSource::kRange) {
        return rdf::TermRange{values[i], values_hi[i]};
      }
      return rdf::TermRange::Any();
    };
    return rdf::PlanRangeScan(range(0), range(1), range(2));
  }

  const Store* store_;  // not owned
  ScanCache* cache_;    // not owned; null = no caching
  bool eager_;
  // Non-null iff the store is a ShardedStore (checked at construction).
  const rdf::ShardedStore* sharded_ = nullptr;
  mutable std::vector<std::vector<Triple>> pool_;  // per-nesting tee buffers
  mutable size_t depth_ = 0;
};

exec::ConjunctiveSpec SpecFromBgp(const BgpQuery& q,
                                  const rdf::Dictionary* dict) {
  exec::ConjunctiveSpec spec;
  auto term = [](const PatternTerm& t) {
    if (t.is_const()) return exec::AtomTerm::Const(t.id);
    if (t.is_range()) return exec::AtomTerm::Range(t.id, t.id2);
    return exec::AtomTerm::Var(t.var);
  };
  for (const TriplePattern& atom : q.atoms()) {
    exec::PlanConjunct conjunct;
    conjunct.source = 0;
    exec::AtomAlt alt;
    alt.terms = {term(atom.s), term(atom.p), term(atom.o)};
    conjunct.alts.push_back(std::move(alt));
    conjunct.label = AtomLabel(q, dict, atom);
    spec.conjuncts.push_back(std::move(conjunct));
  }
  for (const auto& [var, value] : q.preset()) {
    spec.presets.emplace_back(var, value);
  }
  for (VarId v : q.projection()) spec.projection.push_back(v);
  return spec;
}

// Compiles one BGP. `stats` non-null selects the cost-based planner
// (order + join algorithm from per-predicate statistics); null degrades
// to the greedy bound-first order over the store's own estimates with
// nested loops only — the fallback for empty or stale statistics.
template <typename Store>
exec::CompiledPlan PlanBgpBranch(const Store& store, const BgpQuery& q,
                                 const EvaluatorOptions& options,
                                 const exec::Statistics* stats) {
  const exec::ConjunctiveSpec spec = SpecFromBgp(q, options.dict);
  exec::PlannerOptions popts;
  popts.hash_joins = options.hash_joins;
  std::optional<exec::StatisticsEstimator> stats_est;
  std::optional<exec::StoreEstimator<Store>> store_est;
  if (stats != nullptr) {
    stats_est.emplace(*stats);
    popts.estimator = &*stats_est;
    popts.cost_based = true;
  } else {
    store_est.emplace(store);
    popts.estimator = &*store_est;
    popts.cost_based = false;
  }
  // Sharded stores expose their partition layout to the planner, which
  // wraps leaf scans in exchange nodes with per-shard fragment estimates.
  std::optional<CachedStoreSource<Store>> part_probe;
  if constexpr (std::is_base_of_v<rdf::StoreView, Store>) {
    if (dynamic_cast<const rdf::ShardedStore*>(&store) != nullptr) {
      part_probe.emplace(store, nullptr, /*eager=*/true);
      popts.partitioned = &*part_probe;
      popts.partitioned_source = 0;
    }
  }
  return exec::PlanConjunctive(spec, popts);
}

// Usable statistics or null: null (or empty, or out of sync with the live
// store size) means the planner must degrade. Locally-built statistics
// are fresh by construction and skip the size check (a federation
// UnionStore's size() counts duplicates per member, which its Match
// stream legitimately dedups).
template <typename Store>
const exec::Statistics* UsableStats(const Store& store,
                                    const EvaluatorOptions& options,
                                    std::optional<exec::Statistics>& local) {
  if (options.stats != nullptr) {
    if (options.stats->empty() ||
        options.stats->total_triples() != store.size()) {
      return nullptr;  // stale or empty: degrade
    }
    return options.stats;
  }
  local.emplace(exec::Statistics::Build(store));
  return local->empty() ? nullptr : &*local;
}

// Caps dedup-set / row-buffer pre-reservation from a cardinality
// estimate: estimates are approximations, and an estimate gone wild must
// not reserve gigabytes.
constexpr size_t kMaxReserveRows = size_t{1} << 20;

size_t ReserveHint(double est_rows) {
  if (est_rows < 0) return 0;
  return std::min(static_cast<size_t>(est_rows) + 1, kMaxReserveRows);
}

// Runs a compiled branch plan, streaming projected rows to
// `emit(Row&) -> bool` through `scratch`. `profile`, when non-null,
// receives the operator tree with estimated vs. actual cardinalities.
template <typename Store, typename EmitFn>
void ExecutePlannedBranch(const Store& store, const exec::CompiledPlan& plan,
                          const EvaluatorOptions& options, ScanCache* cache,
                          bool eager, obs::ProfileNode* profile, Row& scratch,
                          EmitFn&& emit) {
  CachedStoreSource<Store> source(store, cache, eager);
  const std::vector<const exec::TupleSource*> sources = {&source};
  exec::ExecOptions eopts;
  eopts.batch_rows = options.batch_rows;
  exec::Run(
      *plan.root, sources, eopts,
      [&](const exec::Value* row, size_t width) {
        scratch.assign(row, row + width);
        return emit(scratch);
      },
      profile);
}

Row ProjectRow(const BgpQuery& q, const std::vector<TermId>& bindings) {
  Row row;
  row.reserve(q.projection().size());
  for (VarId v : q.projection()) row.push_back(bindings[v]);
  return row;
}

// Projects into a caller-owned scratch row. Deduplicating emission paths
// reuse one scratch across all emissions: on reformulated unions the vast
// majority of emissions are duplicates of an already-seen row, and probing
// the seen-set with the scratch makes the duplicate case allocation-free
// (the row is only copied into the set when it is genuinely new).
void ProjectRowInto(const BgpQuery& q, const std::vector<TermId>& bindings,
                    Row& row) {
  row.clear();
  for (VarId v : q.projection()) row.push_back(bindings[v]);
}

template <typename Store>
ResultSet EvaluateBgp(const Store& store, const BgpQuery& q,
                      const EvaluatorOptions& options,
                      obs::ProfileNode* profile = nullptr) {
  WDR_COUNTER_INC("wdr.query.bgp_evals");
  const rdf::Dictionary* dict = options.dict;
  ResultSet result;
  result.var_names = q.ProjectionNames();
  const uint64_t start = NowNanos();
  // Plan-path executors probe per emitted row (the batch pipeline has no
  // per-triple hook); the legacy join probes per enumerated triple.
  CancelProbe probe(options);

  if (options.plan) {
    std::optional<exec::Statistics> local_stats;
    const exec::Statistics* stats = UsableStats(store, options, local_stats);
    exec::CompiledPlan plan = PlanBgpBranch(store, q, options, stats);
    if (plan.root != nullptr) {
      result.rows.reserve(ReserveHint(plan.est_rows));
      Row scratch;
      if (q.distinct()) {
        std::unordered_set<Row, RowHash> seen;
        seen.reserve(ReserveHint(plan.est_rows));
        ExecutePlannedBranch(store, plan, options, /*cache=*/nullptr,
                             /*eager=*/true, profile, scratch, [&](Row& row) {
                               if (seen.insert(row).second) {
                                 result.rows.push_back(row);
                               }
                               return !probe.Expired();
                             });
      } else {
        ExecutePlannedBranch(store, plan, options, /*cache=*/nullptr,
                             /*eager=*/true, profile, scratch, [&](Row& row) {
                               result.rows.push_back(row);
                               return !probe.Expired();
                             });
      }
      if (profile != nullptr) {
        profile->rows += result.rows.size();
        profile->seconds += static_cast<double>(NowNanos() - start) * 1e-9;
      }
      return result;
    }
  }

  std::vector<AtomStats> stats;
  BgpJoin<Store> join(store, q, options.greedy_join_order);
  if (probe.enabled()) join.set_cancel(&probe);
  if (profile != nullptr) {
    stats.resize(q.atoms().size());
    join.set_stats(&stats);
  }
  if (q.distinct()) {
    std::unordered_set<Row, RowHash> seen;
    Row scratch;
    join.Run([&](const std::vector<TermId>& bindings) {
      ProjectRowInto(q, bindings, scratch);
      if (seen.insert(scratch).second) result.rows.push_back(scratch);
    });
  } else {
    join.Run([&](const std::vector<TermId>& bindings) {
      result.rows.push_back(ProjectRow(q, bindings));
    });
  }
  if (profile != nullptr) {
    profile->rows += result.rows.size();
    profile->seconds += static_cast<double>(NowNanos() - start) * 1e-9;
    FillAtomProfile(*profile, q, dict, stats);
  }
  return result;
}

// Distinct rows needed before enumeration may stop: one for ASK,
// offset + limit when a LIMIT is set, otherwise unbounded.
size_t MaxRowsNeeded(const UnionQuery& q) {
  if (q.ask()) return 1;
  if (q.limit() == UnionQuery::kNoLimit) return SIZE_MAX;
  size_t cap = q.offset() + q.limit();
  return cap < q.limit() ? SIZE_MAX : cap;  // overflow guard
}

// Detailed per-branch profile children are capped: reformulated unions can
// carry hundreds of disjuncts, and a screenful of identical-shape branches
// hides the signal. Branches past the cap fold into one aggregate node.
constexpr size_t kMaxProfiledBranches = 8;

// The reference union evaluation: branches in order, one global hash-set
// dedup, early break once the row budget is met. The parallel path below
// is differential-tested to reproduce this output bit for bit.
template <typename Store>
ResultSet EvaluateUnionSequential(const Store& store, const UnionQuery& q,
                                  const EvaluatorOptions& options,
                                  ScanCache* cache,
                                  const exec::Statistics* plan_stats,
                                  obs::ProfileNode* profile,
                                  const rdf::Dictionary* dict) {
  ResultSet result;
  const size_t max_rows = MaxRowsNeeded(q);
  std::unordered_set<Row, RowHash> seen;
  CancelProbe probe(options);
  obs::ProfileNode* overflow = nullptr;
  size_t overflow_branches = 0;
  size_t branch_index = 0;
  for (const BgpQuery& branch : q.branches()) {
    if (result.var_names.empty()) {
      result.var_names = branch.ProjectionNames();
    }
    if (result.rows.size() >= max_rows) break;
    if (probe.enabled() && probe.Expired()) break;
    const size_t rows_before = result.rows.size();
    obs::Span branch_span("wdr.query.branch");
    branch_span.AddAttr("branch", static_cast<uint64_t>(branch_index));
    if (options.collect != nullptr) ++options.collect->branches;
    std::vector<AtomStats> stats;
    obs::ProfileNode* branch_node = nullptr;
    if (profile != nullptr) {
      if (branch_index < kMaxProfiledBranches) {
        branch_node =
            &profile->AddChild("branch " + std::to_string(branch_index));
      } else {
        if (overflow == nullptr) overflow = &profile->AddChild("");
        branch_node = overflow;
        ++overflow_branches;
      }
    }
    const uint64_t branch_start = NowNanos();
    Row scratch;
    auto emit = [&](Row& row) {
      if (seen.insert(row).second) result.rows.push_back(row);
      return result.rows.size() < max_rows && !probe.Expired();
    };
    if (options.plan) {
      exec::CompiledPlan plan =
          PlanBgpBranch(store, branch, options, plan_stats);
      if (options.collect != nullptr && plan.est_rows >= 0) {
        EvalStats& collect = *options.collect;
        collect.est_rows =
            (collect.est_rows < 0 ? 0 : collect.est_rows) + plan.est_rows;
      }
      const size_t hint = ReserveHint(plan.est_rows);
      if (hint > 0) {
        // Pre-reserve the dedup set and result buffer from the planner's
        // estimate instead of rehash-growing from empty.
        if (seen.size() + hint > seen.bucket_count()) {
          seen.reserve(seen.size() + hint);
        }
        if (result.rows.size() + hint > result.rows.capacity()) {
          result.rows.reserve(result.rows.size() + hint);
        }
      }
      // Detailed plan children only for individually-profiled branches;
      // overflow branches aggregate scan/triple totals below.
      obs::ProfileNode scratch_profile;
      obs::ProfileNode* plan_profile =
          branch_node == nullptr
              ? nullptr
              : (branch_node == overflow ? &scratch_profile : branch_node);
      ExecutePlannedBranch(store, plan, options, cache,
                           /*eager=*/max_rows == SIZE_MAX, plan_profile,
                           scratch, emit);
      if (branch_node == overflow && branch_node != nullptr) {
        branch_node->scans += scratch_profile.TotalScans();
        branch_node->triples += scratch_profile.TotalTriples();
      }
    } else {
      BgpJoin<Store> join(store, branch, options.greedy_join_order);
      join.set_scan_cache(cache, /*eager=*/max_rows == SIZE_MAX);
      if (probe.enabled()) join.set_cancel(&probe);
      if (profile != nullptr) {
        stats.resize(branch.atoms().size());
        join.set_stats(&stats);
      }
      join.Run([&](const std::vector<TermId>& bindings) {
        ProjectRowInto(branch, bindings, scratch);
        return emit(scratch);
      });
    }
    if (branch_node != nullptr) {
      branch_node->rows += result.rows.size() - rows_before;
      branch_node->seconds +=
          static_cast<double>(NowNanos() - branch_start) * 1e-9;
      if (!options.plan) {
        if (branch_node == overflow) {
          for (const AtomStats& as : stats) {
            branch_node->scans += as.scans;
            branch_node->triples += as.triples;
          }
        } else {
          FillAtomProfile(*branch_node, branch, dict, stats);
        }
      }
    }
    ++branch_index;
  }
  if (overflow != nullptr) {
    overflow->label =
        "(+" + std::to_string(overflow_branches) + " more branches)";
  }
  return result;
}

// Everything one parallel worker produces for one branch. Workers write
// only their own branches' slots; the merge thread reads them after the
// join, so no slot is ever touched concurrently.
struct BranchOutput {
  std::vector<Row> rows;        // locally deduped, first-occurrence order
  std::vector<AtomStats> stats; // filled only when profiling (legacy path)
  obs::ProfileNode plan_profile;  // operator tree (plan path, profiling)
  uint64_t nanos = 0;           // branch wall time (profiling only)
  double est_rows = -1;         // planner's estimate (plan mode only)
  bool evaluated = false;       // cancelled branches stay false
};

// Evaluates one branch into `out`, de-duplicating through the worker's
// accumulated `seen` set. A worker claims chunks off a monotone cursor, so
// the branches one worker evaluates form a strictly increasing sequence;
// a row suppressed here as already-seen was therefore recorded in one of
// THIS worker's earlier (lower-index) branch outputs, which the in-order
// merge consumes first — the merge would have dropped the duplicate
// anyway, so suppression leaves the merged stream bit-identical while
// keeping branch buffers near distinct-row size. `worker_rows` counts the
// rows this worker has kept across all its branches; for bounded queries
// (ASK / LIMIT), every kept row reaches the merge at or before the current
// branch, so `worker_rows >= max_rows` guarantees the in-order merge meets
// its budget by this branch and every later branch is cancelled through
// `stop_after`. Cancellation never changes the result: the merge never
// consumes a branch past `stop_after`.
template <typename Store>
void EvaluateBranch(const Store& store, const BgpQuery& branch,
                    size_t branch_index, const EvaluatorOptions& options,
                    ScanCache* cache, const exec::Statistics* plan_stats,
                    size_t max_rows, std::atomic<size_t>& stop_after,
                    bool profiled, std::unordered_set<Row, RowHash>& seen,
                    Row& scratch, size_t& worker_rows, CancelProbe& probe,
                    BranchOutput& out) {
  out.evaluated = true;
  obs::Span branch_span("wdr.query.branch");
  branch_span.AddAttr("branch", static_cast<uint64_t>(branch_index));
  const uint64_t start = NowNanos();
  auto emit_unbounded = [&](Row& row) {
    if (seen.insert(row).second) out.rows.push_back(row);
    return !probe.Expired();
  };
  auto emit_bounded = [&](Row& row) {
    if (stop_after.load(std::memory_order_relaxed) < branch_index) {
      return false;  // a lower branch already satisfies the budget
    }
    if (seen.insert(row).second) {
      out.rows.push_back(row);
      ++worker_rows;
    }
    if (worker_rows >= max_rows) {
      AtomicMin(stop_after, branch_index);
      return false;
    }
    return !probe.Expired();
  };
  if (options.plan) {
    exec::CompiledPlan plan = PlanBgpBranch(store, branch, options, plan_stats);
    out.est_rows = plan.est_rows;
    const size_t hint = ReserveHint(plan.est_rows);
    if (hint > 0) {
      if (seen.size() + hint > seen.bucket_count()) {
        seen.reserve(seen.size() + hint);
      }
      out.rows.reserve(hint);
    }
    obs::ProfileNode* plan_profile = profiled ? &out.plan_profile : nullptr;
    if (max_rows == SIZE_MAX) {
      ExecutePlannedBranch(store, plan, options, cache, /*eager=*/true,
                           plan_profile, scratch, emit_unbounded);
    } else {
      ExecutePlannedBranch(store, plan, options, cache, /*eager=*/false,
                           plan_profile, scratch, emit_bounded);
    }
    out.nanos = NowNanos() - start;
    return;
  }
  BgpJoin<Store> join(store, branch, options.greedy_join_order);
  join.set_scan_cache(cache, /*eager=*/max_rows == SIZE_MAX);
  if (probe.enabled()) join.set_cancel(&probe);
  if (profiled) {
    out.stats.resize(branch.atoms().size());
    join.set_stats(&out.stats);
  }
  if (max_rows == SIZE_MAX) {
    join.Run([&](const std::vector<TermId>& bindings) {
      ProjectRowInto(branch, bindings, scratch);
      emit_unbounded(scratch);
    });
  } else {
    join.Run([&](const std::vector<TermId>& bindings) {
      ProjectRowInto(branch, bindings, scratch);
      return emit_bounded(scratch);
    });
  }
  out.nanos = NowNanos() - start;
}

// Branch-parallel union evaluation, mirroring the saturator's design:
// branches are split into contiguous chunks (a few per worker) claimed off
// an atomic cursor; workers evaluate against the frozen store — safe under
// the StoreView readers-concurrent contract — into per-branch buffers, and
// a single thread merges the buffers IN BRANCH ORDER through one hash-set
// dedup. The merged row stream is therefore the sequential stream: results
// are bit-identical at every thread count. ASK/LIMIT cancellation is the
// `stop_after` branch bound (see EvaluateBranch); the merge consumes no
// branch past it, so cancelled work is work the sequential evaluation
// would not have needed either.
template <typename Store>
ResultSet EvaluateUnionParallel(const Store& store, const UnionQuery& q,
                                const EvaluatorOptions& options,
                                ScanCache* cache,
                                const exec::Statistics* plan_stats,
                                int workers, obs::ProfileNode* profile,
                                const rdf::Dictionary* dict) {
  static obs::Histogram& branch_wait =
      obs::MetricsRegistry::Get().GetHistogram("wdr.query.branch_wait");

  const size_t n = q.branches().size();
  const size_t max_rows = MaxRowsNeeded(q);
  const bool profiled = profile != nullptr;

  // A few chunks per worker: branch costs are skewed (one unselective
  // disjunct can dominate), and small chunks let the other workers drain
  // the rest meanwhile.
  const size_t target_chunks = static_cast<size_t>(workers) * 4;
  const size_t chunk_size =
      std::max<size_t>(1, (n + target_chunks - 1) / target_chunks);
  const size_t num_chunks = (n + chunk_size - 1) / chunk_size;

  std::vector<BranchOutput> outputs(n);
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> stop_after{SIZE_MAX};
  std::vector<uint64_t> busy_nanos(static_cast<size_t>(workers), 0);

  // Capture the dispatching thread's trace position so the pool workers'
  // spans attach to the enclosing query span instead of surfacing as
  // orphan roots (span parentage is thread-local; see obs/trace.h).
  const obs::TraceContext trace_context = obs::CurrentTraceContext();

  auto work = [&](int worker_id) {
    obs::TraceContextScope trace_scope(trace_context);
    obs::Span worker_span("wdr.query.worker");
    worker_span.AddAttr("worker", static_cast<uint64_t>(worker_id));
    const uint64_t start = NowNanos();
    uint64_t branches_done = 0;
    uint64_t rows_built = 0;
    // Worker-lifetime dedup state; see EvaluateBranch for why sharing the
    // seen-set across one worker's (increasing) branches is sound.
    std::unordered_set<Row, RowHash> seen;
    Row scratch;
    size_t worker_rows = 0;
    // Worker-local probe: the stride counter must not be shared, while the
    // underlying cancel flag/deadline are common to all workers.
    CancelProbe probe(options);
    for (;;) {
      if (probe.enabled() && probe.Expired()) break;
      const size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      const size_t lo = c * chunk_size;
      const size_t hi = std::min(n, lo + chunk_size);
      for (size_t b = lo; b < hi; ++b) {
        if (b > stop_after.load(std::memory_order_relaxed)) continue;
        if (probe.enabled() && probe.Expired()) break;
        EvaluateBranch(store, q.branches()[b], b, options, cache, plan_stats,
                       max_rows, stop_after, profiled, seen, scratch,
                       worker_rows, probe, outputs[b]);
        ++branches_done;
        rows_built += outputs[b].rows.size();
      }
    }
    busy_nanos[static_cast<size_t>(worker_id)] = NowNanos() - start;
    if (branches_done != 0) {
      obs::MetricsRegistry::Get()
          .GetCounter("wdr.query.worker." + std::to_string(worker_id) +
                      ".branches")
          .Add(branches_done);
      obs::MetricsRegistry::Get()
          .GetCounter("wdr.query.worker." + std::to_string(worker_id) +
                      ".rows")
          .Add(rows_built);
    }
  };

  WorkerPool::Get().Dispatch(workers - 1, work);

  if (options.collect != nullptr) {
    EvalStats& collect = *options.collect;
    for (const BranchOutput& out : outputs) {
      if (!out.evaluated) continue;
      ++collect.branches;
      if (out.est_rows >= 0) {
        collect.est_rows =
            (collect.est_rows < 0 ? 0 : collect.est_rows) + out.est_rows;
      }
    }
  }

  // Idle-at-the-barrier time per worker (how long each waited on the
  // slowest); large values mean skewed branch costs.
  const uint64_t slowest =
      *std::max_element(busy_nanos.begin(), busy_nanos.end());
  for (uint64_t busy : busy_nanos) branch_wait.RecordNanos(slowest - busy);

  // In-order merge: identical to the sequential dedup stream.
  ResultSet result;
  result.var_names = q.branches().front().ProjectionNames();
  std::unordered_set<Row, RowHash> seen;
  std::vector<size_t> contributed(profiled ? n : 0, 0);
  const size_t last =
      std::min(stop_after.load(std::memory_order_relaxed), n - 1);
  for (size_t b = 0; b <= last && result.rows.size() < max_rows; ++b) {
    const size_t rows_before = result.rows.size();
    for (Row& row : outputs[b].rows) {
      if (seen.insert(row).second) {
        result.rows.push_back(std::move(row));
        if (result.rows.size() >= max_rows) break;
      }
    }
    if (profiled) contributed[b] = result.rows.size() - rows_before;
  }

  if (profiled) {
    // Same shape as the sequential profile; `rows` is the branch's merge
    // contribution. Under cancellation the evaluated set can differ from a
    // sequential run's (workers may finish branches the merge never
    // needed) — the profile reports work actually done.
    obs::ProfileNode* overflow = nullptr;
    size_t overflow_branches = 0;
    for (size_t b = 0; b < n; ++b) {
      if (!outputs[b].evaluated) continue;
      obs::ProfileNode* branch_node = nullptr;
      if (b < kMaxProfiledBranches) {
        branch_node = &profile->AddChild("branch " + std::to_string(b));
      } else {
        if (overflow == nullptr) overflow = &profile->AddChild("");
        branch_node = overflow;
        ++overflow_branches;
      }
      branch_node->rows += b < contributed.size() ? contributed[b] : 0;
      branch_node->seconds += static_cast<double>(outputs[b].nanos) * 1e-9;
      if (branch_node == overflow) {
        if (options.plan) {
          branch_node->scans += outputs[b].plan_profile.TotalScans();
          branch_node->triples += outputs[b].plan_profile.TotalTriples();
        } else {
          for (const AtomStats& as : outputs[b].stats) {
            branch_node->scans += as.scans;
            branch_node->triples += as.triples;
          }
        }
      } else if (options.plan) {
        // Workers filled a detached operator tree (ProfileNode is not
        // concurrency-safe); adopt its children under the branch node.
        for (auto& child : outputs[b].plan_profile.children) {
          branch_node->children.push_back(std::move(child));
        }
      } else {
        FillAtomProfile(*branch_node, q.branches()[b], dict,
                        outputs[b].stats);
      }
    }
    if (overflow != nullptr) {
      overflow->label =
          "(+" + std::to_string(overflow_branches) + " more branches)";
    }
  }
  return result;
}

template <typename Store>
ResultSet EvaluateUnionQuery(const Store& store, const UnionQuery& q,
                             const EvaluatorOptions& options,
                             obs::ProfileNode* profile = nullptr,
                             const rdf::Dictionary* dict = nullptr) {
  WDR_COUNTER_INC("wdr.query.union_evals");
  if (q.branches().empty()) return ResultSet{};

  // The cache pays off through cross-branch sharing; a single-branch
  // union has nothing to share with.
  std::optional<ScanCache> cache;
  if (options.scan_cache && q.branches().size() >= 2) cache.emplace();
  ScanCache* cache_ptr = cache.has_value() ? &*cache : nullptr;

  // Plan-mode statistics: one build (or one staleness check of the
  // caller's) per union evaluation, shared read-only by every branch and
  // worker. Null keeps the planner on its degraded bound-first path.
  std::optional<exec::Statistics> local_stats;
  const exec::Statistics* plan_stats =
      options.plan ? UsableStats(store, options, local_stats) : nullptr;

  const size_t n = q.branches().size();
  const int workers = static_cast<int>(std::min<size_t>(
      options.threads < 1 ? 1 : static_cast<size_t>(options.threads), n));

  const uint64_t start = NowNanos();
  ResultSet result =
      workers > 1
          ? EvaluateUnionParallel(store, q, options, cache_ptr, plan_stats,
                                  workers, profile, dict)
          : EvaluateUnionSequential(store, q, options, cache_ptr, plan_stats,
                                    profile, dict);
  if (profile != nullptr) {
    profile->rows += result.rows.size();
    profile->seconds += static_cast<double>(NowNanos() - start) * 1e-9;
    if (cache_ptr != nullptr) {
      profile->AddChild("scan_cache (" + std::to_string(cache_ptr->hits()) +
                        " hits, " + std::to_string(cache_ptr->misses()) +
                        " misses)");
    }
  }
  if (cache_ptr != nullptr) {
    cache_ptr->FlushCounters();
    if (options.collect != nullptr) {
      options.collect->scan_cache_hits += cache_ptr->hits();
      options.collect->scan_cache_misses += cache_ptr->misses();
    }
  }
  return result;
}

}  // namespace

void ApplySolutionModifiers(const UnionQuery& q, ResultSet& result) {
  if (q.ask()) {
    bool any = !result.rows.empty();
    result.var_names.clear();
    result.rows.clear();
    if (any) result.rows.push_back({});
    return;
  }
  if (q.offset() > 0) {
    size_t drop = std::min(q.offset(), result.rows.size());
    result.rows.erase(result.rows.begin(), result.rows.begin() + drop);
  }
  if (q.limit() != UnionQuery::kNoLimit && result.rows.size() > q.limit()) {
    result.rows.resize(q.limit());
  }
}

void ResultSet::Normalize(bool dedup) {
  std::sort(rows.begin(), rows.end());
  if (dedup) rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
}

ResultSet Evaluator::Evaluate(const BgpQuery& q,
                              obs::ProfileNode* profile) const {
  ResultSet result = EvaluateBgp(*store_, q, options_, profile);
  WDR_COUNTER_ADD("wdr.query.rows", result.rows.size());
  return result;
}

ResultSet Evaluator::Evaluate(const UnionQuery& q,
                              obs::ProfileNode* profile) const {
  ResultSet result =
      EvaluateUnionQuery(*store_, q, options_, profile, options_.dict);
  ApplySolutionModifiers(q, result);
  WDR_COUNTER_ADD("wdr.query.rows", result.rows.size());
  return result;
}

ResultSet FederatedEvaluator::Evaluate(const BgpQuery& q,
                                       obs::ProfileNode* profile) const {
  ResultSet result = EvaluateBgp(*store_, q, options_, profile);
  WDR_COUNTER_ADD("wdr.query.rows", result.rows.size());
  return result;
}

ResultSet FederatedEvaluator::Evaluate(const UnionQuery& q,
                                       obs::ProfileNode* profile) const {
  ResultSet result =
      EvaluateUnionQuery(*store_, q, options_, profile, options_.dict);
  ApplySolutionModifiers(q, result);
  WDR_COUNTER_ADD("wdr.query.rows", result.rows.size());
  return result;
}

size_t Evaluator::CountAnswers(const BgpQuery& q) const {
  WDR_COUNTER_INC("wdr.query.bgp_evals");
  if (options_.plan) {
    // Counts stream through the executor; DISTINCT runs through the
    // plan's own HashDedup operator instead of a driver-side seen-set.
    std::optional<exec::Statistics> local_stats;
    const exec::Statistics* stats =
        UsableStats(*store_, options_, local_stats);
    exec::ConjunctiveSpec spec = SpecFromBgp(q, options_.dict);
    spec.distinct = q.distinct();
    exec::PlannerOptions popts;
    popts.hash_joins = options_.hash_joins;
    std::optional<exec::StatisticsEstimator> stats_est;
    std::optional<exec::StoreEstimator<rdf::StoreView>> store_est;
    if (stats != nullptr) {
      stats_est.emplace(*stats);
      popts.estimator = &*stats_est;
    } else {
      store_est.emplace(*store_);
      popts.estimator = &*store_est;
      popts.cost_based = false;
    }
    std::optional<CachedStoreSource<rdf::StoreView>> part_probe;
    if (dynamic_cast<const rdf::ShardedStore*>(store_) != nullptr) {
      part_probe.emplace(*store_, nullptr, /*eager=*/true);
      popts.partitioned = &*part_probe;
      popts.partitioned_source = 0;
    }
    exec::CompiledPlan plan = exec::PlanConjunctive(spec, popts);
    if (plan.root != nullptr) {
      CachedStoreSource<rdf::StoreView> source(*store_, nullptr, true);
      const std::vector<const exec::TupleSource*> sources = {&source};
      exec::ExecOptions eopts;
      eopts.batch_rows = options_.batch_rows;
      size_t count = 0;
      exec::Run(*plan.root, sources, eopts,
                [&](const exec::Value*, size_t) {
                  ++count;
                  return true;
                });
      WDR_COUNTER_ADD("wdr.query.rows", count);
      return count;
    }
  }
  BgpJoin<rdf::StoreView> join(*store_, q, options_.greedy_join_order);
  size_t count = 0;
  if (q.distinct()) {
    // DISTINCT still needs the set of projected rows, but never a
    // ResultSet: rows live only inside the dedup structure.
    std::unordered_set<Row, RowHash> seen;
    Row scratch;
    join.Run([&](const std::vector<TermId>& bindings) {
      ProjectRowInto(q, bindings, scratch);
      seen.insert(scratch);
    });
    count = seen.size();
  } else {
    // Non-distinct counting needs no projection at all.
    join.Run([&](const std::vector<TermId>&) { ++count; });
  }
  WDR_COUNTER_ADD("wdr.query.rows", count);
  return count;
}

}  // namespace wdr::query
