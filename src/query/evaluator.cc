#include "query/evaluator.h"

#include <algorithm>
#include <set>
#include <string>

#include "common/timer.h"
#include "obs/metrics.h"
#include "rdf/dictionary.h"

namespace wdr::query {
namespace {

using rdf::kNullTermId;
using rdf::StoreView;
using rdf::Triple;
using rdf::UnionStore;

// Per-atom operator statistics gathered during a profiled join. Indexed by
// atom position in the query, not by join order, so the profile tree reads
// in the order the query was written.
struct AtomStats {
  uint64_t scans = 0;    // Match calls (one cursor open each)
  uint64_t triples = 0;  // triples enumerated from the store
  uint64_t rows = 0;     // bindings successfully extended
  double seconds = 0;    // inclusive: contains nested operators' time
};

// Resolves a pattern position under the current bindings: a constant, a
// bound variable's value, or 0 (wildcard) for an unbound variable.
TermId Resolve(const PatternTerm& t, const std::vector<TermId>& bindings) {
  if (t.is_const()) return t.id;
  return bindings[t.var];
}

// Recursive bound-first join over the atoms of `q`. Store is any type
// with the StoreView Match/EstimateCount surface (the storage seam itself
// or the federation's UnionStore).
template <typename Store>
class BgpJoin {
 public:
  BgpJoin(const Store& store, const BgpQuery& q, bool greedy = true)
      : store_(store),
        q_(q),
        greedy_(greedy),
        bindings_(q.var_count(), kNullTermId) {
    for (const auto& [var, value] : q.preset()) bindings_[var] = value;
  }

  // Runs the join; `emit` returns false to stop enumeration early (used
  // by ASK and LIMIT, where computing further solutions is wasted work).
  template <typename EmitFn>
  void Run(EmitFn&& emit) {
    remaining_.resize(q_.atoms().size());
    for (size_t i = 0; i < remaining_.size(); ++i) remaining_[i] = i;
    Recurse(emit);
  }

  // Enables per-atom stats collection; `stats` must outlive Run() and have
  // one entry per query atom.
  void set_stats(std::vector<AtomStats>* stats) { stats_ = stats; }

  const std::vector<TermId>& bindings() const { return bindings_; }

 private:
  template <typename EmitFn>
  void Recurse(EmitFn&& emit) {
    if (stopped_) return;
    if (remaining_.empty()) {
      if (!internal_emit(emit)) stopped_ = true;
      return;
    }
    // Pick the cheapest atom under current bindings (or the first
    // remaining one when greedy ordering is disabled).
    size_t best_pos = 0;
    if (greedy_) {
      size_t best_cost = SIZE_MAX;
      for (size_t i = 0; i < remaining_.size(); ++i) {
        const TriplePattern& a = q_.atoms()[remaining_[i]];
        size_t cost = store_.EstimateCount(Resolve(a.s, bindings_),
                                           Resolve(a.p, bindings_),
                                           Resolve(a.o, bindings_));
        if (cost < best_cost) {
          best_cost = cost;
          best_pos = i;
        }
      }
    }
    size_t atom_index = remaining_[best_pos];
    remaining_.erase(remaining_.begin() + best_pos);
    const TriplePattern& atom = q_.atoms()[atom_index];

    TermId s = Resolve(atom.s, bindings_);
    TermId p = Resolve(atom.p, bindings_);
    TermId o = Resolve(atom.o, bindings_);
    AtomStats* as = stats_ ? &(*stats_)[atom_index] : nullptr;
    auto match = [&] {
      store_.Match(s, p, o, [&](const Triple& t) {
        if (as) ++as->triples;
        // Bind unbound variable positions, enforcing repeated-variable
        // consistency (e.g. ?x ?p ?x).
        std::vector<std::pair<VarId, TermId>> bound_here;
        bool ok = TryBind(atom.s, t.s, bound_here) &&
                  TryBind(atom.p, t.p, bound_here) &&
                  TryBind(atom.o, t.o, bound_here);
        if (ok) {
          if (as) ++as->rows;
          Recurse(emit);
        }
        for (auto it = bound_here.rbegin(); it != bound_here.rend(); ++it) {
          bindings_[it->first] = kNullTermId;
        }
        return !stopped_;
      });
    };
    if (as) {
      ++as->scans;
      Timer timer;
      match();
      as->seconds += timer.ElapsedSeconds();
    } else {
      match();
    }

    remaining_.insert(remaining_.begin() + best_pos, atom_index);
  }

  // Adapts emit callbacks returning void (never stop) or bool.
  template <typename EmitFn>
  bool internal_emit(EmitFn&& emit) {
    if constexpr (std::is_void_v<decltype(emit(bindings_))>) {
      emit(bindings_);
      return true;
    } else {
      return emit(bindings_);
    }
  }

  bool TryBind(const PatternTerm& term, TermId value,
               std::vector<std::pair<VarId, TermId>>& bound_here) {
    if (term.is_const()) return term.id == value;
    TermId& slot = bindings_[term.var];
    if (slot == kNullTermId) {
      slot = value;
      bound_here.emplace_back(term.var, value);
      return true;
    }
    return slot == value;
  }

  const Store& store_;
  const BgpQuery& q_;
  bool greedy_;
  bool stopped_ = false;
  std::vector<TermId> bindings_;
  std::vector<size_t> remaining_;
  std::vector<AtomStats>* stats_ = nullptr;  // not owned; null = no profiling
};

// Short human label for a term: the IRI fragment / last path segment, or
// the raw id when no dictionary is available.
std::string TermLabel(const rdf::Dictionary* dict, TermId id) {
  if (dict == nullptr || !dict->Contains(id)) {
    return "#" + std::to_string(id);
  }
  const std::string& lex = dict->term(id).lexical;
  size_t pos = lex.find_last_of("/#");
  if (pos != std::string::npos && pos + 1 < lex.size()) {
    return lex.substr(pos + 1);
  }
  return lex;
}

std::string PatternTermLabel(const BgpQuery& q, const rdf::Dictionary* dict,
                             const PatternTerm& t) {
  if (t.is_const()) return TermLabel(dict, t.id);
  return "?" + q.var_name(t.var);
}

std::string AtomLabel(const BgpQuery& q, const rdf::Dictionary* dict,
                      const TriplePattern& a) {
  return "scan(" + PatternTermLabel(q, dict, a.s) + " " +
         PatternTermLabel(q, dict, a.p) + " " +
         PatternTermLabel(q, dict, a.o) + ")";
}

// Copies per-atom join stats into `parent` as one child per atom, in
// written query order.
void FillAtomProfile(obs::ProfileNode& parent, const BgpQuery& q,
                     const rdf::Dictionary* dict,
                     const std::vector<AtomStats>& stats) {
  for (size_t i = 0; i < q.atoms().size(); ++i) {
    obs::ProfileNode& child = parent.AddChild(AtomLabel(q, dict, q.atoms()[i]));
    child.rows = stats[i].rows;
    child.triples = stats[i].triples;
    child.scans = stats[i].scans;
    child.seconds = stats[i].seconds;
  }
}

Row ProjectRow(const BgpQuery& q, const std::vector<TermId>& bindings) {
  Row row;
  row.reserve(q.projection().size());
  for (VarId v : q.projection()) row.push_back(bindings[v]);
  return row;
}

template <typename Store>
ResultSet EvaluateBgp(const Store& store, const BgpQuery& q,
                      bool greedy = true,
                      obs::ProfileNode* profile = nullptr,
                      const rdf::Dictionary* dict = nullptr) {
  WDR_COUNTER_INC("wdr.query.bgp_evals");
  ResultSet result;
  result.var_names = q.ProjectionNames();
  std::vector<AtomStats> stats;
  Timer timer;
  BgpJoin<Store> join(store, q, greedy);
  if (profile != nullptr) {
    stats.resize(q.atoms().size());
    join.set_stats(&stats);
  }
  if (q.distinct()) {
    std::set<Row> seen;
    join.Run([&](const std::vector<TermId>& bindings) {
      Row row = ProjectRow(q, bindings);
      if (seen.insert(row).second) result.rows.push_back(std::move(row));
    });
  } else {
    join.Run([&](const std::vector<TermId>& bindings) {
      result.rows.push_back(ProjectRow(q, bindings));
    });
  }
  if (profile != nullptr) {
    profile->rows += result.rows.size();
    profile->seconds += timer.ElapsedSeconds();
    FillAtomProfile(*profile, q, dict, stats);
  }
  return result;
}

// Distinct rows needed before enumeration may stop: one for ASK,
// offset + limit when a LIMIT is set, otherwise unbounded.
size_t MaxRowsNeeded(const UnionQuery& q) {
  if (q.ask()) return 1;
  if (q.limit() == UnionQuery::kNoLimit) return SIZE_MAX;
  size_t cap = q.offset() + q.limit();
  return cap < q.limit() ? SIZE_MAX : cap;  // overflow guard
}

// Detailed per-branch profile children are capped: reformulated unions can
// carry hundreds of disjuncts, and a screenful of identical-shape branches
// hides the signal. Branches past the cap fold into one aggregate node.
constexpr size_t kMaxProfiledBranches = 8;

template <typename Store>
ResultSet EvaluateUnionQuery(const Store& store, const UnionQuery& q,
                             bool greedy = true,
                             obs::ProfileNode* profile = nullptr,
                             const rdf::Dictionary* dict = nullptr) {
  WDR_COUNTER_INC("wdr.query.union_evals");
  ResultSet result;
  const size_t max_rows = MaxRowsNeeded(q);
  std::set<Row> seen;
  Timer timer;
  obs::ProfileNode* overflow = nullptr;
  size_t overflow_branches = 0;
  size_t branch_index = 0;
  for (const BgpQuery& branch : q.branches()) {
    if (result.var_names.empty()) {
      result.var_names = branch.ProjectionNames();
    }
    if (result.rows.size() >= max_rows) break;
    const size_t rows_before = result.rows.size();
    BgpJoin<Store> join(store, branch, greedy);
    std::vector<AtomStats> stats;
    obs::ProfileNode* branch_node = nullptr;
    if (profile != nullptr) {
      stats.resize(branch.atoms().size());
      join.set_stats(&stats);
      if (branch_index < kMaxProfiledBranches) {
        branch_node =
            &profile->AddChild("branch " + std::to_string(branch_index));
      } else {
        if (overflow == nullptr) overflow = &profile->AddChild("");
        branch_node = overflow;
        ++overflow_branches;
      }
    }
    Timer branch_timer;
    join.Run([&](const std::vector<TermId>& bindings) {
      Row row = ProjectRow(branch, bindings);
      if (seen.insert(row).second) result.rows.push_back(std::move(row));
      return result.rows.size() < max_rows;
    });
    if (branch_node != nullptr) {
      branch_node->rows += result.rows.size() - rows_before;
      branch_node->seconds += branch_timer.ElapsedSeconds();
      if (branch_node == overflow) {
        for (const AtomStats& as : stats) {
          branch_node->scans += as.scans;
          branch_node->triples += as.triples;
        }
      } else {
        FillAtomProfile(*branch_node, branch, dict, stats);
      }
    }
    ++branch_index;
  }
  if (profile != nullptr) {
    if (overflow != nullptr) {
      overflow->label =
          "(+" + std::to_string(overflow_branches) + " more branches)";
    }
    profile->rows += result.rows.size();
    profile->seconds += timer.ElapsedSeconds();
  }
  return result;
}

}  // namespace

void ApplySolutionModifiers(const UnionQuery& q, ResultSet& result) {
  if (q.ask()) {
    bool any = !result.rows.empty();
    result.var_names.clear();
    result.rows.clear();
    if (any) result.rows.push_back({});
    return;
  }
  if (q.offset() > 0) {
    size_t drop = std::min(q.offset(), result.rows.size());
    result.rows.erase(result.rows.begin(), result.rows.begin() + drop);
  }
  if (q.limit() != UnionQuery::kNoLimit && result.rows.size() > q.limit()) {
    result.rows.resize(q.limit());
  }
}

void ResultSet::Normalize(bool dedup) {
  std::sort(rows.begin(), rows.end());
  if (dedup) rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
}

ResultSet Evaluator::Evaluate(const BgpQuery& q,
                              obs::ProfileNode* profile) const {
  ResultSet result =
      EvaluateBgp(*store_, q, options_.greedy_join_order, profile,
                  options_.dict);
  WDR_COUNTER_ADD("wdr.query.rows", result.rows.size());
  return result;
}

ResultSet Evaluator::Evaluate(const UnionQuery& q,
                              obs::ProfileNode* profile) const {
  ResultSet result = EvaluateUnionQuery(*store_, q, options_.greedy_join_order,
                                        profile, options_.dict);
  ApplySolutionModifiers(q, result);
  WDR_COUNTER_ADD("wdr.query.rows", result.rows.size());
  return result;
}

ResultSet FederatedEvaluator::Evaluate(const BgpQuery& q,
                                       obs::ProfileNode* profile) const {
  ResultSet result = EvaluateBgp(*store_, q, /*greedy=*/true, profile);
  WDR_COUNTER_ADD("wdr.query.rows", result.rows.size());
  return result;
}

ResultSet FederatedEvaluator::Evaluate(const UnionQuery& q,
                                       obs::ProfileNode* profile) const {
  ResultSet result = EvaluateUnionQuery(*store_, q, /*greedy=*/true, profile);
  ApplySolutionModifiers(q, result);
  WDR_COUNTER_ADD("wdr.query.rows", result.rows.size());
  return result;
}

size_t Evaluator::CountAnswers(const BgpQuery& q) const {
  return Evaluate(q).rows.size();
}

}  // namespace wdr::query
