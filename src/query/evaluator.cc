#include "query/evaluator.h"

#include <algorithm>
#include <set>

namespace wdr::query {
namespace {

using rdf::kNullTermId;
using rdf::StoreView;
using rdf::Triple;
using rdf::UnionStore;

// Resolves a pattern position under the current bindings: a constant, a
// bound variable's value, or 0 (wildcard) for an unbound variable.
TermId Resolve(const PatternTerm& t, const std::vector<TermId>& bindings) {
  if (t.is_const()) return t.id;
  return bindings[t.var];
}

// Recursive bound-first join over the atoms of `q`. Store is any type
// with the StoreView Match/EstimateCount surface (the storage seam itself
// or the federation's UnionStore).
template <typename Store>
class BgpJoin {
 public:
  BgpJoin(const Store& store, const BgpQuery& q, bool greedy = true)
      : store_(store),
        q_(q),
        greedy_(greedy),
        bindings_(q.var_count(), kNullTermId) {
    for (const auto& [var, value] : q.preset()) bindings_[var] = value;
  }

  // Runs the join; `emit` returns false to stop enumeration early (used
  // by ASK and LIMIT, where computing further solutions is wasted work).
  template <typename EmitFn>
  void Run(EmitFn&& emit) {
    remaining_.resize(q_.atoms().size());
    for (size_t i = 0; i < remaining_.size(); ++i) remaining_[i] = i;
    Recurse(emit);
  }

  const std::vector<TermId>& bindings() const { return bindings_; }

 private:
  template <typename EmitFn>
  void Recurse(EmitFn&& emit) {
    if (stopped_) return;
    if (remaining_.empty()) {
      if (!internal_emit(emit)) stopped_ = true;
      return;
    }
    // Pick the cheapest atom under current bindings (or the first
    // remaining one when greedy ordering is disabled).
    size_t best_pos = 0;
    if (greedy_) {
      size_t best_cost = SIZE_MAX;
      for (size_t i = 0; i < remaining_.size(); ++i) {
        const TriplePattern& a = q_.atoms()[remaining_[i]];
        size_t cost = store_.EstimateCount(Resolve(a.s, bindings_),
                                           Resolve(a.p, bindings_),
                                           Resolve(a.o, bindings_));
        if (cost < best_cost) {
          best_cost = cost;
          best_pos = i;
        }
      }
    }
    size_t atom_index = remaining_[best_pos];
    remaining_.erase(remaining_.begin() + best_pos);
    const TriplePattern& atom = q_.atoms()[atom_index];

    TermId s = Resolve(atom.s, bindings_);
    TermId p = Resolve(atom.p, bindings_);
    TermId o = Resolve(atom.o, bindings_);
    store_.Match(s, p, o, [&](const Triple& t) {
      // Bind unbound variable positions, enforcing repeated-variable
      // consistency (e.g. ?x ?p ?x).
      std::vector<std::pair<VarId, TermId>> bound_here;
      bool ok = TryBind(atom.s, t.s, bound_here) &&
                TryBind(atom.p, t.p, bound_here) &&
                TryBind(atom.o, t.o, bound_here);
      if (ok) Recurse(emit);
      for (auto it = bound_here.rbegin(); it != bound_here.rend(); ++it) {
        bindings_[it->first] = kNullTermId;
      }
      return !stopped_;
    });

    remaining_.insert(remaining_.begin() + best_pos, atom_index);
  }

  // Adapts emit callbacks returning void (never stop) or bool.
  template <typename EmitFn>
  bool internal_emit(EmitFn&& emit) {
    if constexpr (std::is_void_v<decltype(emit(bindings_))>) {
      emit(bindings_);
      return true;
    } else {
      return emit(bindings_);
    }
  }

  bool TryBind(const PatternTerm& term, TermId value,
               std::vector<std::pair<VarId, TermId>>& bound_here) {
    if (term.is_const()) return term.id == value;
    TermId& slot = bindings_[term.var];
    if (slot == kNullTermId) {
      slot = value;
      bound_here.emplace_back(term.var, value);
      return true;
    }
    return slot == value;
  }

  const Store& store_;
  const BgpQuery& q_;
  bool greedy_;
  bool stopped_ = false;
  std::vector<TermId> bindings_;
  std::vector<size_t> remaining_;
};

Row ProjectRow(const BgpQuery& q, const std::vector<TermId>& bindings) {
  Row row;
  row.reserve(q.projection().size());
  for (VarId v : q.projection()) row.push_back(bindings[v]);
  return row;
}

template <typename Store>
ResultSet EvaluateBgp(const Store& store, const BgpQuery& q,
                      bool greedy = true) {
  ResultSet result;
  result.var_names = q.ProjectionNames();
  if (q.distinct()) {
    std::set<Row> seen;
    BgpJoin<Store> join(store, q, greedy);
    join.Run([&](const std::vector<TermId>& bindings) {
      Row row = ProjectRow(q, bindings);
      if (seen.insert(row).second) result.rows.push_back(std::move(row));
    });
  } else {
    BgpJoin<Store> join(store, q, greedy);
    join.Run([&](const std::vector<TermId>& bindings) {
      result.rows.push_back(ProjectRow(q, bindings));
    });
  }
  return result;
}

// Distinct rows needed before enumeration may stop: one for ASK,
// offset + limit when a LIMIT is set, otherwise unbounded.
size_t MaxRowsNeeded(const UnionQuery& q) {
  if (q.ask()) return 1;
  if (q.limit() == UnionQuery::kNoLimit) return SIZE_MAX;
  size_t cap = q.offset() + q.limit();
  return cap < q.limit() ? SIZE_MAX : cap;  // overflow guard
}

template <typename Store>
ResultSet EvaluateUnionQuery(const Store& store, const UnionQuery& q,
                             bool greedy = true) {
  ResultSet result;
  const size_t max_rows = MaxRowsNeeded(q);
  std::set<Row> seen;
  for (const BgpQuery& branch : q.branches()) {
    if (result.var_names.empty()) {
      result.var_names = branch.ProjectionNames();
    }
    if (result.rows.size() >= max_rows) break;
    BgpJoin<Store> join(store, branch, greedy);
    join.Run([&](const std::vector<TermId>& bindings) {
      Row row = ProjectRow(branch, bindings);
      if (seen.insert(row).second) result.rows.push_back(std::move(row));
      return result.rows.size() < max_rows;
    });
  }
  return result;
}

}  // namespace

void ApplySolutionModifiers(const UnionQuery& q, ResultSet& result) {
  if (q.ask()) {
    bool any = !result.rows.empty();
    result.var_names.clear();
    result.rows.clear();
    if (any) result.rows.push_back({});
    return;
  }
  if (q.offset() > 0) {
    size_t drop = std::min(q.offset(), result.rows.size());
    result.rows.erase(result.rows.begin(), result.rows.begin() + drop);
  }
  if (q.limit() != UnionQuery::kNoLimit && result.rows.size() > q.limit()) {
    result.rows.resize(q.limit());
  }
}

void ResultSet::Normalize(bool dedup) {
  std::sort(rows.begin(), rows.end());
  if (dedup) rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
}

ResultSet Evaluator::Evaluate(const BgpQuery& q) const {
  return EvaluateBgp(*store_, q, options_.greedy_join_order);
}

ResultSet Evaluator::Evaluate(const UnionQuery& q) const {
  ResultSet result = EvaluateUnionQuery(*store_, q, options_.greedy_join_order);
  ApplySolutionModifiers(q, result);
  return result;
}

ResultSet FederatedEvaluator::Evaluate(const BgpQuery& q) const {
  return EvaluateBgp(*store_, q);
}

ResultSet FederatedEvaluator::Evaluate(const UnionQuery& q) const {
  ResultSet result = EvaluateUnionQuery(*store_, q);
  ApplySolutionModifiers(q, result);
  return result;
}

size_t Evaluator::CountAnswers(const BgpQuery& q) const {
  return Evaluate(q).rows.size();
}

}  // namespace wdr::query
