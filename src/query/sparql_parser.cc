#include "query/sparql_parser.h"

#include <cctype>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/term_lexer.h"
#include "schema/vocabulary.h"

namespace wdr::query {
namespace {

using io::internal::Cursor;

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

class SparqlParser {
 public:
  SparqlParser(std::string_view text, rdf::Dictionary& dict)
      : cursor_(text), dict_(dict) {}

  Result<UnionQuery> Run() {
    WDR_RETURN_IF_ERROR(ParsePrologue());
    bool is_ask = false;
    if (ConsumeKeyword("SELECT")) {
      distinct_ = ConsumeKeyword("DISTINCT");
      WDR_RETURN_IF_ERROR(ParseProjection());
      if (!ConsumeKeyword("WHERE")) {
        return cursor_.Error("expected WHERE");
      }
    } else if (ConsumeKeyword("ASK")) {
      is_ask = true;
      project_all_ = true;  // branches project their own vars; collapsed
      ConsumeKeyword("WHERE");  // optional in ASK form
    } else {
      return cursor_.Error("expected SELECT or ASK");
    }
    WDR_ASSIGN_OR_RETURN(UnionQuery result, ParseGroupGraphPattern());
    result.SetAsk(is_ask);
    WDR_RETURN_IF_ERROR(ParseSolutionModifiers(result));
    cursor_.SkipWhitespaceAndComments();
    if (!cursor_.AtEnd()) {
      return cursor_.Error("trailing input after query");
    }
    return result;
  }

 private:
  Status ParsePrologue() {
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (!ConsumeKeyword("PREFIX")) return Status::Ok();
      cursor_.SkipWhitespaceAndComments();
      std::string prefix;
      while (!cursor_.AtEnd() && cursor_.Peek() != ':') {
        if (!IsNameChar(cursor_.Peek())) break;
        prefix += cursor_.Next();
      }
      if (cursor_.Peek() != ':') {
        return cursor_.Error("expected ':' in PREFIX declaration");
      }
      cursor_.Next();
      cursor_.SkipWhitespaceAndComments();
      WDR_ASSIGN_OR_RETURN(rdf::Term iri, cursor_.ParseIriRef());
      prefixes_[prefix] = iri.lexical;
    }
  }

  Status ParseProjection() {
    cursor_.SkipWhitespaceAndComments();
    if (cursor_.Peek() == '*') {
      cursor_.Next();
      project_all_ = true;
      return Status::Ok();
    }
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.Peek() != '?' && cursor_.Peek() != '$') break;
      WDR_ASSIGN_OR_RETURN(std::string name, ParseVarName());
      projection_names_.push_back(name);
    }
    if (projection_names_.empty()) {
      return cursor_.Error("SELECT needs '*' or at least one variable");
    }
    return Status::Ok();
  }

  Status ParseSolutionModifiers(UnionQuery& result) {
    // LIMIT and OFFSET in either order, each at most once.
    bool saw_limit = false, saw_offset = false;
    while (true) {
      if (!saw_limit && ConsumeKeyword("LIMIT")) {
        WDR_ASSIGN_OR_RETURN(size_t n, ParseNonNegativeInteger());
        result.SetLimit(n);
        saw_limit = true;
      } else if (!saw_offset && ConsumeKeyword("OFFSET")) {
        WDR_ASSIGN_OR_RETURN(size_t n, ParseNonNegativeInteger());
        result.SetOffset(n);
        saw_offset = true;
      } else {
        return Status::Ok();
      }
    }
  }

  Result<size_t> ParseNonNegativeInteger() {
    cursor_.SkipWhitespaceAndComments();
    std::string digits;
    while (std::isdigit(static_cast<unsigned char>(cursor_.Peek()))) {
      digits += cursor_.Next();
    }
    if (digits.empty()) return cursor_.Error("expected an integer");
    return static_cast<size_t>(std::stoull(digits));
  }

  Result<std::string> ParseVarName() {
    cursor_.Next();  // '?' or '$'
    std::string name;
    while (!cursor_.AtEnd() && IsNameChar(cursor_.Peek())) {
      name += cursor_.Next();
    }
    if (name.empty()) return cursor_.Error("empty variable name");
    return name;
  }

  // Case-insensitive keyword followed by a non-name character.
  bool ConsumeKeyword(std::string_view keyword) {
    cursor_.SkipWhitespaceAndComments();
    for (size_t i = 0; i < keyword.size(); ++i) {
      char c = cursor_.PeekAt(i);
      if (std::toupper(static_cast<unsigned char>(c)) != keyword[i]) {
        return false;
      }
    }
    if (IsNameChar(cursor_.PeekAt(keyword.size()))) return false;
    for (size_t i = 0; i < keyword.size(); ++i) cursor_.Next();
    return true;
  }

  Result<UnionQuery> ParseGroupGraphPattern() {
    cursor_.SkipWhitespaceAndComments();
    if (cursor_.Peek() != '{') return cursor_.Error("expected '{'");
    cursor_.Next();
    cursor_.SkipWhitespaceAndComments();

    UnionQuery result;
    if (cursor_.Peek() == '{') {
      // `{ bgp } UNION { bgp } ...`
      while (true) {
        cursor_.SkipWhitespaceAndComments();
        if (cursor_.Peek() != '{') {
          return cursor_.Error("expected '{' opening a UNION branch");
        }
        cursor_.Next();
        WDR_ASSIGN_OR_RETURN(BgpQuery branch, ParseBgp());
        cursor_.SkipWhitespaceAndComments();
        if (cursor_.Peek() != '}') {
          return cursor_.Error("expected '}' closing a UNION branch");
        }
        cursor_.Next();
        result.AddBranch(std::move(branch));
        if (!ConsumeKeyword("UNION")) break;
      }
    } else {
      WDR_ASSIGN_OR_RETURN(BgpQuery bgp, ParseBgp());
      result.AddBranch(std::move(bgp));
    }
    cursor_.SkipWhitespaceAndComments();
    if (cursor_.Peek() != '}') {
      return cursor_.Error("expected '}' closing WHERE");
    }
    cursor_.Next();
    return result;
  }

  Result<BgpQuery> ParseBgp() {
    BgpQuery q;
    q.SetDistinct(distinct_);
    std::vector<std::string> seen_vars;
    while (true) {
      cursor_.SkipWhitespaceAndComments();
      char c = cursor_.Peek();
      if (c == '}' || c == '\0') break;
      TriplePattern atom;
      WDR_ASSIGN_OR_RETURN(atom.s, ParsePatternTerm(q, seen_vars));
      cursor_.SkipWhitespaceAndComments();
      WDR_ASSIGN_OR_RETURN(atom.p, ParsePatternTerm(q, seen_vars));
      cursor_.SkipWhitespaceAndComments();
      WDR_ASSIGN_OR_RETURN(atom.o, ParsePatternTerm(q, seen_vars));
      q.AddAtom(atom);
      cursor_.SkipWhitespaceAndComments();
      if (cursor_.Peek() == '.') {
        cursor_.Next();
        continue;
      }
      break;
    }
    if (q.atoms().empty()) return cursor_.Error("empty graph pattern");

    // Resolve the projection against this branch's variables.
    if (project_all_) {
      for (const std::string& name : seen_vars) {
        WDR_ASSIGN_OR_RETURN(VarId v, q.VarByName(name));
        q.Project(v);
      }
    } else {
      for (const std::string& name : projection_names_) {
        // A projected variable may be absent from one UNION branch; it is
        // registered (and stays unbound) so branch arities line up.
        q.Project(q.AddVar(name));
      }
    }
    return q;
  }

  Result<PatternTerm> ParsePatternTerm(BgpQuery& q,
                                       std::vector<std::string>& seen_vars) {
    char c = cursor_.Peek();
    if (c == '?' || c == '$') {
      WDR_ASSIGN_OR_RETURN(std::string name, ParseVarName());
      size_t before = q.var_count();
      VarId v = q.AddVar(name);
      if (q.var_count() > before) seen_vars.push_back(name);
      return PatternTerm::Variable(v);
    }
    if (c == '<') {
      WDR_ASSIGN_OR_RETURN(rdf::Term term, cursor_.ParseIriRef());
      return PatternTerm::Constant(dict_.Intern(term));
    }
    if (c == '"') {
      WDR_ASSIGN_OR_RETURN(rdf::Term term, cursor_.ParseLiteral());
      return PatternTerm::Constant(dict_.Intern(term));
    }
    if (c == '_') {
      WDR_ASSIGN_OR_RETURN(rdf::Term term, cursor_.ParseBlankNode());
      return PatternTerm::Constant(dict_.Intern(term));
    }
    if (c == 'a' && !IsNameChar(cursor_.PeekAt(1)) &&
        cursor_.PeekAt(1) != ':') {
      cursor_.Next();
      return PatternTerm::Constant(dict_.InternIri(schema::iri::kType));
    }
    // Prefixed name.
    std::string prefix;
    while (!cursor_.AtEnd() && cursor_.Peek() != ':') {
      if (!IsNameChar(cursor_.Peek())) break;
      prefix += cursor_.Next();
    }
    if (cursor_.Peek() != ':') {
      return cursor_.Error("expected a term (IRI, literal, variable, 'a')");
    }
    cursor_.Next();
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return cursor_.Error("undeclared prefix '" + prefix + ":'");
    }
    std::string local;
    while (!cursor_.AtEnd() && IsNameChar(cursor_.Peek())) {
      local += cursor_.Next();
    }
    return PatternTerm::Constant(dict_.InternIri(it->second + local));
  }

  Cursor cursor_;
  rdf::Dictionary& dict_;
  std::unordered_map<std::string, std::string> prefixes_;
  std::vector<std::string> projection_names_;
  bool project_all_ = false;
  bool distinct_ = false;
};

}  // namespace

Result<UnionQuery> ParseSparql(std::string_view text, rdf::Dictionary& dict) {
  return SparqlParser(text, dict).Run();
}

}  // namespace wdr::query
