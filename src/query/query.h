#ifndef WDR_QUERY_QUERY_H_
#define WDR_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace wdr::query {

using rdf::TermId;

// Index of a variable within one BgpQuery's variable table.
using VarId = uint32_t;

// Hash over a row of projected term ids (FNV-1a over the 32-bit ids, with
// a final splitmix avalanche for bucket quality). Union semantics and
// DISTINCT de-duplicate through hash sets keyed by this — rows are
// compared for exact equality, so two distinct rows colliding only costs a
// probe, never an answer.
struct RowHash {
  size_t operator()(const std::vector<TermId>& row) const {
    uint64_t h = 14695981039346656037ull;  // FNV-1a offset basis
    for (TermId id : row) {
      h ^= id;
      h *= 1099511628211ull;  // FNV-1a prime
    }
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

// One position of a triple pattern: a constant term, a variable, or an
// inclusive id range. Range terms are produced only by hierarchy-aware
// (LiteMat-encoded) reformulation — "any id in the subclass closure's
// interval" — and behave like anonymous filtered positions: they never
// bind a variable and never project.
struct PatternTerm {
  enum class Kind : uint8_t { kConstant, kVariable, kRange };

  Kind kind = Kind::kConstant;
  TermId id = rdf::kNullTermId;   // kConstant value; kRange lower bound
  TermId id2 = rdf::kNullTermId;  // kRange upper bound (inclusive)
  VarId var = 0;                  // valid when kind == kVariable

  static PatternTerm Constant(TermId id) {
    PatternTerm t;
    t.kind = Kind::kConstant;
    t.id = id;
    return t;
  }
  static PatternTerm Variable(VarId var) {
    PatternTerm t;
    t.kind = Kind::kVariable;
    t.var = var;
    return t;
  }
  static PatternTerm Range(TermId lo, TermId hi) {
    PatternTerm t;
    t.kind = Kind::kRange;
    t.id = lo;
    t.id2 = hi;
    return t;
  }

  bool is_var() const { return kind == Kind::kVariable; }
  bool is_const() const { return kind == Kind::kConstant; }
  bool is_range() const { return kind == Kind::kRange; }

  friend bool operator==(const PatternTerm& a, const PatternTerm& b) {
    if (a.kind != b.kind) return false;
    if (a.is_var()) return a.var == b.var;
    if (a.is_range()) return a.id == b.id && a.id2 == b.id2;
    return a.id == b.id;
  }
};

// A SPARQL triple pattern (one atom of a BGP).
struct TriplePattern {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  friend bool operator==(const TriplePattern&, const TriplePattern&) = default;
};

// A basic graph pattern query (SPARQL conjunctive query): a set of triple
// patterns, a projection, and an optional set of preset variable bindings
// (used by reformulation, which may bind an answer variable to a schema
// constant in some disjuncts of the rewriting).
class BgpQuery {
 public:
  BgpQuery() = default;

  // Returns the id for variable `name`, registering it if new.
  VarId AddVar(const std::string& name);

  // Returns the id of `name` or an error if the query has no such variable.
  Result<VarId> VarByName(const std::string& name) const;

  void AddAtom(const TriplePattern& atom) { atoms_.push_back(atom); }

  // Appends `var` to the projected (answer) variables.
  void Project(VarId var) { projection_.push_back(var); }

  void SetDistinct(bool distinct) { distinct_ = distinct; }

  // Fixes `var` to the constant `value` (applies before evaluation).
  void Preset(VarId var, TermId value) { preset_[var] = value; }

  size_t var_count() const { return var_names_.size(); }
  const std::string& var_name(VarId var) const { return var_names_[var]; }
  const std::vector<TriplePattern>& atoms() const { return atoms_; }
  std::vector<TriplePattern>& mutable_atoms() { return atoms_; }
  const std::vector<VarId>& projection() const { return projection_; }
  bool distinct() const { return distinct_; }
  const std::unordered_map<VarId, TermId>& preset() const { return preset_; }

  // Projected variable names, in projection order.
  std::vector<std::string> ProjectionNames() const;

  // A canonical textual form used for de-duplicating reformulations:
  // atoms sorted, non-projected variables renamed by first occurrence.
  std::string CanonicalKey() const;

 private:
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, VarId> var_index_;
  std::vector<TriplePattern> atoms_;
  std::vector<VarId> projection_;
  std::unordered_map<VarId, TermId> preset_;
  bool distinct_ = false;
};

// A union of conjunctive queries (the shape reformulation produces). All
// branches must project the same number of variables, in the same role
// order; evaluation takes the set-union of branch answers. Carries the
// query-level modifiers: ASK form, LIMIT and OFFSET.
class UnionQuery {
 public:
  UnionQuery() = default;

  static UnionQuery Single(BgpQuery q) {
    UnionQuery u;
    u.AddBranch(std::move(q));
    return u;
  }

  void AddBranch(BgpQuery q) { branches_.push_back(std::move(q)); }

  const std::vector<BgpQuery>& branches() const { return branches_; }
  size_t size() const { return branches_.size(); }

  // ASK form: evaluation stops at the first answer and reports a boolean
  // (a result set with one empty row, or none).
  void SetAsk(bool ask) { ask_ = ask; }
  bool ask() const { return ask_; }

  // LIMIT / OFFSET solution modifiers (applied after de-duplication).
  // kNoLimit means unlimited.
  static constexpr size_t kNoLimit = static_cast<size_t>(-1);
  void SetLimit(size_t limit) { limit_ = limit; }
  void SetOffset(size_t offset) { offset_ = offset; }
  size_t limit() const { return limit_; }
  size_t offset() const { return offset_; }

  // Total number of atoms across branches — the paper's measure of how
  // much "syntactically larger" a reformulated query is.
  size_t TotalAtoms() const;

 private:
  std::vector<BgpQuery> branches_;
  bool ask_ = false;
  size_t limit_ = kNoLimit;
  size_t offset_ = 0;
};

}  // namespace wdr::query

#endif  // WDR_QUERY_QUERY_H_
