#include "query/query.h"

#include <algorithm>
#include <map>

namespace wdr::query {

VarId BgpQuery::AddVar(const std::string& name) {
  auto it = var_index_.find(name);
  if (it != var_index_.end()) return it->second;
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.push_back(name);
  var_index_.emplace(name, id);
  return id;
}

Result<VarId> BgpQuery::VarByName(const std::string& name) const {
  auto it = var_index_.find(name);
  if (it == var_index_.end()) {
    return NotFoundError("no variable named '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> BgpQuery::ProjectionNames() const {
  std::vector<std::string> names;
  names.reserve(projection_.size());
  for (VarId v : projection_) names.push_back(var_names_[v]);
  return names;
}

std::string BgpQuery::CanonicalKey() const {
  // Projected variables keep their role index; every other variable is
  // renamed to its first-occurrence order so fresh-variable identity does
  // not distinguish otherwise identical rewritings.
  auto tagged = [](char tag, size_t n) {
    std::string s(1, tag);
    s += std::to_string(n);
    return s;
  };
  std::map<VarId, std::string> rename;
  for (size_t i = 0; i < projection_.size(); ++i) {
    rename[projection_[i]] = tagged('#', i);
  }
  size_t next_fresh = 0;
  auto term_key = [&](const PatternTerm& t) -> std::string {
    if (t.is_const()) return tagged('c', t.id);
    if (t.is_range()) {
      return tagged('r', t.id) + ":" + std::to_string(t.id2);
    }
    auto it = rename.find(t.var);
    if (it == rename.end()) {
      it = rename.emplace(t.var, tagged('f', next_fresh++)).first;
    }
    return it->second;
  };
  std::vector<std::string> atom_keys;
  atom_keys.reserve(atoms_.size());
  for (const TriplePattern& a : atoms_) {
    atom_keys.push_back(term_key(a.s) + " " + term_key(a.p) + " " +
                        term_key(a.o));
  }
  // Sorting atom keys canonicalizes atom order. Renaming depends on the
  // original order, so two CQs equal up to atom permutation may still get
  // different keys; the dedup is conservative (never merges distinct CQs).
  std::sort(atom_keys.begin(), atom_keys.end());
  std::string key;
  for (const std::string& a : atom_keys) {
    key += a;
    key += " . ";
  }
  std::vector<std::pair<VarId, TermId>> presets(preset_.begin(),
                                                preset_.end());
  std::sort(presets.begin(), presets.end());
  for (const auto& [var, value] : presets) {
    auto it = rename.find(var);
    std::string var_key = it == rename.end() ? tagged('v', var) : it->second;
    key += '|';
    key += var_key;
    key += '=';
    key += std::to_string(value);
  }
  return key;
}

size_t UnionQuery::TotalAtoms() const {
  size_t total = 0;
  for (const BgpQuery& q : branches_) total += q.atoms().size();
  return total;
}

}  // namespace wdr::query
