#ifndef WDR_QUERY_SPARQL_PARSER_H_
#define WDR_QUERY_SPARQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "query/query.h"
#include "rdf/dictionary.h"

namespace wdr::query {

// Parses the BGP dialect of SPARQL the paper considers (§II-A):
//
//   PREFIX p: <iri> ...
//   SELECT [DISTINCT] (?v ... | *) WHERE { pattern }
//
// where `pattern` is triple patterns separated by '.', or a top-level
// `{ bgp } UNION { bgp } ...`. Terms: <iri>, prefixed names, ?vars,
// "literals" (with @lang / ^^<dt>), the keyword `a`, and _:blank nodes
// (treated as constants). Constants are interned into `dict` so the query
// can mention terms absent from the data (they simply match nothing).
Result<UnionQuery> ParseSparql(std::string_view text, rdf::Dictionary& dict);

}  // namespace wdr::query

#endif  // WDR_QUERY_SPARQL_PARSER_H_
