#ifndef WDR_QUERY_EVALUATOR_H_
#define WDR_QUERY_EVALUATOR_H_

#include <atomic>
#include <string>
#include <vector>

#include "exec/plan.h"
#include "exec/statistics.h"
#include "obs/profile.h"
#include "rdf/store_view.h"
#include "rdf/union_store.h"
#include "query/query.h"

namespace wdr::rdf {
class Dictionary;
}  // namespace wdr::rdf

namespace wdr::query {

// One answer: projected variable values in projection order.
using Row = std::vector<TermId>;

// Answers of a query evaluation.
struct ResultSet {
  std::vector<std::string> var_names;  // projection names
  std::vector<Row> rows;

  // Sorts rows (and de-duplicates if `dedup`) so result sets compare
  // structurally; used pervasively by tests.
  void Normalize(bool dedup = true);

  friend bool operator==(const ResultSet& a, const ResultSet& b) {
    return a.var_names == b.var_names && a.rows == b.rows;
  }
};

// Applies a query's solution modifiers to an assembled result: ASK
// collapses to zero-or-one empty row; OFFSET drops leading rows; LIMIT
// truncates. Shared by every evaluation route so the routes stay
// answer-equivalent.
void ApplySolutionModifiers(const UnionQuery& q, ResultSet& result);

// Per-evaluation measurements for the structured query log, filled when
// EvaluatorOptions::collect points at an instance. Everything here is
// already computed by the evaluation; collection adds no extra passes.
struct EvalStats {
  // Sum of the planner's per-branch row estimates (plan mode); -1 when no
  // branch was planned — the legacy join has no cardinality model.
  double est_rows = -1;
  // Branches actually evaluated (cancelled branches don't count).
  uint64_t branches = 0;
  // This evaluation's cross-branch scan-cache traffic (0/0 when the cache
  // was not engaged, e.g. single-branch unions).
  uint64_t scan_cache_hits = 0;
  uint64_t scan_cache_misses = 0;
};

// Knobs shared by Evaluator and FederatedEvaluator.
struct EvaluatorOptions {
  // Pick the cheapest remaining atom at each join step (estimated via
  // the store's indexes). Disabling falls back to the query's written
  // atom order — the ablation bench_queryopt quantifies the difference.
  bool greedy_join_order = true;
  // When set, profile-node operator labels render terms through this
  // dictionary instead of as raw ids.
  const rdf::Dictionary* dict = nullptr;
  // Worker threads for the branches of a UnionQuery (values < 1 clamp
  // to 1). Branches are partitioned into contiguous chunks claimed off an
  // atomic cursor; workers evaluate against the frozen store (the
  // StoreView readers-concurrent contract) into per-branch row buffers,
  // and a single thread merges the buffers in branch order — so the
  // result is bit-identical to the sequential evaluation at any thread
  // count. ASK/LIMIT cancel outstanding branches through a shared atomic
  // branch bound once some branch alone satisfies the row budget.
  int threads = 1;
  // Cross-branch scan-signature cache: reformulated branches repeatedly
  // issue identical resolved (s,p,o) scans, so each union evaluation
  // memoizes completed small scans and replays them as flat vectors,
  // shared read-only across workers. Answers are identical either way
  // (a cached scan is the exact triple sequence of the live cursor);
  // wdr.query.scan_cache.{hits,misses} measure effectiveness.
  bool scan_cache = true;
  // Compile each BGP/branch into the shared wdr::exec physical-plan IR —
  // cost-based join order AND join algorithm (hash join vs bound-first
  // index lookup) from per-predicate statistics, batch-at-a-time
  // execution — instead of the legacy recursive bound-first join. Off by
  // default: the legacy path stays the reference for differential
  // testing, and a static plan's row ORDER can differ from the legacy
  // join, which re-picks the cheapest atom under every partial binding
  // (answer SETS are always identical; the differential harness locks
  // both properties). WDR_PLAN=1 in the environment flips the default
  // on — the CI matrix runs the whole test suite both ways.
  bool plan = exec::PlanModeDefault();
  // Plan mode: allow hash joins (off = nested-loop-only plans; the
  // bench_exec grid quantifies the difference).
  bool hash_joins = true;
  // Plan mode: rows per executor batch.
  size_t batch_rows = 1024;
  // Plan mode: per-predicate statistics for the cost model. Null builds
  // them per evaluation (one O(store) pass — ReasoningStore caches a copy
  // instead); empty or stale statistics degrade the planner to the greedy
  // bound-first order with nested loops only.
  const exec::Statistics* stats = nullptr;
  // When non-null, union evaluation accumulates EvalStats here (est-vs-
  // actual cardinality, scan-cache traffic) for the caller's query-log
  // record. Not owned; must outlive the evaluation.
  EvalStats* collect = nullptr;
  // Cooperative cancellation, for callers serving queries with a timeout
  // (the server's per-query deadline). When `cancel` is non-null and
  // becomes true, or `deadline_nanos` (absolute std::chrono::steady_clock
  // nanos; 0 = none) passes, evaluation stops soon after — mid-scan, mid-
  // branch — and returns whatever rows it had. A truncated ResultSet is
  // indistinguishable from a complete one here, so callers that need
  // all-or-nothing semantics must re-check the condition after Evaluate
  // returns and discard the rows (ReasoningStore::Execute does). The flag
  // is probed per emitted triple; the clock is only read every few
  // thousand triples so the uncancelled path stays unmeasurable.
  const std::atomic<bool>* cancel = nullptr;
  uint64_t deadline_nanos = 0;
};

// BGP / union-of-BGP query evaluation over a triple store, per the paper's
// "query evaluation" (no reasoning): only explicit triples of the store are
// matched. Reasoning enters either by evaluating over a saturated store or
// by evaluating a reformulated UnionQuery — which is the whole point.
// The store is consumed through the StoreView seam, so evaluation runs
// unchanged over any storage backend.
//
// The join strategy is greedy bound-first index nested loops: at each step
// the atom with the fewest estimated matches under the current bindings is
// expanded via the best store index.
class Evaluator {
 public:
  using Options = EvaluatorOptions;

  explicit Evaluator(const rdf::StoreView& store)
      : store_(&store), options_() {}
  Evaluator(const rdf::StoreView& store, const Options& options)
      : store_(&store), options_(options) {}

  // `profile`, when non-null, receives one child per join operator with
  // EXPLAIN-ANALYZE-style stats (rows produced, triples enumerated, cursor
  // opens, inclusive wall time). A null profile collects nothing and adds
  // no measurable cost to the join.
  ResultSet Evaluate(const BgpQuery& q,
                     obs::ProfileNode* profile = nullptr) const;

  // Set-union of branch answers (always de-duplicated: a UCQ's answers are
  // a set, and reformulation disjuncts overlap heavily).
  ResultSet Evaluate(const UnionQuery& q,
                     obs::ProfileNode* profile = nullptr) const;

  // Number of rows without materializing a ResultSet: counts stream
  // through the join's emit callback (still enumerates; DISTINCT queries
  // keep a hash set of projected rows, others never even project).
  size_t CountAnswers(const BgpQuery& q) const;

 private:
  const rdf::StoreView* store_;  // not owned
  Options options_;
};

// Evaluation across a federation: same join machinery over a UnionStore
// view (set semantics across member stores). Used with reformulation,
// this answers queries over autonomous endpoints without ever saturating
// their union — the paper's §I argument for reformulation.
class FederatedEvaluator {
 public:
  explicit FederatedEvaluator(const rdf::UnionStore& store)
      : store_(&store), options_() {}
  FederatedEvaluator(const rdf::UnionStore& store,
                     const EvaluatorOptions& options)
      : store_(&store), options_(options) {}

  ResultSet Evaluate(const BgpQuery& q,
                     obs::ProfileNode* profile = nullptr) const;
  ResultSet Evaluate(const UnionQuery& q,
                     obs::ProfileNode* profile = nullptr) const;

 private:
  const rdf::UnionStore* store_;  // not owned
  EvaluatorOptions options_;
};

}  // namespace wdr::query

#endif  // WDR_QUERY_EVALUATOR_H_
