#ifndef WDR_REASONING_RULES_H_
#define WDR_REASONING_RULES_H_

#include <array>
#include <cstdint>

#include "rdf/dictionary.h"
#include "rdf/store_view.h"
#include "rdf/triple.h"
#include "schema/vocabulary.h"

namespace wdr::reasoning {

// The immediate entailment rules of the RDFS fragment (Fig. 2 of the paper
// plus the two schema-level transitivity rules from the RDF standard):
//
//   rdfs2 :  p rdfs:domain c        ∧  s p o             ⊢  s rdf:type c
//   rdfs3 :  p rdfs:range c         ∧  s p o             ⊢  o rdf:type c
//   rdfs5 :  p1 rdfs:subPropertyOf p2 ∧ p2 rdfs:subPropertyOf p3
//                                                        ⊢  p1 rdfs:subPropertyOf p3
//   rdfs7 :  p1 rdfs:subPropertyOf p2 ∧ s p1 o           ⊢  s p2 o
//   rdfs9 :  c1 rdfs:subClassOf c2  ∧  s rdf:type c1     ⊢  s rdf:type c2
//   rdfs11:  c1 rdfs:subClassOf c2  ∧  c2 rdfs:subClassOf c3
//                                                        ⊢  c1 rdfs:subClassOf c3
// The optional "RDFS++" extension rules (§II-C: the OWL predicates that
// AllegroGraph's RDFS++ and Virtuoso's inferencing add to RDFS):
//
//   owl-inv  :  p1 owl:inverseOf p2 ∧ s p1 o             ⊢  o p2 s
//               (and symmetrically for p2 assertions)
//   owl-sym  :  p rdf:type owl:SymmetricProperty ∧ s p o ⊢  o p s
//   owl-trans:  p rdf:type owl:TransitiveProperty ∧ s p o ∧ o p z
//                                                        ⊢  s p z
enum class RuleId : uint8_t {
  kRdfs2 = 0,
  kRdfs3,
  kRdfs5,
  kRdfs7,
  kRdfs9,
  kRdfs11,
  kOwlInverse,
  kOwlSymmetric,
  kOwlTransitive,
};
inline constexpr int kRuleCount = 9;

// Stable names, e.g. "rdfs9".
const char* RuleName(RuleId rule);

// Per-rule firing counters, updated by the engine.
struct RuleFirings {
  std::array<uint64_t, kRuleCount> counts{};

  uint64_t& operator[](RuleId rule) {
    return counts[static_cast<size_t>(rule)];
  }
  uint64_t operator[](RuleId rule) const {
    return counts[static_cast<size_t>(rule)];
  }
  uint64_t Total() const {
    uint64_t total = 0;
    for (uint64_t c : counts) total += c;
    return total;
  }
};

// Stateless immediate-entailment engine: enumerates one-step consequences
// of a triple against a store, and checks one-step derivability (used by
// DRed re-derivation). The dictionary is consulted only to suppress
// ill-formed conclusions (a literal can never be a subject, so rdfs3 does
// not fire a type assertion for literal objects).
class RuleEngine {
 public:
  // `enable_owl` switches on the RDFS++ extension rules. Off by default:
  // the reformulation and backward-chaining engines cover the RDFS
  // fragment only, so stores that answer via rewriting must saturate with
  // the same fragment to stay equivalent.
  RuleEngine(const schema::Vocabulary& vocab, const rdf::Dictionary* dict,
             bool enable_owl = false)
      : vocab_(vocab), dict_(dict), enable_owl_(enable_owl) {}

  // Invokes `fn(const Triple&, RuleId)` for every triple derivable in one
  // rule application that uses `t` as one premise and `store` for the other
  // premise. `t` itself is expected to be in `store` already (so rule
  // instances with both premises equal to `t` are found too).
  template <typename Fn>
  void ForEachConsequence(const rdf::StoreView& store, const rdf::Triple& t,
                          Fn&& fn) const {
    ForEachDerivation(store, t,
                      [&fn](const rdf::Triple& c, RuleId rule,
                            const rdf::Triple& /*other_premise*/) {
                        fn(c, rule);
                      });
  }

  // As ForEachConsequence, but also reports the second premise of the rule
  // instance: `fn(conclusion, rule, other_premise)` where the premises of
  // the derivation are {t, other_premise}. Used by provenance (explain.h).
  template <typename Fn>
  void ForEachDerivation(const rdf::StoreView& store, const rdf::Triple& t,
                         Fn&& fn) const;

  // True if `t` is derivable by a single rule application whose premises
  // are both in `store` (and distinct from `t`, which the caller must have
  // removed from `store` or never inserted).
  bool IsOneStepDerivable(const rdf::StoreView& store,
                          const rdf::Triple& t) const;

  // Introspection for the shard-local saturation dispatch: the OWL rules
  // do instance-instance joins, so shard-local join views are only
  // complete for the RDFS fragment; and the shard-local path requires the
  // store's broadcast set to cover these constraint predicates.
  bool owl_enabled() const { return enable_owl_; }
  const schema::Vocabulary& vocab() const { return vocab_; }

 private:
  bool LiteralSubject(rdf::TermId id) const {
    return dict_ != nullptr && dict_->Contains(id) &&
           dict_->term(id).is_literal();
  }

  schema::Vocabulary vocab_;
  const rdf::Dictionary* dict_;  // may be null; not owned
  bool enable_owl_;
};

// ---------------------------------------------------------------------------
// Implementation details only below here.

template <typename Fn>
void RuleEngine::ForEachDerivation(const rdf::StoreView& store,
                                   const rdf::Triple& t, Fn&& fn) const {
  const schema::Vocabulary& v = vocab_;
  using rdf::Triple;

  if (t.p == v.sub_class_of) {
    // rdfs11, t as left premise: t.o ⊑ x  =>  t.s ⊑ x.
    store.Match(t.o, v.sub_class_of, 0, [&](const Triple& m) {
      fn(Triple(t.s, v.sub_class_of, m.o), RuleId::kRdfs11, m);
    });
    // rdfs11, t as right premise: x ⊑ t.s  =>  x ⊑ t.o.
    store.Match(0, v.sub_class_of, t.s, [&](const Triple& m) {
      fn(Triple(m.s, v.sub_class_of, t.o), RuleId::kRdfs11, m);
    });
    // rdfs9, t as schema premise: i type t.s  =>  i type t.o.
    store.Match(0, v.type, t.s, [&](const Triple& m) {
      fn(Triple(m.s, v.type, t.o), RuleId::kRdfs9, m);
    });
  } else if (t.p == v.sub_property_of) {
    // rdfs5 both ways.
    store.Match(t.o, v.sub_property_of, 0, [&](const Triple& m) {
      fn(Triple(t.s, v.sub_property_of, m.o), RuleId::kRdfs5, m);
    });
    store.Match(0, v.sub_property_of, t.s, [&](const Triple& m) {
      fn(Triple(m.s, v.sub_property_of, t.o), RuleId::kRdfs5, m);
    });
    // rdfs7, t as schema premise: x t.s y  =>  x t.o y.
    store.Match(0, t.s, 0, [&](const Triple& m) {
      fn(Triple(m.s, t.o, m.o), RuleId::kRdfs7, m);
    });
  } else if (t.p == v.domain) {
    // rdfs2, t as schema premise: x t.s y  =>  x type t.o.
    store.Match(0, t.s, 0, [&](const Triple& m) {
      fn(Triple(m.s, v.type, t.o), RuleId::kRdfs2, m);
    });
  } else if (t.p == v.range) {
    // rdfs3, t as schema premise: x t.s y  =>  y type t.o.
    store.Match(0, t.s, 0, [&](const Triple& m) {
      if (!LiteralSubject(m.o)) fn(Triple(m.o, v.type, t.o), RuleId::kRdfs3, m);
    });
  } else if (t.p == v.type) {
    // rdfs9, t as instance premise: t.o ⊑ c  =>  t.s type c.
    store.Match(t.o, v.sub_class_of, 0, [&](const Triple& m) {
      fn(Triple(t.s, v.type, m.o), RuleId::kRdfs9, m);
    });
  }

  if (enable_owl_) {
    if (t.p == v.owl_inverse_of) {
      // owl-inv, t as schema premise, both directions.
      store.Match(0, t.s, 0, [&](const Triple& m) {
        if (!LiteralSubject(m.o)) fn(Triple(m.o, t.o, m.s), RuleId::kOwlInverse, m);
      });
      store.Match(0, t.o, 0, [&](const Triple& m) {
        if (!LiteralSubject(m.o)) fn(Triple(m.o, t.s, m.s), RuleId::kOwlInverse, m);
      });
    } else if (t.p == v.type && t.o == v.owl_symmetric) {
      store.Match(0, t.s, 0, [&](const Triple& m) {
        if (!LiteralSubject(m.o)) fn(Triple(m.o, t.s, m.s), RuleId::kOwlSymmetric, m);
      });
    } else if (t.p == v.type && t.o == v.owl_transitive) {
      // owl-trans, t as schema premise: join all p-chains.
      store.Match(0, t.s, 0, [&](const Triple& m) {
        store.Match(m.o, t.s, 0, [&](const Triple& n) {
          fn(Triple(m.s, t.s, n.o), RuleId::kOwlTransitive, n);
        });
      });
    }
    // t as instance premise of the OWL rules.
    store.Match(t.p, v.owl_inverse_of, 0, [&](const Triple& m) {
      if (!LiteralSubject(t.o)) fn(Triple(t.o, m.o, t.s), RuleId::kOwlInverse, m);
    });
    store.Match(0, v.owl_inverse_of, t.p, [&](const Triple& m) {
      if (!LiteralSubject(t.o)) fn(Triple(t.o, m.s, t.s), RuleId::kOwlInverse, m);
    });
    if (store.Contains(Triple(t.p, v.type, v.owl_symmetric)) &&
        !LiteralSubject(t.o)) {
      // The reported other premise is the symmetry declaration, so
      // provenance records the complete premise pair.
      fn(Triple(t.o, t.p, t.s), RuleId::kOwlSymmetric,
         Triple(t.p, v.type, v.owl_symmetric));
    }
    if (store.Contains(Triple(t.p, v.type, v.owl_transitive))) {
      store.Match(t.o, t.p, 0, [&](const Triple& m) {
        fn(Triple(t.s, t.p, m.o), RuleId::kOwlTransitive, m);
      });
      store.Match(0, t.p, t.s, [&](const Triple& m) {
        fn(Triple(m.s, t.p, t.o), RuleId::kOwlTransitive, m);
      });
    }
  }

  // Every triple is also a candidate instance premise for rdfs7/2/3 keyed
  // on its own property (rdf:type and the RDFS properties included: they
  // are properties themselves and may carry constraints).
  store.Match(t.p, v.sub_property_of, 0, [&](const Triple& m) {
    fn(Triple(t.s, m.o, t.o), RuleId::kRdfs7, m);
  });
  store.Match(t.p, v.domain, 0, [&](const Triple& m) {
    fn(Triple(t.s, v.type, m.o), RuleId::kRdfs2, m);
  });
  if (!LiteralSubject(t.o)) {
    store.Match(t.p, v.range, 0, [&](const Triple& m) {
      fn(Triple(t.o, v.type, m.o), RuleId::kRdfs3, m);
    });
  }
}

}  // namespace wdr::reasoning

#endif  // WDR_REASONING_RULES_H_
