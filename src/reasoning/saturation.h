#ifndef WDR_REASONING_SATURATION_H_
#define WDR_REASONING_SATURATION_H_

#include <cstdint>

#include "rdf/graph.h"
#include "rdf/triple_store.h"
#include "reasoning/rules.h"
#include "schema/vocabulary.h"

namespace wdr::reasoning {

struct SaturationStats {
  size_t base_triples = 0;
  size_t closure_triples = 0;
  size_t derived_triples = 0;  // closure_triples - base_triples
  size_t rounds = 0;           // fixpoint rounds (worklist generations)
  RuleFirings firings;         // successful derivations per rule
};

// Forward-chaining saturation: computes the closure G∞ of a base store as
// the fixpoint of the immediate entailment rules (semi-naive: each inserted
// triple is joined against the current closure exactly once as a "delta").
//
// The result is deterministic (the closure is unique up to nothing — it is
// a set), regardless of iteration order; this is property-tested.
class Saturator {
 public:
  // `enable_owl` adds the RDFS++ extension rules (see rules.h).
  Saturator(const schema::Vocabulary& vocab, const rdf::Dictionary* dict,
            bool enable_owl = false)
      : engine_(vocab, dict, enable_owl) {}

  // Core: fills `closure` (assumed empty) with base ∪ entailed triples.
  // Both sides go through the StoreView seam, so base and closure may use
  // different storage backends.
  void SaturateInto(const rdf::StoreView& base, rdf::StoreView& closure,
                    SaturationStats* stats = nullptr) const;

  // Convenience: returns base ∪ entailed triples in an ordered store.
  rdf::TripleStore Saturate(const rdf::StoreView& base,
                            SaturationStats* stats = nullptr) const;

  // Convenience: saturates `graph`'s store using its dictionary.
  static rdf::TripleStore SaturateGraph(const rdf::Graph& graph,
                                        const schema::Vocabulary& vocab,
                                        SaturationStats* stats = nullptr);

  const RuleEngine& engine() const { return engine_; }

 private:
  RuleEngine engine_;
};

}  // namespace wdr::reasoning

#endif  // WDR_REASONING_SATURATION_H_
