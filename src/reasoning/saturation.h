#ifndef WDR_REASONING_SATURATION_H_
#define WDR_REASONING_SATURATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"
#include "rdf/triple_store.h"
#include "reasoning/rules.h"
#include "schema/vocabulary.h"

namespace wdr::reasoning {

struct SaturationStats {
  size_t base_triples = 0;
  size_t closure_triples = 0;
  size_t derived_triples = 0;  // closure_triples - base_triples
  size_t rounds = 0;           // fixpoint rounds (worklist generations)
  RuleFirings firings;         // successful derivations per rule
};

// Knobs for how the fixpoint is computed. The default is the sequential
// worklist; `threads > 1` switches to round-barrier parallel derivation
// (see PropagateRounds below). The computed closure is identical either
// way — only wall-clock and the obs counters differ.
struct SaturationOptions {
  // Worker threads for the derive phase of each delta generation; <= 1
  // runs the single-threaded worklist.
  int threads = 1;
};

// Round-barrier semi-naive propagation, the shared engine under initial
// saturation, incremental insertion and DRed re-derivation.
//
// Precondition: every triple of `delta` is already present in `closure`
// (so joins between two same-generation triples are visible). Each
// generation of delta triples is joined against the read-only closure —
// with `options.threads > 1`, partitioned across that many workers — and
// the derived candidates are deduplicated and inserted by a single thread
// at the round barrier, in delta order, forming the next generation.
//
// Because the merge consumes worker outputs in partition order and each
// partition is a contiguous slice of the delta, the candidate stream (and
// hence the closure, the firing counts and the next delta) is identical
// for every thread count; the sequential worklist path differs only in
// when duplicates are suppressed, so the *closure* is always the same set.
// This is what tests/differential_test.cc locks down.
//
// Returns the number of triples added to `closure`. `firings` and
// `rounds`, when given, are accumulated (not reset).
size_t PropagateRounds(const RuleEngine& engine, rdf::StoreView& closure,
                       std::vector<rdf::Triple> delta,
                       const SaturationOptions& options,
                       RuleFirings* firings = nullptr,
                       size_t* rounds = nullptr);

// Forward-chaining saturation: computes the closure G∞ of a base store as
// the fixpoint of the immediate entailment rules (semi-naive: each inserted
// triple is joined against the current closure exactly once as a "delta").
//
// The result is deterministic (the closure is unique up to nothing — it is
// a set), regardless of iteration order and thread count; this is
// property-tested.
class Saturator {
 public:
  // `enable_owl` adds the RDFS++ extension rules (see rules.h).
  Saturator(const schema::Vocabulary& vocab, const rdf::Dictionary* dict,
            bool enable_owl = false)
      : engine_(vocab, dict, enable_owl) {}

  // Core: fills `closure` with base ∪ entailed triples. Returns
  // InvalidArgument if `closure` is not empty — saturating into a
  // non-empty store would silently produce wrong stats and a closure of
  // the union, which no caller wants. Both sides go through the StoreView
  // seam, so base and closure may use different storage backends.
  Status SaturateInto(const rdf::StoreView& base, rdf::StoreView& closure,
                      const SaturationOptions& options,
                      SaturationStats* stats = nullptr) const;
  Status SaturateInto(const rdf::StoreView& base, rdf::StoreView& closure,
                      SaturationStats* stats = nullptr) const {
    return SaturateInto(base, closure, SaturationOptions{}, stats);
  }

  // Convenience: returns base ∪ entailed triples in an ordered store.
  rdf::TripleStore Saturate(const rdf::StoreView& base,
                            SaturationStats* stats = nullptr,
                            const SaturationOptions& options = {}) const;

  // Convenience: saturates `graph`'s store using its dictionary.
  static rdf::TripleStore SaturateGraph(const rdf::Graph& graph,
                                        const schema::Vocabulary& vocab,
                                        SaturationStats* stats = nullptr,
                                        const SaturationOptions& options = {});

  const RuleEngine& engine() const { return engine_; }

 private:
  RuleEngine engine_;
};

}  // namespace wdr::reasoning

#endif  // WDR_REASONING_SATURATION_H_
