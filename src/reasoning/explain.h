#ifndef WDR_REASONING_EXPLAIN_H_
#define WDR_REASONING_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"
#include "rdf/store_view.h"
#include "reasoning/rules.h"
#include "schema/vocabulary.h"

namespace wdr::reasoning {

// One step of a derivation: `conclusion` follows from `premises` by
// `rule`. Base triples appear as leaves (no step is emitted for them).
struct DerivationStep {
  rdf::Triple conclusion;
  RuleId rule = RuleId::kRdfs9;
  std::vector<rdf::Triple> premises;
};

// A proof of one entailed triple: steps in dependency order (premises of
// step i are base triples or conclusions of steps before i; the last
// step's conclusion is the explained triple).
struct Explanation {
  std::vector<DerivationStep> steps;
};

// Produces a proof of `triple` from the base triples (the "justification"
// machinery the paper's §II-C mentions for OWLIM-style maintenance: which
// assertions support an implicit triple). `closure` must be the saturation
// of `base`.
//
// Returns an empty explanation when `triple` is itself a base triple, and
// NotFound when it is not in the closure at all. When a triple has several
// derivations, one (arbitrary but deterministic) proof is returned.
Result<Explanation> Explain(const rdf::StoreView& base,
                            const rdf::StoreView& closure,
                            const schema::Vocabulary& vocab,
                            const rdf::Dictionary* dict,
                            const rdf::Triple& triple,
                            bool enable_owl = false);

// Renders a proof as indented text, decoding terms via `graph`'s
// dictionary, e.g.:
//   <...#Tom> <...#type> <...#Mammal> .
//     by rdfs9 from:
//       <...#Cat> <...#subClassOf> <...#Mammal> .   [asserted]
//       <...#Tom> <...#type> <...#Cat> .            [asserted]
std::string FormatExplanation(const rdf::Graph& graph,
                              const rdf::StoreView& base,
                              const Explanation& explanation);

}  // namespace wdr::reasoning

#endif  // WDR_REASONING_EXPLAIN_H_
