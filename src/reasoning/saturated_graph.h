#ifndef WDR_REASONING_SATURATED_GRAPH_H_
#define WDR_REASONING_SATURATED_GRAPH_H_

#include <cstdint>
#include <memory>

#include "rdf/graph.h"
#include "rdf/store_view.h"
#include "reasoning/rules.h"
#include "reasoning/saturation.h"
#include "schema/vocabulary.h"

namespace wdr::reasoning {

// Cumulative maintenance counters (one saturated graph instance).
struct MaintenanceStats {
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t closure_added = 0;        // triples added to the closure by inserts
  uint64_t closure_removed = 0;      // net triples removed by deletes
  uint64_t overdeleted = 0;          // DRed over-deletion set sizes (total)
  uint64_t rederived = 0;            // DRed re-derivations (total)
};

// A base RDF graph together with its incrementally maintained closure G∞.
//
// This is the "saturation" side of the paper's trade-off: queries are
// evaluated against closure() and are cheap; updates pay a maintenance
// cost. Insertions propagate semi-naively from the new triple; deletions
// use DRed (over-delete then re-derive), which is sound for the recursive
// RDFS rules where derivation counting is not (cyclic subclass graphs).
// Both instance and schema triples are handled uniformly — a schema triple
// is just a triple whose consequences happen to be numerous, which is
// exactly why the paper's Fig. 3 shows lower thresholds for schema updates.
class SaturatedGraph {
 public:
  // Snapshots `base` and computes the initial closure, stored in the same
  // storage backend as `base`. `enable_owl` adds the RDFS++ extension rules
  // (rules.h) to both saturation and maintenance. `options` (notably
  // `threads`) applies to the initial build, Rebuild(), and the propagation
  // phases of Insert()/Erase() — the closure is identical either way.
  SaturatedGraph(const rdf::Graph& base, const schema::Vocabulary& vocab,
                 bool enable_owl = false,
                 const SaturationOptions& options = {});

  // Copies snapshot the closure store (unique_ptr member, so spelled out).
  SaturatedGraph(const SaturatedGraph& other);
  SaturatedGraph& operator=(const SaturatedGraph& other);
  SaturatedGraph(SaturatedGraph&&) = default;
  SaturatedGraph& operator=(SaturatedGraph&&) = default;

  const rdf::Graph& base() const { return base_; }
  rdf::Dictionary& dict() { return base_.dict(); }
  const rdf::StoreView& closure() const { return *closure_; }
  // Mutable closure access for layout control (a sharded closure's
  // SetShardCount); the contents are owned by the maintenance machinery.
  rdf::StoreView& mutable_closure() { return *closure_; }
  rdf::StorageBackend backend() const { return closure_->backend(); }
  const schema::Vocabulary& vocab() const { return vocab_; }

  // Inserts `t` into the base graph and maintains the closure.
  // Returns the number of triples added to the closure (0 if `t` was
  // already entailed — it still becomes a base triple).
  size_t Insert(const rdf::Triple& t);

  // Erases `t` from the base graph and maintains the closure with DRed.
  // Returns the net number of triples removed from the closure (0 if `t`
  // was not a base triple, or if it remains entailed by the rest).
  size_t Erase(const rdf::Triple& t);

  // Recomputes the closure from scratch (the paper's "recompute" baseline).
  void Rebuild();

  const MaintenanceStats& stats() const { return stats_; }
  const SaturationStats& initial_saturation() const { return initial_stats_; }

  // Saturation knobs for future propagation work; takes effect on the next
  // Insert/Erase/Rebuild (no rebuild is triggered by setting them).
  const SaturationOptions& saturation_options() const { return options_; }
  void set_saturation_options(const SaturationOptions& options) {
    options_ = options;
  }

 private:
  // The rule engine is constructed per call: it holds a pointer to the
  // dictionary, which must track this object across copies and moves.
  RuleEngine MakeEngine() const {
    return RuleEngine(vocab_, &base_.dict(), enable_owl_);
  }

  rdf::Graph base_;
  std::unique_ptr<rdf::StoreView> closure_;
  schema::Vocabulary vocab_;
  bool enable_owl_ = false;
  SaturationOptions options_;
  MaintenanceStats stats_;
  SaturationStats initial_stats_;
};

}  // namespace wdr::reasoning

#endif  // WDR_REASONING_SATURATED_GRAPH_H_
