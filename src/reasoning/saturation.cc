#include "reasoning/saturation.h"

#include <deque>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wdr::reasoning {
namespace {

// Registry flush happens once per saturation run (not per derivation): the
// worklist loop pays only plain local increments.
void FlushSaturationCounters(const RuleFirings& firings, size_t derived,
                             size_t rounds) {
  WDR_COUNTER_INC("wdr.saturation.runs");
  WDR_COUNTER_ADD("wdr.saturation.derived", derived);
  WDR_COUNTER_ADD("wdr.saturation.rounds", rounds);
  for (int i = 0; i < kRuleCount; ++i) {
    if (firings.counts[static_cast<size_t>(i)] == 0) continue;
    const RuleId rule = static_cast<RuleId>(i);
    obs::MetricsRegistry::Get()
        .GetCounter(std::string("wdr.saturation.firings.") + RuleName(rule))
        .Add(firings.counts[static_cast<size_t>(i)]);
  }
}

}  // namespace

void Saturator::SaturateInto(const rdf::StoreView& base,
                             rdf::StoreView& closure,
                             SaturationStats* stats) const {
  static obs::Histogram& latency =
      obs::MetricsRegistry::Get().GetHistogram("wdr.saturation.build");
  obs::Span span("wdr.saturation.build", &latency);

  std::deque<rdf::Triple> worklist;
  closure.InsertBatch(base.ToVector());
  base.Match(0, 0, 0,
             [&](const rdf::Triple& t) { worklist.push_back(t); });

  // Rounds are worklist generations: round 1 consumes the base triples,
  // round k+1 consumes the triples derived during round k. The count is
  // the derivation depth of the closure (BFS levels), useful for judging
  // how recursive a schema is.
  RuleFirings firings;
  size_t rounds = worklist.empty() ? 0 : 1;
  size_t in_round = worklist.size();  // items left in the current generation
  while (!worklist.empty()) {
    if (in_round == 0) {
      in_round = worklist.size();
      ++rounds;
    }
    rdf::Triple t = worklist.front();
    worklist.pop_front();
    --in_round;
    engine_.ForEachConsequence(closure, t,
                               [&](const rdf::Triple& c, RuleId rule) {
                                 if (closure.Insert(c)) {
                                   firings[rule] += 1;
                                   worklist.push_back(c);
                                 }
                               });
  }

  const size_t derived = closure.size() - base.size();
  FlushSaturationCounters(firings, derived, rounds);
  span.AddAttr("derived", static_cast<uint64_t>(derived));
  span.AddAttr("rounds", static_cast<uint64_t>(rounds));

  if (stats != nullptr) {
    stats->base_triples = base.size();
    stats->closure_triples = closure.size();
    stats->derived_triples = derived;
    stats->rounds = rounds;
    stats->firings = firings;
  }
}

rdf::TripleStore Saturator::Saturate(const rdf::StoreView& base,
                                     SaturationStats* stats) const {
  rdf::TripleStore closure;
  SaturateInto(base, closure, stats);
  return closure;
}

rdf::TripleStore Saturator::SaturateGraph(const rdf::Graph& graph,
                                          const schema::Vocabulary& vocab,
                                          SaturationStats* stats) {
  Saturator saturator(vocab, &graph.dict());
  return saturator.Saturate(graph.store(), stats);
}

}  // namespace wdr::reasoning
