#include "reasoning/saturation.h"

#include <deque>

namespace wdr::reasoning {

void Saturator::SaturateInto(const rdf::StoreView& base,
                             rdf::StoreView& closure,
                             SaturationStats* stats) const {
  std::deque<rdf::Triple> worklist;
  closure.InsertBatch(base.ToVector());
  base.Match(0, 0, 0,
             [&](const rdf::Triple& t) { worklist.push_back(t); });

  RuleFirings firings;
  while (!worklist.empty()) {
    rdf::Triple t = worklist.front();
    worklist.pop_front();
    engine_.ForEachConsequence(closure, t,
                               [&](const rdf::Triple& c, RuleId rule) {
                                 if (closure.Insert(c)) {
                                   firings[rule] += 1;
                                   worklist.push_back(c);
                                 }
                               });
  }

  if (stats != nullptr) {
    stats->base_triples = base.size();
    stats->closure_triples = closure.size();
    stats->derived_triples = closure.size() - base.size();
    stats->firings = firings;
  }
}

rdf::TripleStore Saturator::Saturate(const rdf::StoreView& base,
                                     SaturationStats* stats) const {
  rdf::TripleStore closure;
  SaturateInto(base, closure, stats);
  return closure;
}

rdf::TripleStore Saturator::SaturateGraph(const rdf::Graph& graph,
                                          const schema::Vocabulary& vocab,
                                          SaturationStats* stats) {
  Saturator saturator(vocab, &graph.dict());
  return saturator.Saturate(graph.store(), stats);
}

}  // namespace wdr::reasoning
