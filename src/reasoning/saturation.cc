#include "reasoning/saturation.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "rdf/sharded_store.h"

namespace wdr::reasoning {
namespace {

// Registry flush happens once per saturation run (not per derivation): the
// worklist loop pays only plain local increments.
void FlushSaturationCounters(const RuleFirings& firings, size_t derived,
                             size_t rounds) {
  WDR_COUNTER_INC("wdr.saturation.runs");
  WDR_COUNTER_ADD("wdr.saturation.derived", derived);
  WDR_COUNTER_ADD("wdr.saturation.rounds", rounds);
  for (int i = 0; i < kRuleCount; ++i) {
    if (firings.counts[static_cast<size_t>(i)] == 0) continue;
    const RuleId rule = static_cast<RuleId>(i);
    obs::MetricsRegistry::Get()
        .GetCounter(std::string("wdr.saturation.firings.") + RuleName(rule))
        .Add(firings.counts[static_cast<size_t>(i)]);
  }
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Sequential eager worklist: a derived triple enters the closure the
// moment it is derived, so later triples of the same generation already
// join against it. Cheapest per-triple bookkeeping; the reference the
// parallel path is differential-tested against.
size_t PropagateWorklist(const RuleEngine& engine, rdf::StoreView& closure,
                         std::deque<rdf::Triple> worklist,
                         RuleFirings& firings, size_t& rounds) {
  // Rounds are worklist generations: round 1 consumes the seed triples,
  // round k+1 consumes the triples derived during round k. The count is
  // the derivation depth of the closure (BFS levels), useful for judging
  // how recursive a schema is.
  size_t added = 0;
  size_t in_round = worklist.size();  // items left in the current generation
  if (!worklist.empty()) ++rounds;
  while (!worklist.empty()) {
    if (in_round == 0) {
      in_round = worklist.size();
      ++rounds;
    }
    rdf::Triple t = worklist.front();
    worklist.pop_front();
    --in_round;
    engine.ForEachConsequence(closure, t,
                              [&](const rdf::Triple& c, RuleId rule) {
                                if (closure.Insert(c)) {
                                  firings[rule] += 1;
                                  ++added;
                                  worklist.push_back(c);
                                }
                              });
  }
  return added;
}

// One derived candidate awaiting the merge; the rule is carried along so
// the merge thread can attribute the firing if the insert wins.
struct Candidate {
  rdf::Triple triple;
  RuleId rule;
};

// Parallel round-barrier propagation. Per generation: the delta is split
// into contiguous chunks, workers claim chunks via an atomic cursor and
// derive against the read-only closure into per-chunk buffers, then a
// single thread merges the buffers in chunk order. Workers only *read*
// the closure (Contains/Match), so backends need no write locks — the
// merge thread is the sole writer, after the join.
size_t PropagateParallel(const RuleEngine& engine, rdf::StoreView& closure,
                         std::vector<rdf::Triple> delta, int threads,
                         RuleFirings& firings, size_t& rounds) {
  static obs::Histogram& barrier_wait =
      obs::MetricsRegistry::Get().GetHistogram("wdr.saturation.barrier_wait");

  size_t added = 0;
  std::vector<rdf::Triple> next_delta;
  while (!delta.empty()) {
    ++rounds;
    const size_t n = delta.size();
    // A few chunks per worker so a skewed chunk (one schema triple can fan
    // out to thousands of consequences) does not serialize the round.
    const size_t target_chunks = static_cast<size_t>(threads) * 4;
    const size_t chunk_size = std::max<size_t>(1, (n + target_chunks - 1) /
                                                      target_chunks);
    const size_t num_chunks = (n + chunk_size - 1) / chunk_size;
    const int workers =
        static_cast<int>(std::min<size_t>(static_cast<size_t>(threads),
                                          num_chunks));

    std::vector<std::vector<Candidate>> chunk_out(num_chunks);
    std::atomic<size_t> next_chunk{0};
    std::vector<uint64_t> busy_nanos(static_cast<size_t>(workers), 0);

    // Worker threads are fresh std::threads with empty trace TLS: adopt
    // the dispatching thread's context so their spans attach to the
    // enclosing saturation/query span instead of becoming orphan roots.
    const obs::TraceContext trace_context = obs::CurrentTraceContext();

    auto work = [&](int worker_id) {
      obs::TraceContextScope trace_scope(trace_context);
      obs::Span worker_span("wdr.saturation.worker");
      worker_span.AddAttr("worker", static_cast<uint64_t>(worker_id));
      const uint64_t start = NowNanos();
      size_t derived = 0;
      for (;;) {
        const size_t i = next_chunk.fetch_add(1, std::memory_order_relaxed);
        if (i >= num_chunks) break;
        std::vector<Candidate>& sink = chunk_out[i];
        const size_t lo = i * chunk_size;
        const size_t hi = std::min(n, lo + chunk_size);
        for (size_t j = lo; j < hi; ++j) {
          engine.ForEachConsequence(
              closure, delta[j], [&](const rdf::Triple& c, RuleId rule) {
                // Pre-filter against the (frozen) closure so the merge
                // only sees genuinely new candidates plus same-round
                // duplicates.
                if (!closure.Contains(c)) sink.push_back({c, rule});
              });
        }
        derived += sink.size();
      }
      busy_nanos[static_cast<size_t>(worker_id)] = NowNanos() - start;
      if (derived != 0) {
        obs::MetricsRegistry::Get()
            .GetCounter("wdr.saturation.worker." +
                        std::to_string(worker_id) + ".derived")
            .Add(derived);
      }
    };

    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers) - 1);
    for (int w = 1; w < workers; ++w) pool.emplace_back(work, w);
    work(0);
    for (std::thread& th : pool) th.join();

    // Barrier wait per worker: how long each one idled while the slowest
    // finished its chunks. Large values mean skewed chunks.
    const uint64_t slowest =
        *std::max_element(busy_nanos.begin(), busy_nanos.end());
    for (uint64_t busy : busy_nanos) barrier_wait.RecordNanos(slowest - busy);

    // Single-threaded merge, in chunk order. Chunks are contiguous slices
    // of the delta, so the concatenated candidate stream — and therefore
    // the insert order, the firing attribution and the next delta — is
    // identical for every thread count.
    next_delta.clear();
    for (std::vector<Candidate>& out : chunk_out) {
      for (const Candidate& cand : out) {
        if (closure.Insert(cand.triple)) {
          firings[cand.rule] += 1;
          ++added;
          next_delta.push_back(cand.triple);
        }
      }
    }
    delta.swap(next_delta);
  }
  return added;
}

// Shard-local propagation is join-complete only when every RDFS
// constraint predicate is in the store's broadcast set: instance-premise
// rules join exclusively against schema triples (visible in every
// shard-local view via the shared schema store) and schema-premise rules
// scan instance triples shard by shard (the broadcast delta is replayed on
// all shards). The OWL rules join instance against instance, so with OWL
// on the per-shard derivation uses the *global* closure as its join view
// instead — complete regardless of the broadcast configuration.
bool ShardLocalComplete(const RuleEngine& engine,
                        const rdf::ShardedStore& store) {
  if (engine.owl_enabled()) return true;
  const schema::Vocabulary& v = engine.vocab();
  return store.IsBroadcast(v.sub_class_of) &&
         store.IsBroadcast(v.sub_property_of) && store.IsBroadcast(v.domain) &&
         store.IsBroadcast(v.range);
}

// Shard-parallel semi-naive propagation over a subject-hash-partitioned
// closure. Per generation: the delta splits into a broadcast (schema) part
// plus per-shard instance parts keyed by owner subject; each shard derives
// against its shard-local join view (shared schema store + own shard) into
// a private candidate buffer, workers claiming shards from an atomic
// cursor when threads > 1; then a single thread merges candidates in shard
// order, routing every conclusion through the sharded store's normal
// insert path (instance conclusions land on their owner shard, schema
// conclusions broadcast). The computed fixpoint is identical to the
// sequential worklist — the differential harness locks this at 1/2/4/8
// shards on every seed.
size_t PropagateShardLocal(const RuleEngine& engine,
                           rdf::ShardedStore& closure,
                           std::vector<rdf::Triple> delta, int threads,
                           RuleFirings& firings, size_t& rounds) {
  const size_t nshards = closure.shard_count();
  const bool owl = engine.owl_enabled();
  size_t added = 0;
  std::vector<rdf::Triple> next_delta;
  std::vector<std::vector<rdf::Triple>> shard_delta(nshards);
  std::vector<rdf::Triple> bcast;
  // Rounds in which shard i had local delta work or produced candidates.
  std::vector<size_t> shard_rounds(nshards, 0);

  while (!delta.empty()) {
    ++rounds;
    for (auto& v : shard_delta) v.clear();
    bcast.clear();
    for (const rdf::Triple& t : delta) {
      if (closure.IsBroadcast(t.p)) {
        bcast.push_back(t);
      } else {
        shard_delta[closure.OwnerShard(t.s)].push_back(t);
      }
    }

    std::vector<std::vector<Candidate>> shard_out(nshards);
    auto derive_shard = [&](size_t i) {
      if (shard_delta[i].empty() && bcast.empty()) return;
      const rdf::ShardedStore::LocalView local = closure.ShardLocalView(i);
      const rdf::StoreView& join =
          owl ? static_cast<const rdf::StoreView&>(closure)
              : static_cast<const rdf::StoreView&>(local);
      std::vector<Candidate>& sink = shard_out[i];
      auto emit = [&](const rdf::Triple& c, RuleId rule) {
        // Pre-filter against the (frozen) global closure so the merge only
        // sees genuinely new candidates plus same-round duplicates.
        if (!closure.Contains(c)) sink.push_back({c, rule});
      };
      for (const rdf::Triple& t : shard_delta[i]) {
        engine.ForEachConsequence(join, t, emit);
      }
      // The broadcast delta replays on every shard: schema-premise rules
      // scan instance triples, and each shard holds a disjoint slice.
      for (const rdf::Triple& t : bcast) {
        engine.ForEachConsequence(join, t, emit);
      }
    };

    const int workers = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(threads < 1 ? 1 : threads),
                         nshards));
    if (workers > 1) {
      const obs::TraceContext trace_context = obs::CurrentTraceContext();
      std::atomic<size_t> next{0};
      auto work = [&](int worker_id) {
        obs::TraceContextScope trace_scope(trace_context);
        obs::Span worker_span("wdr.shard.saturation.worker");
        worker_span.AddAttr("worker", static_cast<uint64_t>(worker_id));
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= nshards) break;
          derive_shard(i);
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(static_cast<size_t>(workers) - 1);
      for (int w = 1; w < workers; ++w) pool.emplace_back(work, w);
      work(0);
      for (std::thread& th : pool) th.join();
    } else {
      for (size_t i = 0; i < nshards; ++i) derive_shard(i);
    }

    // Single-threaded merge in shard order: the candidate stream — and so
    // the insert order, firing attribution and next delta — is identical
    // for every worker count.
    next_delta.clear();
    for (size_t i = 0; i < nshards; ++i) {
      for (const Candidate& cand : shard_out[i]) {
        if (closure.Insert(cand.triple)) {
          firings[cand.rule] += 1;
          ++added;
          next_delta.push_back(cand.triple);
        }
      }
      if (!shard_delta[i].empty() || !shard_out[i].empty()) {
        ++shard_rounds[i];
      }
    }
    delta.swap(next_delta);
  }

  auto& reg = obs::MetricsRegistry::Get();
  for (size_t i = 0; i < nshards; ++i) {
    if (shard_rounds[i] == 0) continue;
    reg.GetCounter("wdr.shard.saturation.rounds." + std::to_string(i))
        .Add(shard_rounds[i]);
  }
  WDR_COUNTER_ADD("wdr.shard.saturation.derived", added);
  return added;
}

}  // namespace

size_t PropagateRounds(const RuleEngine& engine, rdf::StoreView& closure,
                       std::vector<rdf::Triple> delta,
                       const SaturationOptions& options, RuleFirings* firings,
                       size_t* rounds) {
  RuleFirings local_firings;
  size_t local_rounds = 0;
  size_t added;
  rdf::ShardedStore* sharded =
      closure.backend() == rdf::StorageBackend::kSharded
          ? dynamic_cast<rdf::ShardedStore*>(&closure)
          : nullptr;
  if (sharded != nullptr && sharded->shard_count() > 1 &&
      ShardLocalComplete(engine, *sharded)) {
    added = PropagateShardLocal(engine, *sharded, std::move(delta),
                                options.threads, local_firings, local_rounds);
  } else if (options.threads <= 1) {
    added = PropagateWorklist(
        engine, closure,
        std::deque<rdf::Triple>(delta.begin(), delta.end()), local_firings,
        local_rounds);
  } else {
    added = PropagateParallel(engine, closure, std::move(delta),
                              options.threads, local_firings, local_rounds);
  }
  if (firings != nullptr) {
    for (int i = 0; i < kRuleCount; ++i) {
      firings->counts[static_cast<size_t>(i)] +=
          local_firings.counts[static_cast<size_t>(i)];
    }
  }
  if (rounds != nullptr) *rounds += local_rounds;
  return added;
}

Status Saturator::SaturateInto(const rdf::StoreView& base,
                               rdf::StoreView& closure,
                               const SaturationOptions& options,
                               SaturationStats* stats) const {
  if (closure.size() != 0) {
    return InvalidArgumentError(
        "SaturateInto requires an empty closure store, got " +
        std::to_string(closure.size()) +
        " triples (stats and the derived count would be wrong; clear the "
        "store or use a fresh one)");
  }

  static obs::Histogram& latency =
      obs::MetricsRegistry::Get().GetHistogram("wdr.saturation.build");
  obs::Span span("wdr.saturation.build", &latency);

  closure.InsertBatch(base.ToVector());
  RuleFirings firings;
  size_t rounds = 0;
  PropagateRounds(engine_, closure, closure.ToVector(), options, &firings,
                  &rounds);

  const size_t derived = closure.size() - base.size();
  FlushSaturationCounters(firings, derived, rounds);
  span.AddAttr("derived", static_cast<uint64_t>(derived));
  span.AddAttr("rounds", static_cast<uint64_t>(rounds));
  span.AddAttr("threads",
               static_cast<uint64_t>(options.threads < 1 ? 1
                                                         : options.threads));

  if (stats != nullptr) {
    stats->base_triples = base.size();
    stats->closure_triples = closure.size();
    stats->derived_triples = derived;
    stats->rounds = rounds;
    stats->firings = firings;
  }
  return Status::Ok();
}

rdf::TripleStore Saturator::Saturate(const rdf::StoreView& base,
                                     SaturationStats* stats,
                                     const SaturationOptions& options) const {
  rdf::TripleStore closure;
  // A freshly constructed closure is empty, so this cannot fail.
  Status status = SaturateInto(base, closure, options, stats);
  (void)status;
  return closure;
}

rdf::TripleStore Saturator::SaturateGraph(const rdf::Graph& graph,
                                          const schema::Vocabulary& vocab,
                                          SaturationStats* stats,
                                          const SaturationOptions& options) {
  Saturator saturator(vocab, &graph.dict());
  return saturator.Saturate(graph.store(), stats, options);
}

}  // namespace wdr::reasoning
