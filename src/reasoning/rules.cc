#include "reasoning/rules.h"

namespace wdr::reasoning {

const char* RuleName(RuleId rule) {
  switch (rule) {
    case RuleId::kRdfs2:
      return "rdfs2";
    case RuleId::kRdfs3:
      return "rdfs3";
    case RuleId::kRdfs5:
      return "rdfs5";
    case RuleId::kRdfs7:
      return "rdfs7";
    case RuleId::kRdfs9:
      return "rdfs9";
    case RuleId::kRdfs11:
      return "rdfs11";
    case RuleId::kOwlInverse:
      return "owl-inv";
    case RuleId::kOwlSymmetric:
      return "owl-sym";
    case RuleId::kOwlTransitive:
      return "owl-trans";
  }
  return "unknown";
}

bool RuleEngine::IsOneStepDerivable(const rdf::StoreView& store,
                                    const rdf::Triple& t) const {
  const schema::Vocabulary& v = vocab_;
  using rdf::Triple;
  bool found = false;

  if (t.p == v.type) {
    // rdfs9: s type c1 ∧ c1 ⊑ t.o.
    store.Match(0, v.sub_class_of, t.o, [&](const Triple& m) {
      if (store.Contains(Triple(t.s, v.type, m.s))) {
        found = true;
        return false;
      }
      return true;
    });
    if (found) return true;
    // rdfs2: p domain t.o ∧ ∃ (t.s p _).
    store.Match(0, v.domain, t.o, [&](const Triple& m) {
      bool any = false;
      store.Match(t.s, m.s, 0, [&](const Triple&) {
        any = true;
        return false;
      });
      if (any) {
        found = true;
        return false;
      }
      return true;
    });
    if (found) return true;
    // rdfs3: p range t.o ∧ ∃ (_ p t.s).
    store.Match(0, v.range, t.o, [&](const Triple& m) {
      bool any = false;
      store.Match(0, m.s, t.s, [&](const Triple&) {
        any = true;
        return false;
      });
      if (any) {
        found = true;
        return false;
      }
      return true;
    });
    if (found) return true;
  }

  if (t.p == v.sub_class_of) {
    // rdfs11: t.s ⊑ m ∧ m ⊑ t.o.
    store.Match(t.s, v.sub_class_of, 0, [&](const Triple& m) {
      if (store.Contains(Triple(m.o, v.sub_class_of, t.o))) {
        found = true;
        return false;
      }
      return true;
    });
    if (found) return true;
  }

  if (t.p == v.sub_property_of) {
    // rdfs5: t.s ⊑ m ∧ m ⊑ t.o.
    store.Match(t.s, v.sub_property_of, 0, [&](const Triple& m) {
      if (store.Contains(Triple(m.o, v.sub_property_of, t.o))) {
        found = true;
        return false;
      }
      return true;
    });
    if (found) return true;
  }

  // rdfs7: p1 ⊑ t.p ∧ (t.s p1 t.o).
  store.Match(0, v.sub_property_of, t.p, [&](const Triple& m) {
    if (store.Contains(Triple(t.s, m.s, t.o))) {
      found = true;
      return false;
    }
    return true;
  });
  if (found || !enable_owl_) return found;

  // owl-inv: (t.p inverseOf q) or (q inverseOf t.p), with (t.o q t.s).
  store.Match(t.p, v.owl_inverse_of, 0, [&](const Triple& m) {
    if (store.Contains(Triple(t.o, m.o, t.s))) {
      found = true;
      return false;
    }
    return true;
  });
  if (found) return true;
  store.Match(0, v.owl_inverse_of, t.p, [&](const Triple& m) {
    if (store.Contains(Triple(t.o, m.s, t.s))) {
      found = true;
      return false;
    }
    return true;
  });
  if (found) return true;
  // owl-sym.
  if (store.Contains(Triple(t.p, v.type, v.owl_symmetric)) &&
      store.Contains(Triple(t.o, t.p, t.s))) {
    return true;
  }
  // owl-trans: ∃ mid with (t.s t.p mid) ∧ (mid t.p t.o).
  if (store.Contains(Triple(t.p, v.type, v.owl_transitive))) {
    store.Match(t.s, t.p, 0, [&](const Triple& m) {
      if (store.Contains(Triple(m.o, t.p, t.o))) {
        found = true;
        return false;
      }
      return true;
    });
  }
  return found;
}

}  // namespace wdr::reasoning
