#include "reasoning/saturated_graph.h"

#include <deque>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wdr::reasoning {
namespace {

using rdf::StoreView;
using rdf::Triple;
using rdf::TripleHash;

// Inserts every triple of `seed` into `closure` and propagates consequences
// to fixpoint. Returns the number of triples added.
size_t Propagate(const RuleEngine& engine, StoreView& closure,
                 std::deque<Triple>& worklist) {
  size_t added = 0;
  while (!worklist.empty()) {
    Triple t = worklist.front();
    worklist.pop_front();
    engine.ForEachConsequence(closure, t, [&](const Triple& c, RuleId) {
      if (closure.Insert(c)) {
        ++added;
        worklist.push_back(c);
      }
    });
  }
  return added;
}

}  // namespace

SaturatedGraph::SaturatedGraph(const rdf::Graph& base,
                               const schema::Vocabulary& vocab,
                               bool enable_owl)
    : base_(base), vocab_(vocab), enable_owl_(enable_owl) {
  Rebuild();
}

SaturatedGraph::SaturatedGraph(const SaturatedGraph& other)
    : base_(other.base_),
      closure_(other.closure_->Clone()),
      vocab_(other.vocab_),
      enable_owl_(other.enable_owl_),
      stats_(other.stats_),
      initial_stats_(other.initial_stats_) {}

SaturatedGraph& SaturatedGraph::operator=(const SaturatedGraph& other) {
  if (this == &other) return *this;
  base_ = other.base_;
  closure_ = other.closure_->Clone();
  vocab_ = other.vocab_;
  enable_owl_ = other.enable_owl_;
  stats_ = other.stats_;
  initial_stats_ = other.initial_stats_;
  return *this;
}

void SaturatedGraph::Rebuild() {
  Saturator saturator(vocab_, &base_.dict(), enable_owl_);
  closure_ = rdf::MakeStore(base_.backend());
  saturator.SaturateInto(base_.store(), *closure_, &initial_stats_);
}

size_t SaturatedGraph::Insert(const Triple& t) {
  base_.Insert(t);
  ++stats_.inserts;
  WDR_COUNTER_INC("wdr.maintenance.inserts");
  if (!closure_->Insert(t)) return 0;  // already entailed
  std::deque<Triple> worklist{t};
  size_t added = 1 + Propagate(MakeEngine(), *closure_, worklist);
  stats_.closure_added += added;
  WDR_COUNTER_ADD("wdr.maintenance.closure_added", added);
  return added;
}

size_t SaturatedGraph::Erase(const Triple& t) {
  if (!base_.Erase(t)) return 0;
  ++stats_.deletes;
  WDR_COUNTER_INC("wdr.maintenance.deletes");
  obs::Span span("wdr.maintenance.dred");

  const RuleEngine engine = MakeEngine();

  // Phase 1 (over-delete): collect every closure triple with a derivation
  // path through `t`. Joins run against the still-intact closure so all
  // potential consumers are visible.
  std::unordered_set<Triple, TripleHash> overdeleted;
  std::deque<Triple> frontier{t};
  overdeleted.insert(t);
  while (!frontier.empty()) {
    Triple u = frontier.front();
    frontier.pop_front();
    engine.ForEachConsequence(*closure_, u, [&](const Triple& c, RuleId) {
      if (closure_->Contains(c) && overdeleted.insert(c).second) {
        frontier.push_back(c);
      }
    });
  }

  const size_t before = closure_->size();
  for (const Triple& u : overdeleted) closure_->Erase(u);
  stats_.overdeleted += overdeleted.size();

  // Phase 2 (re-derive): over-deleted triples that are still base facts or
  // still follow from the surviving closure come back, propagating through
  // the normal insertion path. Iterate to fixpoint: a re-derived triple can
  // in turn justify another over-deleted one.
  std::vector<Triple> candidates(overdeleted.begin(), overdeleted.end());
  size_t rederived = 0;
  // Base facts first: they are unconditionally present.
  std::deque<Triple> worklist;
  for (const Triple& u : candidates) {
    if (base_.Contains(u) && closure_->Insert(u)) {
      worklist.push_back(u);
      ++rederived;
    }
  }
  rederived += Propagate(engine, *closure_, worklist);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Triple& u : candidates) {
      if (closure_->Contains(u)) continue;
      if (engine.IsOneStepDerivable(*closure_, u)) {
        closure_->Insert(u);
        std::deque<Triple> wl{u};
        rederived += 1 + Propagate(engine, *closure_, wl);
        changed = true;
      }
    }
  }
  stats_.rederived += rederived;

  const size_t removed = before - closure_->size();
  stats_.closure_removed += removed;
  WDR_COUNTER_ADD("wdr.maintenance.overdeleted", overdeleted.size());
  WDR_COUNTER_ADD("wdr.maintenance.rederived", rederived);
  WDR_COUNTER_ADD("wdr.maintenance.closure_removed", removed);
  span.AddAttr("overdeleted", static_cast<uint64_t>(overdeleted.size()));
  span.AddAttr("rederived", static_cast<uint64_t>(rederived));
  return removed;
}

}  // namespace wdr::reasoning
