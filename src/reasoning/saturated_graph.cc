#include "reasoning/saturated_graph.h"

#include <deque>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace wdr::reasoning {
namespace {

using rdf::StoreView;
using rdf::Triple;
using rdf::TripleHash;

}  // namespace

SaturatedGraph::SaturatedGraph(const rdf::Graph& base,
                               const schema::Vocabulary& vocab,
                               bool enable_owl,
                               const SaturationOptions& options)
    : base_(base), vocab_(vocab), enable_owl_(enable_owl), options_(options) {
  Rebuild();
}

SaturatedGraph::SaturatedGraph(const SaturatedGraph& other)
    : base_(other.base_),
      closure_(other.closure_->Clone()),
      vocab_(other.vocab_),
      enable_owl_(other.enable_owl_),
      options_(other.options_),
      stats_(other.stats_),
      initial_stats_(other.initial_stats_) {}

SaturatedGraph& SaturatedGraph::operator=(const SaturatedGraph& other) {
  if (this == &other) return *this;
  base_ = other.base_;
  closure_ = other.closure_->Clone();
  vocab_ = other.vocab_;
  enable_owl_ = other.enable_owl_;
  options_ = other.options_;
  stats_ = other.stats_;
  initial_stats_ = other.initial_stats_;
  return *this;
}

void SaturatedGraph::Rebuild() {
  Saturator saturator(vocab_, &base_.dict(), enable_owl_);
  // MakeEmpty so a configured composite base (sharded) gets a closure with
  // the same partitioning layout, enabling shard-local propagation.
  closure_ = base_.store().MakeEmpty();
  // The store is freshly constructed (empty), so this cannot fail.
  Status status =
      saturator.SaturateInto(base_.store(), *closure_, options_,
                             &initial_stats_);
  (void)status;
}

size_t SaturatedGraph::Insert(const Triple& t) {
  base_.Insert(t);
  ++stats_.inserts;
  WDR_COUNTER_INC("wdr.maintenance.inserts");
  if (!closure_->Insert(t)) return 0;  // already entailed
  size_t added =
      1 + PropagateRounds(MakeEngine(), *closure_, {t}, options_);
  stats_.closure_added += added;
  WDR_COUNTER_ADD("wdr.maintenance.closure_added", added);
  return added;
}

size_t SaturatedGraph::Erase(const Triple& t) {
  if (!base_.Erase(t)) return 0;
  ++stats_.deletes;
  WDR_COUNTER_INC("wdr.maintenance.deletes");
  obs::Span span("wdr.maintenance.dred");

  const RuleEngine engine = MakeEngine();

  // Phase 1 (over-delete): collect every closure triple with a derivation
  // path through `t`. Joins run against the still-intact closure so all
  // potential consumers are visible.
  std::unordered_set<Triple, TripleHash> overdeleted;
  std::deque<Triple> frontier{t};
  overdeleted.insert(t);
  while (!frontier.empty()) {
    Triple u = frontier.front();
    frontier.pop_front();
    engine.ForEachConsequence(*closure_, u, [&](const Triple& c, RuleId) {
      if (closure_->Contains(c) && overdeleted.insert(c).second) {
        frontier.push_back(c);
      }
    });
  }

  const size_t before = closure_->size();
  for (const Triple& u : overdeleted) closure_->Erase(u);
  stats_.overdeleted += overdeleted.size();

  // Phase 2 (re-derive): over-deleted triples that are still base facts or
  // still follow from the surviving closure come back, propagating through
  // the normal insertion path. Iterate to fixpoint: a re-derived triple can
  // in turn justify another over-deleted one. Each batch of rediscovered
  // triples propagates via PropagateRounds, so re-derivation parallelizes
  // with the same round-barrier machinery as the initial build.
  std::vector<Triple> candidates(overdeleted.begin(), overdeleted.end());
  size_t rederived = 0;
  // Base facts first: they are unconditionally present.
  std::vector<Triple> batch;
  for (const Triple& u : candidates) {
    if (base_.Contains(u) && closure_->Insert(u)) batch.push_back(u);
  }
  rederived += batch.size() +
               PropagateRounds(engine, *closure_, std::move(batch), options_);
  bool changed = true;
  while (changed) {
    changed = false;
    batch.clear();
    for (const Triple& u : candidates) {
      if (closure_->Contains(u)) continue;
      if (engine.IsOneStepDerivable(*closure_, u)) {
        closure_->Insert(u);
        batch.push_back(u);
      }
    }
    if (!batch.empty()) {
      rederived += batch.size() + PropagateRounds(engine, *closure_,
                                                  std::move(batch), options_);
      changed = true;
    }
  }
  stats_.rederived += rederived;

  const size_t removed = before - closure_->size();
  stats_.closure_removed += removed;
  WDR_COUNTER_ADD("wdr.maintenance.overdeleted", overdeleted.size());
  WDR_COUNTER_ADD("wdr.maintenance.rederived", rederived);
  WDR_COUNTER_ADD("wdr.maintenance.closure_removed", removed);
  span.AddAttr("overdeleted", static_cast<uint64_t>(overdeleted.size()));
  span.AddAttr("rederived", static_cast<uint64_t>(rederived));
  return removed;
}

}  // namespace wdr::reasoning
