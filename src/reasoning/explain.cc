#include "reasoning/explain.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "rdf/triple_store.h"

namespace wdr::reasoning {
namespace {

using rdf::StoreView;
using rdf::Triple;
using rdf::TripleHash;
using rdf::TripleStore;

struct Provenance {
  RuleId rule;
  Triple premise_a;
  Triple premise_b;
};

}  // namespace

Result<Explanation> Explain(const StoreView& base,
                            const StoreView& closure,
                            const schema::Vocabulary& vocab,
                            const rdf::Dictionary* dict,
                            const Triple& triple, bool enable_owl) {
  if (base.Contains(triple)) return Explanation{};
  if (!closure.Contains(triple)) {
    return NotFoundError("triple is not entailed by the graph");
  }

  // Re-run the saturation, recording for each derived triple the first
  // derivation that produced it. "First" is well-founded: both premises
  // were present before the conclusion, so following provenance links
  // always terminates even through cyclic schemas.
  RuleEngine engine(vocab, dict, enable_owl);
  TripleStore working;
  std::deque<Triple> worklist;
  base.Match(0, 0, 0, [&](const Triple& t) {
    working.Insert(t);
    worklist.push_back(t);
  });

  std::unordered_map<Triple, Provenance, TripleHash> provenance;
  while (!worklist.empty()) {
    Triple t = worklist.front();
    worklist.pop_front();
    engine.ForEachDerivation(
        working, t, [&](const Triple& c, RuleId rule, const Triple& other) {
          if (working.Insert(c)) {
            provenance.emplace(c, Provenance{rule, t, other});
            worklist.push_back(c);
          }
        });
  }

  auto it = provenance.find(triple);
  if (it == provenance.end()) {
    // closure was claimed to be the saturation of base but disagrees.
    return InternalError(
        "triple is in the provided closure but not derivable from the base "
        "graph — closure and base are out of sync");
  }

  // Collect the proof DAG bottom-up (post-order), emitting each step once.
  Explanation explanation;
  std::unordered_set<Triple, TripleHash> emitted;
  std::vector<std::pair<Triple, bool>> stack;  // (triple, expanded)
  stack.emplace_back(triple, false);
  while (!stack.empty()) {
    auto [current, expanded] = stack.back();
    stack.pop_back();
    if (base.Contains(current) || emitted.count(current) > 0) continue;
    auto prov = provenance.find(current);
    if (prov == provenance.end()) continue;  // unreachable
    // owl-trans has three premises; the engine reports two and the third
    // is reconstructible: the transitivity declaration always, and — when
    // the declaration itself was the recorded delta — the first chain
    // triple (conclusion.s, p, b.s).
    std::vector<Triple> premises = {prov->second.premise_a,
                                    prov->second.premise_b};
    if (prov->second.rule == RuleId::kOwlTransitive) {
      Triple decl(current.p, vocab.type, vocab.owl_transitive);
      if (premises[0] == decl) {
        premises[0] = Triple(current.s, current.p, premises[1].s);
      }
      premises.push_back(decl);
    }
    if (expanded) {
      emitted.insert(current);
      DerivationStep step;
      step.conclusion = current;
      step.rule = prov->second.rule;
      step.premises = std::move(premises);
      explanation.steps.push_back(std::move(step));
    } else {
      stack.emplace_back(current, true);
      for (const Triple& premise : premises) {
        stack.emplace_back(premise, false);
      }
    }
  }
  return explanation;
}

std::string FormatExplanation(const rdf::Graph& graph,
                              const StoreView& base,
                              const Explanation& explanation) {
  if (explanation.steps.empty()) {
    return "(asserted triple — no derivation needed)\n";
  }
  std::string out;
  for (const DerivationStep& step : explanation.steps) {
    out += graph.Decode(step.conclusion);
    out += "\n  by ";
    out += RuleName(step.rule);
    out += " from:\n";
    for (const Triple& premise : step.premises) {
      out += "    ";
      out += graph.Decode(premise);
      if (base.Contains(premise)) out += "   [asserted]";
      out += "\n";
    }
  }
  return out;
}

}  // namespace wdr::reasoning
