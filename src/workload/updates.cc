#include "workload/updates.h"

#include <string>

namespace wdr::workload {
namespace {

using rdf::Triple;

// Reservoir-samples `count` triples satisfying `keep`.
template <typename KeepFn>
std::vector<Triple> Sample(const rdf::Graph& graph, size_t count, Rng& rng,
                           KeepFn&& keep) {
  std::vector<Triple> reservoir;
  size_t seen = 0;
  graph.store().Match(0, 0, 0, [&](const Triple& t) {
    if (!keep(t)) return;
    ++seen;
    if (reservoir.size() < count) {
      reservoir.push_back(t);
    } else {
      size_t slot = static_cast<size_t>(rng.Uniform(0, seen - 1));
      if (slot < count) reservoir[slot] = t;
    }
  });
  return reservoir;
}

}  // namespace

std::vector<Triple> SampleInstanceTriples(const rdf::Graph& graph,
                                          const schema::Vocabulary& vocab,
                                          size_t count, Rng& rng) {
  return Sample(graph, count, rng,
                [&](const Triple& t) { return !vocab.IsSchemaProperty(t.p); });
}

std::vector<Triple> SampleSchemaTriples(const rdf::Graph& graph,
                                        const schema::Vocabulary& vocab,
                                        size_t count, Rng& rng) {
  return Sample(graph, count, rng,
                [&](const Triple& t) { return vocab.IsSchemaProperty(t.p); });
}

UpdateSet MakeUpdateSet(rdf::Graph& graph, const schema::Vocabulary& vocab,
                        size_t count, Rng& rng) {
  UpdateSet updates;
  updates.instance_deletions = SampleInstanceTriples(graph, vocab, count, rng);
  updates.schema_deletions = SampleSchemaTriples(graph, vocab, count, rng);

  // Instance insertions: clone sampled instance triples with fresh
  // subjects, preserving property/object distributions.
  std::vector<Triple> templates =
      SampleInstanceTriples(graph, vocab, count, rng);
  for (size_t i = 0; i < templates.size(); ++i) {
    rdf::TermId fresh = graph.dict().InternIri(
        "http://wdr.example.org/fresh#subject" + std::to_string(i) + "_" +
        std::to_string(rng.Uniform(0, 1 << 30)));
    updates.instance_insertions.push_back(
        Triple(fresh, templates[i].p, templates[i].o));
  }

  // Schema insertions: fresh subclasses under existing classes (objects of
  // subClassOf edges), or fresh subproperties under existing properties.
  std::vector<Triple> class_edges =
      SampleSchemaTriples(graph, vocab, count * 4, rng);
  size_t made = 0;
  for (const Triple& t : class_edges) {
    if (made >= count) break;
    if (t.p != vocab.sub_class_of && t.p != vocab.sub_property_of) continue;
    rdf::TermId fresh = graph.dict().InternIri(
        "http://wdr.example.org/fresh#schema" + std::to_string(made) + "_" +
        std::to_string(rng.Uniform(0, 1 << 30)));
    updates.schema_insertions.push_back(Triple(fresh, t.p, t.o));
    ++made;
  }
  // Fall back to subclassing the object of any constraint if the graph had
  // too few subclass/subproperty edges.
  while (made < count && !class_edges.empty()) {
    const Triple& t = class_edges[made % class_edges.size()];
    rdf::TermId fresh = graph.dict().InternIri(
        "http://wdr.example.org/fresh#schema" + std::to_string(made) + "_" +
        std::to_string(rng.Uniform(0, 1 << 30)));
    updates.schema_insertions.push_back(
        Triple(fresh, vocab.sub_class_of, t.o));
    ++made;
  }
  return updates;
}

}  // namespace wdr::workload
