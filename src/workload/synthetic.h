#ifndef WDR_WORKLOAD_SYNTHETIC_H_
#define WDR_WORKLOAD_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/graph.h"
#include "schema/vocabulary.h"

namespace wdr::workload {

// Parameterized synthetic generator used by the scaling/ablation benches:
// lets a bench dial schema depth and fan-out independently of data size,
// which is what drives both saturation growth and reformulation size.
struct SyntheticConfig {
  uint64_t seed = 7;
  // Class tree: a root with `class_fanout` children per node, `class_depth`
  // levels below the root.
  int class_depth = 3;
  int class_fanout = 3;
  // Property tree, same shape.
  int property_depth = 2;
  int property_fanout = 2;
  // Fraction of properties given a domain / range (pointing at random
  // classes of the tree).
  double domain_fraction = 0.5;
  double range_fraction = 0.5;
  // Instance triples: `individuals` resources typed at random leaf classes;
  // `property_triples` edges with random leaf properties between them.
  int individuals = 1000;
  int property_triples = 2000;
};

struct SyntheticData {
  rdf::Graph graph;
  schema::Vocabulary vocab;
  std::vector<rdf::TermId> classes;     // breadth-first, [0] = root
  std::vector<rdf::TermId> properties;  // breadth-first, [0] = root
  size_t schema_triples = 0;
  size_t instance_triples = 0;
};

// Deterministic from `config.seed`.
SyntheticData GenerateSyntheticData(const SyntheticConfig& config);

}  // namespace wdr::workload

#endif  // WDR_WORKLOAD_SYNTHETIC_H_
