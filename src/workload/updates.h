#ifndef WDR_WORKLOAD_UPDATES_H_
#define WDR_WORKLOAD_UPDATES_H_

#include <vector>

#include "common/rng.h"
#include "rdf/graph.h"
#include "schema/vocabulary.h"

namespace wdr::workload {

// Update workloads for the Fig. 3 maintenance-threshold experiments: the
// four update kinds the figure distinguishes.
struct UpdateSet {
  std::vector<rdf::Triple> instance_insertions;  // new, not yet in the graph
  std::vector<rdf::Triple> instance_deletions;   // sampled from the graph
  std::vector<rdf::Triple> schema_insertions;    // new constraint triples
  std::vector<rdf::Triple> schema_deletions;     // sampled constraints
};

// Builds `count` updates of each kind for `graph` (university-shaped or
// not). Instance insertions replicate the shape of existing triples with
// fresh subjects; schema insertions attach fresh subclasses/subproperties
// under existing ones, which is what makes their maintenance expensive.
// New terms are interned into the graph's dictionary, but no triple is
// inserted into the graph. Deterministic given `rng`'s state.
UpdateSet MakeUpdateSet(rdf::Graph& graph, const schema::Vocabulary& vocab,
                        size_t count, Rng& rng);

// Uniformly samples `count` existing triples matching the schema /
// instance split (instance = property is not an RDFS constraint property).
std::vector<rdf::Triple> SampleInstanceTriples(const rdf::Graph& graph,
                                               const schema::Vocabulary& vocab,
                                               size_t count, Rng& rng);
std::vector<rdf::Triple> SampleSchemaTriples(const rdf::Graph& graph,
                                             const schema::Vocabulary& vocab,
                                             size_t count, Rng& rng);

}  // namespace wdr::workload

#endif  // WDR_WORKLOAD_UPDATES_H_
