#include "workload/queries.h"

#include "schema/vocabulary.h"
#include "workload/university.h"

namespace wdr::workload {
namespace {

using query::BgpQuery;
using query::PatternTerm;
using query::TriplePattern;
using query::VarId;

// Small fluent builder over BgpQuery for readable query definitions.
class QueryBuilder {
 public:
  explicit QueryBuilder(rdf::Dictionary& dict) : dict_(dict) {
    q_.SetDistinct(true);
  }

  PatternTerm Var(const std::string& name) {
    return PatternTerm::Variable(q_.AddVar(name));
  }
  PatternTerm Iri(const char* iri) {
    return PatternTerm::Constant(dict_.InternIri(iri));
  }
  PatternTerm Type() { return Iri(schema::iri::kType); }

  QueryBuilder& Atom(PatternTerm s, PatternTerm p, PatternTerm o) {
    q_.AddAtom(TriplePattern{s, p, o});
    return *this;
  }

  QueryBuilder& Select(const std::string& name) {
    VarId v = q_.AddVar(name);
    q_.Project(v);
    return *this;
  }

  BgpQuery Build() { return q_; }

 private:
  rdf::Dictionary& dict_;
  BgpQuery q_;
};

}  // namespace

std::vector<NamedQuery> StandardQuerySet(rdf::Dictionary& dict) {
  std::vector<NamedQuery> queries;

  {
    QueryBuilder b(dict);
    b.Atom(b.Var("x"), b.Type(), b.Iri(univ::kPerson)).Select("x");
    queries.push_back({"Q1",
                       "all Persons: top of the class hierarchy; the "
                       "reformulation unions every subclass plus every "
                       "property with a Person domain/range",
                       b.Build()});
  }
  {
    QueryBuilder b(dict);
    b.Atom(b.Var("x"), b.Type(), b.Iri(univ::kFullProfessor)).Select("x");
    queries.push_back({"Q2",
                       "all FullProfessors: a leaf class; the reformulation "
                       "is the query itself, so saturation never pays off "
                       "for it",
                       b.Build()});
  }
  {
    QueryBuilder b(dict);
    b.Atom(b.Var("x"), b.Iri(univ::kMemberOf), b.Var("y"))
        .Select("x")
        .Select("y");
    queries.push_back({"Q3",
                       "memberships: top of the memberOf ⊒ worksFor ⊒ "
                       "headOf property hierarchy",
                       b.Build()});
  }
  {
    QueryBuilder b(dict);
    b.Atom(b.Var("x"), b.Iri(univ::kHeadOf), b.Var("y")).Select("x");
    queries.push_back({"Q4",
                       "department heads: a leaf property; reformulation "
                       "is the identity",
                       b.Build()});
  }
  {
    QueryBuilder b(dict);
    b.Atom(b.Var("x"), b.Type(), b.Iri(univ::kStudent))
        .Atom(b.Var("x"), b.Iri(univ::kTakesCourse), b.Var("y"))
        .Select("x")
        .Select("y");
    queries.push_back({"Q5",
                       "students and their courses: join of a mid-hierarchy "
                       "class atom with a leaf property atom",
                       b.Build()});
  }
  {
    QueryBuilder b(dict);
    b.Atom(b.Var("x"), b.Type(), b.Iri(univ::kFaculty))
        .Atom(b.Var("x"), b.Iri(univ::kTeacherOf), b.Var("y"))
        .Atom(b.Var("y"), b.Type(), b.Iri(univ::kCourse))
        .Select("x")
        .Select("y");
    queries.push_back({"Q6",
                       "faculty teaching courses: three atoms whose "
                       "per-atom reformulations multiply",
                       b.Build()});
  }
  {
    QueryBuilder b(dict);
    b.Atom(b.Var("x"), b.Iri(univ::kDegreeFrom), b.Var("u"))
        .Atom(b.Var("u"), b.Type(), b.Iri(univ::kUniversity))
        .Select("x")
        .Select("u");
    queries.push_back({"Q7",
                       "degrees: property-hierarchy top joined with a "
                       "class atom",
                       b.Build()});
  }
  {
    QueryBuilder b(dict);
    b.Atom(b.Var("x"), b.Type(), b.Var("c")).Select("x").Select("c");
    queries.push_back({"Q8",
                       "full typing: a class-position variable, grounded "
                       "over the whole schema by reformulation — the "
                       "'blurred' fragment of §II-B",
                       b.Build()});
  }
  {
    QueryBuilder b(dict);
    b.Atom(b.Var("s"), b.Iri(univ::kAdvisor), b.Var("p"))
        .Atom(b.Var("p"), b.Type(), b.Iri(univ::kProfessor))
        .Select("s")
        .Select("p");
    queries.push_back({"Q9",
                       "advisees and their professors: mid-hierarchy class "
                       "with a leaf property join",
                       b.Build()});
  }
  {
    QueryBuilder b(dict);
    b.Atom(b.Var("p"), b.Type(), b.Iri(univ::kEmployee))
        .Atom(b.Var("s"), b.Iri(univ::kAdvisor), b.Var("p"))
        .Atom(b.Var("s"), b.Type(), b.Iri(univ::kGraduateStudent))
        .Select("p")
        .Select("s");
    queries.push_back({"Q10",
                       "graduate advisees of employees: two hierarchy "
                       "class atoms joined through a property, the largest "
                       "reformulation of the set",
                       b.Build()});
  }

  return queries;
}

}  // namespace wdr::workload
