#include "workload/university.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "schema/vocabulary.h"

namespace wdr::workload {
namespace {

using rdf::Graph;
using rdf::Term;

// Thin helper for building schema/instance triples with IRI strings. The
// triples are encoded as they are generated and inserted as one batch when
// added() flushes — bulk generation is exactly the workload the flat
// backend's Build path is for.
class Builder {
 public:
  explicit Builder(Graph& graph) : graph_(graph) {}

  // Flushes pending triples and returns the cumulative added count.
  size_t added() {
    added_ += graph_.InsertBatch(pending_);
    pending_.clear();
    return added_;
  }

  void SubClass(const char* sub, const char* super) {
    Add(sub, schema::iri::kSubClassOf, super);
  }
  void SubProperty(const char* sub, const char* super) {
    Add(sub, schema::iri::kSubPropertyOf, super);
  }
  void Domain(const char* p, const char* c) {
    Add(p, schema::iri::kDomain, c);
  }
  void Range(const char* p, const char* c) { Add(p, schema::iri::kRange, c); }

  void Type(const std::string& s, const char* c) {
    Add(s, schema::iri::kType, c);
  }
  void Add(const std::string& s, const std::string& p, const std::string& o) {
    pending_.push_back(
        graph_.Encode(Term::Iri(s), Term::Iri(p), Term::Iri(o)));
  }
  void AddLiteral(const std::string& s, const std::string& p,
                  const std::string& value) {
    pending_.push_back(
        graph_.Encode(Term::Iri(s), Term::Iri(p), Term::Literal(value)));
  }

 private:
  Graph& graph_;
  std::vector<rdf::Triple> pending_;
  size_t added_ = 0;
};

std::string Entity(const std::string& kind, int a, int b = -1, int c = -1) {
  std::string iri = std::string(univ::kNs) + kind + std::to_string(a);
  if (b >= 0) iri += "_" + std::to_string(b);
  if (c >= 0) iri += "_" + std::to_string(c);
  return iri;
}

}  // namespace

size_t AddUniversityOntology(rdf::Graph& graph) {
  Builder b(graph);

  // Class hierarchy (Fig. 1 subclass constraints).
  b.SubClass(univ::kEmployee, univ::kPerson);
  b.SubClass(univ::kFaculty, univ::kEmployee);
  b.SubClass(univ::kProfessor, univ::kFaculty);
  b.SubClass(univ::kFullProfessor, univ::kProfessor);
  b.SubClass(univ::kAssociateProfessor, univ::kProfessor);
  b.SubClass(univ::kAssistantProfessor, univ::kProfessor);
  b.SubClass(univ::kLecturer, univ::kFaculty);
  b.SubClass(univ::kStudent, univ::kPerson);
  b.SubClass(univ::kUndergraduateStudent, univ::kStudent);
  b.SubClass(univ::kGraduateStudent, univ::kStudent);
  b.SubClass(univ::kPhdStudent, univ::kGraduateStudent);
  b.SubClass(univ::kUniversity, univ::kOrganization);
  b.SubClass(univ::kDepartment, univ::kOrganization);
  b.SubClass(univ::kResearchGroup, univ::kOrganization);
  b.SubClass(univ::kCourse, univ::kWork);
  b.SubClass(univ::kGraduateCourse, univ::kCourse);
  b.SubClass(univ::kPublication, univ::kWork);
  b.SubClass(univ::kArticle, univ::kPublication);
  b.SubClass(univ::kBook, univ::kPublication);

  // Property hierarchy.
  b.SubProperty(univ::kWorksFor, univ::kMemberOf);
  b.SubProperty(univ::kHeadOf, univ::kWorksFor);
  b.SubProperty(univ::kDoctoralDegreeFrom, univ::kDegreeFrom);
  b.SubProperty(univ::kMastersDegreeFrom, univ::kDegreeFrom);
  b.SubProperty(univ::kUndergraduateDegreeFrom, univ::kDegreeFrom);

  // Domain / range typing (Fig. 1).
  b.Domain(univ::kMemberOf, univ::kPerson);
  b.Range(univ::kMemberOf, univ::kOrganization);
  b.Domain(univ::kHeadOf, univ::kFaculty);
  b.Domain(univ::kDegreeFrom, univ::kPerson);
  b.Range(univ::kDegreeFrom, univ::kUniversity);
  b.Domain(univ::kTeacherOf, univ::kFaculty);
  b.Range(univ::kTeacherOf, univ::kCourse);
  b.Domain(univ::kTakesCourse, univ::kStudent);
  b.Range(univ::kTakesCourse, univ::kCourse);
  b.Domain(univ::kAdvisor, univ::kStudent);
  b.Range(univ::kAdvisor, univ::kProfessor);
  b.Domain(univ::kPublicationAuthor, univ::kPublication);
  b.Range(univ::kPublicationAuthor, univ::kPerson);
  b.Domain(univ::kSubOrganizationOf, univ::kOrganization);
  b.Range(univ::kSubOrganizationOf, univ::kOrganization);
  b.Domain(univ::kName, univ::kWork);

  return b.added();
}

UniversityData GenerateUniversityData(const UniversityConfig& config) {
  UniversityData data;
  data.vocab = schema::Vocabulary::Intern(data.graph.dict());
  data.ontology_triples = AddUniversityOntology(data.graph);

  Builder b(data.graph);
  Rng rng(config.seed);

  const char* professor_ranks[] = {univ::kFullProfessor,
                                   univ::kAssociateProfessor,
                                   univ::kAssistantProfessor};
  const char* degree_props[] = {univ::kDoctoralDegreeFrom,
                                univ::kMastersDegreeFrom,
                                univ::kUndergraduateDegreeFrom};

  std::vector<std::string> universities;
  for (int u = 0; u < config.universities; ++u) {
    std::string univ_iri = Entity("University", u);
    universities.push_back(univ_iri);
    b.Type(univ_iri, univ::kUniversity);
  }

  for (int u = 0; u < config.universities; ++u) {
    const std::string& univ_iri = universities[u];
    for (int d = 0; d < config.departments_per_university; ++d) {
      std::string dept = Entity("Department", u, d);
      b.Type(dept, univ::kDepartment);
      b.Add(dept, univ::kSubOrganizationOf, univ_iri);

      std::vector<std::string> courses;
      for (int c = 0; c < config.courses_per_department; ++c) {
        std::string course = Entity("Course", u, d, c);
        bool graduate = rng.Chance(0.3);
        b.Type(course, graduate ? univ::kGraduateCourse : univ::kCourse);
        b.AddLiteral(course, univ::kName,
                     "Course " + std::to_string(u) + "-" + std::to_string(d) +
                         "-" + std::to_string(c));
        courses.push_back(std::move(course));
      }

      std::vector<std::string> professors;
      for (int p = 0; p < config.professors_per_department; ++p) {
        std::string prof = Entity("Professor", u, d, p);
        b.Type(prof, professor_ranks[rng.Uniform(0, 2)]);
        if (p == 0) {
          // The department head: headOf ⊑ worksFor ⊑ memberOf.
          b.Add(prof, univ::kHeadOf, dept);
        } else {
          b.Add(prof, univ::kWorksFor, dept);
        }
        size_t degree = static_cast<size_t>(rng.Uniform(0, 2));
        b.Add(prof, degree_props[degree],
              universities[rng.Uniform(0, config.universities - 1)]);
        // Each professor teaches 1-2 courses.
        int teaches = static_cast<int>(rng.Uniform(1, 2));
        for (int t = 0; t < teaches && !courses.empty(); ++t) {
          b.Add(prof, univ::kTeacherOf,
                courses[rng.Uniform(0, courses.size() - 1)]);
        }
        for (int pub = 0; pub < config.publications_per_professor; ++pub) {
          std::string publication = prof + "_pub" + std::to_string(pub);
          b.Type(publication,
                 rng.Chance(0.8) ? univ::kArticle : univ::kBook);
          b.Add(publication, univ::kPublicationAuthor, prof);
        }
        professors.push_back(std::move(prof));
      }

      for (int l = 0; l < config.lecturers_per_department; ++l) {
        std::string lecturer = Entity("Lecturer", u, d, l);
        b.Type(lecturer, univ::kLecturer);
        b.Add(lecturer, univ::kWorksFor, dept);
        if (!courses.empty()) {
          b.Add(lecturer, univ::kTeacherOf,
                courses[rng.Uniform(0, courses.size() - 1)]);
        }
      }

      for (int s = 0; s < config.students_per_department; ++s) {
        std::string student = Entity("Student", u, d, s);
        bool graduate = rng.Chance(config.graduate_fraction);
        if (graduate) {
          b.Type(student, rng.Chance(0.4) ? univ::kPhdStudent
                                          : univ::kGraduateStudent);
          if (!professors.empty()) {
            b.Add(student, univ::kAdvisor,
                  professors[rng.Uniform(0, professors.size() - 1)]);
          }
        } else {
          b.Type(student, univ::kUndergraduateStudent);
        }
        b.Add(student, univ::kMemberOf, dept);
        for (int c = 0; c < config.courses_per_student && !courses.empty();
             ++c) {
          b.Add(student, univ::kTakesCourse,
                courses[rng.Uniform(0, courses.size() - 1)]);
        }
      }
    }
  }

  data.instance_triples = b.added();
  return data;
}

}  // namespace wdr::workload
