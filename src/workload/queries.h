#ifndef WDR_WORKLOAD_QUERIES_H_
#define WDR_WORKLOAD_QUERIES_H_

#include <string>
#include <vector>

#include "query/query.h"
#include "rdf/dictionary.h"

namespace wdr::workload {

// One query of the Fig. 3 workload.
struct NamedQuery {
  std::string name;         // "Q1" ... "Q10"
  std::string description;  // what it asks and why its thresholds differ
  query::BgpQuery query;
};

// The ten-query workload over the university ontology, spanning the Fig. 3
// spectrum: from leaf-class lookups whose reformulation is the query itself
// (saturation never amortizes) to hierarchy-top and class-variable queries
// whose reformulations fan out into many conjunctive queries (saturation
// amortizes after a handful of runs). Constants are interned into `dict`.
std::vector<NamedQuery> StandardQuerySet(rdf::Dictionary& dict);

}  // namespace wdr::workload

#endif  // WDR_WORKLOAD_QUERIES_H_
