#ifndef WDR_WORKLOAD_UNIVERSITY_H_
#define WDR_WORKLOAD_UNIVERSITY_H_

#include <cstdint>
#include <string>

#include "rdf/graph.h"
#include "schema/vocabulary.h"

namespace wdr::workload {

// IRIs of the university-domain ontology (LUBM-style; see DESIGN.md for the
// substitution rationale). The class hierarchy is 4 levels deep and the
// property hierarchy 3 levels deep, so that reformulations of queries over
// the top of either hierarchy fan out substantially, as in the EDBT'13
// setup Fig. 3 is borrowed from.
namespace univ {
inline constexpr const char* kNs = "http://wdr.example.org/univ#";

// Classes.
inline constexpr const char* kPerson = "http://wdr.example.org/univ#Person";
inline constexpr const char* kEmployee = "http://wdr.example.org/univ#Employee";
inline constexpr const char* kFaculty = "http://wdr.example.org/univ#Faculty";
inline constexpr const char* kProfessor = "http://wdr.example.org/univ#Professor";
inline constexpr const char* kFullProfessor = "http://wdr.example.org/univ#FullProfessor";
inline constexpr const char* kAssociateProfessor = "http://wdr.example.org/univ#AssociateProfessor";
inline constexpr const char* kAssistantProfessor = "http://wdr.example.org/univ#AssistantProfessor";
inline constexpr const char* kLecturer = "http://wdr.example.org/univ#Lecturer";
inline constexpr const char* kStudent = "http://wdr.example.org/univ#Student";
inline constexpr const char* kUndergraduateStudent = "http://wdr.example.org/univ#UndergraduateStudent";
inline constexpr const char* kGraduateStudent = "http://wdr.example.org/univ#GraduateStudent";
inline constexpr const char* kPhdStudent = "http://wdr.example.org/univ#PhdStudent";
inline constexpr const char* kOrganization = "http://wdr.example.org/univ#Organization";
inline constexpr const char* kUniversity = "http://wdr.example.org/univ#University";
inline constexpr const char* kDepartment = "http://wdr.example.org/univ#Department";
inline constexpr const char* kResearchGroup = "http://wdr.example.org/univ#ResearchGroup";
inline constexpr const char* kWork = "http://wdr.example.org/univ#Work";
inline constexpr const char* kCourse = "http://wdr.example.org/univ#Course";
inline constexpr const char* kGraduateCourse = "http://wdr.example.org/univ#GraduateCourse";
inline constexpr const char* kPublication = "http://wdr.example.org/univ#Publication";
inline constexpr const char* kArticle = "http://wdr.example.org/univ#Article";
inline constexpr const char* kBook = "http://wdr.example.org/univ#Book";

// Properties.
inline constexpr const char* kMemberOf = "http://wdr.example.org/univ#memberOf";
inline constexpr const char* kWorksFor = "http://wdr.example.org/univ#worksFor";
inline constexpr const char* kHeadOf = "http://wdr.example.org/univ#headOf";
inline constexpr const char* kDegreeFrom = "http://wdr.example.org/univ#degreeFrom";
inline constexpr const char* kDoctoralDegreeFrom = "http://wdr.example.org/univ#doctoralDegreeFrom";
inline constexpr const char* kMastersDegreeFrom = "http://wdr.example.org/univ#mastersDegreeFrom";
inline constexpr const char* kUndergraduateDegreeFrom = "http://wdr.example.org/univ#undergraduateDegreeFrom";
inline constexpr const char* kTeacherOf = "http://wdr.example.org/univ#teacherOf";
inline constexpr const char* kTakesCourse = "http://wdr.example.org/univ#takesCourse";
inline constexpr const char* kAdvisor = "http://wdr.example.org/univ#advisor";
inline constexpr const char* kPublicationAuthor = "http://wdr.example.org/univ#publicationAuthor";
inline constexpr const char* kSubOrganizationOf = "http://wdr.example.org/univ#subOrganizationOf";
inline constexpr const char* kName = "http://wdr.example.org/univ#name";
}  // namespace univ

struct UniversityConfig {
  uint64_t seed = 42;
  int universities = 2;
  int departments_per_university = 4;
  int professors_per_department = 8;
  int lecturers_per_department = 4;
  int students_per_department = 60;
  int courses_per_department = 12;
  int publications_per_professor = 3;
  double graduate_fraction = 0.3;  // of students
  int courses_per_student = 3;
};

// Generated dataset: the base graph (ontology + instance triples) and the
// interned vocabulary ids.
struct UniversityData {
  rdf::Graph graph;
  schema::Vocabulary vocab;
  size_t ontology_triples = 0;
  size_t instance_triples = 0;
};

// Deterministic LUBM-style generator. Instance resources are typed at the
// most specific class (FullProfessor, PhdStudent, ...) and linked with the
// most specific properties (headOf, doctoralDegreeFrom, ...), so that the
// generic classes and properties (Person, memberOf, ...) are populated
// only by RDFS entailment — queries over them are where reasoning matters.
UniversityData GenerateUniversityData(const UniversityConfig& config);

// Inserts only the ontology (schema triples) into `graph`; returns how many
// triples were added. Exposed separately for schema-update experiments.
size_t AddUniversityOntology(rdf::Graph& graph);

}  // namespace wdr::workload

#endif  // WDR_WORKLOAD_UNIVERSITY_H_
