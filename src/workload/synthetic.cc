#include "workload/synthetic.h"

#include "common/rng.h"

namespace wdr::workload {
namespace {

constexpr const char* kNs = "http://wdr.example.org/syn#";

// Builds a tree of `depth` levels below a root, `fanout` children per node,
// inserting `edge_property` triples (child edge_property parent). Returns
// the node ids breadth-first and the leaf ids.
std::vector<rdf::TermId> BuildTree(rdf::Graph& graph, const std::string& stem,
                                   int depth, int fanout,
                                   rdf::TermId edge_property, size_t* edges,
                                   std::vector<rdf::TermId>* leaves) {
  std::vector<rdf::TermId> nodes;
  rdf::TermId root = graph.dict().InternIri(std::string(kNs) + stem + "0");
  nodes.push_back(root);
  std::vector<rdf::TermId> level{root};
  size_t counter = 1;
  for (int d = 0; d < depth; ++d) {
    std::vector<rdf::TermId> next;
    for (rdf::TermId parent : level) {
      for (int f = 0; f < fanout; ++f) {
        rdf::TermId child = graph.dict().InternIri(
            std::string(kNs) + stem + std::to_string(counter++));
        if (graph.Insert(rdf::Triple(child, edge_property, parent))) {
          ++(*edges);
        }
        nodes.push_back(child);
        next.push_back(child);
      }
    }
    level = std::move(next);
  }
  *leaves = level.empty() ? nodes : level;
  return nodes;
}

}  // namespace

SyntheticData GenerateSyntheticData(const SyntheticConfig& config) {
  SyntheticData data;
  data.vocab = schema::Vocabulary::Intern(data.graph.dict());
  Rng rng(config.seed);

  std::vector<rdf::TermId> leaf_classes;
  std::vector<rdf::TermId> leaf_properties;
  data.classes =
      BuildTree(data.graph, "Class", config.class_depth, config.class_fanout,
                data.vocab.sub_class_of, &data.schema_triples, &leaf_classes);
  data.properties = BuildTree(data.graph, "prop", config.property_depth,
                              config.property_fanout,
                              data.vocab.sub_property_of,
                              &data.schema_triples, &leaf_properties);

  for (rdf::TermId p : data.properties) {
    if (rng.Chance(config.domain_fraction)) {
      rdf::TermId c = data.classes[static_cast<size_t>(
          rng.Uniform(0, data.classes.size() - 1))];
      if (data.graph.Insert(rdf::Triple(p, data.vocab.domain, c))) {
        ++data.schema_triples;
      }
    }
    if (rng.Chance(config.range_fraction)) {
      rdf::TermId c = data.classes[static_cast<size_t>(
          rng.Uniform(0, data.classes.size() - 1))];
      if (data.graph.Insert(rdf::Triple(p, data.vocab.range, c))) {
        ++data.schema_triples;
      }
    }
  }

  std::vector<rdf::TermId> individuals;
  individuals.reserve(config.individuals);
  for (int i = 0; i < config.individuals; ++i) {
    rdf::TermId id = data.graph.dict().InternIri(std::string(kNs) + "ind" +
                                                 std::to_string(i));
    individuals.push_back(id);
    rdf::TermId c = leaf_classes[static_cast<size_t>(
        rng.Skewed(static_cast<int64_t>(leaf_classes.size())))];
    if (data.graph.Insert(rdf::Triple(id, data.vocab.type, c))) {
      ++data.instance_triples;
    }
  }
  for (int i = 0; i < config.property_triples && !individuals.empty(); ++i) {
    rdf::TermId s = individuals[static_cast<size_t>(
        rng.Uniform(0, individuals.size() - 1))];
    rdf::TermId o = individuals[static_cast<size_t>(
        rng.Uniform(0, individuals.size() - 1))];
    rdf::TermId p = leaf_properties[static_cast<size_t>(
        rng.Skewed(static_cast<int64_t>(leaf_properties.size())))];
    if (data.graph.Insert(rdf::Triple(s, p, o))) ++data.instance_triples;
  }
  return data;
}

}  // namespace wdr::workload
