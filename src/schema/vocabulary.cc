#include "schema/vocabulary.h"

namespace wdr::schema {

Vocabulary Vocabulary::Intern(rdf::Dictionary& dict) {
  Vocabulary v;
  v.type = dict.InternIri(iri::kType);
  v.sub_class_of = dict.InternIri(iri::kSubClassOf);
  v.sub_property_of = dict.InternIri(iri::kSubPropertyOf);
  v.domain = dict.InternIri(iri::kDomain);
  v.range = dict.InternIri(iri::kRange);
  v.owl_inverse_of = dict.InternIri(iri::kOwlInverseOf);
  v.owl_symmetric = dict.InternIri(iri::kOwlSymmetricProperty);
  v.owl_transitive = dict.InternIri(iri::kOwlTransitiveProperty);
  return v;
}

}  // namespace wdr::schema
