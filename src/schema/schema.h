#ifndef WDR_SCHEMA_SCHEMA_H_
#define WDR_SCHEMA_SCHEMA_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term.h"
#include "schema/vocabulary.h"

namespace wdr::schema {

using rdf::TermId;

// A constraint view over the RDFS triples of a graph (Fig. 1 bottom):
// the subclass and subproperty DAGs (cycles tolerated) and the domain and
// range maps, together with their reflexive-transitive closures.
//
// The closures implement the OWA interpretation column of Fig. 1:
//   subclass / subproperty  ->  inclusion s ⊆ o
//   domain                  ->  Π_domain(p) ⊆ c
//   range                   ->  Π_range(p) ⊆ c
//
// A Schema is a cheap derived snapshot: rebuild it (FromGraph) after schema
// updates. Reasoning over *instances* does not need it (the rule engine
// joins against schema triples directly); reformulation and backward
// chaining do.
class Schema {
 public:
  Schema() = default;

  // Builds the view by scanning the RDFS triples of `graph`.
  static Schema FromGraph(const rdf::Graph& graph, const Vocabulary& vocab);

  // Same, from a bare store view (e.g. a federation's merged schema).
  static Schema FromStore(const rdf::StoreView& store,
                          const Vocabulary& vocab);

  // --- Direct (asserted) edges -------------------------------------------

  // Direct superclasses of `c` (objects of `c rdfs:subClassOf _`).
  const std::vector<TermId>& DirectSuperClasses(TermId c) const {
    return Get(direct_superclasses_, c);
  }
  const std::vector<TermId>& DirectSubClasses(TermId c) const {
    return Get(direct_subclasses_, c);
  }
  const std::vector<TermId>& DirectSuperProperties(TermId p) const {
    return Get(direct_superproperties_, p);
  }
  const std::vector<TermId>& DirectSubProperties(TermId p) const {
    return Get(direct_subproperties_, p);
  }

  // Declared domains / ranges of property `p`.
  const std::vector<TermId>& DomainsOf(TermId p) const {
    return Get(domains_, p);
  }
  const std::vector<TermId>& RangesOf(TermId p) const {
    return Get(ranges_, p);
  }
  // Properties declaring `c` as a domain / range.
  const std::vector<TermId>& PropertiesWithDomain(TermId c) const {
    return Get(domain_of_, c);
  }
  const std::vector<TermId>& PropertiesWithRange(TermId c) const {
    return Get(range_of_, c);
  }

  // --- Reflexive-transitive closures --------------------------------------

  // All classes c' with c ⊑* c' (includes c itself).
  const std::vector<TermId>& SuperClassesOf(TermId c) const {
    return GetClosure(superclass_closure_, c);
  }
  // All classes c' with c' ⊑* c (includes c itself).
  const std::vector<TermId>& SubClassesOf(TermId c) const {
    return GetClosure(subclass_closure_, c);
  }
  const std::vector<TermId>& SuperPropertiesOf(TermId p) const {
    return GetClosure(superproperty_closure_, p);
  }
  const std::vector<TermId>& SubPropertiesOf(TermId p) const {
    return GetClosure(subproperty_closure_, p);
  }

  // Effective domains of `p`: every class an `s p o` assertion types `s`
  // into, i.e. domains declared on p or any superproperty of p, closed
  // upward through the subclass hierarchy.
  std::vector<TermId> EffectiveDomains(TermId p) const;
  // Symmetric for objects.
  std::vector<TermId> EffectiveRanges(TermId p) const;

  // All class / property ids mentioned by any constraint.
  const std::vector<TermId>& classes() const { return classes_; }
  const std::vector<TermId>& properties() const { return properties_; }

  // Number of asserted constraint triples the view was built from.
  size_t constraint_count() const { return constraint_count_; }

  bool IsClass(TermId id) const { return class_set_.count(id) > 0; }
  bool IsProperty(TermId id) const { return property_set_.count(id) > 0; }

 private:
  using EdgeMap = std::unordered_map<TermId, std::vector<TermId>>;

  static const std::vector<TermId>& Get(const EdgeMap& map, TermId key) {
    static const std::vector<TermId> kEmpty;
    auto it = map.find(key);
    return it == map.end() ? kEmpty : it->second;
  }

  // For closures, an absent key still has the reflexive closure {key}; the
  // maps below only materialize entries for ids mentioned in constraints,
  // so Get falls back to a per-call singleton cache.
  const std::vector<TermId>& GetClosure(const EdgeMap& map, TermId key) const;

  static void AddEdge(EdgeMap& map, TermId from, TermId to);

  // Computes, for every node of `forward`, its reflexive-transitive
  // reachable set, storing it in `closure`.
  static void CloseOver(const EdgeMap& forward,
                        const std::vector<TermId>& nodes, EdgeMap& closure);

  EdgeMap direct_superclasses_;
  EdgeMap direct_subclasses_;
  EdgeMap direct_superproperties_;
  EdgeMap direct_subproperties_;
  EdgeMap domains_;
  EdgeMap ranges_;
  EdgeMap domain_of_;
  EdgeMap range_of_;

  EdgeMap superclass_closure_;
  EdgeMap subclass_closure_;
  EdgeMap superproperty_closure_;
  EdgeMap subproperty_closure_;

  std::vector<TermId> classes_;
  std::vector<TermId> properties_;
  std::unordered_map<TermId, char> class_set_;
  std::unordered_map<TermId, char> property_set_;
  size_t constraint_count_ = 0;

  // Fallback storage for reflexive closures of ids absent from the maps.
  // Closure getters run concurrently from reader threads (reformulation
  // and backward chaining during snapshot-isolated reads), so the faulted
  // entries live behind their own lock; the node-based map keeps returned
  // references valid across later insertions. shared_ptr keeps Schema
  // copyable — copies sharing this derived cache is harmless.
  struct ReflexiveCache {
    std::mutex mu;
    std::unordered_map<TermId, std::vector<TermId>> entries;
  };
  std::shared_ptr<ReflexiveCache> reflexive_cache_ =
      std::make_shared<ReflexiveCache>();
};

}  // namespace wdr::schema

#endif  // WDR_SCHEMA_SCHEMA_H_
