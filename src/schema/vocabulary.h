#ifndef WDR_SCHEMA_VOCABULARY_H_
#define WDR_SCHEMA_VOCABULARY_H_

#include <string>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace wdr::schema {

// Full IRIs of the RDF/RDFS vocabulary used by the RDFS fragment the paper
// considers (Fig. 1): rdf:type plus the four constraint properties.
namespace iri {
inline constexpr const char* kRdfNs = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
inline constexpr const char* kRdfsNs = "http://www.w3.org/2000/01/rdf-schema#";
inline constexpr const char* kType = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr const char* kSubClassOf = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr const char* kSubPropertyOf = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr const char* kDomain = "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr const char* kRange = "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr const char* kClass = "http://www.w3.org/2000/01/rdf-schema#Class";
inline constexpr const char* kProperty = "http://www.w3.org/1999/02/22-rdf-syntax-ns#Property";

// OWL vocabulary of the "RDFS++" extension (§II-C: AllegroGraph supports
// "all the RDFS predicates and some of OWL's"; Virtuoso similarly).
inline constexpr const char* kOwlInverseOf = "http://www.w3.org/2002/07/owl#inverseOf";
inline constexpr const char* kOwlSymmetricProperty = "http://www.w3.org/2002/07/owl#SymmetricProperty";
inline constexpr const char* kOwlTransitiveProperty = "http://www.w3.org/2002/07/owl#TransitiveProperty";
}  // namespace iri

// Dictionary ids of the five built-in properties central to RDFS
// entailment. Interned once per graph; all reasoning code dispatches on
// these ids rather than strings.
struct Vocabulary {
  rdf::TermId type = rdf::kNullTermId;
  rdf::TermId sub_class_of = rdf::kNullTermId;
  rdf::TermId sub_property_of = rdf::kNullTermId;
  rdf::TermId domain = rdf::kNullTermId;
  rdf::TermId range = rdf::kNullTermId;
  // RDFS++ extension terms (used only when a rule engine enables them).
  rdf::TermId owl_inverse_of = rdf::kNullTermId;
  rdf::TermId owl_symmetric = rdf::kNullTermId;
  rdf::TermId owl_transitive = rdf::kNullTermId;

  // Interns the vocabulary into `dict` (idempotent) and returns the ids.
  static Vocabulary Intern(rdf::Dictionary& dict);

  // True if `p` is one of the four RDFS constraint properties (Fig. 1
  // bottom): subClassOf, subPropertyOf, domain, range.
  bool IsSchemaProperty(rdf::TermId p) const {
    return p == sub_class_of || p == sub_property_of || p == domain ||
           p == range;
  }
};

}  // namespace wdr::schema

#endif  // WDR_SCHEMA_VOCABULARY_H_
