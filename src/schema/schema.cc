#include "schema/schema.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace wdr::schema {

void Schema::AddEdge(EdgeMap& map, TermId from, TermId to) {
  std::vector<TermId>& targets = map[from];
  if (std::find(targets.begin(), targets.end(), to) == targets.end()) {
    targets.push_back(to);
  }
}

void Schema::CloseOver(const EdgeMap& forward,
                       const std::vector<TermId>& nodes, EdgeMap& closure) {
  for (TermId start : nodes) {
    std::unordered_set<TermId> visited;
    std::deque<TermId> frontier;
    visited.insert(start);
    frontier.push_back(start);
    while (!frontier.empty()) {
      TermId node = frontier.front();
      frontier.pop_front();
      auto it = forward.find(node);
      if (it == forward.end()) continue;
      for (TermId next : it->second) {
        if (visited.insert(next).second) frontier.push_back(next);
      }
    }
    std::vector<TermId> reachable(visited.begin(), visited.end());
    std::sort(reachable.begin(), reachable.end());
    closure[start] = std::move(reachable);
  }
}

const std::vector<TermId>& Schema::GetClosure(const EdgeMap& map,
                                              TermId key) const {
  auto it = map.find(key);
  if (it != map.end()) return it->second;
  // Fault in the reflexive closure {key}. Concurrent readers land here
  // outside any per-side Prepare serialization (backward chaining calls
  // this mid-Execute), hence the cache's own lock. An entry is fully
  // built before the lock is released and never mutated after, so the
  // returned reference is safe to read lock-free.
  std::lock_guard<std::mutex> lock(reflexive_cache_->mu);
  auto [cached, inserted] = reflexive_cache_->entries.try_emplace(key);
  if (inserted) cached->second.push_back(key);
  return cached->second;
}

Schema Schema::FromGraph(const rdf::Graph& graph, const Vocabulary& vocab) {
  return FromStore(graph.store(), vocab);
}

Schema Schema::FromStore(const rdf::StoreView& store,
                         const Vocabulary& vocab) {
  Schema schema;

  auto note_class = [&schema](TermId c) {
    if (schema.class_set_.emplace(c, 1).second) schema.classes_.push_back(c);
  };
  auto note_property = [&schema](TermId p) {
    if (schema.property_set_.emplace(p, 1).second) {
      schema.properties_.push_back(p);
    }
  };

  store.Match(0, vocab.sub_class_of, 0, [&](const rdf::Triple& t) {
    AddEdge(schema.direct_superclasses_, t.s, t.o);
    AddEdge(schema.direct_subclasses_, t.o, t.s);
    note_class(t.s);
    note_class(t.o);
    ++schema.constraint_count_;
  });
  store.Match(0, vocab.sub_property_of, 0, [&](const rdf::Triple& t) {
    AddEdge(schema.direct_superproperties_, t.s, t.o);
    AddEdge(schema.direct_subproperties_, t.o, t.s);
    note_property(t.s);
    note_property(t.o);
    ++schema.constraint_count_;
  });
  store.Match(0, vocab.domain, 0, [&](const rdf::Triple& t) {
    AddEdge(schema.domains_, t.s, t.o);
    AddEdge(schema.domain_of_, t.o, t.s);
    note_property(t.s);
    note_class(t.o);
    ++schema.constraint_count_;
  });
  store.Match(0, vocab.range, 0, [&](const rdf::Triple& t) {
    AddEdge(schema.ranges_, t.s, t.o);
    AddEdge(schema.range_of_, t.o, t.s);
    note_property(t.s);
    note_class(t.o);
    ++schema.constraint_count_;
  });

  std::sort(schema.classes_.begin(), schema.classes_.end());
  std::sort(schema.properties_.begin(), schema.properties_.end());

  CloseOver(schema.direct_superclasses_, schema.classes_,
            schema.superclass_closure_);
  CloseOver(schema.direct_subclasses_, schema.classes_,
            schema.subclass_closure_);
  CloseOver(schema.direct_superproperties_, schema.properties_,
            schema.superproperty_closure_);
  CloseOver(schema.direct_subproperties_, schema.properties_,
            schema.subproperty_closure_);
  return schema;
}

std::vector<TermId> Schema::EffectiveDomains(TermId p) const {
  std::unordered_set<TermId> out;
  for (TermId super : SuperPropertiesOf(p)) {
    for (TermId c : DomainsOf(super)) {
      for (TermId up : SuperClassesOf(c)) out.insert(up);
    }
  }
  std::vector<TermId> result(out.begin(), out.end());
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<TermId> Schema::EffectiveRanges(TermId p) const {
  std::unordered_set<TermId> out;
  for (TermId super : SuperPropertiesOf(p)) {
    for (TermId c : RangesOf(super)) {
      for (TermId up : SuperClassesOf(c)) out.insert(up);
    }
  }
  std::vector<TermId> result(out.begin(), out.end());
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace wdr::schema
