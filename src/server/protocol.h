#ifndef WDR_SERVER_PROTOCOL_H_
#define WDR_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace wdr::server {

// The wire protocol of the query front-end: length-prefixed frames over a
// loopback TCP connection, one request frame in, one response frame out.
//
//   frame    := uint32 big-endian payload length | payload bytes
//   request  := "VERB[ args]\n[body]"          (first line + optional body)
//   response := "OK[ k=v ...]\n[body]"  or  "ERR <Status::ToString()>"
//
// Verbs: QUERY (body = SPARQL), UPDATE (body = SPARQL UPDATE), SET
// (args = k=v settings), PING, INFO, BYE. On connect the server speaks
// first with a greeting frame ("OK wdr proto=1 session=<id> epoch=<e>").
// A length prefix above the server's frame cap is answered with an ERR
// frame and a close — the server never allocates for an oversized claim.
//
// Deliberately dependency-free and binary-safe in the body (only the
// first line is structured), so a client is ~50 lines of socket code.

// Protocol revision, announced in the greeting.
inline constexpr int kProtocolVersion = 1;

// Default per-frame cap (requests and responses): 1 MiB.
inline constexpr size_t kDefaultMaxFrameBytes = size_t{1} << 20;

// Writes one frame (length prefix + payload). Returns false when the peer
// is gone or the send timed out; the connection is unusable then.
bool WriteFrame(int fd, std::string_view payload);

// Outcomes of reading one frame.
enum class FrameReadResult {
  kOk,         // *payload holds a complete frame
  kClosed,     // clean EOF at a frame boundary (peer hung up)
  kTruncated,  // EOF or socket error mid-frame (abrupt disconnect/timeout)
  kOversized,  // length prefix exceeds max_bytes; nothing was allocated
};

// Reads one complete frame, tolerating arbitrarily fragmented delivery.
// On kOversized the prefix has been consumed but no payload bytes read —
// the caller should answer with an ERR frame and close.
FrameReadResult ReadFrame(int fd, size_t max_bytes, std::string* payload);

// One parsed request.
struct Request {
  std::string_view verb;  // uppercase by convention, matched exactly
  std::string_view args;  // rest of the first line (may be empty)
  std::string_view body;  // everything after the first '\n' (may be empty)
};

// Splits a request payload into verb / args / body. Never fails: a
// payload with no newline is all first-line, an empty payload yields an
// empty verb (which the server rejects as an unknown verb).
Request ParseRequest(std::string_view payload);

// Response builders.
std::string OkResponse(std::string_view head_kv = {},
                       std::string_view body = {});
std::string ErrResponse(const Status& status);

// One parsed response (client side).
struct Response {
  bool ok = false;
  std::string head;  // first line after "OK " / "ERR " (k=v list or error)
  std::string body;  // everything after the first '\n'
};

Response ParseResponse(std::string_view payload);

}  // namespace wdr::server

#endif  // WDR_SERVER_PROTOCOL_H_
