#ifndef WDR_SERVER_SNAPSHOT_STORE_H_
#define WDR_SERVER_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "store/reasoning_store.h"

namespace wdr::server {

// Snapshot-isolated multi-reader / single-writer wrapper around
// ReasoningStore: the concurrency core of the query server.
//
// Design: LEFT-RIGHT REPLICATION. Two complete ReasoningStore sides; an
// atomic `published_` index names the side readers enter. The writer
// applies every batch twice:
//
//   1. unique-lock the SPARE side's gate (no readers there — they are all
//      on the published side), apply the batch, Warm() every lazy cache,
//      stamp the side with the new epoch;
//   2. publish: epoch_++ and published_ = spare (new readers now land on
//      the fresh side);
//   3. unique-lock the OLD side's gate — this WAITS for the readers still
//      draining there — then apply the same batch and Warm(), bringing it
//      up to the same epoch, ready to serve as the next spare.
//
// A reader shared-locks the published side's gate for its whole read. The
// one race — writer publishes between the reader's load of `published_`
// and its lock — is benign: the reader then holds the OLD side, whose
// gate the writer is queued behind in step 3, so the reader still sees a
// complete, consistent epoch (just the previous one). Every observed
// answer set therefore equals the closure of SOME epoch, never a torn
// mix — which is exactly what the snapshot test asserts.
//
// Within a side, concurrency follows the ReasoningStore Prepare/Execute
// contract: Prepare (and row decoding) touches the shared dictionary and
// lazy caches, so it is serialized per side under `prepare_mu`; Execute
// is const and id-pure, so any number run concurrently under the shared
// gate. Prepares are frozen (ReadOptions::frozen) — the writer's Warm()
// is the only cache (re)builder.
class SnapshotStore {
 public:
  explicit SnapshotStore(store::ReasoningStoreOptions options = {});

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  // --- Writer API (internally serialized; each call is one epoch) -------

  Result<size_t> LoadTurtle(std::string_view text);
  Result<store::UpdateInfo> Update(std::string_view sparql_update);

  // Re-partitions both sides' sharded stores to `n` shards (an epoch like
  // any other write, so readers never observe a half-moved layout).
  // Returns false — without consuming an epoch — when the configured
  // backend is not sharded. Answers are identical at any shard count.
  bool SetShardCount(size_t n);

  // --- Reader API (any thread, any number concurrently) -----------------

  // One session-held cache of PreparedQuery plans, keyed by query text +
  // resolved read settings, valid for one (side, epoch) pair — reusing a
  // plan skips parse + rewrite for repeated queries, the common shape of
  // a client session. Owned by one session thread; NOT thread-safe.
  class PlanCache {
   public:
    explicit PlanCache(size_t capacity = 32) : capacity_(capacity) {}
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

   private:
    friend class SnapshotStore;
    struct Entry {
      std::string key;  // query text + '\0' + settings fingerprint
      uint32_t side = 0;
      uint64_t epoch = 0;
      store::PreparedQuery prepared;
    };
    // Tiny LRU: a session re-issues a handful of distinct queries.
    std::list<Entry> entries_;
    size_t capacity_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
  };

  // One consistent read: every row decoded against the same epoch its
  // ids came from.
  struct ReadResult {
    uint64_t epoch = 0;
    std::vector<std::string> var_names;
    std::vector<std::vector<std::string>> rows;  // decoded terms
    size_t row_count = 0;
    store::QueryInfo info;
  };

  // Evaluates `sparql` against the currently published epoch under the
  // session's settings. `options.frozen` is forced on; `cache`, when
  // non-null, is consulted and filled. `decode` off skips row decoding
  // (row_count still set) for counting clients.
  Result<ReadResult> Query(std::string_view sparql,
                           const store::ReadOptions& options,
                           PlanCache* cache = nullptr, bool decode = true);

  // --- Introspection ----------------------------------------------------

  // Epoch of the currently published side (0 until the first write).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  // Base-graph size of the published side (approximate under concurrent
  // writes, exact when quiescent).
  size_t size() const;
  store::ReasoningMode mode() const { return sides_[0].store.mode(); }
  rdf::StorageBackend backend() const { return sides_[0].store.backend(); }

  // Shard layout of the published side's base store; shard_count == 0
  // means the backend is not sharded. Like size(), approximate under
  // concurrent writes and exact when quiescent.
  struct ShardLayout {
    size_t shard_count = 0;
    std::vector<size_t> sizes;      // instance triples per shard
    size_t schema_size = 0;         // broadcast schema triples
    double skew = 0.0;              // max shard size / mean shard size
  };
  ShardLayout shard_layout() const;

  // Last kAuto routing decision on the published side (the side queries
  // run on), or nullopt before any auto-routed query. Thread-safe.
  std::optional<analysis::RouteDecision> LastAutoDecision() const {
    return sides_[published_.load(std::memory_order_acquire)]
        .store.LastAutoDecision();
  }

  // Test hook: the published side's underlying StoreView (epoch-pin and
  // compaction-deferral assertions).
  const rdf::StoreView& published_store_view() const;

 private:
  struct Side {
    store::ReasoningStore store;
    // Readers shared-lock for the whole read; the writer unique-locks to
    // mutate. See class comment.
    std::shared_mutex gate;
    // Serializes dictionary/cache access within the side (Prepare + row
    // decoding) among readers.
    std::mutex prepare_mu;
    // Epoch this side's contents represent; written only under a unique
    // gate, read under at least a shared gate.
    uint64_t epoch = 0;

    explicit Side(const store::ReasoningStoreOptions& options)
        : store(options) {}
  };

  // Applies `apply` to both sides in the left-right order; returns the
  // spare-side application's result (both must agree).
  template <typename Fn>
  auto Write(Fn&& apply)
      -> decltype(apply(std::declval<store::ReasoningStore&>()));

  Side sides_[2];
  std::atomic<uint32_t> published_{0};
  std::atomic<uint64_t> epoch_{0};
  // Serializes writers (Update/LoadTurtle callers need no external lock).
  std::mutex writer_mu_;
};

}  // namespace wdr::server

#endif  // WDR_SERVER_SNAPSHOT_STORE_H_
