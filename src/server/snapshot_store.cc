#include "server/snapshot_store.h"

#include <algorithm>

#include "common/timer.h"
#include "obs/metrics.h"

namespace wdr::server {
namespace {

// Settings fingerprint for plan-cache keys: every ReadOptions field that
// changes what Prepare produces (cancellation fields do not — they are
// patched into the cached plan per execution).
std::string SettingsKey(const store::ReadOptions& options) {
  std::string key;
  key += options.mode.has_value()
             ? store::ReasoningModeName(*options.mode)
             : "-";
  key += '|';
  key += options.plan.has_value() ? (*options.plan ? '1' : '0') : '-';
  key += options.encoding.has_value() ? (*options.encoding ? '1' : '0') : '-';
  key += '|';
  key += options.threads.has_value() ? std::to_string(*options.threads) : "-";
  return key;
}

}  // namespace

SnapshotStore::SnapshotStore(store::ReasoningStoreOptions options)
    : sides_{Side(options), Side(options)} {}

template <typename Fn>
auto SnapshotStore::Write(Fn&& apply)
    -> decltype(apply(std::declval<store::ReasoningStore&>())) {
  std::lock_guard<std::mutex> writer(writer_mu_);
  const uint32_t published = published_.load(std::memory_order_relaxed);
  Side& spare = sides_[1 - published];
  Side& retired = sides_[published];
  const uint64_t next_epoch = epoch_.load(std::memory_order_relaxed) + 1;

  // Step 1: bring the spare side (no readers: they are all on the
  // published side) to the new epoch, caches warm.
  auto result = [&] {
    std::unique_lock<std::shared_mutex> gate(spare.gate);
    auto r = apply(spare.store);
    spare.store.Warm();
    spare.epoch = next_epoch;
    return r;
  }();

  // Step 2: publish. Readers arriving from here on land on the fresh
  // side; release ordering pairs with the readers' acquire loads.
  epoch_.store(next_epoch, std::memory_order_release);
  published_.store(1 - published, std::memory_order_release);

  // Step 3: drain and catch up the retired side. The unique lock waits
  // for every reader still holding the old epoch, then replays the same
  // batch so both sides agree again.
  {
    std::unique_lock<std::shared_mutex> gate(retired.gate);
    obs::MetricsRegistry::Get()
        .GetCounter("wdr.server.store.catchup_batches")
        .Add(1);
    apply(retired.store);
    retired.store.Warm();
    retired.epoch = next_epoch;
  }
  return result;
}

Result<size_t> SnapshotStore::LoadTurtle(std::string_view text) {
  return Write([&](store::ReasoningStore& s) { return s.LoadTurtle(text); });
}

Result<store::UpdateInfo> SnapshotStore::Update(
    std::string_view sparql_update) {
  return Write(
      [&](store::ReasoningStore& s) { return s.Update(sparql_update); });
}

bool SnapshotStore::SetShardCount(size_t n) {
  // Cheap precondition outside the write path: a non-sharded backend
  // cannot re-partition, and failing early avoids burning an epoch.
  if (backend() != rdf::StorageBackend::kSharded) return false;
  return Write([&](store::ReasoningStore& s) { return s.SetShardCount(n); });
}

Result<SnapshotStore::ReadResult> SnapshotStore::Query(
    std::string_view sparql, const store::ReadOptions& options,
    PlanCache* cache, bool decode) {
  // Enter the published side. The benign race — a publish between this
  // load and the lock — leaves us shared-locking the retired side, which
  // still holds the complete previous epoch (the writer is queued behind
  // our lock before touching it). Either way: one consistent epoch.
  const uint32_t side_index = published_.load(std::memory_order_acquire);
  Side& side = sides_[side_index];
  std::shared_lock<std::shared_mutex> gate(side.gate);

  ReadResult out;
  out.epoch = side.epoch;

  store::ReadOptions ropts = options;
  ropts.frozen = true;  // the writer's Warm() is the only cache rebuilder

  // Resolve a prepared plan: session cache hit, or a frozen Prepare under
  // the side's dictionary lock. Cache entries are (side, epoch)-scoped;
  // per-query cancellation fields are patched in either way.
  store::PreparedQuery* prepared = nullptr;
  store::PreparedQuery fresh;
  if (cache != nullptr && cache->capacity_ == 0) {
    cache = nullptr;  // capacity 0 disables caching; the LRU needs >= 1 slot
  }
  if (cache != nullptr) {
    std::string key(sparql);
    key += '\0';
    key += SettingsKey(ropts);
    auto it = std::find_if(
        cache->entries_.begin(), cache->entries_.end(),
        [&](const PlanCache::Entry& e) {
          return e.side == side_index && e.epoch == side.epoch &&
                 e.key == key;
        });
    if (it != cache->entries_.end()) {
      ++cache->hits_;
      cache->entries_.splice(cache->entries_.begin(), cache->entries_,
                             it);  // LRU bump
    } else {
      ++cache->misses_;
      Result<store::PreparedQuery> prepared_or = [&] {
        std::lock_guard<std::mutex> dict_lock(side.prepare_mu);
        return side.store.Prepare(sparql, ropts);
      }();
      if (!prepared_or.ok()) return prepared_or.status();
      cache->entries_.push_front(PlanCache::Entry{
          std::move(key), side_index, side.epoch,
          std::move(prepared_or).value()});
      if (cache->entries_.size() > cache->capacity_) {
        cache->entries_.pop_back();
      }
      it = cache->entries_.begin();
    }
    prepared = &it->prepared;
    prepared->eval.cancel = options.cancel;
    prepared->eval.deadline_nanos = options.deadline_nanos;
  } else {
    Result<store::PreparedQuery> prepared_or = [&] {
      std::lock_guard<std::mutex> dict_lock(side.prepare_mu);
      return side.store.Prepare(sparql, ropts);
    }();
    if (!prepared_or.ok()) return prepared_or.status();
    fresh = std::move(prepared_or).value();
    prepared = &fresh;
  }

  Result<query::ResultSet> result = side.store.Execute(*prepared, &out.info);
  if (!result.ok()) return result.status();

  out.var_names = result.value().var_names;
  out.row_count = result.value().rows.size();
  if (decode && !result.value().rows.empty()) {
    // Decoding renders ids through the side's dictionary — shared mutable
    // state, same lock as Prepare.
    std::lock_guard<std::mutex> dict_lock(side.prepare_mu);
    out.rows.reserve(out.row_count);
    for (const query::Row& row : result.value().rows) {
      out.rows.push_back(side.store.DecodeRow(row));
    }
  }
  return out;
}

size_t SnapshotStore::size() const {
  return sides_[published_.load(std::memory_order_acquire)].store.size();
}

SnapshotStore::ShardLayout SnapshotStore::shard_layout() const {
  ShardLayout layout;
  const rdf::ShardedStore* sharded =
      sides_[published_.load(std::memory_order_acquire)]
          .store.sharded_store();
  if (sharded == nullptr) return layout;
  layout.shard_count = sharded->shard_count();
  layout.sizes = sharded->ShardSizes();
  layout.schema_size = sharded->schema_store().size();
  layout.skew = sharded->SkewRatio();
  return layout;
}

const rdf::StoreView& SnapshotStore::published_store_view() const {
  return sides_[published_.load(std::memory_order_acquire)]
      .store.graph()
      .store();
}

}  // namespace wdr::server
