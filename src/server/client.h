#ifndef WDR_SERVER_CLIENT_H_
#define WDR_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "server/protocol.h"

namespace wdr::server {

// A minimal blocking client for the framed protocol: connect, read the
// greeting, then one Call() per request frame. One client = one session;
// not thread-safe (the protocol itself is strictly request/response).
// Used by wdr_client, bench_server, and the concurrency tests.
class Client {
 public:
  Client() = default;
  ~Client() { Close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  // Connects to 127.0.0.1:port and consumes the greeting frame. Fails if
  // the server rejected the connection (admission control) — the server's
  // ERR message is surfaced in the Status.
  Status Connect(int port);

  // Sends one request payload ("VERB[ args]\n[body]") and reads the
  // response frame. UnavailableError when the connection dies mid-call.
  Result<Response> Call(std::string_view payload);

  // Convenience wrappers over Call().
  Result<Response> Query(std::string_view sparql);
  Result<Response> Update(std::string_view sparql_update);
  Result<Response> Set(std::string_view settings);  // "k=v k=v ..."

  // Sends BYE (best effort) and closes the socket.
  void Close();

  bool connected() const { return fd_ >= 0; }
  // Raw greeting head ("wdr proto=1 session=... epoch=..."), for tests.
  const std::string& greeting() const { return greeting_; }
  // Raw socket fd, for tests that inject protocol garbage.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string greeting_;
  std::string buffer_;
};

// Test/tool helper: opens a raw connection without consuming the
// greeting. Returns the fd, or a negative value on failure.
int RawConnect(int port);

}  // namespace wdr::server

#endif  // WDR_SERVER_CLIENT_H_
