#ifndef WDR_SERVER_SERVER_H_
#define WDR_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/http.h"
#include "server/protocol.h"
#include "server/snapshot_store.h"

namespace wdr::server {

struct ServerOptions {
  // 0 picks an ephemeral port, readable via Server::port() after Start().
  int port = 0;
  // Admission control: connections beyond this many concurrent sessions
  // get an "ERR Unavailable: server full" greeting and an immediate close.
  size_t max_sessions = 64;
  // Per-frame cap, both directions. Oversized requests are answered with
  // an ERR frame and the session is closed without allocating the claim.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // SO_RCVTIMEO per session socket: an idle (or deliberately slow) client
  // holds its session at most this long between frames. 0 = no timeout.
  int recv_timeout_ms = 60'000;
  // SO_SNDTIMEO per session socket: a reader that stops draining its
  // responses cannot wedge a session thread forever. 0 = no timeout.
  int send_timeout_ms = 10'000;
  // Default per-query deadline, overridable per session with
  // "SET timeout_ms=N" (0 = none).
  uint64_t query_timeout_ms = 10'000;
  // Per-session prepared-plan cache capacity (distinct query texts).
  size_t plan_cache_entries = 32;
};

// The concurrent multi-client front door: a framed-protocol TCP server
// (see protocol.h) running many sessions against one SnapshotStore.
// Thread-per-session — sessions are I/O-bound and the paper's workloads
// are tens of clients, not tens of thousands. Each session owns its
// settings (reasoning mode, plan/encoding toggles, timeout) and a
// prepared-plan cache; reads are snapshot-isolated by SnapshotStore and
// updates from any session are serialized by its single-writer protocol.
//
// Lifecycle: Start() binds and spawns the accept loop; Stop() (or the
// destructor) shuts the listener down, nudges every live session socket,
// and joins all threads. A session ends at BYE, clean disconnect, any
// protocol violation, or an idle timeout — active_sessions() returning
// to zero after abuse is a protocol-test invariant.
class Server {
 public:
  Server(SnapshotStore& store, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();
  void Stop();

  int port() const { return listener_.port(); }
  bool running() const { return running_.load(std::memory_order_acquire); }
  size_t active_sessions() const;

 private:
  void AcceptLoop();
  void ServeSession(int fd, uint64_t session_id);
  // One request frame in, one response out; false ends the session.
  bool HandleFrame(int fd, uint64_t session_id, std::string_view payload,
                   struct SessionState& session);

  SnapshotStore& store_;
  ServerOptions options_;
  obs::ListenSocket listener_;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  // Session registry: live socket fds (for Stop() to nudge) and the
  // threads to join, keyed by session id. A session thread announces its
  // own completion by pushing its id onto finished_sessions_ as its last
  // act under sessions_mu_; the accept loop moves exactly those threads
  // out and joins them OUTSIDE the lock (joining a live thread under
  // sessions_mu_ would deadlock against the session's own fd-erase).
  // Stop() joins everything, live or finished.
  mutable std::mutex sessions_mu_;
  std::unordered_map<uint64_t, int> session_fds_;
  std::unordered_map<uint64_t, std::thread> session_threads_;
  std::vector<uint64_t> finished_sessions_;
  std::atomic<size_t> active_sessions_{0};
  uint64_t next_session_id_ = 1;
};

}  // namespace wdr::server

#endif  // WDR_SERVER_SERVER_H_
