#include "server/server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "common/timer.h"
#include "obs/metrics.h"

namespace wdr::server {
namespace {

// Per-session state: read settings, per-query timeout, and the plan cache.
// Owned and touched by exactly one session thread.
struct SessionStateImpl {
  store::ReadOptions read_options;
  uint64_t query_timeout_ms = 0;
  SnapshotStore::PlanCache plan_cache;
  uint64_t queries = 0;
  uint64_t updates = 0;

  SessionStateImpl(uint64_t timeout_ms, size_t plan_cache_entries)
      : query_timeout_ms(timeout_ms), plan_cache(plan_cache_entries) {}
};

void SetSocketTimeouts(int fd, int recv_ms, int send_ms) {
  const auto to_timeval = [](int ms) {
    struct timeval tv;
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    return tv;
  };
  if (recv_ms > 0) {
    struct timeval tv = to_timeval(recv_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (send_ms > 0) {
    struct timeval tv = to_timeval(send_ms);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
}

// "k=v k=v ..." settings parser for SET. Unknown keys and malformed
// values are errors — a client typo should not silently change nothing.
// Most settings are session-local; "shards" is store-wide and goes
// through the writer path (a new epoch, visible to every session).
Status ApplySetting(SnapshotStore& store, SessionStateImpl& session,
                    std::string_view key, std::string_view value) {
  const auto parse_bool = [&](std::optional<bool>* out) -> Status {
    if (value == "1" || value == "true") {
      *out = true;
    } else if (value == "0" || value == "false") {
      *out = false;
    } else if (value == "default") {
      out->reset();
    } else {
      return InvalidArgumentError("expected 0/1/default for " +
                                  std::string(key));
    }
    return Status::Ok();
  };
  if (key == "mode") {
    if (value == "default") {
      session.read_options.mode.reset();
    } else if (value == "none") {
      session.read_options.mode = store::ReasoningMode::kNone;
    } else if (value == "saturation") {
      session.read_options.mode = store::ReasoningMode::kSaturation;
    } else if (value == "reformulation") {
      session.read_options.mode = store::ReasoningMode::kReformulation;
    } else if (value == "backward") {
      session.read_options.mode = store::ReasoningMode::kBackward;
    } else if (value == "datalog") {
      session.read_options.mode = store::ReasoningMode::kDatalog;
    } else if (value == "auto") {
      session.read_options.mode = store::ReasoningMode::kAuto;
    } else {
      return InvalidArgumentError("unknown mode: " + std::string(value));
    }
    return Status::Ok();
  }
  if (key == "plan") return parse_bool(&session.read_options.plan);
  if (key == "encoding") return parse_bool(&session.read_options.encoding);
  if (key == "threads") {
    if (value == "default") {
      session.read_options.threads.reset();
      return Status::Ok();
    }
    int threads = 0;
    for (char c : value) {
      if (c < '0' || c > '9') {
        return InvalidArgumentError("threads must be a number");
      }
      threads = threads * 10 + (c - '0');
      if (threads > 1024) return InvalidArgumentError("threads too large");
    }
    if (value.empty()) return InvalidArgumentError("threads must be a number");
    if (threads == 0) {  // alternate reset spelling
      session.read_options.threads.reset();
    } else {
      session.read_options.threads = threads;
    }
    return Status::Ok();
  }
  if (key == "shards") {
    size_t shards = 0;
    for (char c : value) {
      if (c < '0' || c > '9') {
        return InvalidArgumentError("shards must be a number");
      }
      shards = shards * 10 + static_cast<size_t>(c - '0');
      if (shards > 1024) return InvalidArgumentError("shards too large");
    }
    if (value.empty() || shards == 0) {
      return InvalidArgumentError("shards must be a number >= 1");
    }
    if (!store.SetShardCount(shards)) {
      return FailedPreconditionError(
          "store backend is not sharded; start the server with "
          "backend=sharded to re-partition at run time");
    }
    return Status::Ok();
  }
  if (key == "timeout_ms") {
    uint64_t ms = 0;
    for (char c : value) {
      if (c < '0' || c > '9') {
        return InvalidArgumentError("timeout_ms must be a number");
      }
      ms = ms * 10 + static_cast<uint64_t>(c - '0');
    }
    if (value.empty()) return InvalidArgumentError("timeout_ms must be a number");
    session.query_timeout_ms = ms;  // 0 = no deadline
    return Status::Ok();
  }
  return InvalidArgumentError("unknown setting: " + std::string(key));
}

Status ApplySettings(SnapshotStore& store, SessionStateImpl& session,
                     std::string_view args) {
  size_t pos = 0;
  bool any = false;
  while (pos < args.size()) {
    size_t end = args.find(' ', pos);
    if (end == std::string_view::npos) end = args.size();
    const std::string_view token = args.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos) {
      return InvalidArgumentError("expected k=v, got: " + std::string(token));
    }
    WDR_RETURN_IF_ERROR(ApplySetting(store, session, token.substr(0, eq),
                                     token.substr(eq + 1)));
    any = true;
  }
  if (!any) return InvalidArgumentError("SET requires k=v arguments");
  return Status::Ok();
}

// Renders a ResultSet body: one tab-separated header line of variable
// names, then one line per row. Terms never contain raw tabs/newlines
// (Turtle escapes them), so the framing is unambiguous.
std::string RenderRows(const SnapshotStore::ReadResult& result) {
  std::string body;
  for (size_t i = 0; i < result.var_names.size(); ++i) {
    if (i != 0) body += '\t';
    body += result.var_names[i];
  }
  body += '\n';
  for (const auto& row : result.rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) body += '\t';
      body += row[i];
    }
    body += '\n';
  }
  return body;
}

}  // namespace

// The definition the forward declaration in server.h points at. Wrapping
// the impl keeps <optional>/PlanCache details out of the header's
// HandleFrame signature.
struct SessionState : SessionStateImpl {
  using SessionStateImpl::SessionStateImpl;
};

Server::Server(SnapshotStore& store, ServerOptions options)
    : store_(store), options_(options) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("server already running");
  }
  WDR_RETURN_IF_ERROR(listener_.Start(options_.port));
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  listener_.Shutdown();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();

  // Nudge every live session off its blocking recv, then join all
  // session threads (including already-finished ones not yet reaped).
  // Joining happens outside sessions_mu_: exiting sessions need it to
  // erase their fd and announce completion.
  std::unordered_map<uint64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& [id, fd] : session_fds_) {
      ::shutdown(fd, SHUT_RDWR);
    }
    threads.swap(session_threads_);
    finished_sessions_.clear();
  }
  for (auto& [id, t] : threads) {
    if (t.joinable()) t.join();
  }
}

size_t Server::active_sessions() const {
  return active_sessions_.load(std::memory_order_acquire);
}

void Server::AcceptLoop() {
  auto& metrics = obs::MetricsRegistry::Get();
  while (running_.load(std::memory_order_acquire)) {
    const int fd = listener_.Accept();
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) break;
      continue;  // transient accept failure
    }
    SetSocketTimeouts(fd, options_.recv_timeout_ms, options_.send_timeout_ms);

    // Admission control: greet-and-close when the session table is full.
    // The reject is a well-formed ERR frame, so clients see a reason
    // instead of a bare RST.
    const size_t active =
        active_sessions_.fetch_add(1, std::memory_order_acq_rel);
    if (active >= options_.max_sessions) {
      active_sessions_.fetch_sub(1, std::memory_order_acq_rel);
      metrics.GetCounter("wdr.server.sessions.rejected").Add(1);
      WriteFrame(fd, ErrResponse(UnavailableError(
                         "server full (" +
                         std::to_string(options_.max_sessions) +
                         " sessions)")));
      ::close(fd);
      continue;
    }
    metrics.GetCounter("wdr.server.sessions.accepted").Add(1);

    uint64_t session_id;
    std::vector<std::thread> reaped;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      session_id = next_session_id_++;
      session_fds_.emplace(session_id, fd);
      // Lazy reap: move out exactly the threads whose sessions announced
      // completion, so the registry stays small under session churn. Only
      // finished threads leave here — a live thread must never be joined
      // under sessions_mu_ (its exit path locks it to erase its fd).
      for (uint64_t finished_id : finished_sessions_) {
        auto it = session_threads_.find(finished_id);
        if (it != session_threads_.end()) {
          reaped.push_back(std::move(it->second));
          session_threads_.erase(it);
        }
      }
      finished_sessions_.clear();
      session_threads_.emplace(
          session_id,
          std::thread([this, fd, session_id] { ServeSession(fd, session_id); }));
    }
    // Join outside the lock: these threads have already pushed their ids
    // onto finished_sessions_, so they finish (at most the post-announce
    // tail) without needing anything we hold.
    for (std::thread& t : reaped) {
      if (t.joinable()) t.join();
    }
  }
}

void Server::ServeSession(int fd, uint64_t session_id) {
  auto& metrics = obs::MetricsRegistry::Get();
  metrics.GetGauge("wdr.server.sessions.active")
      .Set(static_cast<int64_t>(active_sessions_.load(std::memory_order_acquire)));

  SessionState session(options_.query_timeout_ms, options_.plan_cache_entries);

  // Server speaks first: greeting carries protocol version, session id,
  // and the published epoch, so a client can sanity-check compatibility
  // before sending anything.
  const std::string greeting = OkResponse(
      "wdr proto=" + std::to_string(kProtocolVersion) +
      " session=" + std::to_string(session_id) +
      " epoch=" + std::to_string(store_.epoch()));
  bool alive = WriteFrame(fd, greeting);

  std::string payload;
  while (alive && running_.load(std::memory_order_acquire)) {
    const FrameReadResult read =
        ReadFrame(fd, options_.max_frame_bytes, &payload);
    if (read == FrameReadResult::kClosed) break;  // clean disconnect
    if (read == FrameReadResult::kTruncated) {
      // Abrupt disconnect, mid-frame EOF, or idle timeout: nothing sane
      // to answer into — just tear the session down.
      metrics.GetCounter("wdr.server.frames.truncated").Add(1);
      break;
    }
    if (read == FrameReadResult::kOversized) {
      metrics.GetCounter("wdr.server.frames.oversized").Add(1);
      WriteFrame(fd, ErrResponse(InvalidArgumentError(
                         "frame exceeds limit of " +
                         std::to_string(options_.max_frame_bytes) +
                         " bytes")));
      break;  // the stream is desynchronized; close
    }
    alive = HandleFrame(fd, session_id, payload, session);
  }

  // Deregister before closing: once the fd leaves session_fds_, Stop()
  // can no longer ::shutdown() it, so the close below cannot race a
  // nudge aimed at a recycled descriptor number. The finished-id push is
  // this thread's completion announcement to the accept-loop reaper.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    session_fds_.erase(session_id);
    finished_sessions_.push_back(session_id);
  }
  ::close(fd);
  active_sessions_.fetch_sub(1, std::memory_order_acq_rel);
  metrics.GetCounter("wdr.server.sessions.closed").Add(1);
  metrics.GetGauge("wdr.server.sessions.active")
      .Set(static_cast<int64_t>(active_sessions_.load(std::memory_order_acquire)));
}

bool Server::HandleFrame(int fd, uint64_t session_id, std::string_view payload,
                         SessionState& session) {
  auto& metrics = obs::MetricsRegistry::Get();
  const Request request = ParseRequest(payload);

  if (request.verb == "QUERY") {
    Timer timer;
    store::ReadOptions options = session.read_options;
    if (session.query_timeout_ms > 0) {
      options.deadline_nanos =
          SteadyNowNanos() + session.query_timeout_ms * 1'000'000ull;
    }
    auto result = store_.Query(request.body, options, &session.plan_cache);
    metrics.GetHistogram("wdr.server.latency.query")
        .RecordSeconds(timer.ElapsedSeconds());
    ++session.queries;
    if (!result.ok()) {
      metrics.GetCounter("wdr.server.queries.failed").Add(1);
      return WriteFrame(fd, ErrResponse(result.status()));
    }
    metrics.GetCounter("wdr.server.queries").Add(1);
    const SnapshotStore::ReadResult& r = result.value();
    return WriteFrame(
        fd, OkResponse("rows=" + std::to_string(r.row_count) +
                           " epoch=" + std::to_string(r.epoch) +
                           " union=" + std::to_string(r.info.union_size),
                       RenderRows(r)));
  }

  if (request.verb == "UPDATE") {
    Timer timer;
    auto result = store_.Update(request.body);
    metrics.GetHistogram("wdr.server.latency.update")
        .RecordSeconds(timer.ElapsedSeconds());
    ++session.updates;
    if (!result.ok()) {
      metrics.GetCounter("wdr.server.updates.failed").Add(1);
      return WriteFrame(fd, ErrResponse(result.status()));
    }
    metrics.GetCounter("wdr.server.updates").Add(1);
    const store::UpdateInfo& info = result.value();
    return WriteFrame(
        fd, OkResponse("inserted=" + std::to_string(info.inserted) +
                       " deleted=" + std::to_string(info.deleted) +
                       " closure_delta=" + std::to_string(info.closure_delta) +
                       " epoch=" + std::to_string(store_.epoch())));
  }

  if (request.verb == "SET") {
    const Status status = ApplySettings(store_, session, request.args);
    if (!status.ok()) return WriteFrame(fd, ErrResponse(status));
    return WriteFrame(fd, OkResponse());
  }

  if (request.verb == "PING") {
    return WriteFrame(
        fd, OkResponse("epoch=" + std::to_string(store_.epoch())));
  }

  if (request.verb == "INFO") {
    const auto counter = [&](const char* name) {
      return std::to_string(metrics.GetCounter(name).value());
    };
    std::string head =
        "epoch=" + std::to_string(store_.epoch()) +
        " size=" + std::to_string(store_.size()) +
        " mode=" +
        store::ReasoningModeName(
            session.read_options.mode.value_or(store_.mode())) +
        " sessions=" + std::to_string(active_sessions()) +
        " session=" + std::to_string(session_id) +
        " plan_hits=" + std::to_string(session.plan_cache.hits()) +
        " plan_misses=" + std::to_string(session.plan_cache.misses()) +
        " auto_saturation=" + counter("wdr.auto.decisions.saturation") +
        " auto_reformulation=" + counter("wdr.auto.decisions.reformulation") +
        " auto_backward=" + counter("wdr.auto.decisions.backward") +
        " auto_datalog=" + counter("wdr.auto.decisions.datalog") +
        " auto_fallbacks=" + counter("wdr.auto.fallbacks") +
        " auto_refreshes=" + counter("wdr.auto.model_refreshes");
    const SnapshotStore::ShardLayout layout = store_.shard_layout();
    if (layout.shard_count != 0) {
      head += " shards=" + std::to_string(layout.shard_count);
      head += " shard_sizes=";
      for (size_t i = 0; i < layout.sizes.size(); ++i) {
        if (i != 0) head += ',';
        head += std::to_string(layout.sizes[i]);
      }
      head += " shard_schema=" + std::to_string(layout.schema_size);
      char skew[32];
      std::snprintf(skew, sizeof(skew), "%.2f", layout.skew);
      head += std::string(" shard_skew=") + skew;
    }
    return WriteFrame(fd, OkResponse(head));
  }

  if (request.verb == "WHY") {
    // The last kAuto routing decision on the published side — the wire
    // counterpart of the shell's `.why`.
    const std::optional<analysis::RouteDecision> decision =
        store_.LastAutoDecision();
    if (!decision.has_value()) {
      return WriteFrame(fd, ErrResponse(NotFoundError(
                                "no auto-routed query yet (SET mode=auto, "
                                "then QUERY)")));
    }
    const std::string head =
        std::string("route=") + analysis::RouteName(decision->route) +
        " fallback=" + (decision->fallback ? "1" : "0") +
        " per_key=" + (decision->per_key ? "1" : "0") +
        " closure=" + (decision->closure_available ? "1" : "0") +
        " model_version=" + std::to_string(decision->model_version);
    return WriteFrame(fd, OkResponse(head, decision->rationale + "\n"));
  }

  if (request.verb == "BYE") {
    WriteFrame(fd, OkResponse("bye"));
    return false;
  }

  metrics.GetCounter("wdr.server.requests.unknown").Add(1);
  return WriteFrame(fd, ErrResponse(InvalidArgumentError(
                            "unknown verb: " + std::string(request.verb))));
}

}  // namespace wdr::server
