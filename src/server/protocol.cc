#include "server/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

#include "obs/http.h"

namespace wdr::server {
namespace {

// Reads exactly `n` bytes into `out`, riding out fragmentation and EINTR.
// Returns the byte count actually read (short on EOF/error/timeout).
size_t RecvExactly(int fd, char* out, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    break;  // EOF (0), timeout, or hard error
  }
  return got;
}

}  // namespace

bool WriteFrame(int fd, std::string_view payload) {
  char prefix[4];
  const uint32_t n = static_cast<uint32_t>(payload.size());
  prefix[0] = static_cast<char>((n >> 24) & 0xff);
  prefix[1] = static_cast<char>((n >> 16) & 0xff);
  prefix[2] = static_cast<char>((n >> 8) & 0xff);
  prefix[3] = static_cast<char>(n & 0xff);
  // Two sends keep the payload un-copied; TCP coalesces them anyway.
  return obs::SendAll(fd, std::string_view(prefix, 4)) &&
         obs::SendAll(fd, payload);
}

FrameReadResult ReadFrame(int fd, size_t max_bytes, std::string* payload) {
  char prefix[4];
  const size_t head = RecvExactly(fd, prefix, 4);
  if (head == 0) return FrameReadResult::kClosed;
  if (head < 4) return FrameReadResult::kTruncated;
  const uint32_t n = (static_cast<uint32_t>(static_cast<unsigned char>(prefix[0])) << 24) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(prefix[1])) << 16) |
                     (static_cast<uint32_t>(static_cast<unsigned char>(prefix[2])) << 8) |
                     static_cast<uint32_t>(static_cast<unsigned char>(prefix[3]));
  if (n > max_bytes) return FrameReadResult::kOversized;
  payload->resize(n);
  if (n != 0 && RecvExactly(fd, payload->data(), n) < n) {
    return FrameReadResult::kTruncated;
  }
  return FrameReadResult::kOk;
}

Request ParseRequest(std::string_view payload) {
  Request request;
  std::string_view first = payload;
  const size_t newline = payload.find('\n');
  if (newline != std::string_view::npos) {
    first = payload.substr(0, newline);
    request.body = payload.substr(newline + 1);
  }
  const size_t space = first.find(' ');
  if (space == std::string_view::npos) {
    request.verb = first;
  } else {
    request.verb = first.substr(0, space);
    request.args = first.substr(space + 1);
  }
  return request;
}

std::string OkResponse(std::string_view head_kv, std::string_view body) {
  std::string out = "OK";
  if (!head_kv.empty()) {
    out += ' ';
    out += head_kv;
  }
  out += '\n';
  out += body;
  return out;
}

std::string ErrResponse(const Status& status) {
  return "ERR " + status.ToString();
}

Response ParseResponse(std::string_view payload) {
  Response response;
  std::string_view first = payload;
  const size_t newline = payload.find('\n');
  if (newline != std::string_view::npos) {
    first = payload.substr(0, newline);
    response.body = payload.substr(newline + 1);
  }
  if (first.substr(0, 2) == "OK") {
    response.ok = true;
    if (first.size() > 3) response.head = std::string(first.substr(3));
  } else if (first.substr(0, 3) == "ERR") {
    response.ok = false;
    if (first.size() > 4) response.head = std::string(first.substr(4));
  } else {
    response.ok = false;
    response.head = "malformed response: " + std::string(first);
  }
  return response;
}

}  // namespace wdr::server
