#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace wdr::server {

int RawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      greeting_(std::move(other.greeting_)),
      buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    greeting_ = std::move(other.greeting_);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Status Client::Connect(int port) {
  if (fd_ >= 0) return FailedPreconditionError("already connected");
  fd_ = RawConnect(port);
  if (fd_ < 0) {
    return UnavailableError("connect to 127.0.0.1:" + std::to_string(port) +
                            " failed");
  }
  // Server speaks first; an admission reject arrives here as an ERR frame
  // followed by a close.
  if (ReadFrame(fd_, kDefaultMaxFrameBytes, &buffer_) != FrameReadResult::kOk) {
    Close();
    return UnavailableError("connection closed before greeting");
  }
  const Response greeting = ParseResponse(buffer_);
  if (!greeting.ok) {
    Close();
    return UnavailableError("server rejected connection: " + greeting.head);
  }
  greeting_ = greeting.head;
  return Status::Ok();
}

Result<Response> Client::Call(std::string_view payload) {
  if (fd_ < 0) return FailedPreconditionError("not connected");
  if (!WriteFrame(fd_, payload)) {
    Close();
    return UnavailableError("send failed (connection lost)");
  }
  const FrameReadResult read = ReadFrame(fd_, kDefaultMaxFrameBytes, &buffer_);
  if (read != FrameReadResult::kOk) {
    Close();
    return UnavailableError("connection closed mid-call");
  }
  return ParseResponse(buffer_);
}

Result<Response> Client::Query(std::string_view sparql) {
  std::string payload = "QUERY\n";
  payload += sparql;
  return Call(payload);
}

Result<Response> Client::Update(std::string_view sparql_update) {
  std::string payload = "UPDATE\n";
  payload += sparql_update;
  return Call(payload);
}

Result<Response> Client::Set(std::string_view settings) {
  std::string payload = "SET ";
  payload += settings;
  payload += '\n';
  return Call(payload);
}

void Client::Close() {
  if (fd_ < 0) return;
  WriteFrame(fd_, "BYE\n");  // best effort; ignore the reply
  ::close(fd_);
  fd_ = -1;
}

}  // namespace wdr::server
