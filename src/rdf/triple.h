#ifndef WDR_RDF_TRIPLE_H_
#define WDR_RDF_TRIPLE_H_

#include <compare>
#include <cstddef>
#include <functional>
#include <ostream>

#include "rdf/term.h"

namespace wdr::rdf {

// A dictionary-encoded RDF triple (s p o). 12 bytes, trivially copyable.
struct Triple {
  TermId s = kNullTermId;
  TermId p = kNullTermId;
  TermId o = kNullTermId;

  Triple() = default;
  Triple(TermId subject, TermId property, TermId object)
      : s(subject), p(property), o(object) {}

  friend auto operator<=>(const Triple&, const Triple&) = default;
};

std::ostream& operator<<(std::ostream& os, const Triple& t);

struct TripleHash {
  size_t operator()(const Triple& t) const {
    // 64-bit mix of the three 32-bit components (splitmix-style).
    uint64_t h = (static_cast<uint64_t>(t.s) << 32) | t.p;
    h ^= static_cast<uint64_t>(t.o) * 0x9e3779b97f4a7c15ull;
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_TRIPLE_H_
