#include "rdf/term.h"

namespace wdr::rdf {
namespace {

// Escapes \, ", newline, tab and carriage return per N-Triples grammar.
std::string EscapeLiteral(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + lexical + ">";
    case TermKind::kBlank:
      return "_:" + lexical;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(lexical) + "\"";
      if (!language.empty()) {
        out += "@" + language;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return "";
}

std::ostream& operator<<(std::ostream& os, const Term& term) {
  return os << term.ToNTriples();
}

}  // namespace wdr::rdf
