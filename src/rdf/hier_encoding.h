#ifndef WDR_RDF_HIER_ENCODING_H_
#define WDR_RDF_HIER_ENCODING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/store_view.h"
#include "schema/schema.h"

namespace wdr::rdf {

// The id interval the encoding assigned to one hierarchy node, in NEW
// (post-permutation) id space. The node's own id is `lo`; `hi` is the last
// id of its spanning subtree (inclusive).
struct HierInterval {
  TermId lo = 0;
  TermId hi = 0;
  // True when the interval is exactly the node's subclass (subproperty)
  // closure — the node is tree-embeddable under the chosen spanning
  // forest. Invalid nodes keep their interval for introspection but must
  // fall back to classic UCQ reformulation.
  bool valid = false;

  size_t width() const { return static_cast<size_t>(hi) - lo + 1; }
  TermRange range() const { return TermRange{lo, hi}; }
};

// Hierarchy-aware dictionary encoding (LiteMat, Curé et al.; PAPERS.md):
// renumbers the dictionary so that every tree-embeddable class has its
// subclass closure on one contiguous id interval, and likewise for
// properties. RDFS entailment c' ⊑* c then reduces to the integer test
// lo(c) <= id(c') <= hi(c), and the reformulation union over a subclass
// (subproperty) closure collapses to a single range-constrained atom —
// the representation-level attack on the paper's "1 to thousands of CQs"
// worst case.
//
// Interval assignment: a preorder DFS over a first-parent spanning forest
// of the subclass DAG (then the subproperty DAG; a term that is both class
// and property is encoded as a class, leaving dependent property nodes
// invalid). Each node's id is the preorder number at which its subtree
// starts, so the subtree occupies [id, id + subtree_size). A node is valid
// iff its closure size equals its subtree size: the spanning subtree is
// always a subset of the closure, so equal sizes mean the interval covers
// the closure exactly. Nodes reached through DAG sharing (a second parent
// outside the subtree) or cycles are marked invalid. All remaining
// dictionary terms follow the two forests in old-id order.
//
// The encoding is a snapshot of one schema version: rebuild it (and
// re-encode dictionary + stores) whenever the schema changes. `version()`
// carries the owner's schema version counter so consumers can check
// staleness.
class HierEncoding {
 public:
  HierEncoding() = default;

  // Builds the permutation and intervals for `schema`'s DAGs over the ids
  // of `dict`. Does not mutate either — apply `permutation()` with
  // Dictionary::ApplyPermutation and re-encode the stores to switch id
  // spaces.
  static HierEncoding Build(const schema::Schema& schema,
                            const Dictionary& dict);

  // Old id -> new id bijection over 1..size; entry 0 is unused.
  const std::vector<TermId>& permutation() const { return perm_; }

  TermId Remap(TermId old_id) const {
    return old_id < perm_.size() ? perm_[old_id] : old_id;
  }

  // Interval of the class (property) with NEW id `id`, or nullptr when the
  // id is not a hierarchy node of that kind. Check `valid` before
  // collapsing a union onto it.
  const HierInterval* ClassInterval(TermId id) const {
    auto it = class_intervals_.find(id);
    return it == class_intervals_.end() ? nullptr : &it->second;
  }
  const HierInterval* PropertyInterval(TermId id) const {
    auto it = property_intervals_.find(id);
    return it == property_intervals_.end() ? nullptr : &it->second;
  }

  size_t class_count() const { return class_intervals_.size(); }
  size_t property_count() const { return property_intervals_.size(); }
  // Hierarchy nodes whose closure escaped their spanning subtree.
  size_t invalid_nodes() const { return invalid_nodes_; }

  // The owner's schema version this encoding was built against.
  uint64_t version() const { return version_; }
  void set_version(uint64_t version) { version_ = version; }

 private:
  std::vector<TermId> perm_;
  std::unordered_map<TermId, HierInterval> class_intervals_;
  std::unordered_map<TermId, HierInterval> property_intervals_;
  size_t invalid_nodes_ = 0;
  uint64_t version_ = 0;
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_HIER_ENCODING_H_
