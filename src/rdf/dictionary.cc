#include "rdf/dictionary.h"

namespace wdr::rdf {

std::string Dictionary::MakeKey(const Term& term) {
  std::string key;
  key.reserve(term.lexical.size() + term.datatype.size() +
              term.language.size() + 4);
  key += static_cast<char>('0' + static_cast<int>(term.kind));
  key += term.lexical;
  key += '\x01';
  key += term.datatype;
  key += '\x01';
  key += term.language;
  return key;
}

TermId Dictionary::Intern(const Term& term) {
  std::string key = MakeKey(term);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  terms_.push_back(term);
  TermId id = static_cast<TermId>(terms_.size());
  index_.emplace(std::move(key), id);
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(MakeKey(term));
  return it == index_.end() ? kNullTermId : it->second;
}

void Dictionary::ApplyPermutation(const std::vector<TermId>& perm) {
  std::vector<Term> remapped(terms_.size());
  for (size_t old_id = 1; old_id <= terms_.size(); ++old_id) {
    remapped[static_cast<size_t>(perm[old_id]) - 1] =
        std::move(terms_[old_id - 1]);
  }
  terms_ = std::move(remapped);
  for (auto& [key, id] : index_) {
    id = perm[static_cast<size_t>(id)];
  }
}

}  // namespace wdr::rdf
