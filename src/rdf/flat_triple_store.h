#ifndef WDR_RDF_FLAT_TRIPLE_STORE_H_
#define WDR_RDF_FLAT_TRIPLE_STORE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <set>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rdf/store_view.h"
#include "rdf/triple.h"

namespace wdr::rdf {

// The cache-friendly storage backend: three flat sorted arrays (SPO, POS,
// OSP permutations) scanned with binary-search range lookups, plus a small
// ordered delta log (inserts) and a tombstone set (erases) so updates stay
// cheap. When the delta/tombstone volume crosses a threshold proportional
// to the main arrays, it is merged in one linear pass — the classic
// LSM-style amortization, giving contiguous scans on the hot read path
// while keeping amortized-logarithmic updates.
//
// Scans merge the main range with the delta range in index order, so all
// StoreView semantics (SPO-ordered ToVector, prefix scans) are identical
// to the ordered backend; this is property-tested.
class FlatTripleStore final : public StoreView {
 public:
  FlatTripleStore() = default;

  // Copies carry the data but not the open-scan count (a copy has no
  // cursors into it).
  FlatTripleStore(const FlatTripleStore& other)
      : main_(other.main_),
        delta_(other.delta_),
        tombstones_(other.tombstones_) {}
  FlatTripleStore& operator=(const FlatTripleStore& other) {
    if (this != &other) {
      main_ = other.main_;
      delta_ = other.delta_;
      tombstones_ = other.tombstones_;
    }
    return *this;
  }
  // Moves transfer the data but not the open-scan count (moving a store
  // with live cursors is a caller bug either way: cursors hold pointers
  // into the source). Spelled out because the atomic counter is not
  // movable.
  FlatTripleStore(FlatTripleStore&& other) noexcept
      : main_(std::move(other.main_)),
        delta_(std::move(other.delta_)),
        tombstones_(std::move(other.tombstones_)) {}
  FlatTripleStore& operator=(FlatTripleStore&& other) noexcept {
    if (this != &other) {
      main_ = std::move(other.main_);
      delta_ = std::move(other.delta_);
      tombstones_ = std::move(other.tombstones_);
    }
    return *this;
  }

  // Bulk load: replaces the contents with `triples` (sorted and
  // de-duplicated here), leaving an empty delta. The loaders and the
  // workload generators use this path via InsertBatch on an empty store.
  void Build(std::vector<Triple> triples);

  // Merges the delta log and tombstones into the main arrays now. Must not
  // be called while a scan is open or an epoch pin is held.
  void Compact();

  // Compacts if pending work exists and no scan or pin forbids it; counts
  // a deferral (wdr.store.flat.compactions_deferred) and returns false
  // otherwise. The deterministic compaction hook for fault-injection tests.
  bool TryCompact() override;

  // Epoch pins defer merges exactly like open cursors: a pinned reader may
  // keep scanning the frozen main arrays across many scans.
  void PinEpoch() const override {
    epoch_pins_.fetch_add(1, std::memory_order_relaxed);
  }
  void UnpinEpoch() const override {
    epoch_pins_.fetch_sub(1, std::memory_order_relaxed);
  }
  size_t epoch_pins() const override {
    return epoch_pins_.load(std::memory_order_relaxed);
  }

  // Pending (unmerged) delta/tombstone volume, for tests and benches.
  size_t delta_size() const { return delta_[0].size(); }
  size_t tombstone_size() const { return tombstones_.size(); }

  bool Insert(const Triple& t) override;
  bool Erase(const Triple& t) override;
  size_t InsertBatch(std::span<const Triple> batch) override;
  void Clear() override;

  bool Contains(const Triple& t) const override;
  size_t size() const override {
    return main_[0].size() - tombstones_.size() + delta_[0].size();
  }

  size_t Count(TermId s, TermId p, TermId o) const override;
  size_t CountRange(const ScanPlan& plan) const override;
  size_t EstimateCount(TermId s, TermId p, TermId o) const override;
  size_t EstimateCountRange(const ScanPlan& plan) const override;

  using StoreView::OpenScan;
  void OpenScan(ScanHandle& handle, const ScanPlan& plan) const override;

  StorageBackend backend() const override { return StorageBackend::kFlat; }
  std::unique_ptr<StoreView> Clone() const override {
    return std::make_unique<FlatTripleStore>(*this);
  }

  // Delta volume below which no merge happens (amortization floor).
  static constexpr size_t kMergeFloor = 512;

 private:
  friend class FlatScanCursor;

  bool InMain(const Triple& t) const;

  // True when no open scan and no epoch pin holds pointers into main_.
  bool Restructurable() const;

  // Merges when the pending volume justifies the linear rebuild and no
  // scan or pin holds pointers into the main arrays.
  void MaybeCompact();

  // [first, last) of the keys in `main_[order]` within the plan's bounds.
  std::pair<const Triple*, const Triple*> MainRange(const ScanPlan& plan) const;

  // Main arrays hold permuted keys, index = IndexOrder.
  std::array<std::vector<Triple>, kIndexOrderCount> main_;
  // Delta log: triples inserted since the last merge, absent from main_
  // (keys permuted per index, like main_). Ordered so scans can merge.
  std::array<std::set<Triple>, kIndexOrderCount> delta_;
  // Main-array triples erased since the last merge (s/p/o space).
  std::unordered_set<Triple, TripleHash> tombstones_;
  // Open cursors holding pointers into main_; merges are deferred while
  // any scan is live. Atomic because concurrent *readers* (parallel
  // saturation workers scanning a frozen store) open and close cursors
  // from several threads at once; relaxed ordering suffices since the
  // count only gates compaction, which runs on the (single) writer thread.
  mutable std::atomic<size_t> open_scans_{0};
  // Reader-held epoch pins (see StoreView::PinEpoch); same deferral rule
  // and memory-order rationale as open_scans_, but held across whole
  // read operations rather than single cursors. Like the scan count,
  // copies and moves do not carry pins.
  mutable std::atomic<size_t> epoch_pins_{0};
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_FLAT_TRIPLE_STORE_H_
