#ifndef WDR_RDF_UNION_STORE_H_
#define WDR_RDF_UNION_STORE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "rdf/store_view.h"

namespace wdr::rdf {

// A read-only set-union view over several triple stores (the member
// stores of a federation). Exposes the same Match / Contains /
// EstimateCount surface as StoreView so the query evaluator can join
// across endpoints without copying their data. Members are held through
// the storage seam, so a federation can mix backends per endpoint.
//
// Triples present in several member stores are reported once (the member
// with the smallest index wins), preserving set semantics.
class UnionStore {
 public:
  // Same generic range-pushdown names as StoreView (see there).
  using Range = TermRange;
  static ScanPlan MakeRangePlan(const TermRange& s, const TermRange& p,
                                const TermRange& o) {
    return PlanRangeScan(s, p, o);
  }

  // Per-member scan accounting, collected only after EnableMemberStats():
  // how often each member was probed and how many triples it contributed
  // (post-dedup). The federation layer reports these per endpoint.
  struct MemberStats {
    uint64_t matches = 0;  // Match calls issued to this member
    uint64_t rows = 0;     // triples this member contributed
  };

  UnionStore() = default;
  explicit UnionStore(std::vector<const StoreView*> members)
      : members_(std::move(members)) {}

  void AddMember(const StoreView* store) { members_.push_back(store); }

  size_t member_count() const { return members_.size(); }

  // Turns on per-member accounting (off by default: the counters sit on
  // the match hot path). Resets any previous stats. The counters are
  // relaxed atomics so concurrent readers (parallel union-query branches
  // scanning the federation) account without racing.
  void EnableMemberStats() const {
    stats_size_ = members_.size();
    stats_ = std::make_unique<AtomicMemberStats[]>(stats_size_);
  }

  // Snapshot of the per-member counters, by value (the live counters keep
  // advancing under concurrent scans). Empty unless EnableMemberStats()
  // was called.
  std::vector<MemberStats> member_stats() const {
    std::vector<MemberStats> snapshot(stats_size_);
    for (size_t i = 0; i < stats_size_; ++i) {
      snapshot[i].matches = stats_[i].matches.load(std::memory_order_relaxed);
      snapshot[i].rows = stats_[i].rows.load(std::memory_order_relaxed);
    }
    return snapshot;
  }

  bool Contains(const Triple& t) const {
    for (const StoreView* member : members_) {
      if (member->Contains(t)) return true;
    }
    return false;
  }

  // Upper bound on the union's size (duplicates counted per member).
  size_t size() const {
    size_t total = 0;
    for (const StoreView* member : members_) total += member->size();
    return total;
  }

  size_t EstimateCount(TermId s, TermId p, TermId o) const {
    size_t total = 0;
    for (const StoreView* member : members_) {
      total += member->EstimateCount(s, p, o);
    }
    return total;
  }

  size_t EstimateCountRange(const ScanPlan& plan) const {
    size_t total = 0;
    for (const StoreView* member : members_) {
      total += member->EstimateCountRange(plan);
    }
    return total;
  }

  // Same contract as StoreView::Match; each distinct triple is reported
  // exactly once across members.
  template <typename Fn>
  void Match(TermId s, TermId p, TermId o, Fn&& fn) const {
    MatchPlan(PlanScan(s, p, o), std::forward<Fn>(fn));
  }

  // Same contract as StoreView::MatchPlan, with the same cross-member
  // first-wins de-duplication as Match.
  template <typename Fn>
  void MatchPlan(const ScanPlan& plan, Fn&& fn) const {
    const bool collect = stats_size_ != 0;
    for (size_t i = 0; i < members_.size(); ++i) {
      bool keep_going = true;
      if (collect) {
        stats_[i].matches.fetch_add(1, std::memory_order_relaxed);
      }
      members_[i]->MatchPlan(plan, [&](const Triple& t) {
        for (size_t j = 0; j < i; ++j) {
          if (members_[j]->Contains(t)) return true;  // already reported
        }
        if (collect) stats_[i].rows.fetch_add(1, std::memory_order_relaxed);
        keep_going = internal::InvokeMatchFn(fn, t);
        return keep_going;
      });
      if (!keep_going) return;
    }
  }

  size_t Count(TermId s, TermId p, TermId o) const {
    size_t n = 0;
    Match(s, p, o, [&n](const Triple&) { ++n; });
    return n;
  }

 private:
  struct AtomicMemberStats {
    std::atomic<uint64_t> matches{0};
    std::atomic<uint64_t> rows{0};
  };

  std::vector<const StoreView*> members_;  // not owned
  // null = accounting off. Heap array (not vector) because the elements
  // are atomics, which are neither copyable nor movable.
  mutable std::unique_ptr<AtomicMemberStats[]> stats_;
  mutable size_t stats_size_ = 0;
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_UNION_STORE_H_
