#ifndef WDR_RDF_UNION_STORE_H_
#define WDR_RDF_UNION_STORE_H_

#include <vector>

#include "rdf/store_view.h"

namespace wdr::rdf {

// A read-only set-union view over several triple stores (the member
// stores of a federation). Exposes the same Match / Contains /
// EstimateCount surface as StoreView so the query evaluator can join
// across endpoints without copying their data. Members are held through
// the storage seam, so a federation can mix backends per endpoint.
//
// Triples present in several member stores are reported once (the member
// with the smallest index wins), preserving set semantics.
class UnionStore {
 public:
  // Per-member scan accounting, collected only after EnableMemberStats():
  // how often each member was probed and how many triples it contributed
  // (post-dedup). The federation layer reports these per endpoint.
  struct MemberStats {
    uint64_t matches = 0;  // Match calls issued to this member
    uint64_t rows = 0;     // triples this member contributed
  };

  UnionStore() = default;
  explicit UnionStore(std::vector<const StoreView*> members)
      : members_(std::move(members)) {}

  void AddMember(const StoreView* store) { members_.push_back(store); }

  size_t member_count() const { return members_.size(); }

  // Turns on per-member accounting (off by default: the counters sit on
  // the match hot path). Resets any previous stats.
  void EnableMemberStats() const {
    stats_.assign(members_.size(), MemberStats{});
  }

  // Empty unless EnableMemberStats() was called.
  const std::vector<MemberStats>& member_stats() const { return stats_; }

  bool Contains(const Triple& t) const {
    for (const StoreView* member : members_) {
      if (member->Contains(t)) return true;
    }
    return false;
  }

  // Upper bound on the union's size (duplicates counted per member).
  size_t size() const {
    size_t total = 0;
    for (const StoreView* member : members_) total += member->size();
    return total;
  }

  size_t EstimateCount(TermId s, TermId p, TermId o) const {
    size_t total = 0;
    for (const StoreView* member : members_) {
      total += member->EstimateCount(s, p, o);
    }
    return total;
  }

  // Same contract as StoreView::Match; each distinct triple is reported
  // exactly once across members.
  template <typename Fn>
  void Match(TermId s, TermId p, TermId o, Fn&& fn) const {
    const bool collect = !stats_.empty();
    for (size_t i = 0; i < members_.size(); ++i) {
      bool keep_going = true;
      if (collect) ++stats_[i].matches;
      members_[i]->Match(s, p, o, [&](const Triple& t) {
        for (size_t j = 0; j < i; ++j) {
          if (members_[j]->Contains(t)) return true;  // already reported
        }
        if (collect) ++stats_[i].rows;
        keep_going = internal::InvokeMatchFn(fn, t);
        return keep_going;
      });
      if (!keep_going) return;
    }
  }

  size_t Count(TermId s, TermId p, TermId o) const {
    size_t n = 0;
    Match(s, p, o, [&n](const Triple&) { ++n; });
    return n;
  }

 private:
  std::vector<const StoreView*> members_;  // not owned
  mutable std::vector<MemberStats> stats_;  // empty = accounting off
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_UNION_STORE_H_
