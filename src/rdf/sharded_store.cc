#include "rdf/sharded_store.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace wdr::rdf {
namespace {

// Compare two triples in the scan's permuted key order.
inline bool KeyLess(const Triple& a, const Triple& b, IndexOrder order) {
  return PermuteKey(a, order) < PermuteKey(b, order);
}

}  // namespace

// (N+1)-way ordered merge over the member cursors of one scan. Members are
// pairwise disjoint (a predicate is either broadcast or instance; instance
// subjects hash to exactly one shard), so the merge never deduplicates —
// it interleaves the member streams back into global index order. The
// per-child state is too large for ScanHandle's inline slot, so the cursor
// itself is a thin handle around one heap allocation.
class ShardedScanCursor final : public ScanCursor {
 public:
  struct Child {
    ScanHandle handle;
    Triple buf[StoreView::kMatchBatch];
    size_t pos = 0;
    size_t len = 0;
    bool done = false;

    // Ensures a head triple is buffered; false when exhausted.
    bool Ensure() {
      if (pos < len) return true;
      if (done) return false;
      pos = 0;
      len = (*handle).NextBatch(buf, StoreView::kMatchBatch);
      if (len == 0) done = true;
      return !done;
    }
    const Triple& Head() const { return buf[pos]; }
  };

  struct State {
    std::vector<std::unique_ptr<Child>> children;
    IndexOrder order = IndexOrder::kSpo;
  };

  ShardedScanCursor(const ShardedStore* store, const ScanPlan& plan,
                    const std::vector<const StoreView*>& members)
      : store_(store), state_(std::make_unique<State>()) {
    state_->order = plan.order;
    state_->children.reserve(members.size());
    for (const StoreView* m : members) {
      auto child = std::make_unique<Child>();
      m->OpenScan(child->handle, plan);
      state_->children.push_back(std::move(child));
    }
    if (store_ != nullptr) {
      store_->open_scans_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  ~ShardedScanCursor() override {
    if (store_ != nullptr) {
      store_->open_scans_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  size_t NextBatch(Triple* out, size_t cap) override {
    auto& children = state_->children;
    size_t n = 0;
    if (children.size() == 1) {
      // Single pruned member: stream through without compares.
      Child& c = *children[0];
      while (n < cap && c.Ensure()) {
        const size_t take = std::min(cap - n, c.len - c.pos);
        std::copy(c.buf + c.pos, c.buf + c.pos + take, out + n);
        c.pos += take;
        n += take;
      }
      return n;
    }
    const IndexOrder order = state_->order;
    while (n < cap) {
      Child* best = nullptr;
      for (auto& c : children) {
        if (!c->Ensure()) continue;
        if (best == nullptr || KeyLess(c->Head(), best->Head(), order)) {
          best = c.get();
        }
      }
      if (best == nullptr) break;
      out[n++] = best->Head();
      ++best->pos;
    }
    return n;
  }

  void SeekAtLeast(const Triple& key) override {
    const IndexOrder order = state_->order;
    const Triple pk = PermuteKey(key, order);
    for (auto& c : state_->children) {
      while (c->pos < c->len && PermuteKey(c->buf[c->pos], order) < pk) {
        ++c->pos;
      }
      if (c->pos < c->len || c->done) continue;
      // Buffer drained below the key: forward the seek to the member.
      (*c->handle).SeekAtLeast(key);
    }
  }

 private:
  const ShardedStore* store_;  // open-scan accounting; null for LocalView
  std::unique_ptr<State> state_;
};

static_assert(sizeof(ShardedScanCursor) <= ScanHandle::kInlineBytes);

ShardedStore::ShardedStore(size_t shard_count, StorageBackend shard_backend)
    : shard_backend_(shard_backend), schema_(MakeStore(shard_backend)) {
  if (shard_count == 0) shard_count = 1;
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(MakeStore(shard_backend_));
  }
}

ShardedStore::ShardedStore(const ShardedStore& other)
    : shard_backend_(other.shard_backend_),
      schema_(other.schema_->Clone()),
      broadcast_preds_(other.broadcast_preds_),
      pending_shard_count_(other.pending_shard_count_) {
  shards_.reserve(other.shards_.size());
  for (const auto& s : other.shards_) shards_.push_back(s->Clone());
}

ShardedStore& ShardedStore::operator=(const ShardedStore& other) {
  if (this == &other) return *this;
  shard_backend_ = other.shard_backend_;
  schema_ = other.schema_->Clone();
  shards_.clear();
  shards_.reserve(other.shards_.size());
  for (const auto& s : other.shards_) shards_.push_back(s->Clone());
  broadcast_preds_ = other.broadcast_preds_;
  pending_shard_count_ = other.pending_shard_count_;
  return *this;
}

ShardedStore::ShardedStore(ShardedStore&& other) noexcept
    : shard_backend_(other.shard_backend_),
      schema_(std::move(other.schema_)),
      shards_(std::move(other.shards_)),
      broadcast_preds_(std::move(other.broadcast_preds_)),
      pending_shard_count_(other.pending_shard_count_) {}

ShardedStore& ShardedStore::operator=(ShardedStore&& other) noexcept {
  if (this == &other) return *this;
  shard_backend_ = other.shard_backend_;
  schema_ = std::move(other.schema_);
  shards_ = std::move(other.shards_);
  broadcast_preds_ = std::move(other.broadcast_preds_);
  pending_shard_count_ = other.pending_shard_count_;
  return *this;
}

bool ShardedStore::SetShardCount(size_t n) {
  if (n == 0) n = 1;
  if (n == shards_.size()) {
    pending_shard_count_ = 0;
    return true;
  }
  if (!Restructurable()) {
    pending_shard_count_ = n;
    return false;
  }
  RepartitionNow(n);
  return true;
}

void ShardedStore::SetBroadcastPredicates(std::vector<TermId> preds) {
  std::sort(preds.begin(), preds.end());
  preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
  if (preds == broadcast_preds_) return;
  std::vector<Triple> all = ToVector();
  broadcast_preds_ = std::move(preds);
  schema_->Clear();
  for (auto& s : shards_) s->Clear();
  InsertBatch(all);
}

std::vector<size_t> ShardedStore::ShardSizes() const {
  std::vector<size_t> sizes;
  sizes.reserve(shards_.size());
  for (const auto& s : shards_) sizes.push_back(s->size());
  return sizes;
}

double ShardedStore::SkewRatio() const {
  size_t total = 0;
  size_t max = 0;
  for (const auto& s : shards_) {
    const size_t n = s->size();
    total += n;
    max = std::max(max, n);
  }
  if (total == 0) return 0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards_.size());
  return static_cast<double>(max) / mean;
}

void ShardedStore::PublishGauges() const {
  auto& reg = obs::MetricsRegistry::Get();
  reg.GetGauge("wdr.shard.count")
      .Set(static_cast<int64_t>(shards_.size()));
  reg.GetGauge("wdr.shard.schema_size")
      .Set(static_cast<int64_t>(schema_->size()));
  reg.GetGauge("wdr.shard.skew_x100")
      .Set(static_cast<int64_t>(SkewRatio() * 100.0));
  for (size_t i = 0; i < shards_.size(); ++i) {
    reg.GetGauge("wdr.shard.size." + std::to_string(i))
        .Set(static_cast<int64_t>(shards_[i]->size()));
  }
}

void ShardedStore::OpenScan(ScanHandle& handle, const ScanPlan& plan) const {
  std::vector<const StoreView*> members;
  CollectMembers(plan, &members);
  handle.Emplace<ShardedScanCursor>(this, plan, members);
}

void ShardedStore::LocalView::OpenScan(ScanHandle& handle,
                                       const ScanPlan& plan) const {
  std::vector<const StoreView*> members{members_[0], members_[1]};
  handle.Emplace<ShardedScanCursor>(nullptr, plan, members);
}

std::unique_ptr<StoreView> ShardedStore::LocalView::Clone() const {
  // Snapshot clone: the view is a borrowing composite, so a deep copy
  // materializes into a plain store of the member backend.
  std::unique_ptr<StoreView> copy = MakeStore(backend_);
  copy->InsertBatch(ToVector());
  return copy;
}

bool ShardedStore::Insert(const Triple& t) {
  MaybeApplyPendingLayout();
  if (IsBroadcast(t.p)) return schema_->Insert(t);
  return shards_[OwnerShard(t.s)]->Insert(t);
}

bool ShardedStore::Erase(const Triple& t) {
  MaybeApplyPendingLayout();
  if (IsBroadcast(t.p)) return schema_->Erase(t);
  return shards_[OwnerShard(t.s)]->Erase(t);
}

size_t ShardedStore::InsertBatch(std::span<const Triple> batch) {
  MaybeApplyPendingLayout();
  // Partition first so each member gets one bulk-friendly sub-batch.
  std::vector<Triple> schema_batch;
  std::vector<std::vector<Triple>> shard_batch(shards_.size());
  for (const Triple& t : batch) {
    if (IsBroadcast(t.p)) {
      schema_batch.push_back(t);
    } else {
      shard_batch[OwnerShard(t.s)].push_back(t);
    }
  }
  size_t added = schema_->InsertBatch(schema_batch);
  for (size_t i = 0; i < shards_.size(); ++i) {
    added += shards_[i]->InsertBatch(shard_batch[i]);
  }
  return added;
}

void ShardedStore::Clear() {
  MaybeApplyPendingLayout();
  schema_->Clear();
  for (auto& s : shards_) s->Clear();
}

bool ShardedStore::Contains(const Triple& t) const {
  if (IsBroadcast(t.p)) return schema_->Contains(t);
  return shards_[OwnerShard(t.s)]->Contains(t);
}

size_t ShardedStore::size() const {
  size_t total = schema_->size();
  for (const auto& s : shards_) total += s->size();
  return total;
}

size_t ShardedStore::Count(TermId s, TermId p, TermId o) const {
  std::vector<const StoreView*> members;
  CollectMembers(PlanScan(s, p, o), &members);
  size_t total = 0;
  for (const StoreView* m : members) total += m->Count(s, p, o);
  return total;
}

size_t ShardedStore::CountRange(const ScanPlan& plan) const {
  std::vector<const StoreView*> members;
  CollectMembers(plan, &members);
  size_t total = 0;
  for (const StoreView* m : members) total += m->CountRange(plan);
  return total;
}

size_t ShardedStore::EstimateCount(TermId s, TermId p, TermId o) const {
  // Same capped-enumeration algorithm as the single ordered store, run
  // over the merged cursor: estimates depend only on store *contents*, so
  // the cost-based join order — and the result row stream — is identical
  // at every shard count.
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;
  if (bs && bp && bo) return Contains(Triple(s, p, o)) ? 1 : 0;
  if (!bs && !bp && !bo) return size();
  size_t n = 0;
  constexpr size_t kCap = 64;
  Match(s, p, o, [&n](const Triple&) { return ++n < kCap; });
  if (n < kCap) return n;
  const int bound = (bs ? 1 : 0) + (bp ? 1 : 0) + (bo ? 1 : 0);
  return size() >> (2 * bound);
}

void ShardedStore::PinEpoch() const {
  epoch_pins_.fetch_add(1, std::memory_order_relaxed);
  schema_->PinEpoch();
  for (const auto& s : shards_) s->PinEpoch();
}

void ShardedStore::UnpinEpoch() const {
  schema_->UnpinEpoch();
  for (const auto& s : shards_) s->UnpinEpoch();
  epoch_pins_.fetch_sub(1, std::memory_order_relaxed);
}

bool ShardedStore::TryCompact() {
  MaybeApplyPendingLayout();
  bool all = pending_shard_count_ == 0;
  if (!schema_->TryCompact()) all = false;
  for (auto& s : shards_) {
    if (!s->TryCompact()) all = false;
  }
  return all;
}

std::unique_ptr<StoreView> ShardedStore::MakeEmpty() const {
  const size_t n =
      pending_shard_count_ != 0 ? pending_shard_count_ : shards_.size();
  auto empty = std::make_unique<ShardedStore>(n, shard_backend_);
  empty->broadcast_preds_ = broadcast_preds_;
  return empty;
}

void ShardedStore::OnIdsPermuted(std::span<const TermId> perm) {
  for (TermId& p : broadcast_preds_) {
    if (static_cast<size_t>(p) < perm.size()) p = perm[p];
  }
  std::sort(broadcast_preds_.begin(), broadcast_preds_.end());
}

void ShardedStore::MaybeApplyPendingLayout() {
  if (pending_shard_count_ == 0 || !Restructurable()) return;
  RepartitionNow(pending_shard_count_);
}

void ShardedStore::RepartitionNow(size_t n) {
  std::vector<Triple> instance;
  for (const auto& s : shards_) {
    s->Match(0, 0, 0, [&](const Triple& t) { instance.push_back(t); });
  }
  std::vector<std::unique_ptr<StoreView>> next;
  next.reserve(n);
  for (size_t i = 0; i < n; ++i) next.push_back(MakeStore(shard_backend_));
  shards_ = std::move(next);
  pending_shard_count_ = 0;
  InsertBatch(instance);
  WDR_COUNTER_INC("wdr.shard.repartitions");
  PublishGauges();
}

void ShardedStore::CollectMembers(
    const ScanPlan& plan, std::vector<const StoreView*>* members) const {
  const bool p_point = plan.p.is_point();
  const bool p_broadcast = p_point && IsBroadcast(plan.p.lo);
  if (p_broadcast) {
    // All matches have a broadcast predicate: the schema store alone.
    members->push_back(schema_.get());
    return;
  }
  // A wild/range predicate may match schema triples too; a non-broadcast
  // point predicate cannot (the schema store only holds broadcast ones).
  if (!p_point) members->push_back(schema_.get());
  if (plan.s.is_point()) {
    members->push_back(shards_[OwnerShard(plan.s.lo)].get());
    return;
  }
  for (const auto& s : shards_) members->push_back(s.get());
}

}  // namespace wdr::rdf
