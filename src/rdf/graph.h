#ifndef WDR_RDF_GRAPH_H_
#define WDR_RDF_GRAPH_H_

#include <string>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "rdf/triple_store.h"

namespace wdr::rdf {

// Basic statistics over a graph, used by benches and the strategy advisor.
struct GraphStats {
  size_t triple_count = 0;
  size_t term_count = 0;
  size_t schema_triple_count = 0;  // triples whose property is an RDFS one
};

// An RDF graph: a dictionary plus a store of encoded triples. Both schema
// (RDFS) triples and instance triples live in the same store, as in the RDF
// standard; the schema module derives a constraint view from it.
class Graph {
 public:
  Graph() = default;

  // Copyable: snapshotting the base graph is how benches restore state
  // between runs. Moves are cheap.
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  TripleStore& store() { return store_; }
  const TripleStore& store() const { return store_; }

  // Interns the three terms and inserts the triple. Returns false if the
  // triple was already present.
  bool Insert(const Term& s, const Term& p, const Term& o);

  // Convenience for all-IRI triples.
  bool InsertIris(const std::string& s, const std::string& p,
                  const std::string& o);

  bool Insert(const Triple& t) { return store_.Insert(t); }
  bool Erase(const Triple& t) { return store_.Erase(t); }
  bool Contains(const Triple& t) const { return store_.Contains(t); }

  size_t size() const { return store_.size(); }

  // Decodes `t` to N-Triples syntax ("<s> <p> <o> .").
  std::string Decode(const Triple& t) const;

  GraphStats Stats() const;

 private:
  Dictionary dict_;
  TripleStore store_;
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_GRAPH_H_
