#ifndef WDR_RDF_GRAPH_H_
#define WDR_RDF_GRAPH_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/store_view.h"
#include "rdf/triple.h"

namespace wdr::rdf {

// Basic statistics over a graph, used by benches and the strategy advisor.
struct GraphStats {
  size_t triple_count = 0;
  size_t term_count = 0;
  size_t schema_triple_count = 0;  // triples whose property is an RDFS one
};

// An RDF graph: a dictionary plus a store of encoded triples. Both schema
// (RDFS) triples and instance triples live in the same store, as in the RDF
// standard; the schema module derives a constraint view from it.
//
// The storage engine is selected at construction (and switchable later):
// every consumer sees only the StoreView seam, so the reasoning layers are
// agnostic to the physical triple layout.
class Graph {
 public:
  explicit Graph(StorageBackend backend = StorageBackend::kOrdered)
      : backend_(backend), store_(MakeStore(backend)) {}

  // Copyable: snapshotting the base graph is how benches restore state
  // between runs. Moves are cheap.
  Graph(const Graph& other)
      : dict_(other.dict_),
        backend_(other.backend_),
        store_(other.store_->Clone()) {}
  Graph& operator=(const Graph& other) {
    if (this != &other) {
      dict_ = other.dict_;
      backend_ = other.backend_;
      store_ = other.store_->Clone();
    }
    return *this;
  }
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  StoreView& store() { return *store_; }
  const StoreView& store() const { return *store_; }

  StorageBackend backend() const { return backend_; }

  // Switches the storage engine, carrying the triples over. No-op if the
  // backend is already `backend`.
  void SetBackend(StorageBackend backend);

  // Replaces the store with a caller-configured (empty) one — e.g. a
  // ShardedStore with a specific shard count and broadcast-predicate set —
  // carrying the current triples over.
  void AdoptStore(std::unique_ptr<StoreView> replacement);

  // Renumbers the whole graph under an old-id -> new-id bijection: the
  // dictionary (Dictionary::ApplyPermutation) and every stored triple,
  // rebuilt into a fresh store of the same backend. This is the rebuild
  // half of the hierarchy-aware encoding (rdf/hier_encoding.h); callers
  // must remap any TermIds they hold outside the graph.
  void ApplyPermutation(const std::vector<TermId>& perm);

  // Interns the three terms without inserting, returning the encoded triple.
  Triple Encode(const Term& s, const Term& p, const Term& o) {
    return Triple(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
  }

  // Interns the three terms and inserts the triple. Returns false if the
  // triple was already present.
  bool Insert(const Term& s, const Term& p, const Term& o);

  // Convenience for all-IRI triples.
  bool InsertIris(const std::string& s, const std::string& p,
                  const std::string& o);

  bool Insert(const Triple& t) { return store_->Insert(t); }
  bool Erase(const Triple& t) { return store_->Erase(t); }
  bool Contains(const Triple& t) const { return store_->Contains(t); }

  // Batch insertion of already-encoded triples; returns the number added.
  size_t InsertBatch(std::span<const Triple> batch) {
    return store_->InsertBatch(batch);
  }

  size_t size() const { return store_->size(); }

  // Decodes `t` to N-Triples syntax ("<s> <p> <o> .").
  std::string Decode(const Triple& t) const;

  GraphStats Stats() const;

 private:
  Dictionary dict_;
  StorageBackend backend_ = StorageBackend::kOrdered;
  std::unique_ptr<StoreView> store_;
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_GRAPH_H_
