#ifndef WDR_RDF_STORE_VIEW_H_
#define WDR_RDF_STORE_VIEW_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <string_view>
#include <type_traits>
#include <vector>

#include "rdf/triple.h"

namespace wdr::rdf {

// The three index orders every backend maintains. With a wildcard-free
// prefix convention, these cover every triple-pattern shape with a
// contiguous range scan:
//   SPO: (s ? ?), (s p ?), (s p o)
//   POS: (? p ?), (? p o)
//   OSP: (? ? o), (s ? o) -- via SPO prefix on s, filtering o
enum class IndexOrder { kSpo = 0, kPos = 1, kOsp = 2 };

inline constexpr int kIndexOrderCount = 3;

// Index keys are permuted triples so lexicographic order on the permuted
// components matches the index order.
inline Triple PermuteKey(const Triple& t, IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return t;
    case IndexOrder::kPos:
      return Triple(t.p, t.o, t.s);
    case IndexOrder::kOsp:
      return Triple(t.o, t.s, t.p);
  }
  return t;
}

inline Triple UnpermuteKey(const Triple& k, IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return k;
    case IndexOrder::kPos:
      return Triple(k.o, k.s, k.p);  // key = (p,o,s)
    case IndexOrder::kOsp:
      return Triple(k.p, k.o, k.s);  // key = (o,s,p)
  }
  return k;
}

// A compiled triple-pattern scan: which index to use, how many leading key
// components are bound, and a residual filter (0 = accept) applied in
// subject/property/object space to triples inside the range.
struct ScanPlan {
  IndexOrder order = IndexOrder::kSpo;
  int prefix_len = 0;
  Triple probe;   // pattern in s/p/o space; non-prefix positions zeroed
  Triple filter;  // residual constraints in s/p/o space

  bool PassesFilter(const Triple& t) const {
    return (filter.s == 0 || t.s == filter.s) &&
           (filter.p == 0 || t.p == filter.p) &&
           (filter.o == 0 || t.o == filter.o);
  }

  // Inclusive key-space bounds of the scanned range (permuted components).
  void KeyBounds(Triple* lo, Triple* hi) const {
    constexpr TermId kMax = std::numeric_limits<TermId>::max();
    *lo = *hi = PermuteKey(probe, order);
    if (prefix_len <= 2) lo->o = 0, hi->o = kMax;
    if (prefix_len <= 1) lo->p = 0, hi->p = kMax;
    if (prefix_len <= 0) lo->s = 0, hi->s = kMax;
  }
};

// Chooses index, prefix length and residual filter for a pattern
// (kNullTermId = wildcard). The (s ? o) shape scans the SPO s-prefix with
// an o filter, which is typically smaller than the OSP o-prefix.
inline ScanPlan PlanScan(TermId s, TermId p, TermId o) {
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;
  ScanPlan plan;
  plan.probe = Triple(s, p, o);
  plan.filter = Triple(0, 0, 0);
  if (bs) {
    plan.order = IndexOrder::kSpo;
    plan.prefix_len = 1 + (bp ? 1 : 0) + ((bp && bo) ? 1 : 0);
    if (!bp && bo) {
      plan.probe = Triple(s, 0, 0);
      plan.filter = Triple(0, 0, o);
    }
  } else if (bp) {
    plan.order = IndexOrder::kPos;
    plan.prefix_len = 1 + (bo ? 1 : 0);
  } else if (bo) {
    plan.order = IndexOrder::kOsp;
    plan.prefix_len = 1;
  } else {
    plan.order = IndexOrder::kSpo;
    plan.prefix_len = 0;
  }
  return plan;
}

// Pull-style iterator over the matches of one triple-pattern scan.
// Triples are produced in the scan's index order. Cursors must not outlive
// the store they scan; mutating the store mid-scan follows the same
// guarantees as iterating a std::set (triples inserted during the scan may
// or may not be visited; the scanned store must not be cleared/compacted).
class ScanCursor {
 public:
  virtual ~ScanCursor() = default;

  // Copies up to `cap` next matches into `out` and returns the number
  // copied; 0 means the scan is exhausted.
  virtual size_t NextBatch(Triple* out, size_t cap) = 0;

  // Skips forward to the first remaining match >= `key` (given in s/p/o
  // space, compared in the scan's permutation order). Never moves backward.
  virtual void SeekAtLeast(const Triple& key) = 0;
};

// Fixed-capacity slot a backend placement-news its cursor into, so opening
// a scan performs no heap allocation (scans are the innermost operation of
// every join and every rule application).
class ScanHandle {
 public:
  static constexpr size_t kInlineBytes = 160;

  ScanHandle() = default;
  ~ScanHandle() { Reset(); }
  ScanHandle(const ScanHandle&) = delete;
  ScanHandle& operator=(const ScanHandle&) = delete;

  template <typename C, typename... Args>
  C& Emplace(Args&&... args) {
    static_assert(std::is_base_of_v<ScanCursor, C>);
    static_assert(sizeof(C) <= kInlineBytes, "cursor too large for handle");
    static_assert(alignof(C) <= alignof(std::max_align_t));
    Reset();
    C* cursor = ::new (static_cast<void*>(buffer_)) C(std::forward<Args>(args)...);
    cursor_ = cursor;
    return *cursor;
  }

  ScanCursor* get() { return cursor_; }
  ScanCursor& operator*() { return *cursor_; }
  ScanCursor* operator->() { return cursor_; }

  void Reset() {
    if (cursor_ != nullptr) {
      cursor_->~ScanCursor();
      cursor_ = nullptr;
    }
  }

 private:
  alignas(std::max_align_t) unsigned char buffer_[kInlineBytes];
  ScanCursor* cursor_ = nullptr;
};

namespace internal {
// Adapts callables returning void to the bool protocol (continue scanning).
template <typename Fn>
bool InvokeMatchFn(Fn&& fn, const Triple& t) {
  if constexpr (std::is_void_v<decltype(fn(t))>) {
    fn(t);
    return true;
  } else {
    return fn(t);
  }
}
}  // namespace internal

// Available storage engines behind the StoreView seam.
enum class StorageBackend {
  kOrdered,  // TripleStore: three node-based ordered sets, O(log n) updates
  kFlat,     // FlatTripleStore: flat sorted arrays + delta log, fast scans
};

const char* StorageBackendName(StorageBackend backend);
bool ParseStorageBackend(std::string_view name, StorageBackend* backend);

// The storage-engine seam: everything the reasoning, query, backward,
// federation and store layers need from triple storage. Concrete layouts
// (ordered sets, flat arrays, future columnar/sharded backends) live behind
// this interface; no consumer outside src/rdf names a backend type on its
// evaluation path.
//
// Concurrency contract: any number of threads may *read* one store
// concurrently (Contains/Count/EstimateCount/OpenScan/Match/ToVector) as
// long as no thread mutates it — backends keep their read paths free of
// non-atomic mutable state. Mutations require exclusive access; there is
// no internal locking. Parallel saturation relies on exactly this split:
// worker threads scan a frozen closure, and a single merge thread writes
// between rounds.
class StoreView {
 public:
  virtual ~StoreView() = default;

  // --- Mutation ----------------------------------------------------------

  // Inserts `t`; returns false if it was already present.
  virtual bool Insert(const Triple& t) = 0;

  // Erases `t`; returns false if it was not present.
  virtual bool Erase(const Triple& t) = 0;

  // Inserts a batch, amortizing per-triple index maintenance where the
  // backend supports it. Returns the number of triples actually added
  // (duplicates, within the batch or against the store, count once).
  virtual size_t InsertBatch(std::span<const Triple> batch);

  virtual void Clear() = 0;

  // --- Lookup ------------------------------------------------------------

  virtual bool Contains(const Triple& t) const = 0;
  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }

  // Counts matches of the pattern (kNullTermId = wildcard). Fully-wild
  // patterns return size() and fully-bound ones reduce to Contains()
  // without enumerating.
  virtual size_t Count(TermId s, TermId p, TermId o) const;

  // Estimated number of matches, used for join ordering. Exact for fully
  // wild and fully bound patterns; backend-dependent otherwise.
  virtual size_t EstimateCount(TermId s, TermId p, TermId o) const = 0;

  // --- Scanning ----------------------------------------------------------

  // Opens a cursor over the matches of the pattern into `handle`.
  virtual void OpenScan(ScanHandle& handle, TermId s, TermId p,
                        TermId o) const = 0;

  // Invokes `fn(const Triple&)` for every triple matching the pattern,
  // where kNullTermId (0) in a position is a wildcard. If `fn` returns
  // false the scan stops early. Fn: bool(const Triple&) or
  // void(const Triple&). Implemented over OpenScan with batched pulls so
  // the per-triple virtual-dispatch cost is amortized.
  template <typename Fn>
  void Match(TermId s, TermId p, TermId o, Fn&& fn) const {
    ScanHandle handle;
    OpenScan(handle, s, p, o);
    Triple buffer[kMatchBatch];
    for (;;) {
      size_t n = handle->NextBatch(buffer, kMatchBatch);
      if (n == 0) return;
      for (size_t i = 0; i < n; ++i) {
        if (!internal::InvokeMatchFn(fn, buffer[i])) return;
      }
    }
  }

  // Copies all triples in SPO order.
  std::vector<Triple> ToVector() const;

  // --- Introspection -----------------------------------------------------

  virtual StorageBackend backend() const = 0;

  // Deep copy preserving the backend (used by Graph snapshots).
  virtual std::unique_ptr<StoreView> Clone() const = 0;

  static constexpr size_t kMatchBatch = 64;
};

// Creates an empty store of the requested backend.
std::unique_ptr<StoreView> MakeStore(StorageBackend backend);

}  // namespace wdr::rdf

#endif  // WDR_RDF_STORE_VIEW_H_
