#ifndef WDR_RDF_STORE_VIEW_H_
#define WDR_RDF_STORE_VIEW_H_

#include <cstddef>
#include <limits>
#include <memory>
#include <new>
#include <span>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "rdf/triple.h"

namespace wdr::rdf {

// The three index orders every backend maintains. With a wildcard-free
// prefix convention, these cover every triple-pattern shape with a
// contiguous range scan:
//   SPO: (s ? ?), (s p ?), (s p o)
//   POS: (? p ?), (? p o)
//   OSP: (? ? o), (s ? o) -- via SPO prefix on s, filtering o
enum class IndexOrder { kSpo = 0, kPos = 1, kOsp = 2 };

inline constexpr int kIndexOrderCount = 3;

// Index keys are permuted triples so lexicographic order on the permuted
// components matches the index order.
inline Triple PermuteKey(const Triple& t, IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return t;
    case IndexOrder::kPos:
      return Triple(t.p, t.o, t.s);
    case IndexOrder::kOsp:
      return Triple(t.o, t.s, t.p);
  }
  return t;
}

inline Triple UnpermuteKey(const Triple& k, IndexOrder order) {
  switch (order) {
    case IndexOrder::kSpo:
      return k;
    case IndexOrder::kPos:
      return Triple(k.o, k.s, k.p);  // key = (p,o,s)
    case IndexOrder::kOsp:
      return Triple(k.p, k.o, k.s);  // key = (o,s,p)
  }
  return k;
}

// An inclusive term-id interval. Default-constructed it matches every id
// (wildcard); Point(id) matches exactly one. Ranges are how the
// hierarchy-aware (LiteMat-style) encoding expresses "any subclass of c" as
// a single constraint: after the encoding pass a subclass closure occupies
// one contiguous id interval, so the UCQ over it collapses to a range scan.
struct TermRange {
  static constexpr TermId kMaxId = std::numeric_limits<TermId>::max();

  TermId lo = 0;
  TermId hi = kMaxId;

  static constexpr TermRange Any() { return TermRange{}; }
  static constexpr TermRange Point(TermId id) { return TermRange{id, id}; }
  // The kNullTermId-as-wildcard pattern convention of Match/Count.
  static constexpr TermRange Pattern(TermId id) {
    return id == kNullTermId ? Any() : Point(id);
  }

  constexpr bool is_point() const { return lo == hi; }
  constexpr bool is_any() const { return lo == 0 && hi == kMaxId; }
  constexpr bool Contains(TermId id) const { return lo <= id && id <= hi; }

  friend constexpr bool operator==(const TermRange&, const TermRange&) =
      default;
};

// A compiled triple-pattern scan: which index to use plus the per-position
// constraints, each an inclusive range (points and wildcards are the
// special cases). The scanned key window is the component-wise [lo, hi]
// box permuted into index order; any matching key k satisfies
// (a.lo, b.lo, c.lo) <= k <= (a.hi, b.hi, c.hi) lexicographically (by
// induction on components), so the window is a superset of the matches and
// PassesFilter removes the rest.
struct ScanPlan {
  IndexOrder order = IndexOrder::kSpo;
  TermRange s, p, o;

  bool PassesFilter(const Triple& t) const {
    return s.Contains(t.s) && p.Contains(t.p) && o.Contains(t.o);
  }

  // Inclusive key-space bounds of the scanned window (permuted components).
  void KeyBounds(Triple* lo, Triple* hi) const {
    *lo = PermuteKey(Triple(s.lo, p.lo, o.lo), order);
    *hi = PermuteKey(Triple(s.hi, p.hi, o.hi), order);
  }

  // Per-position ranges in permuted (key-component) order.
  void PermutedRanges(TermRange out[3]) const {
    switch (order) {
      case IndexOrder::kSpo:
        out[0] = s, out[1] = p, out[2] = o;
        return;
      case IndexOrder::kPos:
        out[0] = p, out[1] = o, out[2] = s;
        return;
      case IndexOrder::kOsp:
        out[0] = o, out[1] = s, out[2] = p;
        return;
    }
  }

  // True when the key window contains exactly the matches (no residual
  // filtering): every permuted component after the first non-point one is
  // unconstrained. Closed-form range counting is valid exactly then.
  bool Exact() const {
    TermRange key[3];
    PermutedRanges(key);
    int i = 0;
    while (i < 3 && key[i].is_point()) ++i;
    for (int j = i + 1; j < 3; ++j) {
      if (!key[j].is_any()) return false;
    }
    return true;
  }
};

// Chooses the index for a per-position range pattern: the index whose
// leading key component is a point, preferring s, then p, then o (the
// (s ? o) shape scans the SPO s-prefix with an o filter, typically smaller
// than the OSP o-prefix); with no point available, the index led by the
// narrowest-available constrained component, so a range-encoded
// (? type [lo,hi]) pattern becomes one contiguous POS window.
inline ScanPlan PlanRangeScan(const TermRange& s, const TermRange& p,
                              const TermRange& o) {
  ScanPlan plan;
  plan.s = s;
  plan.p = p;
  plan.o = o;
  if (s.is_point()) {
    plan.order = IndexOrder::kSpo;
  } else if (p.is_point()) {
    plan.order = IndexOrder::kPos;
  } else if (o.is_point()) {
    plan.order = IndexOrder::kOsp;
  } else if (!s.is_any()) {
    plan.order = IndexOrder::kSpo;
  } else if (!p.is_any()) {
    plan.order = IndexOrder::kPos;
  } else {
    plan.order = o.is_any() ? IndexOrder::kSpo : IndexOrder::kOsp;
  }
  return plan;
}

// Point/wildcard pattern convenience (kNullTermId = wildcard).
inline ScanPlan PlanScan(TermId s, TermId p, TermId o) {
  return PlanRangeScan(TermRange::Pattern(s), TermRange::Pattern(p),
                       TermRange::Pattern(o));
}

// Pull-style iterator over the matches of one triple-pattern scan.
// Triples are produced in the scan's index order. Cursors must not outlive
// the store they scan; mutating the store mid-scan follows the same
// guarantees as iterating a std::set (triples inserted during the scan may
// or may not be visited; the scanned store must not be cleared/compacted).
class ScanCursor {
 public:
  virtual ~ScanCursor() = default;

  // Copies up to `cap` next matches into `out` and returns the number
  // copied; 0 means the scan is exhausted.
  virtual size_t NextBatch(Triple* out, size_t cap) = 0;

  // Skips forward to the first remaining match >= `key` (given in s/p/o
  // space, compared in the scan's permutation order). Never moves backward.
  virtual void SeekAtLeast(const Triple& key) = 0;
};

// Fixed-capacity slot a backend placement-news its cursor into, so opening
// a scan performs no heap allocation (scans are the innermost operation of
// every join and every rule application).
class ScanHandle {
 public:
  static constexpr size_t kInlineBytes = 160;

  ScanHandle() = default;
  ~ScanHandle() { Reset(); }
  ScanHandle(const ScanHandle&) = delete;
  ScanHandle& operator=(const ScanHandle&) = delete;

  template <typename C, typename... Args>
  C& Emplace(Args&&... args) {
    static_assert(std::is_base_of_v<ScanCursor, C>);
    static_assert(sizeof(C) <= kInlineBytes, "cursor too large for handle");
    static_assert(alignof(C) <= alignof(std::max_align_t));
    Reset();
    C* cursor = ::new (static_cast<void*>(buffer_)) C(std::forward<Args>(args)...);
    cursor_ = cursor;
    return *cursor;
  }

  ScanCursor* get() { return cursor_; }
  ScanCursor& operator*() { return *cursor_; }
  ScanCursor* operator->() { return cursor_; }

  void Reset() {
    if (cursor_ != nullptr) {
      cursor_->~ScanCursor();
      cursor_ = nullptr;
    }
  }

 private:
  alignas(std::max_align_t) unsigned char buffer_[kInlineBytes];
  ScanCursor* cursor_ = nullptr;
};

namespace internal {
// Adapts callables returning void to the bool protocol (continue scanning).
template <typename Fn>
bool InvokeMatchFn(Fn&& fn, const Triple& t) {
  if constexpr (std::is_void_v<decltype(fn(t))>) {
    fn(t);
    return true;
  } else {
    return fn(t);
  }
}
}  // namespace internal

// Available storage engines behind the StoreView seam.
enum class StorageBackend {
  kOrdered,  // TripleStore: three node-based ordered sets, O(log n) updates
  kFlat,     // FlatTripleStore: flat sorted arrays + delta log, fast scans
  kSharded,  // ShardedStore: subject-hash partitioned composite of the above
};

const char* StorageBackendName(StorageBackend backend);
bool ParseStorageBackend(std::string_view name, StorageBackend* backend);

// The storage-engine seam: everything the reasoning, query, backward,
// federation and store layers need from triple storage. Concrete layouts
// (ordered sets, flat arrays, future columnar/sharded backends) live behind
// this interface; no consumer outside src/rdf names a backend type on its
// evaluation path.
//
// Concurrency contract: any number of threads may *read* one store
// concurrently (Contains/Count/EstimateCount/OpenScan/Match/ToVector) as
// long as no thread mutates it — backends keep their read paths free of
// non-atomic mutable state. Mutations require exclusive access; there is
// no internal locking. Parallel saturation relies on exactly this split:
// worker threads scan a frozen closure, and a single merge thread writes
// between rounds.
class StoreView {
 public:
  // Dependent names generic adapters (exec::StoreSource) use to push range
  // constraints down without naming rdf types.
  using Range = TermRange;
  static ScanPlan MakeRangePlan(const TermRange& s, const TermRange& p,
                                const TermRange& o) {
    return PlanRangeScan(s, p, o);
  }

  virtual ~StoreView() = default;

  // --- Mutation ----------------------------------------------------------

  // Inserts `t`; returns false if it was already present.
  virtual bool Insert(const Triple& t) = 0;

  // Erases `t`; returns false if it was not present.
  virtual bool Erase(const Triple& t) = 0;

  // Inserts a batch, amortizing per-triple index maintenance where the
  // backend supports it. Returns the number of triples actually added
  // (duplicates, within the batch or against the store, count once).
  virtual size_t InsertBatch(std::span<const Triple> batch);

  virtual void Clear() = 0;

  // --- Lookup ------------------------------------------------------------

  virtual bool Contains(const Triple& t) const = 0;
  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }

  // Counts matches of the pattern (kNullTermId = wildcard). Fully-wild
  // patterns return size() and fully-bound ones reduce to Contains()
  // without enumerating.
  virtual size_t Count(TermId s, TermId p, TermId o) const;

  // Counts the matches of a compiled (possibly range-constrained) plan.
  // Backends answer Exact() plans in closed form where their layout
  // allows; the default enumerates.
  virtual size_t CountRange(const ScanPlan& plan) const;

  // Estimated number of matches, used for join ordering. Exact for fully
  // wild and fully bound patterns; backend-dependent otherwise.
  virtual size_t EstimateCount(TermId s, TermId p, TermId o) const = 0;

  // Range-pattern estimate with the same contract as EstimateCount. The
  // default does a capped enumeration and falls back to a coarse
  // positional signal.
  virtual size_t EstimateCountRange(const ScanPlan& plan) const;

  // --- Scanning ----------------------------------------------------------

  // Opens a cursor over the matches of a compiled scan plan into `handle`
  // — the range-capable primitive every other scan entry point lowers to.
  virtual void OpenScan(ScanHandle& handle, const ScanPlan& plan) const = 0;

  // Opens a cursor over the matches of the point/wildcard pattern.
  void OpenScan(ScanHandle& handle, TermId s, TermId p, TermId o) const {
    OpenScan(handle, PlanScan(s, p, o));
  }

  // Invokes `fn(const Triple&)` for every triple matching the pattern,
  // where kNullTermId (0) in a position is a wildcard. If `fn` returns
  // false the scan stops early. Fn: bool(const Triple&) or
  // void(const Triple&). Implemented over OpenScan with batched pulls so
  // the per-triple virtual-dispatch cost is amortized.
  template <typename Fn>
  void Match(TermId s, TermId p, TermId o, Fn&& fn) const {
    MatchPlan(PlanScan(s, p, o), std::forward<Fn>(fn));
  }

  // Match over a compiled (possibly range-constrained) plan.
  template <typename Fn>
  void MatchPlan(const ScanPlan& plan, Fn&& fn) const {
    ScanHandle handle;
    OpenScan(handle, plan);
    Triple buffer[kMatchBatch];
    for (;;) {
      size_t n = handle->NextBatch(buffer, kMatchBatch);
      if (n == 0) return;
      for (size_t i = 0; i < n; ++i) {
        if (!internal::InvokeMatchFn(fn, buffer[i])) return;
      }
    }
  }

  // Match over per-position inclusive ranges.
  template <typename Fn>
  void MatchRange(const TermRange& s, const TermRange& p, const TermRange& o,
                  Fn&& fn) const {
    MatchPlan(PlanRangeScan(s, p, o), std::forward<Fn>(fn));
  }

  // Copies all triples in SPO order.
  std::vector<Triple> ToVector() const;

  // --- Epoch pinning -----------------------------------------------------
  //
  // A reader that consumes a store across multiple scans (a whole query
  // evaluation, a snapshot held across requests) pins its epoch: while any
  // pin is held the store must not physically restructure — for the flat
  // backend that means delta/tombstone merges are deferred exactly as they
  // are for open cursors (the open_scans_ contract generalized from one
  // scan to one reader). Pins are counted, not owned; use EpochPin (below)
  // for scope safety. Thread-safe: concurrent readers pin and unpin freely.
  // Backends whose nodes are stable under mutation (the ordered backend)
  // only count, since they never restructure.

  virtual void PinEpoch() const {}
  virtual void UnpinEpoch() const {}
  // Live pins, for tests and the compaction-defer assertions.
  virtual size_t epoch_pins() const { return 0; }

  // Attempts any deferred physical restructuring now (the deterministic
  // hook the fault-injection tests drive). Returns false when live scans
  // or epoch pins forbid it; true otherwise — including when the backend
  // has nothing to restructure.
  virtual bool TryCompact() { return true; }

  // --- Introspection -----------------------------------------------------

  virtual StorageBackend backend() const = 0;

  // Deep copy preserving the backend (used by Graph snapshots).
  virtual std::unique_ptr<StoreView> Clone() const = 0;

  // Empty store with the same backend *and configuration* (shard count,
  // partitioning rules, ...). Rebuild paths (Graph::ApplyPermutation,
  // SaturatedGraph closures) must use this instead of MakeStore(backend())
  // so configured composite backends survive the rebuild. The default
  // covers configuration-free backends.
  virtual std::unique_ptr<StoreView> MakeEmpty() const;

  // Notifies the store that every TermId is about to be renumbered under
  // `perm` (old id -> new id). Only *configuration* ids are remapped
  // (e.g. the broadcast-predicate set of a sharded store); stored triples
  // are the caller's job — the rebuild path constructs a MakeEmpty()
  // replacement, calls OnIdsPermuted on it, then re-inserts the remapped
  // triples. No-op for backends without id-typed configuration.
  virtual void OnIdsPermuted(std::span<const TermId> perm) { (void)perm; }

  static constexpr size_t kMatchBatch = 64;
};

// RAII epoch pin: pins `store` for the lifetime of the object. Movable so
// a pinned read can be handed across scopes; a moved-from or default pin
// holds nothing.
class EpochPin {
 public:
  EpochPin() = default;
  explicit EpochPin(const StoreView& store) : store_(&store) {
    store_->PinEpoch();
  }
  ~EpochPin() { Release(); }

  EpochPin(const EpochPin&) = delete;
  EpochPin& operator=(const EpochPin&) = delete;
  EpochPin(EpochPin&& other) noexcept : store_(other.store_) {
    other.store_ = nullptr;
  }
  EpochPin& operator=(EpochPin&& other) noexcept {
    if (this != &other) {
      Release();
      store_ = other.store_;
      other.store_ = nullptr;
    }
    return *this;
  }

  void Release() {
    if (store_ != nullptr) {
      store_->UnpinEpoch();
      store_ = nullptr;
    }
  }

  bool held() const { return store_ != nullptr; }

 private:
  const StoreView* store_ = nullptr;
};

// Creates an empty store of the requested backend.
std::unique_ptr<StoreView> MakeStore(StorageBackend backend);

}  // namespace wdr::rdf

#endif  // WDR_RDF_STORE_VIEW_H_
