#include "rdf/triple_store.h"

#include <algorithm>

#include "obs/metrics.h"

namespace wdr::rdf {
namespace {

// Cursor over one ordered index range. Set iterators stay valid under
// insertion, so scans tolerate self-inserting callbacks exactly as direct
// std::set iteration did.
class SetScanCursor final : public ScanCursor {
 public:
  SetScanCursor(const std::set<Triple>& index, const ScanPlan& plan)
      : index_(&index), plan_(plan) {
    Triple lo;
    plan_.KeyBounds(&lo, &hi_);
    it_ = index_->lower_bound(lo);
  }

  size_t NextBatch(Triple* out, size_t cap) override {
    size_t n = 0;
    while (n < cap && it_ != index_->end() && !(hi_ < *it_)) {
      Triple t = UnpermuteKey(*it_, plan_.order);
      ++it_;
      if (!plan_.PassesFilter(t)) continue;
      out[n++] = t;
    }
    return n;
  }

  void SeekAtLeast(const Triple& key) override {
    Triple target = PermuteKey(key, plan_.order);
    if (it_ != index_->end() && !(*it_ < target)) return;  // never backward
    it_ = index_->lower_bound(target);
  }

 private:
  const std::set<Triple>* index_;
  std::set<Triple>::const_iterator it_;
  ScanPlan plan_;
  Triple hi_;
};

}  // namespace

bool TripleStore::Insert(const Triple& t) {
  if (!spo_.insert(t).second) return false;
  pos_.insert(PermuteKey(t, IndexOrder::kPos));
  osp_.insert(PermuteKey(t, IndexOrder::kOsp));
  return true;
}

bool TripleStore::Erase(const Triple& t) {
  if (spo_.erase(t) == 0) return false;
  pos_.erase(PermuteKey(t, IndexOrder::kPos));
  osp_.erase(PermuteKey(t, IndexOrder::kOsp));
  return true;
}

size_t TripleStore::InsertBatch(std::span<const Triple> batch) {
  if (batch.empty()) return 0;
  std::vector<Triple> keys(batch.begin(), batch.end());
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  const size_t before = spo_.size();
  {
    auto hint = spo_.begin();
    for (const Triple& t : keys) {
      hint = spo_.insert(hint, t);
      ++hint;
    }
  }
  const size_t added = spo_.size() - before;
  if (added != 0) {
    for (IndexOrder order : {IndexOrder::kPos, IndexOrder::kOsp}) {
      std::set<Triple>& index = order == IndexOrder::kPos ? pos_ : osp_;
      std::vector<Triple> permuted;
      permuted.reserve(keys.size());
      for (const Triple& t : keys) permuted.push_back(PermuteKey(t, order));
      std::sort(permuted.begin(), permuted.end());
      auto hint = index.begin();
      for (const Triple& t : permuted) {
        hint = index.insert(hint, t);
        ++hint;
      }
    }
  }
  return added;
}

void TripleStore::Clear() {
  spo_.clear();
  pos_.clear();
  osp_.clear();
}

void TripleStore::OpenScan(ScanHandle& handle, const ScanPlan& plan) const {
  WDR_COUNTER_INC("wdr.store.ordered.scans");
  handle.Emplace<SetScanCursor>(IndexFor(plan.order), plan);
}

size_t TripleStore::Count(TermId s, TermId p, TermId o) const {
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;
  // Fast paths: the two pattern extremes need no enumeration at all.
  if (!bs && !bp && !bo) return size();
  if (bs && bp && bo) return Contains(Triple(s, p, o)) ? 1 : 0;
  size_t n = 0;
  Match(s, p, o, [&n](const Triple&) { ++n; });
  return n;
}

size_t TripleStore::EstimateCount(TermId s, TermId p, TermId o) const {
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;
  if (bs && bp && bo) return Contains(Triple(s, p, o)) ? 1 : 0;
  if (!bs && !bp && !bo) return size();
  // Range sizes require linear distance on std::set; approximate with exact
  // counts for small selective patterns instead: counting is a scan anyway,
  // so bound the work and fall back to a coarse estimate.
  size_t n = 0;
  constexpr size_t kCap = 64;
  Match(s, p, o, [&n](const Triple&) { return ++n < kCap; });
  if (n < kCap) return n;
  // Hit the cap: produce a coarse ordering signal by bound positions.
  int bound = (bs ? 1 : 0) + (bp ? 1 : 0) + (bo ? 1 : 0);
  return size() >> (2 * bound);
}

std::ostream& operator<<(std::ostream& os, const Triple& t) {
  return os << "(" << t.s << " " << t.p << " " << t.o << ")";
}

}  // namespace wdr::rdf
