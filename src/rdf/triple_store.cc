#include "rdf/triple_store.h"

namespace wdr::rdf {

bool TripleStore::Insert(const Triple& t) {
  if (!spo_.insert(Key(t, kSpo)).second) return false;
  pos_.insert(Key(t, kPos));
  osp_.insert(Key(t, kOsp));
  return true;
}

bool TripleStore::Erase(const Triple& t) {
  if (spo_.erase(Key(t, kSpo)) == 0) return false;
  pos_.erase(Key(t, kPos));
  osp_.erase(Key(t, kOsp));
  return true;
}

void TripleStore::Clear() {
  spo_.clear();
  pos_.clear();
  osp_.clear();
}

size_t TripleStore::Count(TermId s, TermId p, TermId o) const {
  size_t n = 0;
  Match(s, p, o, [&n](const Triple&) { ++n; });
  return n;
}

size_t TripleStore::EstimateCount(TermId s, TermId p, TermId o) const {
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;
  if (bs && bp && bo) return Contains(Triple(s, p, o)) ? 1 : 0;
  if (!bs && !bp && !bo) return size();
  // Range sizes require linear distance on std::set; approximate with exact
  // counts for small selective patterns instead: counting is a scan anyway,
  // so bound the work and fall back to a coarse estimate.
  size_t n = 0;
  constexpr size_t kCap = 64;
  Match(s, p, o, [&n](const Triple&) { return ++n < kCap; });
  if (n < kCap) return n;
  // Hit the cap: produce a coarse ordering signal by bound positions.
  int bound = (bs ? 1 : 0) + (bp ? 1 : 0) + (bo ? 1 : 0);
  return size() >> (2 * bound);
}

std::vector<Triple> TripleStore::ToVector() const {
  return std::vector<Triple>(spo_.begin(), spo_.end());
}

std::ostream& operator<<(std::ostream& os, const Triple& t) {
  return os << "(" << t.s << " " << t.p << " " << t.o << ")";
}

}  // namespace wdr::rdf
