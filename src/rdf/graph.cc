#include "rdf/graph.h"

#include <string_view>

namespace wdr::rdf {
namespace {

constexpr std::string_view kRdfsPrefix = "http://www.w3.org/2000/01/rdf-schema#";

}  // namespace

bool Graph::Insert(const Term& s, const Term& p, const Term& o) {
  Triple t(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
  return store_.Insert(t);
}

bool Graph::InsertIris(const std::string& s, const std::string& p,
                       const std::string& o) {
  return Insert(Term::Iri(s), Term::Iri(p), Term::Iri(o));
}

std::string Graph::Decode(const Triple& t) const {
  return dict_.term(t.s).ToNTriples() + " " + dict_.term(t.p).ToNTriples() +
         " " + dict_.term(t.o).ToNTriples() + " .";
}

GraphStats Graph::Stats() const {
  GraphStats stats;
  stats.triple_count = store_.size();
  stats.term_count = dict_.size();
  store_.Match(0, 0, 0, [&](const Triple& t) {
    const Term& p = dict_.term(t.p);
    if (p.is_iri() && p.lexical.rfind(kRdfsPrefix, 0) == 0) {
      ++stats.schema_triple_count;
    }
  });
  return stats;
}

}  // namespace wdr::rdf
