#include "rdf/graph.h"

#include <string_view>
#include <utility>
#include <vector>

namespace wdr::rdf {
namespace {

constexpr std::string_view kRdfsPrefix = "http://www.w3.org/2000/01/rdf-schema#";

}  // namespace

void Graph::SetBackend(StorageBackend backend) {
  if (backend == backend_) return;
  std::vector<Triple> triples = store_->ToVector();
  std::unique_ptr<StoreView> replacement = MakeStore(backend);
  replacement->InsertBatch(triples);
  store_ = std::move(replacement);
  backend_ = backend;
}

void Graph::ApplyPermutation(const std::vector<TermId>& perm) {
  dict_.ApplyPermutation(perm);
  std::vector<Triple> triples = store_->ToVector();
  auto remap = [&](TermId id) {
    return static_cast<size_t>(id) < perm.size() ? perm[id] : id;
  };
  for (Triple& t : triples) {
    t = Triple(remap(t.s), remap(t.p), remap(t.o));
  }
  // MakeEmpty (not MakeStore) so configured composite backends keep their
  // layout; OnIdsPermuted remaps id-typed configuration (e.g. the
  // broadcast-predicate set) before the remapped triples re-route.
  std::unique_ptr<StoreView> replacement = store_->MakeEmpty();
  replacement->OnIdsPermuted(perm);
  replacement->InsertBatch(triples);
  store_ = std::move(replacement);
}

void Graph::AdoptStore(std::unique_ptr<StoreView> replacement) {
  replacement->InsertBatch(store_->ToVector());
  store_ = std::move(replacement);
  backend_ = store_->backend();
}

bool Graph::Insert(const Term& s, const Term& p, const Term& o) {
  return store_->Insert(Encode(s, p, o));
}

bool Graph::InsertIris(const std::string& s, const std::string& p,
                       const std::string& o) {
  return Insert(Term::Iri(s), Term::Iri(p), Term::Iri(o));
}

std::string Graph::Decode(const Triple& t) const {
  return dict_.term(t.s).ToNTriples() + " " + dict_.term(t.p).ToNTriples() +
         " " + dict_.term(t.o).ToNTriples() + " .";
}

GraphStats Graph::Stats() const {
  GraphStats stats;
  stats.triple_count = store_->size();
  stats.term_count = dict_.size();
  store_->Match(0, 0, 0, [&](const Triple& t) {
    const Term& p = dict_.term(t.p);
    if (p.is_iri() && p.lexical.rfind(kRdfsPrefix, 0) == 0) {
      ++stats.schema_triple_count;
    }
  });
  return stats;
}

}  // namespace wdr::rdf
