#include "rdf/hier_encoding.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"

namespace wdr::rdf {
namespace {

// One hierarchy (class or property) laid out as a first-parent spanning
// forest, preorder-numbered into `enc.perm_`. Shared by both DAGs.
class ForestEncoder {
 public:
  ForestEncoder(std::vector<TermId>* perm, TermId* next)
      : perm_(perm), next_(next) {}

  // `nodes` are the hierarchy's members (old ids, deterministic order);
  // `supers_of(n)` returns the direct super edges; `closure_of(n)` the
  // reflexive-transitive sub-closure (for the validity check). Intervals
  // land in `intervals`, keyed by NEW id; returns the invalid-node count.
  template <typename SupersFn, typename ClosureFn>
  size_t Encode(const std::vector<TermId>& nodes,
                const std::unordered_set<TermId>& members,
                SupersFn&& supers_of, ClosureFn&& closure_of,
                std::unordered_map<TermId, HierInterval>& intervals) {
    std::unordered_map<TermId, std::vector<TermId>> children;
    std::unordered_set<TermId> has_parent;
    for (TermId node : nodes) {
      // Tightest-parent rule: anchor under the super with the smallest
      // sub-closure (ties broken by id for determinism). On a closed
      // schema the direct-super list contains ALL ancestors; anchoring
      // under a transitive one would punch the node out of its immediate
      // parent's subtree and invalidate that parent for nothing. Further
      // parents (true diamonds) still leave the node reachable only
      // through this one.
      TermId best = kNullTermId;
      size_t best_size = 0;
      for (TermId super : supers_of(node)) {
        if (super == node || members.count(super) == 0) continue;
        const size_t size = closure_of(super).size();
        if (best == kNullTermId || size < best_size ||
            (size == best_size && super < best)) {
          best = super;
          best_size = size;
        }
      }
      if (best != kNullTermId) {
        children[best].push_back(node);
        has_parent.insert(node);
      }
    }
    for (auto& [parent, kids] : children) {
      std::sort(kids.begin(), kids.end());
    }

    size_t invalid = 0;
    auto emit = [&](TermId old_id, TermId new_lo, TermId new_hi) {
      const size_t subtree = static_cast<size_t>(new_hi) - new_lo + 1;
      HierInterval interval;
      interval.lo = new_lo;
      interval.hi = new_hi;
      // The spanning subtree is a subset of the closure (every tree edge
      // is a real direct edge), so equal sizes mean interval == closure.
      interval.valid = closure_of(old_id).size() == subtree;
      if (!interval.valid) ++invalid;
      intervals.emplace(new_lo, interval);
    };

    // Iterative preorder: frames carry (old id, its new id, next child).
    struct Frame {
      TermId node;
      TermId new_id;
      size_t child_ix = 0;
    };
    std::vector<Frame> stack;
    auto visit_tree = [&](TermId root) {
      if (visited_.count(root) > 0) return;
      visited_.insert(root);
      stack.push_back({root, Assign(root)});
      while (!stack.empty()) {
        Frame& top = stack.back();
        const std::vector<TermId>* kids = nullptr;
        auto it = children.find(top.node);
        if (it != children.end()) kids = &it->second;
        if (kids != nullptr && top.child_ix < kids->size()) {
          TermId child = (*kids)[top.child_ix++];
          if (visited_.insert(child).second) {
            stack.push_back({child, Assign(child)});
          }
        } else {
          emit(top.node, top.new_id, *next_ - 1);
          stack.pop_back();
        }
      }
    };

    for (TermId node : nodes) {
      if (has_parent.count(node) == 0) visit_tree(node);
    }
    // Members of parent cycles have a parent but are reachable from no
    // root; lay them out as extra roots (their closures differ from their
    // subtrees, so the size check marks them invalid).
    for (TermId node : nodes) visit_tree(node);
    return invalid;
  }

 private:
  TermId Assign(TermId old_id) {
    TermId new_id = (*next_)++;
    (*perm_)[old_id] = new_id;
    return new_id;
  }

  std::vector<TermId>* perm_;
  TermId* next_;
  std::unordered_set<TermId> visited_;
};

}  // namespace

HierEncoding HierEncoding::Build(const schema::Schema& schema,
                                 const Dictionary& dict) {
  HierEncoding enc;
  const size_t n = dict.size();
  enc.perm_.assign(n + 1, 0);

  // Hierarchy membership. A term used as both class and property is
  // encoded as a class; properties whose closures reach it can then never
  // validate, which is the intended conservative fallback.
  std::unordered_set<TermId> class_set;
  std::vector<TermId> classes;
  for (TermId c : schema.classes()) {
    if (c == kNullTermId || static_cast<size_t>(c) > n) continue;
    if (class_set.insert(c).second) classes.push_back(c);
  }
  std::unordered_set<TermId> property_set;
  std::vector<TermId> properties;
  for (TermId p : schema.properties()) {
    if (p == kNullTermId || static_cast<size_t>(p) > n) continue;
    if (class_set.count(p) > 0) continue;
    if (property_set.insert(p).second) properties.push_back(p);
  }
  std::sort(classes.begin(), classes.end());
  std::sort(properties.begin(), properties.end());

  TermId next = 1;
  ForestEncoder encoder(&enc.perm_, &next);
  enc.invalid_nodes_ += encoder.Encode(
      classes, class_set,
      [&](TermId c) -> const std::vector<TermId>& {
        return schema.DirectSuperClasses(c);
      },
      [&](TermId c) -> const std::vector<TermId>& {
        return schema.SubClassesOf(c);
      },
      enc.class_intervals_);
  enc.invalid_nodes_ += encoder.Encode(
      properties, property_set,
      [&](TermId p) -> const std::vector<TermId>& {
        return schema.DirectSuperProperties(p);
      },
      [&](TermId p) -> const std::vector<TermId>& {
        return schema.SubPropertiesOf(p);
      },
      enc.property_intervals_);

  // Every other term follows the hierarchies, in old-id order.
  for (size_t old_id = 1; old_id <= n; ++old_id) {
    if (enc.perm_[old_id] == 0) enc.perm_[old_id] = next++;
  }

  WDR_COUNTER_INC("wdr.encoding.builds");
  WDR_COUNTER_ADD("wdr.encoding.invalid_nodes", enc.invalid_nodes_);
  return enc;
}

}  // namespace wdr::rdf
