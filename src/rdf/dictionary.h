#ifndef WDR_RDF_DICTIONARY_H_
#define WDR_RDF_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace wdr::rdf {

// Bidirectional interning of Terms to dense TermIds starting at 1.
// Dictionary encoding keeps triples at 12 bytes and makes all joins and
// index comparisons integer comparisons, the standard design in RDF stores
// (RDF-3X, Hexastore) referenced by the paper.
class Dictionary {
 public:
  Dictionary() = default;

  // Copyable (snapshotting a graph copies its dictionary) and movable.
  Dictionary(const Dictionary&) = default;
  Dictionary& operator=(const Dictionary&) = default;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  // Returns the id for `term`, interning it if new. Never returns 0.
  TermId Intern(const Term& term);

  // Convenience interning of an IRI string.
  TermId InternIri(const std::string& iri) { return Intern(Term::Iri(iri)); }

  // Returns the id of `term` or kNullTermId if it was never interned.
  TermId Lookup(const Term& term) const;
  TermId LookupIri(const std::string& iri) const {
    return Lookup(Term::Iri(iri));
  }

  // Returns the term for a valid id. id must be in [1, size()].
  const Term& term(TermId id) const { return terms_[id - 1]; }

  // Whether `id` names an interned term.
  bool Contains(TermId id) const {
    return id != kNullTermId && id <= terms_.size();
  }

  // Number of interned terms. Valid ids are 1..size().
  size_t size() const { return terms_.size(); }

 private:
  // Canonical key: kind byte + lexical + separators + datatype + language.
  static std::string MakeKey(const Term& term);

  std::unordered_map<std::string, TermId> index_;
  std::vector<Term> terms_;
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_DICTIONARY_H_
