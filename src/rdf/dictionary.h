#ifndef WDR_RDF_DICTIONARY_H_
#define WDR_RDF_DICTIONARY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace wdr::rdf {

// Bidirectional interning of Terms to dense TermIds starting at 1.
// Dictionary encoding keeps triples at 12 bytes and makes all joins and
// index comparisons integer comparisons, the standard design in RDF stores
// (RDF-3X, Hexastore) referenced by the paper.
class Dictionary {
 public:
  Dictionary() = default;

  // Copyable (snapshotting a graph copies its dictionary) and movable.
  Dictionary(const Dictionary&) = default;
  Dictionary& operator=(const Dictionary&) = default;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  // Returns the id for `term`, interning it if new. Never returns 0.
  TermId Intern(const Term& term);

  // Convenience interning of an IRI string.
  TermId InternIri(const std::string& iri) { return Intern(Term::Iri(iri)); }

  // Returns the id of `term` or kNullTermId if it was never interned.
  TermId Lookup(const Term& term) const;
  TermId LookupIri(const std::string& iri) const {
    return Lookup(Term::Iri(iri));
  }

  // Returns the term for a valid id. id must be in [1, size()].
  const Term& term(TermId id) const {
    return terms_[static_cast<size_t>(id) - 1];
  }

  // Whether `id` names an interned term. The id is widened to size_t
  // before comparing, so the check stays exact even if the term table ever
  // outgrows the TermId range (term() above indexes with the same
  // widening).
  bool Contains(TermId id) const {
    return id != kNullTermId && static_cast<size_t>(id) <= terms_.size();
  }

  // Number of interned terms. Valid ids are 1..size().
  size_t size() const { return terms_.size(); }

  // Pre-sizes the term table and the key index for `n` terms, so bulk
  // loads and the hierarchy-encoding rebuild pass don't rehash while
  // interning.
  void Reserve(size_t n) {
    terms_.reserve(n);
    index_.reserve(n);
  }

  // Renumbers every interned term: the term with old id i gets new id
  // perm[i]. `perm` is indexed by old id (entry 0 is ignored) and must be
  // a bijection of 1..size(). Triple stores built against the old ids must
  // be re-encoded by the caller — this is the dictionary half of the
  // hierarchy-aware encoding rebuild.
  void ApplyPermutation(const std::vector<TermId>& perm);

 private:
  // Canonical key: kind byte + lexical + separators + datatype + language.
  static std::string MakeKey(const Term& term);

  std::unordered_map<std::string, TermId> index_;
  std::vector<Term> terms_;
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_DICTIONARY_H_
