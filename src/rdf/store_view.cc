#include "rdf/store_view.h"

#include "rdf/flat_triple_store.h"
#include "rdf/sharded_store.h"
#include "rdf/triple_store.h"

namespace wdr::rdf {

const char* StorageBackendName(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kOrdered:
      return "ordered";
    case StorageBackend::kFlat:
      return "flat";
    case StorageBackend::kSharded:
      return "sharded";
  }
  return "unknown";
}

bool ParseStorageBackend(std::string_view name, StorageBackend* backend) {
  if (name == "ordered") {
    *backend = StorageBackend::kOrdered;
  } else if (name == "flat") {
    *backend = StorageBackend::kFlat;
  } else if (name == "sharded") {
    *backend = StorageBackend::kSharded;
  } else {
    return false;
  }
  return true;
}

size_t StoreView::InsertBatch(std::span<const Triple> batch) {
  size_t added = 0;
  for (const Triple& t : batch) {
    if (Insert(t)) ++added;
  }
  return added;
}

size_t StoreView::Count(TermId s, TermId p, TermId o) const {
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;
  if (!bs && !bp && !bo) return size();
  if (bs && bp && bo) return Contains(Triple(s, p, o)) ? 1 : 0;
  size_t n = 0;
  Match(s, p, o, [&n](const Triple&) { ++n; });
  return n;
}

size_t StoreView::CountRange(const ScanPlan& plan) const {
  if (plan.s.is_any() && plan.p.is_any() && plan.o.is_any()) return size();
  if (plan.s.is_point() && plan.p.is_point() && plan.o.is_point()) {
    return Contains(Triple(plan.s.lo, plan.p.lo, plan.o.lo)) ? 1 : 0;
  }
  size_t n = 0;
  MatchPlan(plan, [&n](const Triple&) { ++n; });
  return n;
}

size_t StoreView::EstimateCountRange(const ScanPlan& plan) const {
  if (plan.s.is_any() && plan.p.is_any() && plan.o.is_any()) return size();
  if (plan.s.is_point() && plan.p.is_point() && plan.o.is_point()) {
    return Contains(Triple(plan.s.lo, plan.p.lo, plan.o.lo)) ? 1 : 0;
  }
  size_t n = 0;
  constexpr size_t kCap = 64;
  MatchPlan(plan, [&n](const Triple&) { return ++n < kCap; });
  if (n < kCap) return n;
  // Hit the cap: coarse ordering signal by constrained positions.
  const int bound = (plan.s.is_any() ? 0 : 1) + (plan.p.is_any() ? 0 : 1) +
                    (plan.o.is_any() ? 0 : 1);
  return size() >> (2 * bound);
}

std::vector<Triple> StoreView::ToVector() const {
  std::vector<Triple> out;
  out.reserve(size());
  Match(0, 0, 0, [&out](const Triple& t) { out.push_back(t); });
  return out;
}

std::unique_ptr<StoreView> StoreView::MakeEmpty() const {
  return MakeStore(backend());
}

std::unique_ptr<StoreView> MakeStore(StorageBackend backend) {
  switch (backend) {
    case StorageBackend::kOrdered:
      return std::make_unique<TripleStore>();
    case StorageBackend::kFlat:
      return std::make_unique<FlatTripleStore>();
    case StorageBackend::kSharded:
      return std::make_unique<ShardedStore>();
  }
  return std::make_unique<TripleStore>();
}

}  // namespace wdr::rdf
