#ifndef WDR_RDF_TERM_H_
#define WDR_RDF_TERM_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <tuple>

namespace wdr::rdf {

// Dense identifier assigned by Dictionary. 0 is reserved: it is never a
// valid term id and doubles as the wildcard in store match operations.
using TermId = uint32_t;
inline constexpr TermId kNullTermId = 0;

enum class TermKind : uint8_t {
  kIri = 0,
  kLiteral = 1,
  kBlank = 2,
};

// An RDF term: IRI, literal (with optional datatype IRI or language tag),
// or blank node. Terms are value types; the store only ever handles their
// dictionary-encoded TermIds.
struct Term {
  TermKind kind = TermKind::kIri;
  // IRI string, literal lexical form, or blank node label.
  std::string lexical;
  // For literals only: datatype IRI ("" = plain) and language tag ("" = none).
  std::string datatype;
  std::string language;

  static Term Iri(std::string iri) {
    Term t;
    t.kind = TermKind::kIri;
    t.lexical = std::move(iri);
    return t;
  }

  static Term Literal(std::string lexical, std::string datatype = "",
                      std::string language = "") {
    Term t;
    t.kind = TermKind::kLiteral;
    t.lexical = std::move(lexical);
    t.datatype = std::move(datatype);
    t.language = std::move(language);
    return t;
  }

  static Term Blank(std::string label) {
    Term t;
    t.kind = TermKind::kBlank;
    t.lexical = std::move(label);
    return t;
  }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  // N-Triples surface syntax: <iri>, "literal"^^<dt>, "lit"@lang, _:label.
  std::string ToNTriples() const;

  friend bool operator==(const Term& a, const Term& b) {
    return std::tie(a.kind, a.lexical, a.datatype, a.language) ==
           std::tie(b.kind, b.lexical, b.datatype, b.language);
  }
  friend bool operator<(const Term& a, const Term& b) {
    return std::tie(a.kind, a.lexical, a.datatype, a.language) <
           std::tie(b.kind, b.lexical, b.datatype, b.language);
  }
};

std::ostream& operator<<(std::ostream& os, const Term& term);

}  // namespace wdr::rdf

#endif  // WDR_RDF_TERM_H_
