// Subject-hash-partitioned composite storage backend. Instance triples are
// routed to one of N member shards by a multiplicative hash of the subject
// id; triples whose predicate is in the configured *broadcast set* (the
// RDFS constraint predicates) live in a single shared schema store that is
// logically visible to every shard. The two kinds of member are disjoint
// by construction (a predicate is either broadcast or not), so every
// global read is an (N+1)-way ordered merge over disjoint cursors and
// needs no deduplication — scans enumerate in exactly the global index
// order a single store would produce, which is what keeps sharded
// execution bit-identical to the single-store reference.
//
// The shard count is runtime-selectable (SetShardCount). Re-partitioning
// is lazy: while scans are open or epochs pinned the new layout is only
// recorded, and applied at the next restructurable mutation or TryCompact
// — the same deferral contract the flat backend uses for compaction.
#ifndef WDR_RDF_SHARDED_STORE_H_
#define WDR_RDF_SHARDED_STORE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "rdf/store_view.h"
#include "rdf/triple.h"

namespace wdr::rdf {

class ShardedStore final : public StoreView {
 public:
  static constexpr size_t kDefaultShardCount = 4;

  explicit ShardedStore(size_t shard_count = kDefaultShardCount,
                        StorageBackend shard_backend = StorageBackend::kFlat);

  // Copies and moves carry data and configuration but not the open-scan /
  // epoch-pin counters (those belong to readers of the source object).
  ShardedStore(const ShardedStore& other);
  ShardedStore& operator=(const ShardedStore& other);
  ShardedStore(ShardedStore&& other) noexcept;
  ShardedStore& operator=(ShardedStore&& other) noexcept;

  // --- Partitioning configuration ---------------------------------------

  size_t shard_count() const { return shards_.size(); }
  StorageBackend shard_backend() const { return shard_backend_; }

  // Requests `n` shards. Applied immediately when no scans are open and no
  // epochs pinned (returns true); otherwise recorded and applied lazily at
  // the next restructurable mutation or TryCompact (returns false).
  bool SetShardCount(size_t n);
  size_t pending_shard_count() const { return pending_shard_count_; }

  // Replaces the broadcast-predicate set (predicates whose triples are
  // schema and live in the shared store). Existing triples are re-routed.
  void SetBroadcastPredicates(std::vector<TermId> preds);
  const std::vector<TermId>& broadcast_predicates() const {
    return broadcast_preds_;
  }
  bool IsBroadcast(TermId p) const {
    for (TermId b : broadcast_preds_) {
      if (b == p) return true;
    }
    return false;
  }

  // The shard owning instance triples with subject `s`.
  size_t OwnerShard(TermId s) const {
    uint64_t h = static_cast<uint64_t>(s) * 0x9e3779b97f4a7c15ull;
    h ^= h >> 33;
    return static_cast<size_t>(h % shards_.size());
  }

  // --- Layout introspection (INFO, obs gauges, tests) -------------------

  const StoreView& shard(size_t i) const { return *shards_[i]; }
  const StoreView& schema_store() const { return *schema_; }
  size_t schema_size() const { return schema_->size(); }
  std::vector<size_t> ShardSizes() const;
  // max shard size / mean shard size; 1.0 = perfectly balanced, N = all
  // triples on one shard. 0 when the instance partition is empty.
  double SkewRatio() const;
  // Publishes wdr.shard.* gauges (per-shard sizes, skew, shard count).
  void PublishGauges() const;

  // Read-only view over {schema store, shard i}: the shard-local join view
  // shard-parallel saturation derives against. The view borrows the
  // members; it must not outlive the ShardedStore or a re-partition.
  class LocalView final : public StoreView {
   public:
    LocalView(const StoreView* schema, const StoreView* shard,
              StorageBackend backend)
        : members_{schema, shard}, backend_(backend) {}

    // Read-only: mutations are contract violations and report no-ops.
    bool Insert(const Triple&) override { return false; }
    bool Erase(const Triple&) override { return false; }
    void Clear() override {}

    bool Contains(const Triple& t) const override {
      return members_[0]->Contains(t) || members_[1]->Contains(t);
    }
    size_t size() const override {
      return members_[0]->size() + members_[1]->size();
    }
    size_t Count(TermId s, TermId p, TermId o) const override {
      return members_[0]->Count(s, p, o) + members_[1]->Count(s, p, o);
    }
    size_t EstimateCount(TermId s, TermId p, TermId o) const override {
      return members_[0]->EstimateCount(s, p, o) +
             members_[1]->EstimateCount(s, p, o);
    }
    using StoreView::OpenScan;
    void OpenScan(ScanHandle& handle, const ScanPlan& plan) const override;
    StorageBackend backend() const override { return backend_; }
    std::unique_ptr<StoreView> Clone() const override;

   private:
    const StoreView* members_[2];
    StorageBackend backend_;
  };

  LocalView ShardLocalView(size_t i) const {
    return LocalView(schema_.get(), shards_[i].get(), shard_backend_);
  }

  // --- StoreView interface ----------------------------------------------

  bool Insert(const Triple& t) override;
  bool Erase(const Triple& t) override;
  size_t InsertBatch(std::span<const Triple> batch) override;
  void Clear() override;

  bool Contains(const Triple& t) const override;
  size_t size() const override;
  size_t Count(TermId s, TermId p, TermId o) const override;
  size_t CountRange(const ScanPlan& plan) const override;
  size_t EstimateCount(TermId s, TermId p, TermId o) const override;
  // EstimateCountRange intentionally inherits the StoreView default (capped
  // enumeration over the merged cursor + coarse size fallback): identical
  // inputs therefore produce identical estimates to a single store, which
  // keeps legacy-path join orders — and thus row streams — bit-identical
  // across shard counts.

  using StoreView::OpenScan;
  void OpenScan(ScanHandle& handle, const ScanPlan& plan) const override;

  void PinEpoch() const override;
  void UnpinEpoch() const override;
  size_t epoch_pins() const override {
    return epoch_pins_.load(std::memory_order_relaxed);
  }
  bool TryCompact() override;

  StorageBackend backend() const override { return StorageBackend::kSharded; }
  std::unique_ptr<StoreView> Clone() const override {
    return std::make_unique<ShardedStore>(*this);
  }
  std::unique_ptr<StoreView> MakeEmpty() const override;
  void OnIdsPermuted(std::span<const TermId> perm) override;

  // Live merged cursors, for the re-partition deferral tests.
  size_t open_scans() const {
    return open_scans_.load(std::memory_order_relaxed);
  }

 private:
  friend class ShardedScanCursor;

  bool Restructurable() const {
    return open_scans_.load(std::memory_order_relaxed) == 0 &&
           epoch_pins_.load(std::memory_order_relaxed) == 0;
  }
  // Applies a pending shard count if one is recorded and nothing forbids
  // restructuring. Called from every mutation entry point and TryCompact.
  void MaybeApplyPendingLayout();
  void RepartitionNow(size_t n);

  // Member stores a scan/count with this plan must consult, in merge order
  // (schema first, then shards). Prunes to the owner shard on a
  // subject-point plan and to the schema store alone on a broadcast
  // predicate point.
  void CollectMembers(const ScanPlan& plan,
                      std::vector<const StoreView*>* members) const;

  StorageBackend shard_backend_;
  std::unique_ptr<StoreView> schema_;          // broadcast (schema) triples
  std::vector<std::unique_ptr<StoreView>> shards_;  // instance partitions
  std::vector<TermId> broadcast_preds_;
  size_t pending_shard_count_ = 0;  // 0 = no re-partition pending

  mutable std::atomic<size_t> open_scans_{0};
  mutable std::atomic<size_t> epoch_pins_{0};
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_SHARDED_STORE_H_
