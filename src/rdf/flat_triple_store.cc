#include "rdf/flat_triple_store.h"

#include <algorithm>

#include "obs/metrics.h"

namespace wdr::rdf {

// Merging cursor over one flat index: the contiguous main range and the
// ordered delta range are interleaved by permuted key, tombstoned main
// entries skipped. When the delta is empty (the common state after a bulk
// build or merge) the scan degenerates to a straight array walk.
class FlatScanCursor final : public ScanCursor {
 public:
  FlatScanCursor(const FlatTripleStore& store, const ScanPlan& plan)
      : store_(&store), plan_(plan) {
    store_->open_scans_.fetch_add(1, std::memory_order_relaxed);
    std::tie(mcur_, mend_) = store_->MainRange(plan_);
    Triple lo;
    plan_.KeyBounds(&lo, &hi_);
    const std::set<Triple>& delta =
        store_->delta_[static_cast<size_t>(plan_.order)];
    dcur_ = delta.lower_bound(lo);
    dend_ = delta.end();
    check_tombstones_ = !store_->tombstones_.empty();
  }

  ~FlatScanCursor() override {
    store_->open_scans_.fetch_sub(1, std::memory_order_relaxed);
  }

  size_t NextBatch(Triple* out, size_t cap) override {
    size_t n = 0;
    while (n < cap) {
      const bool main_left = mcur_ != mend_;
      const bool delta_left = dcur_ != dend_ && !(hi_ < *dcur_);
      bool take_main;
      if (main_left && delta_left) {
        take_main = *mcur_ < *dcur_;
      } else if (main_left) {
        take_main = true;
      } else if (delta_left) {
        take_main = false;
      } else {
        break;
      }
      Triple key;
      if (take_main) {
        key = *mcur_++;
      } else {
        key = *dcur_++;
      }
      Triple t = UnpermuteKey(key, plan_.order);
      if (take_main && check_tombstones_ && store_->tombstones_.count(t) > 0) {
        continue;
      }
      if (!plan_.PassesFilter(t)) continue;
      out[n++] = t;
    }
    return n;
  }

  void SeekAtLeast(const Triple& key) override {
    Triple target = PermuteKey(key, plan_.order);
    if (mcur_ != mend_ && *mcur_ < target) {
      mcur_ = std::lower_bound(mcur_, mend_, target);
    }
    if (dcur_ != dend_ && *dcur_ < target) {
      dcur_ = store_->delta_[static_cast<size_t>(plan_.order)].lower_bound(
          target);
    }
  }

 private:
  const FlatTripleStore* store_;
  ScanPlan plan_;
  Triple hi_;
  const Triple* mcur_ = nullptr;
  const Triple* mend_ = nullptr;
  std::set<Triple>::const_iterator dcur_;
  std::set<Triple>::const_iterator dend_;
  bool check_tombstones_ = false;
};

void FlatTripleStore::Build(std::vector<Triple> triples) {
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  main_[static_cast<size_t>(IndexOrder::kSpo)] = std::move(triples);
  const std::vector<Triple>& spo = main_[static_cast<size_t>(IndexOrder::kSpo)];
  for (IndexOrder order : {IndexOrder::kPos, IndexOrder::kOsp}) {
    std::vector<Triple>& index = main_[static_cast<size_t>(order)];
    index.clear();
    index.reserve(spo.size());
    for (const Triple& t : spo) index.push_back(PermuteKey(t, order));
    std::sort(index.begin(), index.end());
  }
  for (std::set<Triple>& d : delta_) d.clear();
  tombstones_.clear();
}

void FlatTripleStore::Compact() {
  if (delta_[0].empty() && tombstones_.empty()) return;
  WDR_COUNTER_INC("wdr.store.flat.compactions");
  WDR_COUNTER_ADD("wdr.store.flat.delta_merged", delta_[0].size());
  WDR_COUNTER_ADD("wdr.store.flat.tombstones_merged", tombstones_.size());
  for (size_t i = 0; i < kIndexOrderCount; ++i) {
    const IndexOrder order = static_cast<IndexOrder>(i);
    std::vector<Triple> merged;
    merged.reserve(size());
    const std::vector<Triple>& main = main_[i];
    const std::set<Triple>& delta = delta_[i];
    auto mit = main.begin();
    auto dit = delta.begin();
    while (mit != main.end() || dit != delta.end()) {
      // Delta and main are disjoint by invariant, so no equal-key case.
      if (dit == delta.end() || (mit != main.end() && *mit < *dit)) {
        if (tombstones_.empty() ||
            tombstones_.count(UnpermuteKey(*mit, order)) == 0) {
          merged.push_back(*mit);
        }
        ++mit;
      } else {
        merged.push_back(*dit);
        ++dit;
      }
    }
    main_[i] = std::move(merged);
  }
  for (std::set<Triple>& d : delta_) d.clear();
  tombstones_.clear();
}

void FlatTripleStore::MaybeCompact() {
  const size_t pending = delta_[0].size() + tombstones_.size();
  if (pending < kMergeFloor) return;
  if (pending * 4 < main_[0].size()) return;  // amortize the linear rebuild
  if (Restructurable()) {
    Compact();
  } else {
    // Cursors or pinned readers hold pointers into main_; the merge is
    // retried on the next mutation after they release.
    WDR_COUNTER_INC("wdr.store.flat.compactions_deferred");
  }
}

bool FlatTripleStore::TryCompact() {
  if (delta_[0].empty() && tombstones_.empty()) return true;
  if (!Restructurable()) {
    WDR_COUNTER_INC("wdr.store.flat.compactions_deferred");
    return false;
  }
  Compact();
  return true;
}

bool FlatTripleStore::Restructurable() const {
  return open_scans_.load(std::memory_order_relaxed) == 0 &&
         epoch_pins_.load(std::memory_order_relaxed) == 0;
}

bool FlatTripleStore::InMain(const Triple& t) const {
  const std::vector<Triple>& spo = main_[static_cast<size_t>(IndexOrder::kSpo)];
  return std::binary_search(spo.begin(), spo.end(), t);
}

bool FlatTripleStore::Insert(const Triple& t) {
  if (InMain(t)) {
    if (tombstones_.erase(t) > 0) {
      return true;  // resurrect a previously erased main triple
    }
    return false;
  }
  if (!delta_[static_cast<size_t>(IndexOrder::kSpo)].insert(t).second) {
    return false;
  }
  delta_[static_cast<size_t>(IndexOrder::kPos)].insert(
      PermuteKey(t, IndexOrder::kPos));
  delta_[static_cast<size_t>(IndexOrder::kOsp)].insert(
      PermuteKey(t, IndexOrder::kOsp));
  MaybeCompact();
  return true;
}

bool FlatTripleStore::Erase(const Triple& t) {
  if (delta_[static_cast<size_t>(IndexOrder::kSpo)].erase(t) > 0) {
    delta_[static_cast<size_t>(IndexOrder::kPos)].erase(
        PermuteKey(t, IndexOrder::kPos));
    delta_[static_cast<size_t>(IndexOrder::kOsp)].erase(
        PermuteKey(t, IndexOrder::kOsp));
    return true;
  }
  if (InMain(t) && tombstones_.insert(t).second) {
    MaybeCompact();
    return true;
  }
  return false;
}

size_t FlatTripleStore::InsertBatch(std::span<const Triple> batch) {
  if (batch.empty()) return 0;
  const size_t before = size();
  if (before == 0) {
    Build(std::vector<Triple>(batch.begin(), batch.end()));
    return size();
  }
  if (Restructurable() && batch.size() >= kMergeFloor &&
      batch.size() * 2 >= before) {
    // Large batch relative to the store: one linear rebuild beats
    // per-triple delta maintenance.
    WDR_COUNTER_INC("wdr.store.flat.bulk_builds");
    std::vector<Triple> all = ToVector();
    all.insert(all.end(), batch.begin(), batch.end());
    Build(std::move(all));
  } else {
    for (const Triple& t : batch) Insert(t);
  }
  return size() - before;
}

void FlatTripleStore::Clear() {
  for (std::vector<Triple>& index : main_) index.clear();
  for (std::set<Triple>& d : delta_) d.clear();
  tombstones_.clear();
}

bool FlatTripleStore::Contains(const Triple& t) const {
  if (delta_[static_cast<size_t>(IndexOrder::kSpo)].count(t) > 0) return true;
  return InMain(t) && tombstones_.count(t) == 0;
}

std::pair<const Triple*, const Triple*> FlatTripleStore::MainRange(
    const ScanPlan& plan) const {
  const std::vector<Triple>& index = main_[static_cast<size_t>(plan.order)];
  Triple lo, hi;
  plan.KeyBounds(&lo, &hi);
  const Triple* first =
      std::lower_bound(index.data(), index.data() + index.size(), lo);
  const Triple* last =
      std::upper_bound(first, index.data() + index.size(), hi);
  return {first, last};
}

size_t FlatTripleStore::Count(TermId s, TermId p, TermId o) const {
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;
  if (!bs && !bp && !bo) return size();
  if (bs && bp && bo) return Contains(Triple(s, p, o)) ? 1 : 0;
  return CountRange(PlanScan(s, p, o));
}

size_t FlatTripleStore::CountRange(const ScanPlan& plan) const {
  if (plan.s.is_any() && plan.p.is_any() && plan.o.is_any()) return size();
  if (plan.s.is_point() && plan.p.is_point() && plan.o.is_point()) {
    return Contains(Triple(plan.s.lo, plan.p.lo, plan.o.lo)) ? 1 : 0;
  }
  if (!plan.Exact()) {
    // Residual-filter shape (e.g. (s ? o)): no closed-form window size.
    size_t n = 0;
    MatchPlan(plan, [&n](const Triple&) { ++n; });
    return n;
  }
  auto [first, last] = MainRange(plan);
  size_t n = static_cast<size_t>(last - first);
  if (!tombstones_.empty()) {
    for (const Triple& t : tombstones_) {
      if (plan.PassesFilter(t)) --n;
    }
  }
  const std::set<Triple>& delta = delta_[static_cast<size_t>(plan.order)];
  if (!delta.empty()) {
    Triple lo, hi;
    plan.KeyBounds(&lo, &hi);
    for (auto it = delta.lower_bound(lo); it != delta.end() && !(hi < *it);
         ++it) {
      ++n;
    }
  }
  return n;
}

size_t FlatTripleStore::EstimateCount(TermId s, TermId p, TermId o) const {
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;
  if (bs && bp && bo) return Contains(Triple(s, p, o)) ? 1 : 0;
  if (!bs && !bp && !bo) return size();
  return EstimateCountRange(PlanScan(s, p, o));
}

size_t FlatTripleStore::EstimateCountRange(const ScanPlan& plan) const {
  if (plan.s.is_point() && plan.p.is_point() && plan.o.is_point()) {
    return Contains(Triple(plan.s.lo, plan.p.lo, plan.o.lo)) ? 1 : 0;
  }
  if (plan.s.is_any() && plan.p.is_any() && plan.o.is_any()) return size();
  // Exact main-window width in O(log n) — a better join-ordering signal
  // than the ordered backend's capped enumeration — plus a capped walk of
  // the (small) delta range. Tombstones are ignored: estimates only rank.
  auto [first, last] = MainRange(plan);
  size_t n = static_cast<size_t>(last - first);
  const std::set<Triple>& delta = delta_[static_cast<size_t>(plan.order)];
  if (!delta.empty()) {
    Triple lo, hi;
    plan.KeyBounds(&lo, &hi);
    size_t walked = 0;
    for (auto it = delta.lower_bound(lo);
         it != delta.end() && !(hi < *it) && walked < 64; ++it) {
      ++walked;
    }
    n += walked;
  }
  return n;
}

void FlatTripleStore::OpenScan(ScanHandle& handle, const ScanPlan& plan) const {
  WDR_COUNTER_INC("wdr.store.flat.scans");
  handle.Emplace<FlatScanCursor>(*this, plan);
}

}  // namespace wdr::rdf
