#ifndef WDR_RDF_TRIPLE_STORE_H_
#define WDR_RDF_TRIPLE_STORE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "rdf/store_view.h"
#include "rdf/triple.h"

namespace wdr::rdf {

// The ordered storage backend: three node-based ordered indexes (SPO, POS,
// OSP). Supports O(log n) insert/erase — updates are first-class citizens
// here because the paper's central trade-off is closure maintenance under
// change. Scans chase pointers; the flat backend (flat_triple_store.h)
// trades update cost for cache-friendly range scans.
class TripleStore final : public StoreView {
 public:
  TripleStore() = default;

  // Copies and moves carry the data but not the epoch-pin count (pins
  // belong to readers of the source object). Spelled out because the
  // atomic counter is neither copyable nor movable.
  TripleStore(const TripleStore& other)
      : spo_(other.spo_), pos_(other.pos_), osp_(other.osp_) {}
  TripleStore& operator=(const TripleStore& other) {
    if (this != &other) {
      spo_ = other.spo_;
      pos_ = other.pos_;
      osp_ = other.osp_;
    }
    return *this;
  }
  TripleStore(TripleStore&& other) noexcept
      : spo_(std::move(other.spo_)),
        pos_(std::move(other.pos_)),
        osp_(std::move(other.osp_)) {}
  TripleStore& operator=(TripleStore&& other) noexcept {
    if (this != &other) {
      spo_ = std::move(other.spo_);
      pos_ = std::move(other.pos_);
      osp_ = std::move(other.osp_);
    }
    return *this;
  }

  // Inserts `t`; returns false if it was already present.
  bool Insert(const Triple& t) override;

  // Erases `t`; returns false if it was not present.
  bool Erase(const Triple& t) override;

  // Bulk insert: sorts the batch once per index and walks each std::set
  // with hinted inserts, so runs that land near each other (the common
  // shape for saturation deltas and loads) cost amortized O(1) per triple
  // instead of a full-tree descent.
  size_t InsertBatch(std::span<const Triple> batch) override;

  bool Contains(const Triple& t) const override {
    return spo_.count(t) > 0;
  }

  size_t size() const override { return spo_.size(); }
  void Clear() override;

  // Counts matches of the pattern (wildcards as in Match). Fully-wild and
  // fully-bound patterns short-circuit without enumerating.
  size_t Count(TermId s, TermId p, TermId o) const override;

  // Estimated number of matches, used for join ordering. Exact for fully
  // wild and fully bound patterns; a capped enumeration otherwise (range
  // sizes require linear distance on std::set).
  size_t EstimateCount(TermId s, TermId p, TermId o) const override;

  using StoreView::OpenScan;
  void OpenScan(ScanHandle& handle, const ScanPlan& plan) const override;

  StorageBackend backend() const override { return StorageBackend::kOrdered; }
  std::unique_ptr<StoreView> Clone() const override {
    return std::make_unique<TripleStore>(*this);
  }

  // Node-based indexes never restructure, so pinned readers need no merge
  // deferral here — the count exists so the pinning contract (and its
  // tests) is uniform across backends.
  void PinEpoch() const override {
    epoch_pins_.fetch_add(1, std::memory_order_relaxed);
  }
  void UnpinEpoch() const override {
    epoch_pins_.fetch_sub(1, std::memory_order_relaxed);
  }
  size_t epoch_pins() const override {
    return epoch_pins_.load(std::memory_order_relaxed);
  }

  // Direct (non-virtual) scan for callers holding the concrete type:
  // iterates the chosen index in place without cursor dispatch. Shadows
  // StoreView::Match with identical semantics.
  template <typename Fn>
  void Match(TermId s, TermId p, TermId o, Fn&& fn) const {
    const ScanPlan plan = PlanScan(s, p, o);
    const std::set<Triple>& index = IndexFor(plan.order);
    Triple lo, hi;
    plan.KeyBounds(&lo, &hi);
    for (auto it = index.lower_bound(lo); it != index.end(); ++it) {
      if (hi < *it) break;
      Triple t = UnpermuteKey(*it, plan.order);
      if (!plan.PassesFilter(t)) continue;
      if (!internal::InvokeMatchFn(fn, t)) return;
    }
  }

 private:
  const std::set<Triple>& IndexFor(IndexOrder order) const {
    switch (order) {
      case IndexOrder::kSpo:
        return spo_;
      case IndexOrder::kPos:
        return pos_;
      case IndexOrder::kOsp:
        return osp_;
    }
    return spo_;
  }

  std::set<Triple> spo_;
  std::set<Triple> pos_;
  std::set<Triple> osp_;
  // See PinEpoch; relaxed ordering suffices since the count is advisory
  // for this backend.
  mutable std::atomic<size_t> epoch_pins_{0};
};

}  // namespace wdr::rdf

#endif  // WDR_RDF_TRIPLE_STORE_H_
