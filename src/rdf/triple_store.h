#ifndef WDR_RDF_TRIPLE_STORE_H_
#define WDR_RDF_TRIPLE_STORE_H_

#include <cstddef>
#include <set>
#include <vector>

#include "rdf/triple.h"

namespace wdr::rdf {

// The three index orders. With a wildcard-free prefix convention, these
// cover every triple-pattern shape with a contiguous range scan:
//   SPO: (s ? ?), (s p ?), (s p o)
//   POS: (? p ?), (? p o)
//   OSP: (? ? o), (s ? o) -- via OSP prefix on o, filtering s
enum class IndexOrder { kSpo, kPos, kOsp };

// In-memory triple store with three ordered indexes (SPO, POS, OSP).
// Supports O(log n) insert/erase — updates are first-class citizens here
// because the paper's central trade-off is closure maintenance under change.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = default;
  TripleStore& operator=(const TripleStore&) = default;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  // Inserts `t`; returns false if it was already present.
  bool Insert(const Triple& t);

  // Erases `t`; returns false if it was not present.
  bool Erase(const Triple& t);

  bool Contains(const Triple& t) const { return spo_.count(Key(t, kSpo)) > 0; }

  size_t size() const { return spo_.size(); }
  bool empty() const { return spo_.empty(); }
  void Clear();

  // Invokes `fn(const Triple&)` for every triple matching the pattern, where
  // kNullTermId (0) in a position is a wildcard. If `fn` returns false the
  // scan stops early. Fn: bool(const Triple&) or void(const Triple&).
  template <typename Fn>
  void Match(TermId s, TermId p, TermId o, Fn&& fn) const;

  // Counts matches of the pattern (wildcards as in Match).
  size_t Count(TermId s, TermId p, TermId o) const;

  // Estimated number of matches, used for join ordering. Exact for fully
  // wild and fully bound patterns; an index-range size otherwise.
  size_t EstimateCount(TermId s, TermId p, TermId o) const;

  // Copies all triples in SPO order.
  std::vector<Triple> ToVector() const;

 private:
  // Index keys are permuted triples so std::set's lexicographic order
  // matches the index order; Key/Unkey convert between them.
  enum Permutation { kSpo = 0, kPos = 1, kOsp = 2 };

  static Triple Key(const Triple& t, Permutation perm) {
    switch (perm) {
      case kSpo:
        return t;
      case kPos:
        return Triple(t.p, t.o, t.s);
      case kOsp:
        return Triple(t.o, t.s, t.p);
    }
    return t;
  }

  static Triple Unkey(const Triple& k, Permutation perm) {
    switch (perm) {
      case kSpo:
        return k;
      case kPos:
        return Triple(k.o, k.s, k.p);  // key = (p,o,s)
      case kOsp:
        return Triple(k.p, k.o, k.s);  // key = (o,s,p)
    }
    return k;
  }

  // Scans index `perm` for keys whose first `prefix_len` components equal
  // those of `probe`, applying `filter` positions (0 = accept) to the rest.
  template <typename Fn>
  bool ScanPrefix(Permutation perm, const Triple& probe, int prefix_len,
                  const Triple& filter, Fn&& fn) const;

  const std::set<Triple>& IndexFor(Permutation perm) const {
    switch (perm) {
      case kSpo:
        return spo_;
      case kPos:
        return pos_;
      case kOsp:
        return osp_;
    }
    return spo_;
  }

  std::set<Triple> spo_;
  std::set<Triple> pos_;
  std::set<Triple> osp_;
};

// ---------------------------------------------------------------------------
// Implementation details only below here.

namespace internal {
// Adapts callables returning void to the bool protocol (continue scanning).
template <typename Fn>
bool InvokeMatchFn(Fn&& fn, const Triple& t) {
  if constexpr (std::is_void_v<decltype(fn(t))>) {
    fn(t);
    return true;
  } else {
    return fn(t);
  }
}
}  // namespace internal

template <typename Fn>
bool TripleStore::ScanPrefix(Permutation perm, const Triple& probe,
                             int prefix_len, const Triple& filter,
                             Fn&& fn) const {
  const std::set<Triple>& index = IndexFor(perm);
  Triple lo = probe;
  // Zero out the non-prefix components for the lower bound.
  if (prefix_len <= 2) lo.o = 0;
  if (prefix_len <= 1) lo.p = 0;
  if (prefix_len <= 0) lo.s = 0;
  for (auto it = index.lower_bound(lo); it != index.end(); ++it) {
    const Triple& k = *it;
    if (prefix_len >= 1 && k.s != probe.s) break;
    if (prefix_len >= 2 && k.p != probe.p) break;
    if (prefix_len >= 3 && k.o != probe.o) break;
    Triple t = Unkey(k, perm);
    if ((filter.s != 0 && t.s != filter.s) ||
        (filter.p != 0 && t.p != filter.p) ||
        (filter.o != 0 && t.o != filter.o)) {
      continue;
    }
    if (!internal::InvokeMatchFn(fn, t)) return false;
  }
  return true;
}

template <typename Fn>
void TripleStore::Match(TermId s, TermId p, TermId o, Fn&& fn) const {
  const bool bs = s != kNullTermId;
  const bool bp = p != kNullTermId;
  const bool bo = o != kNullTermId;
  const Triple no_filter(0, 0, 0);
  if (bs) {
    // SPO covers (s,*,*), (s,p,*), (s,p,o); (s,*,o) scans s-prefix with an
    // o filter, which is typically smaller than the OSP o-prefix.
    int prefix = 1 + (bp ? 1 : 0) + ((bp && bo) ? 1 : 0);
    Triple filter = (bp || !bo) ? no_filter : Triple(0, 0, o);
    ScanPrefix(kSpo, Triple(s, p, o), prefix, filter, fn);
  } else if (bp) {
    int prefix = 1 + (bo ? 1 : 0);
    ScanPrefix(kPos, Key(Triple(s, p, o), kPos), prefix, no_filter, fn);
  } else if (bo) {
    ScanPrefix(kOsp, Key(Triple(s, p, o), kOsp), 1, no_filter, fn);
  } else {
    ScanPrefix(kSpo, Triple(0, 0, 0), 0, no_filter, fn);
  }
}

}  // namespace wdr::rdf

#endif  // WDR_RDF_TRIPLE_STORE_H_
