#include "datalog/evaluator.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <thread>

#include "exec/executor.h"
#include "exec/planner.h"
#include "exec/source.h"
#include "obs/metrics.h"

namespace wdr::datalog {
namespace {

constexpr Sym kUnbound = static_cast<Sym>(-1);

size_t VarCount(const std::vector<DlAtom>& atoms) {
  size_t count = 0;
  for (const DlAtom& atom : atoms) {
    for (const DlTerm& t : atom.args) {
      if (t.is_var) count = std::max(count, static_cast<size_t>(t.id) + 1);
    }
  }
  return count;
}

// Recursive join over `body`. If `delta_pos` is set, that atom ranges over
// `delta_relation` instead of the database relation.
class BodyJoin {
 public:
  BodyJoin(const Database& db, const std::vector<DlAtom>& body,
           std::optional<size_t> delta_pos, const Relation* delta_relation)
      : db_(db),
        body_(body),
        delta_pos_(delta_pos),
        delta_relation_(delta_relation),
        bindings_(VarCount(body), kUnbound) {}

  template <typename EmitFn>
  void Run(EmitFn&& emit) {
    Recurse(0, emit);
  }

  const std::vector<Sym>& bindings() const { return bindings_; }

 private:
  template <typename EmitFn>
  void Recurse(size_t atom_index, EmitFn&& emit) {
    if (atom_index == body_.size()) {
      emit(bindings_);
      return;
    }
    const DlAtom& atom = body_[atom_index];
    const Relation& rel = (delta_pos_ && *delta_pos_ == atom_index)
                              ? *delta_relation_
                              : db_.relation(atom.pred);

    // Pick the most selective bound column, if any.
    size_t best_col = SIZE_MAX;
    size_t best_size = SIZE_MAX;
    for (size_t col = 0; col < atom.args.size(); ++col) {
      Sym value = ResolveArg(atom.args[col]);
      if (value == kUnbound) continue;
      size_t bucket = rel.Probe(col, value).size();
      if (bucket < best_size) {
        best_size = bucket;
        best_col = col;
      }
    }

    auto try_tuple = [&](const Tuple& tuple) {
      std::vector<DlVarId> bound_here;
      bool ok = true;
      for (size_t col = 0; col < atom.args.size(); ++col) {
        if (!TryBind(atom.args[col], tuple[col], bound_here)) {
          ok = false;
          break;
        }
      }
      if (ok) Recurse(atom_index + 1, emit);
      for (auto it = bound_here.rbegin(); it != bound_here.rend(); ++it) {
        bindings_[*it] = kUnbound;
      }
    };

    if (best_col != SIZE_MAX) {
      Sym value = ResolveArg(atom.args[best_col]);
      for (uint32_t pos : rel.Probe(best_col, value)) {
        try_tuple(rel.tuples()[pos]);
      }
    } else {
      for (const Tuple& tuple : rel.tuples()) try_tuple(tuple);
    }
  }

  Sym ResolveArg(const DlTerm& t) const {
    return t.is_var ? bindings_[t.id] : t.id;
  }

  bool TryBind(const DlTerm& term, Sym value,
               std::vector<DlVarId>& bound_here) {
    if (!term.is_var) return term.id == value;
    Sym& slot = bindings_[term.id];
    if (slot == kUnbound) {
      slot = value;
      bound_here.push_back(term.id);
      return true;
    }
    return slot == value;
  }

  const Database& db_;
  const std::vector<DlAtom>& body_;
  std::optional<size_t> delta_pos_;
  const Relation* delta_relation_;
  std::vector<Sym> bindings_;
};

Tuple InstantiateHead(const DlAtom& head, const Sym* bindings) {
  Tuple tuple;
  tuple.reserve(head.args.size());
  for (const DlTerm& t : head.args) {
    tuple.push_back(t.is_var ? bindings[t.id] : t.id);
  }
  return tuple;
}

// ---------------------------------------------------------------------------
// Physical-plan route: rule bodies compiled into the shared wdr::exec IR.

// TupleSource over one relation: a scan streams the smallest matching
// per-column index bucket (verifying the remaining bound columns) or the
// full tuple list when nothing is bound.
class RelationSource final : public exec::TupleSource {
 public:
  explicit RelationSource(const Relation& rel) : rel_(&rel) {}

  size_t arity() const override { return rel_->arity(); }

  double EstimateBound(const exec::Value* values,
                       const uint8_t* bound) const override {
    size_t best = rel_->size();
    for (size_t col = 0; col < rel_->arity(); ++col) {
      if (!bound[col]) continue;
      best = std::min(best, rel_->Probe(col, values[col]).size());
    }
    return static_cast<double>(best);
  }

  bool Scan(const exec::Value* values, const uint8_t* bound,
            exec::FunctionRef<bool(const exec::Value*)> fn) const override {
    size_t best_col = SIZE_MAX;
    size_t best_bucket = SIZE_MAX;
    for (size_t col = 0; col < rel_->arity(); ++col) {
      if (!bound[col]) continue;
      size_t bucket = rel_->Probe(col, values[col]).size();
      if (bucket < best_bucket) {
        best_bucket = bucket;
        best_col = col;
      }
    }
    auto matches = [&](const Tuple& tuple) {
      for (size_t col = 0; col < rel_->arity(); ++col) {
        if (bound[col] && tuple[col] != values[col]) return false;
      }
      return true;
    };
    if (best_col != SIZE_MAX) {
      for (uint32_t pos : rel_->Probe(best_col, values[best_col])) {
        const Tuple& tuple = rel_->tuples()[pos];
        if (!matches(tuple)) continue;
        if (!fn(tuple.data())) return false;
      }
      return true;
    }
    for (const Tuple& tuple : rel_->tuples()) {
      if (!fn(tuple.data())) return false;
    }
    return true;
  }

 private:
  const Relation* rel_;  // not owned
};

// Cardinality oracle over the live relations of a body: constants scale by
// exact index-bucket selectivity, run-time-bound columns by one over the
// column's distinct-value count. Never stale — Relation maintains both on
// every insert — so the planner always runs cost-based here.
class RelationEstimator final : public exec::CardinalityEstimator {
 public:
  explicit RelationEstimator(std::vector<const Relation*> rels)
      : rels_(std::move(rels)) {}

  double Estimate(size_t source, const exec::Value* values,
                  const exec::Value* /*values_hi*/, const uint8_t* modes,
                  size_t arity) const override {
    // Datalog specs never carry kRange positions; a range mode would fall
    // through as unconstrained here, which is the conservative default.
    const Relation& rel = *rels_[source];
    double est = static_cast<double>(rel.size());
    if (est <= 0) return 0;
    for (size_t i = 0; i < arity; ++i) {
      if (modes[i] == kConst) {
        est *= static_cast<double>(rel.Probe(i, values[i]).size()) /
               static_cast<double>(rel.size());
      } else if (modes[i] == kRuntime) {
        est /= static_cast<double>(std::max<size_t>(1, rel.DistinctValues(i)));
      }
    }
    return est;
  }

 private:
  std::vector<const Relation*> rels_;
};

// Compiles `body` (with an optional semi-naive delta position) into a
// physical plan and streams `projection` columns to `emit`. Returns false
// when the planner declines (the caller falls back to BodyJoin).
template <typename EmitFn>
bool PlanBody(const Database& db, const std::vector<DlAtom>& body,
              std::optional<size_t> delta_pos, const Relation* delta_relation,
              const BodyPlanOptions& popts,
              const std::vector<DlVarId>& projection, EmitFn&& emit) {
  std::vector<const Relation*> rels;
  std::vector<RelationSource> sources;
  rels.reserve(body.size());
  sources.reserve(body.size());
  exec::ConjunctiveSpec spec;
  for (size_t i = 0; i < body.size(); ++i) {
    const DlAtom& atom = body[i];
    const Relation& rel = (delta_pos && *delta_pos == i)
                              ? *delta_relation
                              : db.relation(atom.pred);
    rels.push_back(&rel);
    sources.emplace_back(rel);
    exec::PlanConjunct conjunct;
    conjunct.source = i;
    exec::AtomAlt alt;
    alt.terms.reserve(atom.args.size());
    for (const DlTerm& t : atom.args) {
      alt.terms.push_back(t.is_var ? exec::AtomTerm::Var(t.id)
                                   : exec::AtomTerm::Const(t.id));
    }
    conjunct.alts.push_back(std::move(alt));
    spec.conjuncts.push_back(std::move(conjunct));
  }
  spec.projection.assign(projection.begin(), projection.end());

  RelationEstimator estimator(std::move(rels));
  exec::PlannerOptions planner_options;
  planner_options.estimator = &estimator;
  planner_options.hash_joins = popts.hash_joins;
  exec::CompiledPlan plan = exec::PlanConjunctive(spec, planner_options);
  if (plan.root == nullptr) return false;

  std::vector<const exec::TupleSource*> source_ptrs;
  source_ptrs.reserve(sources.size());
  for (const RelationSource& s : sources) source_ptrs.push_back(&s);
  exec::ExecOptions exec_options;
  exec_options.batch_rows = popts.batch_rows;
  exec::Run(*plan.root, source_ptrs, exec_options,
            [&](const exec::Value* row, size_t) {
              emit(row);
              return true;
            });
  return true;
}

// One rule-body join, through whichever route `options` selects. `emit`
// receives the full variable-binding row (one Sym per DlVarId).
template <typename EmitFn>
void RunBody(const Database& db, const std::vector<DlAtom>& body,
             std::optional<size_t> delta_pos, const Relation* delta_relation,
             const MaterializeOptions& options, EmitFn&& emit) {
  if (options.plan) {
    std::vector<DlVarId> all_vars(VarCount(body));
    for (DlVarId v = 0; v < all_vars.size(); ++v) all_vars[v] = v;
    if (PlanBody(db, body, delta_pos, delta_relation, options.plan_options,
                 all_vars, emit)) {
      return;
    }
  }
  BodyJoin join(db, body, delta_pos, delta_relation);
  join.Run([&](const std::vector<Sym>& bindings) { emit(bindings.data()); });
}

// Registry flush, once per materialization run.
void FlushEvalCounters(const EvalStats& s) {
  WDR_COUNTER_INC("wdr.datalog.runs");
  WDR_COUNTER_ADD("wdr.datalog.iterations", s.iterations);
  WDR_COUNTER_ADD("wdr.datalog.derived_tuples", s.derived_tuples);
  WDR_COUNTER_ADD("wdr.datalog.rule_evaluations", s.rule_evaluations);
}

// Sequential materialization (naive or semi-naive), rule bodies routed
// through RunBody so the plan and legacy join routes share the fixpoint
// driver.
Result<Database> MaterializeSequential(const DlProgram& program,
                                       const MaterializeOptions& options,
                                       EvalStats* stats) {
  WDR_RETURN_IF_ERROR(program.Validate());
  Database db(program);
  for (const DlAtom& fact : program.facts()) {
    Tuple tuple;
    tuple.reserve(fact.args.size());
    for (const DlTerm& t : fact.args) tuple.push_back(t.id);
    db.Insert(fact.pred, tuple);
  }

  EvalStats local;
  if (options.strategy == Strategy::kNaive) {
    bool changed = true;
    while (changed) {
      changed = false;
      ++local.iterations;
      for (const DlRule& rule : program.rules()) {
        ++local.rule_evaluations;
        std::vector<Tuple> derived;
        RunBody(db, rule.body, std::nullopt, nullptr, options,
                [&](const Sym* bindings) {
                  derived.push_back(InstantiateHead(rule.head, bindings));
                });
        for (const Tuple& tuple : derived) {
          if (db.Insert(rule.head.pred, tuple)) {
            changed = true;
            ++local.derived_tuples;
          }
        }
      }
    }
  } else {
    // Semi-naive: round 0 treats the initial facts as the delta; after
    // that, each rule is evaluated once per body position whose predicate
    // gained tuples, with that atom restricted to the previous delta.
    std::vector<Relation> delta;
    delta.reserve(program.pred_count());
    for (PredId p = 0; p < program.pred_count(); ++p) {
      delta.emplace_back(program.pred_arity(p));
    }
    for (const DlAtom& fact : program.facts()) {
      Tuple tuple;
      tuple.reserve(fact.args.size());
      for (const DlTerm& t : fact.args) tuple.push_back(t.id);
      delta[fact.pred].Insert(tuple);
    }

    while (true) {
      ++local.iterations;
      std::vector<Relation> next_delta;
      next_delta.reserve(program.pred_count());
      for (PredId p = 0; p < program.pred_count(); ++p) {
        next_delta.emplace_back(program.pred_arity(p));
      }
      bool changed = false;
      for (const DlRule& rule : program.rules()) {
        for (size_t pos = 0; pos < rule.body.size(); ++pos) {
          const Relation& d = delta[rule.body[pos].pred];
          if (d.size() == 0) continue;
          ++local.rule_evaluations;
          std::vector<Tuple> derived;
          RunBody(db, rule.body, pos, &d, options,
                  [&](const Sym* bindings) {
                    derived.push_back(InstantiateHead(rule.head, bindings));
                  });
          for (const Tuple& tuple : derived) {
            if (db.Insert(rule.head.pred, tuple)) {
              next_delta[rule.head.pred].Insert(tuple);
              changed = true;
              ++local.derived_tuples;
            }
          }
        }
      }
      if (!changed) break;
      delta = std::move(next_delta);
    }
  }

  FlushEvalCounters(local);
  if (stats != nullptr) *stats = local;
  return db;
}

// Parallel semi-naive materialization; workers run RunBody against the
// frozen database and their delta chunk (the plan route is read-only over
// both, so it parallelizes exactly like BodyJoin).
Result<Database> MaterializeParallelImpl(const DlProgram& program,
                                         const MaterializeOptions& options,
                                         EvalStats* stats) {
  WDR_RETURN_IF_ERROR(program.Validate());
  const int threads = options.threads;

  Database db(program);
  std::vector<Relation> delta;
  delta.reserve(program.pred_count());
  for (PredId p = 0; p < program.pred_count(); ++p) {
    delta.emplace_back(program.pred_arity(p));
  }
  for (const DlAtom& fact : program.facts()) {
    Tuple tuple;
    tuple.reserve(fact.args.size());
    for (const DlTerm& t : fact.args) tuple.push_back(t.id);
    if (db.Insert(fact.pred, tuple)) delta[fact.pred].Insert(tuple);
  }

  EvalStats local;
  while (true) {
    ++local.iterations;

    // Work items: one per (rule, delta position, tuple chunk). Workers
    // only read `db` and their chunk; results are merged afterwards.
    struct WorkItem {
      const DlRule* rule;
      size_t delta_pos;
      Relation chunk;
    };
    std::vector<WorkItem> items;
    for (const DlRule& rule : program.rules()) {
      for (size_t pos = 0; pos < rule.body.size(); ++pos) {
        const Relation& d = delta[rule.body[pos].pred];
        if (d.size() == 0) continue;
        ++local.rule_evaluations;
        size_t chunk_count =
            std::min<size_t>(static_cast<size_t>(threads), d.size());
        size_t per_chunk = (d.size() + chunk_count - 1) / chunk_count;
        for (size_t start = 0; start < d.size(); start += per_chunk) {
          WorkItem item{&rule, pos, Relation(d.arity())};
          size_t end = std::min(start + per_chunk, d.size());
          for (size_t i = start; i < end; ++i) {
            item.chunk.Insert(d.tuples()[i]);
          }
          items.push_back(std::move(item));
        }
      }
    }
    if (items.empty()) break;

    std::vector<std::vector<Tuple>> derived(items.size());
    std::atomic<size_t> next_item{0};
    auto worker = [&]() {
      while (true) {
        size_t index = next_item.fetch_add(1);
        if (index >= items.size()) return;
        const WorkItem& item = items[index];
        RunBody(db, item.rule->body, item.delta_pos, &item.chunk, options,
                [&](const Sym* bindings) {
                  derived[index].push_back(
                      InstantiateHead(item.rule->head, bindings));
                });
      }
    };
    std::vector<std::thread> pool;
    int worker_count = std::min<int>(threads, static_cast<int>(items.size()));
    pool.reserve(worker_count);
    for (int w = 0; w < worker_count; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();

    // Merge phase (single-threaded): dedup against the database and build
    // the next delta.
    std::vector<Relation> next_delta;
    next_delta.reserve(program.pred_count());
    for (PredId p = 0; p < program.pred_count(); ++p) {
      next_delta.emplace_back(program.pred_arity(p));
    }
    bool changed = false;
    for (size_t index = 0; index < items.size(); ++index) {
      PredId head_pred = items[index].rule->head.pred;
      for (const Tuple& tuple : derived[index]) {
        if (db.Insert(head_pred, tuple)) {
          next_delta[head_pred].Insert(tuple);
          changed = true;
          ++local.derived_tuples;
        }
      }
    }
    if (!changed) break;
    delta = std::move(next_delta);
  }

  FlushEvalCounters(local);
  if (stats != nullptr) *stats = local;
  return db;
}

}  // namespace

Result<Database> MaterializeWithOptions(const DlProgram& program,
                                        const MaterializeOptions& options,
                                        EvalStats* stats) {
  if (options.threads > 1) {
    return MaterializeParallelImpl(program, options, stats);
  }
  return MaterializeSequential(program, options, stats);
}

Result<Database> Materialize(const DlProgram& program, Strategy strategy,
                             EvalStats* stats) {
  MaterializeOptions options;
  options.strategy = strategy;
  return MaterializeWithOptions(program, options, stats);
}

Result<Database> MaterializeParallel(const DlProgram& program, int threads,
                                     EvalStats* stats) {
  MaterializeOptions options;
  options.threads = threads;
  return MaterializeWithOptions(program, options, stats);
}

Result<std::vector<Tuple>> EvaluateQuery(const DlProgram& program,
                                         const Database& db,
                                         const std::vector<DlAtom>& body,
                                         const std::vector<DlVarId>& projection,
                                         const BodyPlanOptions* plan) {
  (void)program;
  size_t var_count = VarCount(body);
  for (DlVarId v : projection) {
    if (v >= var_count) {
      return InvalidArgumentError(
          "projected variable does not occur in the query body");
    }
  }
  std::set<Tuple> rows;
  auto collect = [&](const Sym* bindings) {
    Tuple row;
    row.reserve(projection.size());
    for (DlVarId v : projection) row.push_back(bindings[v]);
    rows.insert(std::move(row));
  };
  // A null `plan` means caller default: legacy join, unless WDR_PLAN=1
  // flips the process-wide default.
  const BodyPlanOptions env_default;
  if (plan == nullptr && exec::PlanModeDefault()) plan = &env_default;
  bool planned = false;
  if (plan != nullptr) {
    // The plan projects directly: emitted rows are already in projection
    // order, so they go straight into the dedup set.
    planned = PlanBody(db, body, std::nullopt, nullptr, *plan, projection,
                       [&](const Sym* row) {
                         rows.insert(Tuple(row, row + projection.size()));
                       });
  }
  if (!planned) {
    BodyJoin join(db, body, std::nullopt, nullptr);
    join.Run([&](const std::vector<Sym>& bindings) { collect(bindings.data()); });
  }
  return std::vector<Tuple>(rows.begin(), rows.end());
}

}  // namespace wdr::datalog
