#include "datalog/evaluator.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <thread>

#include "obs/metrics.h"

namespace wdr::datalog {
namespace {

constexpr Sym kUnbound = static_cast<Sym>(-1);

size_t VarCount(const std::vector<DlAtom>& atoms) {
  size_t count = 0;
  for (const DlAtom& atom : atoms) {
    for (const DlTerm& t : atom.args) {
      if (t.is_var) count = std::max(count, static_cast<size_t>(t.id) + 1);
    }
  }
  return count;
}

// Recursive join over `body`. If `delta_pos` is set, that atom ranges over
// `delta_relation` instead of the database relation.
class BodyJoin {
 public:
  BodyJoin(const Database& db, const std::vector<DlAtom>& body,
           std::optional<size_t> delta_pos, const Relation* delta_relation)
      : db_(db),
        body_(body),
        delta_pos_(delta_pos),
        delta_relation_(delta_relation),
        bindings_(VarCount(body), kUnbound) {}

  template <typename EmitFn>
  void Run(EmitFn&& emit) {
    Recurse(0, emit);
  }

  const std::vector<Sym>& bindings() const { return bindings_; }

 private:
  template <typename EmitFn>
  void Recurse(size_t atom_index, EmitFn&& emit) {
    if (atom_index == body_.size()) {
      emit(bindings_);
      return;
    }
    const DlAtom& atom = body_[atom_index];
    const Relation& rel = (delta_pos_ && *delta_pos_ == atom_index)
                              ? *delta_relation_
                              : db_.relation(atom.pred);

    // Pick the most selective bound column, if any.
    size_t best_col = SIZE_MAX;
    size_t best_size = SIZE_MAX;
    for (size_t col = 0; col < atom.args.size(); ++col) {
      Sym value = ResolveArg(atom.args[col]);
      if (value == kUnbound) continue;
      size_t bucket = rel.Probe(col, value).size();
      if (bucket < best_size) {
        best_size = bucket;
        best_col = col;
      }
    }

    auto try_tuple = [&](const Tuple& tuple) {
      std::vector<DlVarId> bound_here;
      bool ok = true;
      for (size_t col = 0; col < atom.args.size(); ++col) {
        if (!TryBind(atom.args[col], tuple[col], bound_here)) {
          ok = false;
          break;
        }
      }
      if (ok) Recurse(atom_index + 1, emit);
      for (auto it = bound_here.rbegin(); it != bound_here.rend(); ++it) {
        bindings_[*it] = kUnbound;
      }
    };

    if (best_col != SIZE_MAX) {
      Sym value = ResolveArg(atom.args[best_col]);
      for (uint32_t pos : rel.Probe(best_col, value)) {
        try_tuple(rel.tuples()[pos]);
      }
    } else {
      for (const Tuple& tuple : rel.tuples()) try_tuple(tuple);
    }
  }

  Sym ResolveArg(const DlTerm& t) const {
    return t.is_var ? bindings_[t.id] : t.id;
  }

  bool TryBind(const DlTerm& term, Sym value,
               std::vector<DlVarId>& bound_here) {
    if (!term.is_var) return term.id == value;
    Sym& slot = bindings_[term.id];
    if (slot == kUnbound) {
      slot = value;
      bound_here.push_back(term.id);
      return true;
    }
    return slot == value;
  }

  const Database& db_;
  const std::vector<DlAtom>& body_;
  std::optional<size_t> delta_pos_;
  const Relation* delta_relation_;
  std::vector<Sym> bindings_;
};

Tuple InstantiateHead(const DlAtom& head, const std::vector<Sym>& bindings) {
  Tuple tuple;
  tuple.reserve(head.args.size());
  for (const DlTerm& t : head.args) {
    tuple.push_back(t.is_var ? bindings[t.id] : t.id);
  }
  return tuple;
}

// Registry flush, once per materialization run.
void FlushEvalCounters(const EvalStats& s) {
  WDR_COUNTER_INC("wdr.datalog.runs");
  WDR_COUNTER_ADD("wdr.datalog.iterations", s.iterations);
  WDR_COUNTER_ADD("wdr.datalog.derived_tuples", s.derived_tuples);
  WDR_COUNTER_ADD("wdr.datalog.rule_evaluations", s.rule_evaluations);
}

}  // namespace

Result<Database> Materialize(const DlProgram& program, Strategy strategy,
                             EvalStats* stats) {
  WDR_RETURN_IF_ERROR(program.Validate());
  Database db(program);
  for (const DlAtom& fact : program.facts()) {
    Tuple tuple;
    tuple.reserve(fact.args.size());
    for (const DlTerm& t : fact.args) tuple.push_back(t.id);
    db.Insert(fact.pred, tuple);
  }

  EvalStats local;
  if (strategy == Strategy::kNaive) {
    bool changed = true;
    while (changed) {
      changed = false;
      ++local.iterations;
      for (const DlRule& rule : program.rules()) {
        ++local.rule_evaluations;
        std::vector<Tuple> derived;
        BodyJoin join(db, rule.body, std::nullopt, nullptr);
        join.Run([&](const std::vector<Sym>& bindings) {
          derived.push_back(InstantiateHead(rule.head, bindings));
        });
        for (const Tuple& tuple : derived) {
          if (db.Insert(rule.head.pred, tuple)) {
            changed = true;
            ++local.derived_tuples;
          }
        }
      }
    }
  } else {
    // Semi-naive: round 0 treats the initial facts as the delta; after
    // that, each rule is evaluated once per body position whose predicate
    // gained tuples, with that atom restricted to the previous delta.
    std::vector<Relation> delta;
    delta.reserve(program.pred_count());
    for (PredId p = 0; p < program.pred_count(); ++p) {
      delta.emplace_back(program.pred_arity(p));
    }
    for (const DlAtom& fact : program.facts()) {
      Tuple tuple;
      tuple.reserve(fact.args.size());
      for (const DlTerm& t : fact.args) tuple.push_back(t.id);
      delta[fact.pred].Insert(tuple);
    }

    while (true) {
      ++local.iterations;
      std::vector<Relation> next_delta;
      next_delta.reserve(program.pred_count());
      for (PredId p = 0; p < program.pred_count(); ++p) {
        next_delta.emplace_back(program.pred_arity(p));
      }
      bool changed = false;
      for (const DlRule& rule : program.rules()) {
        for (size_t pos = 0; pos < rule.body.size(); ++pos) {
          const Relation& d = delta[rule.body[pos].pred];
          if (d.size() == 0) continue;
          ++local.rule_evaluations;
          std::vector<Tuple> derived;
          BodyJoin join(db, rule.body, pos, &d);
          join.Run([&](const std::vector<Sym>& bindings) {
            derived.push_back(InstantiateHead(rule.head, bindings));
          });
          for (const Tuple& tuple : derived) {
            if (db.Insert(rule.head.pred, tuple)) {
              next_delta[rule.head.pred].Insert(tuple);
              changed = true;
              ++local.derived_tuples;
            }
          }
        }
      }
      if (!changed) break;
      delta = std::move(next_delta);
    }
  }

  FlushEvalCounters(local);
  if (stats != nullptr) *stats = local;
  return db;
}

Result<Database> MaterializeParallel(const DlProgram& program, int threads,
                                     EvalStats* stats) {
  if (threads <= 1) return Materialize(program, Strategy::kSemiNaive, stats);
  WDR_RETURN_IF_ERROR(program.Validate());

  Database db(program);
  std::vector<Relation> delta;
  delta.reserve(program.pred_count());
  for (PredId p = 0; p < program.pred_count(); ++p) {
    delta.emplace_back(program.pred_arity(p));
  }
  for (const DlAtom& fact : program.facts()) {
    Tuple tuple;
    tuple.reserve(fact.args.size());
    for (const DlTerm& t : fact.args) tuple.push_back(t.id);
    if (db.Insert(fact.pred, tuple)) delta[fact.pred].Insert(tuple);
  }

  EvalStats local;
  while (true) {
    ++local.iterations;

    // Work items: one per (rule, delta position, tuple chunk). Workers
    // only read `db` and their chunk; results are merged afterwards.
    struct WorkItem {
      const DlRule* rule;
      size_t delta_pos;
      Relation chunk;
    };
    std::vector<WorkItem> items;
    for (const DlRule& rule : program.rules()) {
      for (size_t pos = 0; pos < rule.body.size(); ++pos) {
        const Relation& d = delta[rule.body[pos].pred];
        if (d.size() == 0) continue;
        ++local.rule_evaluations;
        size_t chunk_count =
            std::min<size_t>(static_cast<size_t>(threads), d.size());
        size_t per_chunk = (d.size() + chunk_count - 1) / chunk_count;
        for (size_t start = 0; start < d.size(); start += per_chunk) {
          WorkItem item{&rule, pos, Relation(d.arity())};
          size_t end = std::min(start + per_chunk, d.size());
          for (size_t i = start; i < end; ++i) {
            item.chunk.Insert(d.tuples()[i]);
          }
          items.push_back(std::move(item));
        }
      }
    }
    if (items.empty()) break;

    std::vector<std::vector<Tuple>> derived(items.size());
    std::atomic<size_t> next_item{0};
    auto worker = [&]() {
      while (true) {
        size_t index = next_item.fetch_add(1);
        if (index >= items.size()) return;
        const WorkItem& item = items[index];
        BodyJoin join(db, item.rule->body, item.delta_pos, &item.chunk);
        join.Run([&](const std::vector<Sym>& bindings) {
          derived[index].push_back(
              InstantiateHead(item.rule->head, bindings));
        });
      }
    };
    std::vector<std::thread> pool;
    int worker_count = std::min<int>(threads, static_cast<int>(items.size()));
    pool.reserve(worker_count);
    for (int w = 0; w < worker_count; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();

    // Merge phase (single-threaded): dedup against the database and build
    // the next delta.
    std::vector<Relation> next_delta;
    next_delta.reserve(program.pred_count());
    for (PredId p = 0; p < program.pred_count(); ++p) {
      next_delta.emplace_back(program.pred_arity(p));
    }
    bool changed = false;
    for (size_t index = 0; index < items.size(); ++index) {
      PredId head_pred = items[index].rule->head.pred;
      for (const Tuple& tuple : derived[index]) {
        if (db.Insert(head_pred, tuple)) {
          next_delta[head_pred].Insert(tuple);
          changed = true;
          ++local.derived_tuples;
        }
      }
    }
    if (!changed) break;
    delta = std::move(next_delta);
  }

  FlushEvalCounters(local);
  if (stats != nullptr) *stats = local;
  return db;
}

Result<std::vector<Tuple>> EvaluateQuery(
    const DlProgram& program, const Database& db,
    const std::vector<DlAtom>& body, const std::vector<DlVarId>& projection) {
  (void)program;
  size_t var_count = VarCount(body);
  for (DlVarId v : projection) {
    if (v >= var_count) {
      return InvalidArgumentError(
          "projected variable does not occur in the query body");
    }
  }
  std::set<Tuple> rows;
  BodyJoin join(db, body, std::nullopt, nullptr);
  join.Run([&](const std::vector<Sym>& bindings) {
    Tuple row;
    row.reserve(projection.size());
    for (DlVarId v : projection) row.push_back(bindings[v]);
    rows.insert(std::move(row));
  });
  return std::vector<Tuple>(rows.begin(), rows.end());
}

}  // namespace wdr::datalog
