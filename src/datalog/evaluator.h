#ifndef WDR_DATALOG_EVALUATOR_H_
#define WDR_DATALOG_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "datalog/database.h"
#include "datalog/program.h"
#include "exec/plan.h"

namespace wdr::datalog {

// Bottom-up evaluation strategy.
enum class Strategy {
  // Re-evaluates every rule against the whole database each round.
  kNaive,
  // Each round restricts one body atom to the tuples derived in the
  // previous round (the textbook optimization the paper's [29] builds on).
  kSemiNaive,
};

struct EvalStats {
  size_t iterations = 0;
  size_t derived_tuples = 0;  // beyond the initial facts
  size_t rule_evaluations = 0;
};

// Knobs for the wdr::exec physical-plan route through rule-body joins.
struct BodyPlanOptions {
  bool hash_joins = true;
  size_t batch_rows = 1024;
};

// Full materialization configuration. `plan` compiles each rule-body join
// into the shared wdr::exec physical-plan IR — cost-based join order and
// join algorithm from live relation statistics (sizes and per-column
// distinct counts are maintained by Relation inserts, so the estimator is
// never stale) — instead of the recursive per-binding BodyJoin. Both
// routes derive the same database (property-tested differentially).
// WDR_PLAN=1 in the environment flips the `plan` default on.
struct MaterializeOptions {
  Strategy strategy = Strategy::kSemiNaive;
  int threads = 1;  // > 1 selects the parallel semi-naive route
  bool plan = exec::PlanModeDefault();
  BodyPlanOptions plan_options;
};

Result<Database> MaterializeWithOptions(const DlProgram& program,
                                        const MaterializeOptions& options,
                                        EvalStats* stats = nullptr);

// Materializes the least fixpoint of `program` (facts + rules).
// The program must Validate(); the two strategies produce identical
// databases (property-tested), differing only in work done.
Result<Database> Materialize(const DlProgram& program, Strategy strategy,
                             EvalStats* stats = nullptr);

// Parallel semi-naive materialization, after the paper's [29] (Motik et
// al., AAAI'14: "parallel materialisation of datalog programs in
// centralised, main-memory RDF systems"): within each semi-naive round,
// the delta of every (rule, delta-position) pair is partitioned across
// `threads` workers that join against the (read-only) current database;
// derived tuples are merged single-threaded between rounds, so rounds are
// barriers exactly as in [29]'s round-based variant. Produces the same
// database as the sequential strategies (property-tested). `threads` <= 1
// degrades to sequential semi-naive.
Result<Database> MaterializeParallel(const DlProgram& program, int threads,
                                     EvalStats* stats = nullptr);

// Evaluates a conjunctive query (the `body` atoms, sharing variable ids)
// against a materialized database, returning the distinct projections of
// `projection` variables. Every projected variable must occur in `body`.
// When `plan` is non-null the body runs through a wdr::exec physical plan
// (cost-based over live relation statistics); answers are identical.
Result<std::vector<Tuple>> EvaluateQuery(const DlProgram& program,
                                         const Database& db,
                                         const std::vector<DlAtom>& body,
                                         const std::vector<DlVarId>& projection,
                                         const BodyPlanOptions* plan = nullptr);

}  // namespace wdr::datalog

#endif  // WDR_DATALOG_EVALUATOR_H_
