#include "datalog/rdf_datalog.h"

#include <set>
#include <string>

#include "datalog/magic.h"

namespace wdr::datalog {
namespace {

using query::BgpQuery;
using query::PatternTerm;
using query::TriplePattern;
using rdf::TermId;

// Builds the six RDFS rules over the reified triple predicate.
// Variable ids within each rule: S=0, P=1, O=2, C=3 (roles vary per rule).
void AddRdfsRules(DlProgram& program, PredId triple, PredId resource,
                  Sym type, Sym sco, Sym spo, Sym dom, Sym rng) {
  auto v = [](DlVarId id) { return DlTerm::Variable(id); };
  auto c = [](Sym s) { return DlTerm::Constant(s); };
  auto atom = [&](PredId pred, std::vector<DlTerm> args) {
    DlAtom a;
    a.pred = pred;
    a.args = std::move(args);
    return a;
  };
  auto rule = [&](DlAtom head, std::vector<DlAtom> body,
                  std::vector<std::string> names) {
    DlRule r;
    r.head = std::move(head);
    r.body = std::move(body);
    r.var_names = std::move(names);
    program.AddRule(std::move(r));
  };

  // rdfs9: triple(S,type,C2) :- triple(C1,sco,C2), triple(S,type,C1).
  rule(atom(triple, {v(0), c(type), v(2)}),
       {atom(triple, {v(1), c(sco), v(2)}), atom(triple, {v(0), c(type), v(1)})},
       {"S", "C1", "C2"});
  // rdfs7: triple(S,P2,O) :- triple(P1,spo,P2), triple(S,P1,O).
  rule(atom(triple, {v(0), v(2), v(3)}),
       {atom(triple, {v(1), c(spo), v(2)}), atom(triple, {v(0), v(1), v(3)})},
       {"S", "P1", "P2", "O"});
  // rdfs2: triple(S,type,C) :- triple(P,dom,C), triple(S,P,O).
  rule(atom(triple, {v(0), c(type), v(2)}),
       {atom(triple, {v(1), c(dom), v(2)}), atom(triple, {v(0), v(1), v(3)})},
       {"S", "P", "C", "O"});
  // rdfs3 (guarded): triple(O,type,C) :- triple(P,rng,C), triple(S,P,O),
  //                                      resource(O).
  rule(atom(triple, {v(3), c(type), v(2)}),
       {atom(triple, {v(1), c(rng), v(2)}), atom(triple, {v(0), v(1), v(3)}),
        atom(resource, {v(3)})},
       {"S", "P", "C", "O"});
  // rdfs11: triple(C1,sco,C3) :- triple(C1,sco,C2), triple(C2,sco,C3).
  rule(atom(triple, {v(0), c(sco), v(2)}),
       {atom(triple, {v(0), c(sco), v(1)}), atom(triple, {v(1), c(sco), v(2)})},
       {"C1", "C2", "C3"});
  // rdfs5: triple(P1,spo,P3) :- triple(P1,spo,P2), triple(P2,spo,P3).
  rule(atom(triple, {v(0), c(spo), v(2)}),
       {atom(triple, {v(0), c(spo), v(1)}), atom(triple, {v(1), c(spo), v(2)})},
       {"P1", "P2", "P3"});
}

}  // namespace

RdfDatalogTranslation TranslateGraph(const rdf::Graph& graph,
                                     const schema::Vocabulary& vocab) {
  RdfDatalogTranslation xlat;
  DlProgram& program = xlat.program;
  xlat.triple_pred = program.InternPred("triple", 3);
  xlat.resource_pred = program.InternPred("resource", 1);

  const rdf::Dictionary& dict = graph.dict();
  xlat.sym_of_term.assign(dict.size() + 1, 0);
  xlat.term_of_sym.clear();
  xlat.term_of_sym.reserve(dict.size());
  for (TermId id = 1; id <= dict.size(); ++id) {
    Sym sym = program.InternSym("t" + std::to_string(id));
    xlat.sym_of_term[id] = sym;
    if (sym >= xlat.term_of_sym.size()) xlat.term_of_sym.resize(sym + 1, 0);
    xlat.term_of_sym[sym] = id;
    if (!dict.term(id).is_literal()) {
      DlAtom fact;
      fact.pred = xlat.resource_pred;
      fact.args = {DlTerm::Constant(sym)};
      program.AddFact(std::move(fact));
    }
  }

  graph.store().Match(0, 0, 0, [&](const rdf::Triple& t) {
    DlAtom fact;
    fact.pred = xlat.triple_pred;
    fact.args = {DlTerm::Constant(xlat.sym_of_term[t.s]),
                 DlTerm::Constant(xlat.sym_of_term[t.p]),
                 DlTerm::Constant(xlat.sym_of_term[t.o])};
    program.AddFact(std::move(fact));
  });

  AddRdfsRules(program, xlat.triple_pred, xlat.resource_pred,
               xlat.sym_of_term[vocab.type], xlat.sym_of_term[vocab.sub_class_of],
               xlat.sym_of_term[vocab.sub_property_of],
               xlat.sym_of_term[vocab.domain], xlat.sym_of_term[vocab.range]);
  return xlat;
}

Result<rdf::TripleStore> MaterializeViaDatalog(const rdf::Graph& graph,
                                               const schema::Vocabulary& vocab,
                                               Strategy strategy,
                                               EvalStats* stats) {
  MaterializeOptions options;
  options.strategy = strategy;
  return MaterializeViaDatalog(graph, vocab, options, stats);
}

Result<rdf::TripleStore> MaterializeViaDatalog(const rdf::Graph& graph,
                                               const schema::Vocabulary& vocab,
                                               const MaterializeOptions& options,
                                               EvalStats* stats) {
  RdfDatalogTranslation xlat = TranslateGraph(graph, vocab);
  WDR_ASSIGN_OR_RETURN(Database db,
                       MaterializeWithOptions(xlat.program, options, stats));
  rdf::TripleStore closure;
  for (const Tuple& t : db.relation(xlat.triple_pred).tuples()) {
    closure.Insert(rdf::Triple(xlat.term_of_sym[t[0]], xlat.term_of_sym[t[1]],
                               xlat.term_of_sym[t[2]]));
  }
  return closure;
}

Result<query::ResultSet> AnswerViaDatalog(const RdfDatalogTranslation& xlat,
                                          const Database& db,
                                          const query::UnionQuery& q,
                                          const BodyPlanOptions* plan) {
  query::ResultSet result;
  std::set<query::Row> seen;
  for (const BgpQuery& branch : q.branches()) {
    if (result.var_names.empty()) {
      result.var_names = branch.ProjectionNames();
    }
    // Translate atoms; a branch mentioning a term the graph never interned
    // can only match nothing.
    std::vector<DlAtom> body;
    bool impossible = false;
    auto translate = [&](const PatternTerm& t) -> DlTerm {
      if (t.is_var()) return DlTerm::Variable(t.var);
      if (t.id >= xlat.sym_of_term.size()) {
        impossible = true;
        return DlTerm::Constant(0);
      }
      return DlTerm::Constant(xlat.sym_of_term[t.id]);
    };
    for (const TriplePattern& atom : branch.atoms()) {
      DlAtom dl;
      dl.pred = xlat.triple_pred;
      dl.args = {translate(atom.s), translate(atom.p), translate(atom.o)};
      body.push_back(std::move(dl));
    }
    if (impossible) continue;
    // Preset bindings become equality atoms via constant substitution.
    for (DlAtom& atom : body) {
      for (DlTerm& term : atom.args) {
        if (!term.is_var) continue;
        auto it = branch.preset().find(term.id);
        if (it != branch.preset().end()) {
          term = DlTerm::Constant(xlat.sym_of_term[it->second]);
        }
      }
    }

    std::vector<DlVarId> projection(branch.projection().begin(),
                                    branch.projection().end());
    // Projected variables that are preset or absent from the body are not
    // supported by the generic Datalog query path; answer those branches by
    // substituting the preset value afterwards.
    std::vector<std::pair<size_t, rdf::TermId>> fixed;  // (column, value)
    std::vector<DlVarId> effective;
    std::vector<size_t> effective_cols;
    for (size_t i = 0; i < projection.size(); ++i) {
      auto it = branch.preset().find(projection[i]);
      if (it != branch.preset().end()) {
        fixed.emplace_back(i, it->second);
      } else {
        effective.push_back(projection[i]);
        effective_cols.push_back(i);
      }
    }
    WDR_ASSIGN_OR_RETURN(
        std::vector<Tuple> rows,
        EvaluateQuery(xlat.program, db, body, effective, plan));
    for (const Tuple& tuple : rows) {
      query::Row row(projection.size(), rdf::kNullTermId);
      for (size_t i = 0; i < effective_cols.size(); ++i) {
        row[effective_cols[i]] = xlat.term_of_sym[tuple[i]];
      }
      for (const auto& [col, value] : fixed) row[col] = value;
      if (seen.insert(row).second) result.rows.push_back(std::move(row));
    }
  }
  query::ApplySolutionModifiers(q, result);
  return result;
}

Result<query::ResultSet> AnswerViaMagicUnion(const RdfDatalogTranslation& xlat,
                                             const query::UnionQuery& q,
                                             EvalStats* stats) {
  query::ResultSet result;
  std::set<query::Row> seen;
  for (const BgpQuery& branch : q.branches()) {
    if (result.var_names.empty()) {
      result.var_names = branch.ProjectionNames();
    }
    std::vector<DlAtom> body;
    bool impossible = false;
    auto translate = [&](const PatternTerm& t) -> DlTerm {
      if (t.is_var()) return DlTerm::Variable(t.var);
      if (t.id >= xlat.sym_of_term.size()) {
        impossible = true;
        return DlTerm::Constant(0);
      }
      return DlTerm::Constant(xlat.sym_of_term[t.id]);
    };
    for (const TriplePattern& atom : branch.atoms()) {
      DlAtom dl;
      dl.pred = xlat.triple_pred;
      dl.args = {translate(atom.s), translate(atom.p), translate(atom.o)};
      body.push_back(std::move(dl));
    }
    if (impossible) continue;
    // Preset bindings become constants, as in AnswerViaDatalog.
    for (DlAtom& atom : body) {
      for (DlTerm& term : atom.args) {
        if (!term.is_var) continue;
        auto it = branch.preset().find(term.id);
        if (it != branch.preset().end()) {
          term = DlTerm::Constant(xlat.sym_of_term[it->second]);
        }
      }
    }

    const std::vector<DlVarId> projection(branch.projection().begin(),
                                          branch.projection().end());
    std::vector<std::pair<size_t, rdf::TermId>> fixed;  // (column, value)
    std::vector<DlVarId> effective;
    std::vector<size_t> effective_cols;
    for (size_t i = 0; i < projection.size(); ++i) {
      auto it = branch.preset().find(projection[i]);
      if (it != branch.preset().end()) {
        fixed.emplace_back(i, it->second);
      } else {
        effective.push_back(projection[i]);
        effective_cols.push_back(i);
      }
    }

    // Wrap the branch in a fresh answer predicate so the magic transform
    // has an IDB query atom to adorn; its all-free query atom then asks
    // for the distinct projections.
    DlProgram program = xlat.program;
    const PredId answer =
        program.InternPred("__magic_answer", effective.size());
    DlRule rule;
    rule.head.pred = answer;
    uint32_t max_var = 0;
    for (DlVarId v : effective) {
      rule.head.args.push_back(DlTerm::Variable(v));
      if (static_cast<uint32_t>(v) > max_var) max_var = v;
    }
    for (const DlAtom& atom : body) {
      for (const DlTerm& term : atom.args) {
        if (term.is_var && term.id > max_var) max_var = term.id;
      }
    }
    rule.body = std::move(body);
    for (uint32_t v = 0; v <= max_var; ++v) {
      rule.var_names.push_back("v" + std::to_string(v));
    }
    program.AddRule(std::move(rule));

    DlAtom query_atom;
    query_atom.pred = answer;
    for (size_t i = 0; i < effective.size(); ++i) {
      query_atom.args.push_back(DlTerm::Variable(static_cast<DlVarId>(i)));
    }
    EvalStats branch_stats;
    WDR_ASSIGN_OR_RETURN(
        std::vector<Tuple> tuples,
        AnswerWithMagic(program, query_atom,
                        stats != nullptr ? &branch_stats : nullptr));
    if (stats != nullptr) {
      stats->derived_tuples += branch_stats.derived_tuples;
      stats->iterations += branch_stats.iterations;
      stats->rule_evaluations += branch_stats.rule_evaluations;
    }
    for (const Tuple& tuple : tuples) {
      query::Row row(projection.size(), rdf::kNullTermId);
      for (size_t i = 0; i < effective_cols.size(); ++i) {
        row[effective_cols[i]] = xlat.term_of_sym[tuple[i]];
      }
      for (const auto& [col, value] : fixed) row[col] = value;
      if (seen.insert(row).second) result.rows.push_back(std::move(row));
    }
  }
  query::ApplySolutionModifiers(q, result);
  return result;
}

}  // namespace wdr::datalog
