#ifndef WDR_DATALOG_PROGRAM_H_
#define WDR_DATALOG_PROGRAM_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace wdr::datalog {

// Interned symbol (constant) and predicate identifiers.
using Sym = uint32_t;
using PredId = uint32_t;
// Rule-scoped variable index.
using DlVarId = uint32_t;

// A term of an atom: either a constant symbol or a rule-scoped variable.
struct DlTerm {
  bool is_var = false;
  uint32_t id = 0;  // Sym when constant, DlVarId when variable

  static DlTerm Constant(Sym sym) { return DlTerm{false, sym}; }
  static DlTerm Variable(DlVarId var) { return DlTerm{true, var}; }

  friend bool operator==(const DlTerm&, const DlTerm&) = default;
};

// p(t1, ..., tn).
struct DlAtom {
  PredId pred = 0;
  std::vector<DlTerm> args;

  friend bool operator==(const DlAtom&, const DlAtom&) = default;
};

// head :- body. Facts are rules with an empty, ground body.
struct DlRule {
  DlAtom head;
  std::vector<DlAtom> body;
  // Variable names, indexed by DlVarId (for diagnostics / round-tripping).
  std::vector<std::string> var_names;
};

// A Datalog program: symbol/predicate tables, facts, and rules.
class DlProgram {
 public:
  DlProgram() = default;

  // Interns a predicate. The first use fixes its arity; later uses with a
  // different arity are an error at Validate() time.
  PredId InternPred(const std::string& name, size_t arity);
  Sym InternSym(const std::string& name);

  const std::string& pred_name(PredId p) const { return pred_names_[p]; }
  size_t pred_arity(PredId p) const { return pred_arities_[p]; }
  size_t pred_count() const { return pred_names_.size(); }
  const std::string& sym_name(Sym s) const { return sym_names_[s]; }
  size_t sym_count() const { return sym_names_.size(); }

  Result<PredId> PredByName(const std::string& name) const;

  void AddFact(DlAtom fact) { facts_.push_back(std::move(fact)); }
  void AddRule(DlRule rule) { rules_.push_back(std::move(rule)); }

  const std::vector<DlAtom>& facts() const { return facts_; }
  const std::vector<DlRule>& rules() const { return rules_; }

  // Checks well-formedness: arities consistent, facts ground, and every
  // rule range-restricted (each head variable occurs in the body).
  Status Validate() const;

  // Human-readable rendering of an atom, e.g. "ancestor(X, tom)".
  std::string AtomToString(const DlAtom& atom,
                           const std::vector<std::string>& var_names) const;

 private:
  std::vector<std::string> pred_names_;
  std::vector<size_t> pred_arities_;
  std::unordered_map<std::string, PredId> pred_index_;
  std::vector<std::string> sym_names_;
  std::unordered_map<std::string, Sym> sym_index_;
  std::vector<DlAtom> facts_;
  std::vector<DlRule> rules_;
};

}  // namespace wdr::datalog

#endif  // WDR_DATALOG_PROGRAM_H_
