#include "datalog/program.h"

#include <unordered_set>

namespace wdr::datalog {

PredId DlProgram::InternPred(const std::string& name, size_t arity) {
  auto it = pred_index_.find(name);
  if (it != pred_index_.end()) return it->second;
  PredId id = static_cast<PredId>(pred_names_.size());
  pred_names_.push_back(name);
  pred_arities_.push_back(arity);
  pred_index_.emplace(name, id);
  return id;
}

Sym DlProgram::InternSym(const std::string& name) {
  auto it = sym_index_.find(name);
  if (it != sym_index_.end()) return it->second;
  Sym id = static_cast<Sym>(sym_names_.size());
  sym_names_.push_back(name);
  sym_index_.emplace(name, id);
  return id;
}

Result<PredId> DlProgram::PredByName(const std::string& name) const {
  auto it = pred_index_.find(name);
  if (it == pred_index_.end()) {
    return NotFoundError("no predicate named '" + name + "'");
  }
  return it->second;
}

Status DlProgram::Validate() const {
  auto check_atom = [this](const DlAtom& atom) -> Status {
    if (atom.pred >= pred_names_.size()) {
      return InternalError("atom references unknown predicate id");
    }
    if (atom.args.size() != pred_arities_[atom.pred]) {
      return InvalidArgumentError("arity mismatch for predicate '" +
                                  pred_names_[atom.pred] + "': expected " +
                                  std::to_string(pred_arities_[atom.pred]) +
                                  ", got " +
                                  std::to_string(atom.args.size()));
    }
    return Status::Ok();
  };

  for (const DlAtom& fact : facts_) {
    WDR_RETURN_IF_ERROR(check_atom(fact));
    for (const DlTerm& t : fact.args) {
      if (t.is_var) {
        return InvalidArgumentError("fact for predicate '" +
                                    pred_names_[fact.pred] +
                                    "' contains a variable");
      }
    }
  }
  for (const DlRule& rule : rules_) {
    WDR_RETURN_IF_ERROR(check_atom(rule.head));
    std::unordered_set<DlVarId> body_vars;
    for (const DlAtom& atom : rule.body) {
      WDR_RETURN_IF_ERROR(check_atom(atom));
      for (const DlTerm& t : atom.args) {
        if (t.is_var) body_vars.insert(t.id);
      }
    }
    for (const DlTerm& t : rule.head.args) {
      if (t.is_var && body_vars.count(t.id) == 0) {
        return InvalidArgumentError(
            "rule for '" + pred_names_[rule.head.pred] +
            "' is not range-restricted: head variable does not occur in "
            "the body");
      }
    }
  }
  return Status::Ok();
}

std::string DlProgram::AtomToString(
    const DlAtom& atom, const std::vector<std::string>& var_names) const {
  std::string out = pred_names_[atom.pred];
  out += '(';
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) out += ", ";
    const DlTerm& t = atom.args[i];
    if (t.is_var) {
      out += t.id < var_names.size() ? var_names[t.id]
                                     : "V" + std::to_string(t.id);
    } else {
      out += sym_names_[t.id];
    }
  }
  out += ')';
  return out;
}

}  // namespace wdr::datalog
