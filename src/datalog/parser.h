#ifndef WDR_DATALOG_PARSER_H_
#define WDR_DATALOG_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "datalog/program.h"

namespace wdr::datalog {

// Parses textual Datalog into a program:
//
//   parent(tom, bob).                      % a fact
//   ancestor(X, Y) :- parent(X, Y).        % rules; variables are capitalized
//   ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
//
// Constants are lower-case identifiers, digits, or 'quoted strings' (which
// may contain any character except the quote). `%` and `#` start comments.
// The parsed program is Validate()d before being returned.
Result<DlProgram> ParseDatalog(std::string_view text);

}  // namespace wdr::datalog

#endif  // WDR_DATALOG_PARSER_H_
