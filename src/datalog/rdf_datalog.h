#ifndef WDR_DATALOG_RDF_DATALOG_H_
#define WDR_DATALOG_RDF_DATALOG_H_

#include <vector>

#include "common/status.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"
#include "query/evaluator.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "rdf/triple_store.h"
#include "schema/vocabulary.h"

namespace wdr::datalog {

// Translation of RDF + RDFS entailment to Datalog (§II-D open issue:
// "alternative methods ... based on translation to Datalog"). The graph is
// reified into a single ternary predicate
//
//   triple(s, p, o)
//
// with one fact per triple and one sym per dictionary term, plus a unary
// guard resource(x) for non-literal terms (literals cannot be subjects, so
// the rdfs3 rule is guarded). The RDFS rules of Fig. 2 plus the two
// transitivity rules become six Datalog rules; materializing the program
// computes exactly the saturation G∞ (property-tested against the native
// saturator).
struct RdfDatalogTranslation {
  DlProgram program;
  PredId triple_pred = 0;
  PredId resource_pred = 0;
  // sym_of_term[term_id] is the Sym for that TermId (index 0 unused).
  std::vector<Sym> sym_of_term;
  // term_of_sym[sym] is the TermId (dictionary id) for that Sym.
  std::vector<rdf::TermId> term_of_sym;
};

// Builds the translation of `graph`.
RdfDatalogTranslation TranslateGraph(const rdf::Graph& graph,
                                     const schema::Vocabulary& vocab);

// Materializes the translated program and converts the `triple` relation
// back into a TripleStore over the graph's dictionary ids.
Result<rdf::TripleStore> MaterializeViaDatalog(
    const rdf::Graph& graph, const schema::Vocabulary& vocab,
    Strategy strategy = Strategy::kSemiNaive, EvalStats* stats = nullptr);

// Same, with the full materialization configuration (threads, the
// wdr::exec physical-plan route, ...).
Result<rdf::TripleStore> MaterializeViaDatalog(
    const rdf::Graph& graph, const schema::Vocabulary& vocab,
    const MaterializeOptions& options, EvalStats* stats = nullptr);

// Answers a BGP / union query through the Datalog route: translates each
// branch into a conjunctive query over `triple`, evaluates it against the
// materialized database, and maps syms back to dictionary ids. Results are
// set-semantics rows in the projection order of the query.
// `plan`, when non-null, routes each branch's conjunctive body through a
// wdr::exec physical plan instead of the recursive join.
Result<query::ResultSet> AnswerViaDatalog(const RdfDatalogTranslation& xlat,
                                          const Database& db,
                                          const query::UnionQuery& q,
                                          const BodyPlanOptions* plan = nullptr);

// Answers a BGP / union query through Datalog + magic sets, with NO prior
// materialization: each branch is wrapped in a fresh answer predicate whose
// single defining rule is the branch body, and magic-sets evaluation
// (datalog/magic.h) derives only the closure fragment relevant to that
// branch. This is the store's kDatalog route — reasoning cost is paid per
// query, focused by the query's constants, against the always-fresh base
// facts baked into `xlat`. Preset bindings are substituted as constants
// (same convention as AnswerViaDatalog). `stats`, when non-null,
// accumulates the per-branch materialization stats.
Result<query::ResultSet> AnswerViaMagicUnion(const RdfDatalogTranslation& xlat,
                                             const query::UnionQuery& q,
                                             EvalStats* stats = nullptr);

}  // namespace wdr::datalog

#endif  // WDR_DATALOG_RDF_DATALOG_H_
