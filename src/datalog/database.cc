#include "datalog/database.h"

namespace wdr::datalog {

bool Relation::Insert(const Tuple& tuple) {
  if (!set_.insert(tuple).second) return false;
  uint32_t position = static_cast<uint32_t>(tuples_.size());
  tuples_.push_back(tuple);
  for (size_t col = 0; col < arity_; ++col) {
    indexes_[col][tuple[col]].push_back(position);
  }
  return true;
}

const std::vector<uint32_t>& Relation::Probe(size_t col, Sym value) const {
  static const std::vector<uint32_t> kEmpty;
  auto it = indexes_[col].find(value);
  return it == indexes_[col].end() ? kEmpty : it->second;
}

Database::Database(const DlProgram& program) {
  relations_.reserve(program.pred_count());
  for (PredId p = 0; p < program.pred_count(); ++p) {
    relations_.emplace_back(program.pred_arity(p));
  }
}

size_t Database::TotalTuples() const {
  size_t total = 0;
  for (const Relation& r : relations_) total += r.size();
  return total;
}

}  // namespace wdr::datalog
