#ifndef WDR_DATALOG_MAGIC_H_
#define WDR_DATALOG_MAGIC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/program.h"

namespace wdr::datalog {

// The magic-sets transformation (§II-D open issue: "smart translations to
// Datalog and possibly RDF-specific Datalog optimization techniques"):
// given a query atom with some arguments bound to constants, rewrites the
// program so that bottom-up materialization derives only tuples relevant
// to that query — the bottom-up counterpart of the backward chaining the
// commercial systems of §II-C implement.
//
// Standard construction with the left-to-right sideways-information-
// passing strategy:
//   - predicates are *adorned* with a bound/free pattern per argument
//     (e.g. path^bf), starting from the query's pattern;
//   - each adorned IDB predicate gets a magic predicate magic_p^α holding
//     the relevant bindings of its bound arguments;
//   - each rule is rewritten to fire only for bindings present in the
//     magic predicate, and magic rules propagate bindings into the body's
//     IDB atoms left to right;
//   - the query's constant bindings seed the magic predicate.
//
// Equivalence with full materialization on the query's answers is
// property-tested.
struct MagicProgram {
  DlProgram program;        // transformed program (facts included)
  PredId answer_pred = 0;   // adorned query predicate
  DlAtom query_atom;        // query atom over answer_pred
};

// Builds the transformed program for `query` (an atom over a predicate of
// `program`; constants bound, variables free). If the query predicate is
// pure EDB (never appears in a rule head), the transformation is the
// identity. Returns InvalidArgument for unknown predicates or arity
// mismatch.
Result<MagicProgram> MagicTransform(const DlProgram& program,
                                    const DlAtom& query);

// Convenience: transform, materialize (semi-naive), and return the
// distinct projections of the query atom's variables, in order of their
// variable ids. `stats` (optional) receives the materialization stats,
// whose derived_tuples is the number the transformation is meant to
// shrink.
Result<std::vector<Tuple>> AnswerWithMagic(const DlProgram& program,
                                           const DlAtom& query,
                                           EvalStats* stats = nullptr);

}  // namespace wdr::datalog

#endif  // WDR_DATALOG_MAGIC_H_
