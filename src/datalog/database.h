#ifndef WDR_DATALOG_DATABASE_H_
#define WDR_DATALOG_DATABASE_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datalog/program.h"

namespace wdr::datalog {

using Tuple = std::vector<Sym>;

struct TupleHash {
  size_t operator()(const Tuple& t) const {
    uint64_t h = 0xcbf29ce484222325ull;
    for (Sym s : t) {
      h ^= s;
      h *= 0x100000001b3ull;
    }
    return static_cast<size_t>(h);
  }
};

// One predicate's extension: a dedup set, insertion-ordered tuple storage,
// and per-column hash indexes (maintained on insert) for bound-position
// probes during joins.
class Relation {
 public:
  explicit Relation(size_t arity) : arity_(arity), indexes_(arity) {}

  // Returns false if the tuple was already present.
  bool Insert(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const { return set_.count(tuple) > 0; }
  size_t size() const { return tuples_.size(); }
  size_t arity() const { return arity_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  // Tuple indexes whose column `col` equals `value`.
  const std::vector<uint32_t>& Probe(size_t col, Sym value) const;

  // Number of distinct values in column `col` (index key count) — the
  // per-column statistic the physical-plan cost model divides by.
  size_t DistinctValues(size_t col) const { return indexes_[col].size(); }

 private:
  size_t arity_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> set_;
  // indexes_[col][value] -> positions in tuples_.
  std::vector<std::unordered_map<Sym, std::vector<uint32_t>>> indexes_;
};

// The materialized extensions of every predicate of a program.
class Database {
 public:
  explicit Database(const DlProgram& program);

  Relation& relation(PredId pred) { return relations_[pred]; }
  const Relation& relation(PredId pred) const { return relations_[pred]; }

  bool Insert(PredId pred, const Tuple& tuple) {
    return relations_[pred].Insert(tuple);
  }

  size_t TotalTuples() const;

 private:
  std::vector<Relation> relations_;
};

}  // namespace wdr::datalog

#endif  // WDR_DATALOG_DATABASE_H_
