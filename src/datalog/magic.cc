#include "datalog/magic.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <unordered_set>

#include "obs/metrics.h"

namespace wdr::datalog {
namespace {

// Bound/free pattern, one char per argument: 'b' or 'f'.
using Adornment = std::string;

Adornment AdornAtom(const DlAtom& atom,
                    const std::unordered_set<DlVarId>& bound_vars) {
  Adornment adornment;
  adornment.reserve(atom.args.size());
  for (const DlTerm& t : atom.args) {
    bool bound = !t.is_var || bound_vars.count(t.id) > 0;
    adornment += bound ? 'b' : 'f';
  }
  return adornment;
}

// Arguments of `atom` at the bound positions of `adornment`.
std::vector<DlTerm> BoundArgs(const DlAtom& atom,
                              const Adornment& adornment) {
  std::vector<DlTerm> args;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (adornment[i] == 'b') args.push_back(atom.args[i]);
  }
  return args;
}

size_t BoundCount(const Adornment& adornment) {
  return static_cast<size_t>(
      std::count(adornment.begin(), adornment.end(), 'b'));
}

// Performs the transformation on a normalized program (no IDB predicate
// has facts).
class MagicBuilder {
 public:
  MagicBuilder(const DlProgram& source,
               const std::unordered_set<PredId>& idb)
      : source_(source), idb_(idb) {}

  Result<MagicProgram> Build(const DlAtom& query) {
    // Mirror symbols and predicates so existing ids stay valid.
    for (Sym s = 0; s < source_.sym_count(); ++s) {
      out_.program.InternSym(source_.sym_name(s));
    }
    for (PredId p = 0; p < source_.pred_count(); ++p) {
      out_.program.InternPred(source_.pred_name(p), source_.pred_arity(p));
    }
    for (const DlAtom& fact : source_.facts()) out_.program.AddFact(fact);

    // Seed from the query's adornment.
    Adornment query_adornment = AdornAtom(query, {});
    PredId answer = AdornedPred(query.pred, query_adornment);
    Process();

    // Magic seed: the query's constants.
    DlAtom seed;
    seed.pred = MagicPred(query.pred, query_adornment);
    seed.args = BoundArgs(query, query_adornment);
    out_.program.AddFact(std::move(seed));

    out_.answer_pred = answer;
    out_.query_atom = query;
    out_.query_atom.pred = answer;
    return std::move(out_);
  }

 private:
  PredId AdornedPred(PredId p, const Adornment& adornment) {
    auto key = std::make_pair(p, adornment);
    auto it = adorned_.find(key);
    if (it != adorned_.end()) return it->second;
    PredId id = out_.program.InternPred(
        source_.pred_name(p) + "__" + adornment, source_.pred_arity(p));
    adorned_.emplace(key, id);
    worklist_.push_back(key);
    return id;
  }

  PredId MagicPred(PredId p, const Adornment& adornment) {
    // Interning is idempotent, so no separate bookkeeping is needed.
    return out_.program.InternPred(
        "m_" + source_.pred_name(p) + "__" + adornment,
        BoundCount(adornment));
  }

  void Process() {
    while (!worklist_.empty()) {
      auto [pred, adornment] = worklist_.front();
      worklist_.pop_front();
      for (const DlRule& rule : source_.rules()) {
        if (rule.head.pred == pred) RewriteRule(rule, adornment);
      }
    }
  }

  void RewriteRule(const DlRule& rule, const Adornment& head_adornment) {
    // The guard: magic_p^α over the head's bound arguments.
    DlAtom guard;
    guard.pred = MagicPred(rule.head.pred, head_adornment);
    guard.args = BoundArgs(rule.head, head_adornment);

    std::unordered_set<DlVarId> bound_vars;
    for (const DlTerm& t : guard.args) {
      if (t.is_var) bound_vars.insert(t.id);
    }

    DlRule adorned_rule;
    adorned_rule.head = rule.head;
    adorned_rule.head.pred = AdornedPred(rule.head.pred, head_adornment);
    adorned_rule.var_names = rule.var_names;
    adorned_rule.body.push_back(guard);

    for (const DlAtom& atom : rule.body) {
      DlAtom rewritten = atom;
      if (idb_.count(atom.pred) > 0) {
        Adornment atom_adornment = AdornAtom(atom, bound_vars);
        rewritten.pred = AdornedPred(atom.pred, atom_adornment);

        // Magic rule: bindings flowing into this body atom. Emitted even
        // for all-free adornments (zero-arity magic predicate): the guard
        // still gates whether the adorned rules for `atom.pred` fire at
        // all.
        DlRule magic_rule;
        magic_rule.head.pred = MagicPred(atom.pred, atom_adornment);
        magic_rule.head.args = BoundArgs(atom, atom_adornment);
        magic_rule.body = adorned_rule.body;  // guard + preceding atoms
        magic_rule.var_names = rule.var_names;
        out_.program.AddRule(std::move(magic_rule));
      }
      adorned_rule.body.push_back(rewritten);
      for (const DlTerm& t : atom.args) {
        if (t.is_var) bound_vars.insert(t.id);
      }
    }
    out_.program.AddRule(std::move(adorned_rule));
  }

  const DlProgram& source_;
  const std::unordered_set<PredId>& idb_;
  MagicProgram out_;
  std::map<std::pair<PredId, Adornment>, PredId> adorned_;
  std::deque<std::pair<PredId, Adornment>> worklist_;
};

// Moves the facts of IDB predicates into fresh "<p>__base" EDB predicates
// bridged by a rule, so the transformation's IDB/EDB split is clean (the
// RDF translation's `triple` predicate has both facts and rules).
DlProgram NormalizeMixedPredicates(const DlProgram& source,
                                   std::unordered_set<PredId>* idb) {
  for (const DlRule& rule : source.rules()) idb->insert(rule.head.pred);

  bool has_mixed = false;
  for (const DlAtom& fact : source.facts()) {
    if (idb->count(fact.pred) > 0) {
      has_mixed = true;
      break;
    }
  }
  if (!has_mixed) return source;  // cheap copy-through

  DlProgram normalized;
  for (Sym s = 0; s < source.sym_count(); ++s) {
    normalized.InternSym(source.sym_name(s));
  }
  for (PredId p = 0; p < source.pred_count(); ++p) {
    normalized.InternPred(source.pred_name(p), source.pred_arity(p));
  }
  std::unordered_set<PredId> bridged;
  for (const DlAtom& fact : source.facts()) {
    if (idb->count(fact.pred) == 0) {
      normalized.AddFact(fact);
      continue;
    }
    PredId base = normalized.InternPred(
        source.pred_name(fact.pred) + "__base", fact.args.size());
    DlAtom moved = fact;
    moved.pred = base;
    normalized.AddFact(std::move(moved));
    if (bridged.insert(fact.pred).second) {
      DlRule bridge;
      bridge.head.pred = fact.pred;
      for (size_t i = 0; i < source.pred_arity(fact.pred); ++i) {
        bridge.head.args.push_back(
            DlTerm::Variable(static_cast<DlVarId>(i)));
        bridge.var_names.push_back("X" + std::to_string(i));
      }
      DlAtom body = bridge.head;
      body.pred = base;
      bridge.body.push_back(std::move(body));
      normalized.AddRule(std::move(bridge));
    }
  }
  for (const DlRule& rule : source.rules()) normalized.AddRule(rule);
  return normalized;
}

}  // namespace

Result<MagicProgram> MagicTransform(const DlProgram& program,
                                    const DlAtom& query) {
  if (query.pred >= program.pred_count()) {
    return InvalidArgumentError("query predicate is unknown");
  }
  if (query.args.size() != program.pred_arity(query.pred)) {
    return InvalidArgumentError("query atom arity mismatch");
  }

  std::unordered_set<PredId> idb;
  DlProgram normalized = NormalizeMixedPredicates(program, &idb);
  if (idb.count(query.pred) == 0) {
    // Pure EDB query: nothing to optimize.
    MagicProgram out;
    out.program = std::move(normalized);
    out.answer_pred = query.pred;
    out.query_atom = query;
    return out;
  }
  return MagicBuilder(normalized, idb).Build(query);
}

Result<std::vector<Tuple>> AnswerWithMagic(const DlProgram& program,
                                           const DlAtom& query,
                                           EvalStats* stats) {
  WDR_ASSIGN_OR_RETURN(MagicProgram magic, MagicTransform(program, query));
  WDR_COUNTER_INC("wdr.datalog.magic.transforms");
  WDR_COUNTER_ADD("wdr.datalog.magic.rules", magic.program.rules().size());
  if (program.rules().size() <= magic.program.rules().size()) {
    WDR_COUNTER_ADD("wdr.datalog.magic.rules_added",
                    magic.program.rules().size() - program.rules().size());
  }
  WDR_ASSIGN_OR_RETURN(
      Database db, Materialize(magic.program, Strategy::kSemiNaive, stats));

  // Projection: the query's variables in increasing variable-id order.
  std::vector<DlVarId> projection;
  for (const DlTerm& t : magic.query_atom.args) {
    if (t.is_var) projection.push_back(t.id);
  }
  std::sort(projection.begin(), projection.end());
  projection.erase(std::unique(projection.begin(), projection.end()),
                   projection.end());
  return EvaluateQuery(magic.program, db, {magic.query_atom}, projection);
}

}  // namespace wdr::datalog
