#include "datalog/parser.h"

#include <cctype>
#include <string>
#include <unordered_map>

namespace wdr::datalog {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<DlProgram> Run() {
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      WDR_RETURN_IF_ERROR(ParseClause());
    }
    WDR_RETURN_IF_ERROR(program_.Validate());
    return std::move(program_);
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return AtEnd() ? '\0' : text_[pos_]; }
  char Next() {
    char c = Peek();
    if (c == '\n') ++line_;
    ++pos_;
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Next();
      } else if (c == '%' || c == '#') {
        while (!AtEnd() && Peek() != '\n') Next();
      } else {
        break;
      }
    }
  }

  Status Error(const std::string& message) const {
    return ParseError("line " + std::to_string(line_) + ": " + message);
  }

  Status ParseClause() {
    var_ids_.clear();
    var_names_.clear();
    WDR_ASSIGN_OR_RETURN(DlAtom head, ParseAtom());
    SkipWhitespaceAndComments();
    if (Peek() == '.') {
      Next();
      if (!var_names_.empty()) {
        // A headless clause with variables would be unsafe; report clearly.
        return Error("fact contains variables");
      }
      program_.AddFact(std::move(head));
      return Status::Ok();
    }
    if (!(Peek() == ':' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '-')) {
      return Error("expected '.' or ':-' after atom");
    }
    Next();
    Next();
    DlRule rule;
    rule.head = std::move(head);
    while (true) {
      SkipWhitespaceAndComments();
      WDR_ASSIGN_OR_RETURN(DlAtom atom, ParseAtom());
      rule.body.push_back(std::move(atom));
      SkipWhitespaceAndComments();
      if (Peek() == ',') {
        Next();
        continue;
      }
      break;
    }
    if (Peek() != '.') return Error("expected '.' terminating the rule");
    Next();
    rule.var_names = var_names_;
    program_.AddRule(std::move(rule));
    return Status::Ok();
  }

  Result<DlAtom> ParseAtom() {
    SkipWhitespaceAndComments();
    WDR_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    if (std::isupper(static_cast<unsigned char>(name[0]))) {
      return Error("predicate name '" + name + "' must not be capitalized");
    }
    SkipWhitespaceAndComments();
    if (Peek() != '(') return Error("expected '(' after predicate name");
    Next();
    DlAtom atom;
    std::vector<DlTerm> args;
    while (true) {
      SkipWhitespaceAndComments();
      WDR_ASSIGN_OR_RETURN(DlTerm term, ParseTerm());
      args.push_back(term);
      SkipWhitespaceAndComments();
      if (Peek() == ',') {
        Next();
        continue;
      }
      break;
    }
    if (Peek() != ')') return Error("expected ')' closing the atom");
    Next();
    atom.pred = program_.InternPred(name, args.size());
    if (program_.pred_arity(atom.pred) != args.size()) {
      return Error("predicate '" + name + "' used with arity " +
                   std::to_string(args.size()) + " but declared with " +
                   std::to_string(program_.pred_arity(atom.pred)));
    }
    atom.args = std::move(args);
    return atom;
  }

  Result<DlTerm> ParseTerm() {
    char c = Peek();
    if (c == '\'') {
      Next();
      std::string value;
      while (!AtEnd() && Peek() != '\'') value += Next();
      if (AtEnd()) return Error("unterminated quoted constant");
      Next();
      return DlTerm::Constant(program_.InternSym(value));
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Next();
      }
      return DlTerm::Constant(program_.InternSym(digits));
    }
    WDR_ASSIGN_OR_RETURN(std::string name, ParseIdentifier());
    if (std::isupper(static_cast<unsigned char>(name[0])) || name[0] == '_') {
      auto it = var_ids_.find(name);
      if (it == var_ids_.end()) {
        DlVarId id = static_cast<DlVarId>(var_names_.size());
        var_names_.push_back(name);
        it = var_ids_.emplace(name, id).first;
      }
      return DlTerm::Variable(it->second);
    }
    return DlTerm::Constant(program_.InternSym(name));
  }

  Result<std::string> ParseIdentifier() {
    std::string name;
    while (!AtEnd() && IsIdentChar(Peek())) name += Next();
    if (name.empty()) return Error("expected an identifier");
    return name;
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
  DlProgram program_;
  std::unordered_map<std::string, DlVarId> var_ids_;
  std::vector<std::string> var_names_;
};

}  // namespace

Result<DlProgram> ParseDatalog(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace wdr::datalog
