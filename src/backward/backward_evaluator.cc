#include "backward/backward_evaluator.h"

#include <deque>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "exec/executor.h"
#include "exec/planner.h"
#include "exec/source.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace wdr::backward {
namespace {

using query::BgpQuery;
using query::PatternTerm;
using query::ResultSet;
using query::Row;
using query::TriplePattern;
using query::UnionQuery;
using query::VarId;
using rdf::kNullTermId;
using rdf::StoreView;
using rdf::TermId;
using rdf::Triple;

// Sentinel variable id for "match anything, bind nothing" positions —
// the fresh variables that domain/range rewritings introduce occur exactly
// once, so they never constrain the join.
constexpr VarId kIgnoreVar = static_cast<VarId>(-1);

bool IsIgnore(const PatternTerm& t) {
  return t.is_var() && t.var == kIgnoreVar;
}

// One way an atom can be satisfied against the explicit store: a rewritten
// pattern plus variable bindings the rewriting fixed (class / property
// variables grounded to schema constants).
struct Alternative {
  TriplePattern pattern;
  std::vector<std::pair<VarId, TermId>> bindings;

  std::string Key() const {
    auto term_key = [](const PatternTerm& t) {
      std::string out(1, t.is_var() ? 'v' : 'c');
      out += std::to_string(t.is_var() ? t.var : t.id);
      return out;
    };
    std::string key = term_key(pattern.s) + " " + term_key(pattern.p) + " " +
                      term_key(pattern.o);
    for (const auto& [var, value] : bindings) {
      key += '|';
      key += std::to_string(var);
      key += '=';
      key += std::to_string(value);
    }
    return key;
  }
};

// Computes the fixpoint expansion of one atom.
class AtomExpander {
 public:
  AtomExpander(const schema::Schema& schema, const schema::Vocabulary& vocab)
      : schema_(schema), vocab_(vocab) {}

  std::vector<Alternative> Expand(const TriplePattern& atom) const {
    std::vector<Alternative> result;
    std::unordered_set<std::string> seen;
    std::deque<size_t> frontier;
    uint64_t memo_hits = 0;
    auto add = [&](Alternative alt) {
      if (!seen.insert(alt.Key()).second) {
        ++memo_hits;  // rewriting reconverged on a known alternative
        return;
      }
      frontier.push_back(result.size());
      result.push_back(std::move(alt));
    };
    add(Alternative{atom, {}});
    while (!frontier.empty()) {
      // Copy: `add` may reallocate `result`.
      Alternative current = result[frontier.front()];
      frontier.pop_front();
      RewriteOneStep(current, add);
    }
    WDR_COUNTER_ADD("wdr.backward.goal_expansions", result.size());
    WDR_COUNTER_ADD("wdr.backward.memo_hits", memo_hits);
    return result;
  }

 private:
  template <typename AddFn>
  void RewriteOneStep(const Alternative& alt, AddFn&& add) const {
    const TriplePattern& atom = alt.pattern;

    if (atom.p.is_const() && atom.p.id == vocab_.type) {
      if (atom.o.is_const()) {
        RewriteTypeAtom(alt, atom.o.id, add);
      } else if (!IsIgnore(atom.o)) {
        for (TermId c : schema_.classes()) {
          Alternative next = alt;
          next.pattern.o = PatternTerm::Constant(c);
          next.bindings.emplace_back(atom.o.var, c);
          add(std::move(next));
        }
      }
      return;
    }

    if (atom.p.is_const()) {
      for (TermId p1 : schema_.SubPropertiesOf(atom.p.id)) {
        if (p1 == atom.p.id) continue;
        Alternative next = alt;
        next.pattern.p = PatternTerm::Constant(p1);
        add(std::move(next));
      }
      return;
    }

    if (IsIgnore(atom.p)) return;
    for (TermId p : schema_.properties()) {
      if (vocab_.IsSchemaProperty(p)) continue;
      Alternative next = alt;
      next.pattern.p = PatternTerm::Constant(p);
      next.bindings.emplace_back(atom.p.var, p);
      add(std::move(next));
    }
    Alternative typed = alt;
    typed.pattern.p = PatternTerm::Constant(vocab_.type);
    typed.bindings.emplace_back(atom.p.var, vocab_.type);
    add(std::move(typed));
  }

  template <typename AddFn>
  void RewriteTypeAtom(const Alternative& alt, TermId c, AddFn&& add) const {
    const TriplePattern& atom = alt.pattern;
    for (TermId c1 : schema_.SubClassesOf(c)) {
      if (c1 == c) continue;
      Alternative next = alt;
      next.pattern.o = PatternTerm::Constant(c1);
      add(std::move(next));
    }
    for (TermId p : schema_.PropertiesWithDomain(c)) {
      Alternative next = alt;
      next.pattern =
          TriplePattern{atom.s, PatternTerm::Constant(p),
                        PatternTerm::Variable(kIgnoreVar)};
      add(std::move(next));
    }
    for (TermId p : schema_.PropertiesWithRange(c)) {
      Alternative next = alt;
      next.pattern =
          TriplePattern{PatternTerm::Variable(kIgnoreVar),
                        PatternTerm::Constant(p), atom.s};
      add(std::move(next));
    }
  }

  const schema::Schema& schema_;
  const schema::Vocabulary& vocab_;
};

// Backtracking join over atoms, trying every alternative of each atom.
class BackwardJoin {
 public:
  BackwardJoin(const StoreView& store, const BgpQuery& q,
               std::vector<std::vector<Alternative>> expansions,
               BackwardStats* stats)
      : store_(store),
        q_(q),
        expansions_(std::move(expansions)),
        stats_(stats),
        bindings_(q.var_count(), kNullTermId) {
    for (const auto& [var, value] : q.preset()) bindings_[var] = value;
  }

  template <typename EmitFn>
  void Run(EmitFn&& emit) {
    Recurse(0, emit);
  }

 private:
  template <typename EmitFn>
  void Recurse(size_t atom_index, EmitFn&& emit) {
    if (atom_index == expansions_.size()) {
      emit(bindings_);
      return;
    }
    for (const Alternative& alt : expansions_[atom_index]) {
      std::vector<std::pair<VarId, TermId>> bound_here;
      bool ok = true;
      for (const auto& [var, value] : alt.bindings) {
        if (!BindVar(var, value, bound_here)) {
          ok = false;
          break;
        }
      }
      if (ok) {
        TermId s = Resolve(alt.pattern.s);
        TermId p = Resolve(alt.pattern.p);
        TermId o = Resolve(alt.pattern.o);
        if (stats_ != nullptr) ++stats_->index_probes;
        WDR_COUNTER_INC("wdr.backward.index_probes");
        store_.Match(s, p, o, [&](const Triple& t) {
          std::vector<std::pair<VarId, TermId>> match_bound;
          bool match_ok = TryBind(alt.pattern.s, t.s, match_bound) &&
                          TryBind(alt.pattern.p, t.p, match_bound) &&
                          TryBind(alt.pattern.o, t.o, match_bound);
          if (match_ok) Recurse(atom_index + 1, emit);
          Unbind(match_bound);
        });
      }
      Unbind(bound_here);
    }
  }

  TermId Resolve(const PatternTerm& t) const {
    if (t.is_const()) return t.id;
    if (t.var == kIgnoreVar) return kNullTermId;
    return bindings_[t.var];
  }

  bool BindVar(VarId var, TermId value,
               std::vector<std::pair<VarId, TermId>>& bound_here) {
    TermId& slot = bindings_[var];
    if (slot == kNullTermId) {
      slot = value;
      bound_here.emplace_back(var, value);
      return true;
    }
    return slot == value;
  }

  bool TryBind(const PatternTerm& term, TermId value,
               std::vector<std::pair<VarId, TermId>>& bound_here) {
    if (term.is_const()) return term.id == value;
    if (term.var == kIgnoreVar) return true;
    return BindVar(term.var, value, bound_here);
  }

  void Unbind(const std::vector<std::pair<VarId, TermId>>& bound) {
    for (auto it = bound.rbegin(); it != bound.rend(); ++it) {
      bindings_[it->first] = kNullTermId;
    }
  }

  const StoreView& store_;
  const BgpQuery& q_;
  std::vector<std::vector<Alternative>> expansions_;
  BackwardStats* stats_;
  std::vector<TermId> bindings_;
};

// Maps one rewriting alternative to a planner AtomAlt: pattern positions
// become planner terms (the occur-once kIgnoreVar positions map to Any),
// unification-grounded variables become var_eq entries.
exec::AtomAlt ToAtomAlt(const Alternative& alt) {
  exec::AtomAlt out;
  auto term = [](const PatternTerm& t) {
    if (t.is_const()) return exec::AtomTerm::Const(t.id);
    if (t.var == kIgnoreVar) return exec::AtomTerm::Any();
    return exec::AtomTerm::Var(t.var);
  };
  out.terms = {term(alt.pattern.s), term(alt.pattern.p), term(alt.pattern.o)};
  out.var_eq.reserve(alt.bindings.size());
  for (const auto& [var, value] : alt.bindings) {
    out.var_eq.emplace_back(var, value);
  }
  return out;
}

// Plan route: the expanded atoms compile into multi-alternative scan
// nodes of one shared physical plan, replacing the per-binding
// backtracking join. Returns false when planning declines (the caller
// falls back to BackwardJoin).
bool PlanJoin(const StoreView& store, const BgpQuery& q,
              const std::vector<std::vector<Alternative>>& expansions,
              const BackwardOptions& options, BackwardStats* stats,
              ResultSet& result, std::set<Row>& seen) {
  exec::ConjunctiveSpec spec;
  spec.conjuncts.reserve(expansions.size());
  for (size_t i = 0; i < expansions.size(); ++i) {
    exec::PlanConjunct conjunct;
    conjunct.source = 0;
    conjunct.label = "atom#" + std::to_string(i) + " (" +
                     std::to_string(expansions[i].size()) + " alts)";
    conjunct.alts.reserve(expansions[i].size());
    for (const Alternative& alt : expansions[i]) {
      conjunct.alts.push_back(ToAtomAlt(alt));
    }
    spec.conjuncts.push_back(std::move(conjunct));
  }
  for (const auto& [var, value] : q.preset()) {
    spec.presets.emplace_back(var, value);
  }
  spec.projection.assign(q.projection().begin(), q.projection().end());

  // Fresh statistics select the cost-based mode; missing or stale ones
  // degrade to the greedy bound-first order over the store's own
  // estimates (run-time bindings priced as wild — conservative).
  const exec::Statistics empty_stats;
  exec::StatisticsEstimator stats_estimator(
      options.stats != nullptr ? *options.stats : empty_stats);
  exec::StoreEstimator<StoreView> store_estimator(store);
  exec::PlannerOptions popts;
  popts.hash_joins = options.hash_joins;
  const bool fresh = options.stats != nullptr && !options.stats->empty() &&
                     options.stats->total_triples() == store.size();
  if (fresh) {
    popts.estimator = &stats_estimator;
    popts.cost_based = true;
  } else {
    popts.estimator = &store_estimator;
    popts.cost_based = false;
  }
  exec::CompiledPlan plan = exec::PlanConjunctive(spec, popts);
  if (plan.root == nullptr) return false;

  exec::StoreSource<StoreView> source(store);
  std::vector<const exec::TupleSource*> sources{&source};
  exec::ExecOptions eopts;
  eopts.batch_rows = options.batch_rows;
  obs::ProfileNode profile("backward_plan");
  exec::Run(*plan.root, sources, eopts,
            [&](const exec::Value* row, size_t width) {
              Row out(row, row + width);
              if (seen.insert(out).second) result.rows.push_back(std::move(out));
              return true;
            },
            &profile);
  const uint64_t probes = profile.TotalScans();
  if (stats != nullptr) stats->index_probes += probes;
  WDR_COUNTER_ADD("wdr.backward.index_probes", probes);
  return true;
}

}  // namespace

ResultSet BackwardChainingEvaluator::Evaluate(const BgpQuery& q,
                                              BackwardStats* stats) const {
  WDR_COUNTER_INC("wdr.backward.evals");
  AtomExpander expander(*schema_, vocab_);
  std::vector<std::vector<Alternative>> expansions;
  expansions.reserve(q.atoms().size());
  for (const TriplePattern& atom : q.atoms()) {
    expansions.push_back(expander.Expand(atom));
    if (stats != nullptr) stats->atom_alternatives += expansions.back().size();
  }

  ResultSet result;
  result.var_names = q.ProjectionNames();
  std::set<Row> seen;
  if (options_.plan &&
      PlanJoin(*store_, q, expansions, options_, stats, result, seen)) {
    return result;
  }
  BackwardJoin join(*store_, q, std::move(expansions), stats);
  join.Run([&](const std::vector<TermId>& bindings) {
    Row row;
    row.reserve(q.projection().size());
    for (VarId v : q.projection()) row.push_back(bindings[v]);
    if (seen.insert(row).second) result.rows.push_back(std::move(row));
  });
  return result;
}

ResultSet BackwardChainingEvaluator::Evaluate(const UnionQuery& q,
                                              BackwardStats* stats) const {
  ResultSet result;
  std::set<Row> seen;
  for (const BgpQuery& branch : q.branches()) {
    ResultSet branch_result = Evaluate(branch, stats);
    if (result.var_names.empty()) result.var_names = branch_result.var_names;
    for (Row& row : branch_result.rows) {
      if (seen.insert(row).second) result.rows.push_back(std::move(row));
    }
  }
  query::ApplySolutionModifiers(q, result);
  return result;
}

}  // namespace wdr::backward
