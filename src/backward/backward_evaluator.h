#ifndef WDR_BACKWARD_BACKWARD_EVALUATOR_H_
#define WDR_BACKWARD_BACKWARD_EVALUATOR_H_

#include <vector>

#include "exec/plan.h"
#include "exec/statistics.h"
#include "query/evaluator.h"
#include "query/query.h"
#include "rdf/store_view.h"
#include "schema/schema.h"
#include "schema/vocabulary.h"

namespace wdr::backward {

// Statistics of one backward-chaining evaluation.
struct BackwardStats {
  size_t atom_alternatives = 0;  // total expansion alternatives generated
  size_t index_probes = 0;       // store Match calls issued during the join
};

// Evaluation knobs. `plan` compiles the expanded atoms — each a
// disjunction of rewriting alternatives — into the shared wdr::exec
// physical-plan IR (multi-alternative scan nodes; cost-based join order
// and hash joins when `stats` is fresh, greedy bound-first nested loops
// otherwise) instead of the recursive backtracking join. Answer sets are
// identical either way (differentially tested). WDR_PLAN=1 in the
// environment flips the `plan` default on.
struct BackwardOptions {
  bool plan = exec::PlanModeDefault();
  bool hash_joins = true;
  size_t batch_rows = 1024;
  // Optional per-predicate statistics for cost-based planning; empty or
  // stale statistics degrade gracefully to the greedy bound-first order.
  const exec::Statistics* stats = nullptr;
};

// Run-time backward chaining: answers BGP queries over the *virtual*
// saturation G∞ of a store without materializing it and without building
// the full reformulated UCQ. This models the run-time reasoning of the
// systems the paper surveys in §II-C (AllegroGraph RDFS++, Virtuoso).
//
// Each query atom is expanded once into its set of alternatives (the same
// per-atom rewritings reformulation uses, computed to fixpoint), but the
// cross-product of alternatives is never materialized: alternatives are
// tried per atom *inside* the join, with bindings pushed between atoms.
// The answers equal those of evaluating the reformulated query on the
// store, and those of evaluating the original query on the saturated
// store — this is property-tested.
//
// As with reformulation, the contract assumes a schema-closed store.
class BackwardChainingEvaluator {
 public:
  BackwardChainingEvaluator(const rdf::StoreView& store,
                            const schema::Schema& schema,
                            const schema::Vocabulary& vocab)
      : store_(&store), schema_(&schema), vocab_(vocab) {}
  BackwardChainingEvaluator(const rdf::StoreView& store,
                            const schema::Schema& schema,
                            const schema::Vocabulary& vocab,
                            const BackwardOptions& options)
      : store_(&store), schema_(&schema), vocab_(vocab), options_(options) {}

  query::ResultSet Evaluate(const query::BgpQuery& q,
                            BackwardStats* stats = nullptr) const;
  query::ResultSet Evaluate(const query::UnionQuery& q,
                            BackwardStats* stats = nullptr) const;

 private:
  const rdf::StoreView* store_;      // not owned
  const schema::Schema* schema_;     // not owned
  schema::Vocabulary vocab_;
  BackwardOptions options_;
};

}  // namespace wdr::backward

#endif  // WDR_BACKWARD_BACKWARD_EVALUATOR_H_
