#include "io/turtle_writer.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "io/ntriples.h"
#include "io/turtle.h"
#include "workload/university.h"

namespace wdr::io {
namespace {

using rdf::Graph;
using rdf::Term;

// Dictionary ids (and hence SPO order) differ between a graph and its
// reparse, so round-trip equality is over sorted decoded statements.
std::multiset<std::string> Statements(const Graph& g) {
  std::multiset<std::string> out;
  g.store().Match(0, 0, 0,
                  [&](const rdf::Triple& t) { out.insert(g.Decode(t)); });
  return out;
}

TEST(TurtleWriterTest, CompactsKnownPrefixesAndGroups) {
  Graph g;
  ASSERT_TRUE(ParseTurtle(
                  "@prefix ex: <http://ex.org/> .\n"
                  "ex:a ex:p ex:b , ex:c ; ex:q ex:d ; a ex:T .\n",
                  g)
                  .ok());
  std::string out = WriteTurtle(g, {{"ex", "http://ex.org/"}});
  EXPECT_NE(out.find("@prefix ex: <http://ex.org/> ."), std::string::npos);
  EXPECT_NE(out.find("ex:a"), std::string::npos);
  EXPECT_NE(out.find(" a ex:T"), std::string::npos);
  EXPECT_NE(out.find(" , "), std::string::npos);  // object list
  EXPECT_NE(out.find(" ;"), std::string::npos);   // predicate list
  EXPECT_EQ(out.find("<http://ex.org/a>"), std::string::npos);
}

TEST(TurtleWriterTest, UnsafeLocalNamesFallBackToFullIris) {
  Graph g;
  g.InsertIris("http://ex.org/with/slash", "http://ex.org/p",
               "http://other.org/x");
  std::string out = WriteTurtle(g, {{"ex", "http://ex.org/"}});
  EXPECT_NE(out.find("<http://ex.org/with/slash>"), std::string::npos);
  EXPECT_NE(out.find("<http://other.org/x>"), std::string::npos);
}

TEST(TurtleWriterTest, LiteralsSerializeAsNTriples) {
  Graph g;
  g.Insert(Term::Iri("http://ex.org/a"), Term::Iri("http://ex.org/p"),
           Term::Literal("hi \"there\"", "", "en"));
  std::string out = WriteTurtle(g);
  EXPECT_NE(out.find("\"hi \\\"there\\\"\"@en"), std::string::npos);
}

TEST(TurtleWriterTest, RoundTripsSmallGraph) {
  Graph g;
  ASSERT_TRUE(ParseTurtle(
                  "@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n"
                  "@prefix ex: <http://ex.org/> .\n"
                  "ex:Cat rdfs:subClassOf ex:Mammal .\n"
                  "ex:tom a ex:Cat ; ex:name \"Tom\" ; ex:age 7 .\n",
                  g)
                  .ok());
  std::string out = WriteTurtle(g, {{"ex", "http://ex.org/"}});
  Graph reparsed;
  auto n = ParseTurtle(out, reparsed);
  ASSERT_TRUE(n.ok()) << n.status() << "\n" << out;
  EXPECT_EQ(*n, g.size());
  EXPECT_EQ(Statements(reparsed), Statements(g));
}

TEST(TurtleWriterTest, RoundTripsUniversityWorkload) {
  workload::UniversityConfig config;
  config.universities = 1;
  config.departments_per_university = 1;
  workload::UniversityData data = workload::GenerateUniversityData(config);
  std::string out =
      WriteTurtle(data.graph, {{"u", workload::univ::kNs}});
  Graph reparsed;
  auto n = ParseTurtle(out, reparsed);
  ASSERT_TRUE(n.ok()) << n.status();
  EXPECT_EQ(*n, data.graph.size());
  EXPECT_EQ(Statements(reparsed), Statements(data.graph));
}

TEST(TurtleWriterTest, EmptyGraph) {
  Graph g;
  std::string out = WriteTurtle(g, {});
  Graph reparsed;
  EXPECT_TRUE(ParseTurtle(out, reparsed).ok());
  EXPECT_EQ(reparsed.size(), 0u);
}

}  // namespace
}  // namespace wdr::io
