// Determinism contract of branch-parallel union evaluation: for EVERY
// query, Evaluate() must return the exact sequential row stream — same
// rows, same order — at every thread count, with the scan cache on or
// off, on both storage backends. The differential harness checks this on
// random reformulated workloads; this suite pins down the corners that
// randomness rarely hits: LIMIT/OFFSET/ASK early cancellation,
// overlapping and duplicated branches, within-branch duplicates under a
// row bound, streaming counts, and the thread knob as exposed through
// Federation and ReasoningStore.
#include "query/evaluator.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "federation/federation.h"
#include "query/query.h"
#include "rdf/graph.h"
#include "reformulation/reformulator.h"
#include "schema/schema.h"
#include "store/reasoning_store.h"
#include "tests/test_util.h"

namespace wdr::query {
namespace {

using test::Add;
using test::MakeRandomGraph;
using test::MakeRandomQuery;
using test::RandomGraphConfig;

// Asserts that every (threads, cache) configuration reproduces the
// sequential/no-cache row stream bit for bit.
void ExpectGridIdentical(const rdf::StoreView& store, const UnionQuery& q,
                         const std::string& label) {
  EvaluatorOptions reference_options;
  reference_options.threads = 1;
  reference_options.scan_cache = false;
  const ResultSet reference = Evaluator(store, reference_options).Evaluate(q);
  for (int threads : {1, 2, 3, 8}) {
    for (bool cache : {false, true}) {
      EvaluatorOptions options;
      options.threads = threads;
      options.scan_cache = cache;
      const ResultSet got = Evaluator(store, options).Evaluate(q);
      EXPECT_EQ(got.rows, reference.rows)
          << label << " differs at threads=" << threads
          << " cache=" << (cache ? "on" : "off");
      EXPECT_EQ(got.var_names, reference.var_names) << label;
    }
  }
}

// A small graph with enough row multiplicity to make dedup observable:
// every student takes several courses, some students are also tutors.
struct StudentGraph {
  rdf::Graph graph;

  StudentGraph() {
    for (int s = 0; s < 6; ++s) {
      const std::string student = "s" + std::to_string(s);
      Add(graph, student, "type", "Student");
      if (s % 2 == 0) Add(graph, student, "type", "Tutor");
      for (int c = 0; c < 4; ++c) {
        Add(graph, student, "takes", "c" + std::to_string((s + c) % 5));
      }
    }
  }

  PatternTerm Const(const std::string& name) {
    return PatternTerm::Constant(graph.dict().Intern(test::T(name)));
  }
};

// One-variable branch (?x type <cls>), optionally DISTINCT.
BgpQuery TypeBranch(StudentGraph& g, const std::string& cls,
                    bool distinct = true) {
  BgpQuery q;
  q.SetDistinct(distinct);
  VarId x = q.AddVar("x");
  q.AddAtom(TriplePattern{PatternTerm::Variable(x), g.Const("type"),
                          g.Const(cls)});
  q.Project(x);
  return q;
}

// One-variable NON-distinct branch (?x takes ?c) projecting only ?x —
// each student surfaces once per course, so the projected stream is full
// of within-branch duplicates.
BgpQuery TakesBranch(StudentGraph& g) {
  BgpQuery q;
  VarId x = q.AddVar("x");
  VarId c = q.AddVar("c");
  q.AddAtom(TriplePattern{PatternTerm::Variable(x), g.Const("takes"),
                          PatternTerm::Variable(c)});
  q.Project(x);
  return q;
}

TEST(QueryParallelTest, OverlappingBranchesStayBitIdentical) {
  StudentGraph g;
  for (rdf::StorageBackend backend :
       {rdf::StorageBackend::kOrdered, rdf::StorageBackend::kFlat}) {
    g.graph.SetBackend(backend);
    // Tutor ⊂ Student and the Student branch appears twice: every Tutor
    // row is produced by three branches, so cross-branch dedup is load
    // bearing on every merge path.
    UnionQuery q;
    q.AddBranch(TypeBranch(g, "Student"));
    q.AddBranch(TypeBranch(g, "Tutor"));
    q.AddBranch(TypeBranch(g, "Student"));
    ExpectGridIdentical(g.graph.store(), q,
                        std::string("overlapping branches (") +
                            rdf::StorageBackendName(backend) + ")");

    // Sanity: the union answers are the six students, once each.
    EXPECT_EQ(Evaluator(g.graph.store()).Evaluate(q).rows.size(), 6u);
  }
}

TEST(QueryParallelTest, LimitOffsetAskAreDeterministic) {
  StudentGraph g;
  UnionQuery base;
  base.AddBranch(TakesBranch(g));
  base.AddBranch(TypeBranch(g, "Tutor"));
  base.AddBranch(TypeBranch(g, "Student"));

  for (size_t limit : {size_t{0}, size_t{1}, size_t{2}, size_t{5},
                       size_t{100}, UnionQuery::kNoLimit}) {
    for (size_t offset : {size_t{0}, size_t{1}, size_t{4}, size_t{50}}) {
      UnionQuery q = base;
      q.SetLimit(limit);
      q.SetOffset(offset);
      ExpectGridIdentical(g.graph.store(), q,
                          "limit=" + std::to_string(limit) +
                              " offset=" + std::to_string(offset));
    }
  }

  UnionQuery ask = base;
  ask.SetAsk(true);
  ExpectGridIdentical(g.graph.store(), ask, "ask over matching union");

  // ASK with no answers: cancellation must not fire, every branch runs.
  UnionQuery empty_ask;
  empty_ask.AddBranch(TypeBranch(g, "NoSuchClass"));
  empty_ask.AddBranch(TypeBranch(g, "AlsoMissing"));
  empty_ask.SetAsk(true);
  ExpectGridIdentical(g.graph.store(), empty_ask, "ask over empty union");
  EXPECT_TRUE(Evaluator(g.graph.store()).Evaluate(empty_ask).rows.empty());
}

TEST(QueryParallelTest, WithinBranchDuplicatesUnderLimit) {
  StudentGraph g;
  // The duplicate-heavy branch alone, bounded: the row-budget trigger must
  // count DISTINCT kept rows, not raw enumerated rows, or LIMIT would
  // undershoot after dedup collapses the stream.
  for (size_t limit : {size_t{1}, size_t{3}, size_t{6}, size_t{7}}) {
    UnionQuery q = UnionQuery::Single(TakesBranch(g));
    q.SetLimit(limit);
    ExpectGridIdentical(g.graph.store(), q,
                        "duplicate branch limit=" + std::to_string(limit));
    const ResultSet rs = Evaluator(g.graph.store()).Evaluate(q);
    EXPECT_EQ(rs.rows.size(), std::min<size_t>(limit, 6));
  }
}

TEST(QueryParallelTest, ReformulatedRandomUnionsAreBitIdentical) {
  for (uint64_t seed : {1ull, 7ull, 23ull, 71ull, 2026ull}) {
    Rng rng(seed);
    test::RandomGraph rg = MakeRandomGraph(rng, RandomGraphConfig{});
    reformulation::CloseSchema(rg.graph, rg.vocab);
    schema::Schema schema = schema::Schema::FromGraph(rg.graph, rg.vocab);
    reformulation::Reformulator reformulator(schema, rg.vocab);
    for (int k = 0; k < 3; ++k) {
      auto reformulated =
          reformulator.Reformulate(UnionQuery::Single(MakeRandomQuery(rng, rg)));
      ASSERT_TRUE(reformulated.ok()) << reformulated.status();
      ExpectGridIdentical(rg.graph.store(), *reformulated,
                          "seed " + std::to_string(seed) + " query " +
                              std::to_string(k));
    }
  }
}

TEST(QueryParallelTest, CountAnswersMatchesEvaluate) {
  StudentGraph g;
  for (bool distinct : {false, true}) {
    BgpQuery takes = TakesBranch(g);
    takes.SetDistinct(distinct);
    Evaluator evaluator(g.graph.store());
    EXPECT_EQ(evaluator.CountAnswers(takes),
              evaluator.Evaluate(takes).rows.size())
        << "distinct=" << distinct;
  }
  // Random property check on top of the fixed fixture.
  Rng rng(99);
  test::RandomGraph rg = MakeRandomGraph(rng, RandomGraphConfig{});
  Evaluator evaluator(rg.graph.store());
  for (int k = 0; k < 10; ++k) {
    BgpQuery q = MakeRandomQuery(rng, rg);
    EXPECT_EQ(evaluator.CountAnswers(q), evaluator.Evaluate(q).rows.size());
  }
}

constexpr const char* kEndpointSocial = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix soc: <http://social.org/> .
soc:follows rdfs:domain soc:Account .
soc:alice soc:follows soc:bob .
soc:bob soc:follows soc:alice .
)";

constexpr const char* kEndpointHr = R"(
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix soc: <http://social.org/> .
@prefix hr: <http://hr.org/> .
hr:Employee rdfs:subClassOf soc:Account .
hr:carol a hr:Employee .
hr:dave a hr:Employee .
)";

constexpr const char* kAccountsQuery =
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
    "PREFIX soc: <http://social.org/>\n"
    "SELECT ?x WHERE { ?x rdf:type soc:Account }";

TEST(QueryParallelTest, FederationQueryThreadsPreserveAnswers) {
  auto build = [](int threads) {
    auto fed = std::make_unique<federation::Federation>();
    EXPECT_TRUE(
        fed->LoadTurtle(fed->AddEndpoint("social"), kEndpointSocial).ok());
    EXPECT_TRUE(fed->LoadTurtle(fed->AddEndpoint("hr"), kEndpointHr).ok());
    fed->SetQueryThreads(threads);
    return fed;
  };
  auto reference = build(1);
  auto ref_result = reference->Query(kAccountsQuery);
  ASSERT_TRUE(ref_result.ok()) << ref_result.status();
  EXPECT_EQ(ref_result->rows.size(), 4u);  // alice, bob, carol, dave
  for (int threads : {2, 8}) {
    auto fed = build(threads);
    EXPECT_EQ(fed->query_threads(), threads);
    auto result = fed->Query(kAccountsQuery);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows, ref_result->rows) << "threads=" << threads;
  }
}

TEST(QueryParallelTest, ReasoningStoreQueryThreadsPreserveAnswers) {
  auto build = [](int threads) {
    store::ReasoningStoreOptions options;
    options.mode = store::ReasoningMode::kReformulation;
    auto rs = std::make_unique<store::ReasoningStore>(options);
    EXPECT_TRUE(rs->LoadTurtle(kEndpointSocial).ok());
    EXPECT_TRUE(rs->LoadTurtle(kEndpointHr).ok());
    rs->SetQueryThreads(threads);
    return rs;
  };
  auto reference = build(1);
  auto ref_result = reference->Query(kAccountsQuery);
  ASSERT_TRUE(ref_result.ok()) << ref_result.status();
  EXPECT_EQ(ref_result->rows.size(), 4u);
  for (int threads : {2, 8}) {
    auto rs = build(threads);
    EXPECT_EQ(rs->query_threads(), threads);
    auto result = rs->Query(kAccountsQuery);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->rows, ref_result->rows) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace wdr::query
