#include "rdf/hier_encoding.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/graph.h"
#include "schema/schema.h"
#include "schema/vocabulary.h"
#include "tests/test_util.h"

namespace wdr::rdf {
namespace {

using schema::Schema;
using schema::Vocabulary;
using test::Add;

constexpr const char* kSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
constexpr const char* kSubPropertyOf =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";

// Fixture: a graph plus the interned vocabulary, with helpers to build the
// constraint view and the encoding in one step.
class HierEncodingTest : public ::testing::Test {
 protected:
  Graph g_;
  Vocabulary v_ = Vocabulary::Intern(g_.dict());

  HierEncoding BuildEncoding() {
    Schema schema = Schema::FromGraph(g_, v_);
    return HierEncoding::Build(schema, g_.dict());
  }

  TermId Id(const std::string& name) { return g_.dict().Lookup(test::T(name)); }
};

TEST_F(HierEncodingTest, PermutationIsABijectionOverAllIds) {
  Add(g_, "A", kSubClassOf, "B");
  Add(g_, "x", "p", "y");  // non-hierarchy terms ride along
  HierEncoding enc = BuildEncoding();
  const std::vector<TermId>& perm = enc.permutation();
  ASSERT_EQ(perm.size(), g_.dict().size() + 1);
  std::vector<TermId> sorted(perm.begin() + 1, perm.end());
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<TermId>(i + 1));
  }
}

TEST_F(HierEncodingTest, ChainClosureGetsContiguousValidInterval) {
  // C0 ⊑ C1 ⊑ C2 ⊑ C3: every class is tree-embeddable, and each interval
  // is exactly its subclass closure.
  for (int i = 0; i < 3; ++i) {
    Add(g_, "C" + std::to_string(i), kSubClassOf, "C" + std::to_string(i + 1));
  }
  HierEncoding enc = BuildEncoding();
  EXPECT_EQ(enc.invalid_nodes(), 0u);
  EXPECT_EQ(enc.class_count(), 4u);

  const HierInterval* top = enc.ClassInterval(enc.Remap(Id("C3")));
  ASSERT_NE(top, nullptr);
  EXPECT_TRUE(top->valid);
  EXPECT_EQ(top->width(), 4u);
  // Entailment Ci ⊑* C3 is the integer range test on new ids.
  for (int i = 0; i <= 3; ++i) {
    TermId id = enc.Remap(Id("C" + std::to_string(i)));
    EXPECT_TRUE(top->range().Contains(id)) << "C" << i;
  }
  EXPECT_FALSE(top->range().Contains(enc.Remap(Id("C3")) + 4));

  const HierInterval* mid = enc.ClassInterval(enc.Remap(Id("C2")));
  ASSERT_NE(mid, nullptr);
  EXPECT_TRUE(mid->valid);
  EXPECT_EQ(mid->width(), 3u);
  EXPECT_FALSE(mid->range().Contains(enc.Remap(Id("C3"))));
}

TEST_F(HierEncodingTest, DiamondInvalidatesTheParentThatLosesTheChild) {
  // D ⊑ B, D ⊑ C, B ⊑ A, C ⊑ A: D embeds under exactly one of B, C in the
  // spanning forest, so the other parent's interval cannot cover its
  // closure. The root still covers everything.
  Add(g_, "B", kSubClassOf, "A");
  Add(g_, "C", kSubClassOf, "A");
  Add(g_, "D", kSubClassOf, "B");
  Add(g_, "D", kSubClassOf, "C");
  HierEncoding enc = BuildEncoding();

  const HierInterval* a = enc.ClassInterval(enc.Remap(Id("A")));
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->valid);
  EXPECT_EQ(a->width(), 4u);

  const HierInterval* b = enc.ClassInterval(enc.Remap(Id("B")));
  const HierInterval* c = enc.ClassInterval(enc.Remap(Id("C")));
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(b->valid, c->valid);  // exactly one adopted D
  EXPECT_GE(enc.invalid_nodes(), 1u);
}

TEST_F(HierEncodingTest, CycleAnchorsExactlyOneMember) {
  // X ≡ Y (a 2-cycle) is one equivalence class. The member that anchors
  // the layout gets a subtree equal to the whole SCC — interval == closure,
  // so it validates; the co-member's subtree misses its partner and is
  // conservatively invalidated.
  Add(g_, "X", kSubClassOf, "Y");
  Add(g_, "Y", kSubClassOf, "X");
  HierEncoding enc = BuildEncoding();
  const HierInterval* x = enc.ClassInterval(enc.Remap(Id("X")));
  const HierInterval* y = enc.ClassInterval(enc.Remap(Id("Y")));
  ASSERT_NE(x, nullptr);
  ASSERT_NE(y, nullptr);
  EXPECT_NE(x->valid, y->valid);
  EXPECT_EQ(enc.invalid_nodes(), 1u);
  const HierInterval* anchor = x->valid ? x : y;
  EXPECT_TRUE(anchor->range().Contains(enc.Remap(Id("X"))));
  EXPECT_TRUE(anchor->range().Contains(enc.Remap(Id("Y"))));
}

TEST_F(HierEncodingTest, PropertyHierarchyGetsItsOwnIntervals) {
  Add(g_, "p0", kSubPropertyOf, "p1");
  Add(g_, "p1", kSubPropertyOf, "p2");
  HierEncoding enc = BuildEncoding();
  EXPECT_EQ(enc.property_count(), 3u);
  const HierInterval* top = enc.PropertyInterval(enc.Remap(Id("p2")));
  ASSERT_NE(top, nullptr);
  EXPECT_TRUE(top->valid);
  EXPECT_EQ(top->width(), 3u);
  EXPECT_TRUE(top->range().Contains(enc.Remap(Id("p0"))));
  // The property interval is not mistaken for a class interval.
  EXPECT_EQ(enc.ClassInterval(enc.Remap(Id("p2"))), nullptr);
}

TEST_F(HierEncodingTest, GraphRoundTripsThroughThePermutation) {
  for (int i = 0; i < 3; ++i) {
    Add(g_, "C" + std::to_string(i), kSubClassOf, "C" + std::to_string(i + 1));
  }
  Add(g_, "x", "http://www.w3.org/1999/02/22-rdf-syntax-ns#type", "C0");
  const size_t size_before = g_.size();
  std::vector<std::string> decoded_before;
  for (const Triple& t : g_.store().ToVector()) {
    decoded_before.push_back(g_.Decode(t));
  }
  std::sort(decoded_before.begin(), decoded_before.end());

  HierEncoding enc = BuildEncoding();
  g_.ApplyPermutation(enc.permutation());

  EXPECT_EQ(g_.size(), size_before);
  std::vector<std::string> decoded_after;
  for (const Triple& t : g_.store().ToVector()) {
    decoded_after.push_back(g_.Decode(t));
  }
  std::sort(decoded_after.begin(), decoded_after.end());
  EXPECT_EQ(decoded_before, decoded_after);

  // Post-permutation lookups return NEW ids directly, and the instance
  // term stays outside every class interval.
  const HierInterval* top = enc.ClassInterval(Id("C3"));
  ASSERT_NE(top, nullptr);
  EXPECT_TRUE(top->range().Contains(Id("C0")));
  EXPECT_FALSE(top->range().Contains(Id("x")));
}

TEST_F(HierEncodingTest, VersionIsCarriedForStalenessChecks) {
  Add(g_, "A", kSubClassOf, "B");
  HierEncoding enc = BuildEncoding();
  EXPECT_EQ(enc.version(), 0u);
  enc.set_version(7);
  EXPECT_EQ(enc.version(), 7u);
}

}  // namespace
}  // namespace wdr::rdf
