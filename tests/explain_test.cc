#include "reasoning/explain.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "reasoning/saturation.h"
#include "tests/test_util.h"

namespace wdr::reasoning {
namespace {

using rdf::Graph;
using rdf::Triple;
using rdf::TripleStore;
using schema::Vocabulary;
using test::Add;
using test::Enc;

class ExplainTest : public ::testing::Test {
 protected:
  Graph g_;
  Vocabulary v_ = Vocabulary::Intern(g_.dict());

  Result<Explanation> ExplainTriple(const Triple& t) {
    TripleStore closure = Saturator::SaturateGraph(g_, v_);
    return Explain(g_.store(), closure, v_, &g_.dict(), t);
  }
};

TEST_F(ExplainTest, AssertedTripleHasEmptyProof) {
  Add(g_, "Tom", schema::iri::kType, "Cat");
  auto proof = ExplainTriple(Enc(g_, "Tom", schema::iri::kType, "Cat"));
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_TRUE(proof->steps.empty());
}

TEST_F(ExplainTest, NotEntailedTripleIsNotFound) {
  Add(g_, "Tom", schema::iri::kType, "Cat");
  auto proof = ExplainTriple(Enc(g_, "Tom", schema::iri::kType, "Dog"));
  ASSERT_FALSE(proof.ok());
  EXPECT_EQ(proof.status().code(), StatusCode::kNotFound);
}

TEST_F(ExplainTest, OneStepProof) {
  Add(g_, "Cat", schema::iri::kSubClassOf, "Mammal");
  Add(g_, "Tom", schema::iri::kType, "Cat");
  Triple target = Enc(g_, "Tom", schema::iri::kType, "Mammal");
  auto proof = ExplainTriple(target);
  ASSERT_TRUE(proof.ok()) << proof.status();
  ASSERT_EQ(proof->steps.size(), 1u);
  EXPECT_EQ(proof->steps[0].conclusion, target);
  EXPECT_EQ(proof->steps[0].rule, RuleId::kRdfs9);
  ASSERT_EQ(proof->steps[0].premises.size(), 2u);
}

TEST_F(ExplainTest, MultiStepProofIsDependencyOrdered) {
  Add(g_, "doctoralDegreeFrom", schema::iri::kSubPropertyOf, "degreeFrom");
  Add(g_, "degreeFrom", schema::iri::kRange, "University");
  Add(g_, "University", schema::iri::kSubClassOf, "Organization");
  Add(g_, "carol", "doctoralDegreeFrom", "mit");
  Triple target = Enc(g_, "mit", schema::iri::kType, "Organization");
  auto proof = ExplainTriple(target);
  ASSERT_TRUE(proof.ok()) << proof.status();
  ASSERT_GE(proof->steps.size(), 2u);
  EXPECT_EQ(proof->steps.back().conclusion, target);
  // Every premise of every step is asserted or concluded earlier.
  TripleStore seen;
  g_.store().Match(0, 0, 0, [&](const Triple& t) { seen.Insert(t); });
  for (const DerivationStep& step : proof->steps) {
    for (const Triple& premise : step.premises) {
      EXPECT_TRUE(seen.Contains(premise))
          << "premise used before it was derived";
    }
    seen.Insert(step.conclusion);
  }
}

TEST_F(ExplainTest, CyclicSchemaStillYieldsFiniteProof) {
  Add(g_, "A", schema::iri::kSubClassOf, "B");
  Add(g_, "B", schema::iri::kSubClassOf, "C");
  Add(g_, "C", schema::iri::kSubClassOf, "A");
  Add(g_, "x", schema::iri::kType, "A");
  auto proof = ExplainTriple(Enc(g_, "x", schema::iri::kType, "C"));
  ASSERT_TRUE(proof.ok()) << proof.status();
  EXPECT_FALSE(proof->steps.empty());
  EXPECT_LT(proof->steps.size(), 10u);
}

TEST_F(ExplainTest, OutOfSyncClosureIsReported) {
  Add(g_, "Tom", schema::iri::kType, "Cat");
  TripleStore fake_closure;
  g_.store().Match(0, 0, 0,
                   [&](const Triple& t) { fake_closure.Insert(t); });
  Triple bogus = Enc(g_, "Tom", schema::iri::kType, "Mammal");
  fake_closure.Insert(bogus);
  auto proof = Explain(g_.store(), fake_closure, v_, &g_.dict(), bogus);
  ASSERT_FALSE(proof.ok());
  EXPECT_EQ(proof.status().code(), StatusCode::kInternal);
}

TEST_F(ExplainTest, FormattingMentionsRuleAndAssertedpremises) {
  Add(g_, "Cat", schema::iri::kSubClassOf, "Mammal");
  Add(g_, "Tom", schema::iri::kType, "Cat");
  auto proof = ExplainTriple(Enc(g_, "Tom", schema::iri::kType, "Mammal"));
  ASSERT_TRUE(proof.ok());
  std::string text = FormatExplanation(g_, g_.store(), *proof);
  EXPECT_NE(text.find("rdfs9"), std::string::npos);
  EXPECT_NE(text.find("[asserted]"), std::string::npos);
  EXPECT_NE(text.find("Mammal"), std::string::npos);

  Explanation empty;
  EXPECT_NE(FormatExplanation(g_, g_.store(), empty).find("asserted"),
            std::string::npos);
}

// Property: every derived triple of a random graph has a well-formed
// proof whose steps re-derive it through the rule engine.
TEST(ExplainPropertyTest, EveryDerivedTripleHasACheckableProof) {
  for (uint64_t seed = 700; seed < 710; ++seed) {
    Rng rng(seed);
    test::RandomGraph rg = test::MakeRandomGraph(rng, {});
    TripleStore closure =
        Saturator::SaturateGraph(rg.graph, rg.vocab);

    closure.Match(0, 0, 0, [&](const Triple& t) {
      if (rg.graph.store().Contains(t)) return;
      auto proof =
          Explain(rg.graph.store(), closure, rg.vocab, &rg.graph.dict(), t);
      ASSERT_TRUE(proof.ok()) << proof.status();
      ASSERT_FALSE(proof->steps.empty());
      ASSERT_EQ(proof->steps.back().conclusion, t);
      // Replay: premises must be available when used.
      TripleStore replay;
      rg.graph.store().Match(0, 0, 0,
                             [&](const Triple& b) { replay.Insert(b); });
      for (const DerivationStep& step : proof->steps) {
        for (const Triple& premise : step.premises) {
          ASSERT_TRUE(replay.Contains(premise)) << "seed " << seed;
        }
        replay.Insert(step.conclusion);
      }
    });
  }
}

}  // namespace
}  // namespace wdr::reasoning
