#include "rdf/triple_store.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "rdf/triple.h"

namespace wdr::rdf {
namespace {

TEST(TripleStoreTest, InsertEraseContains) {
  TripleStore store;
  Triple t(1, 2, 3);
  EXPECT_TRUE(store.Insert(t));
  EXPECT_FALSE(store.Insert(t));  // duplicate
  EXPECT_TRUE(store.Contains(t));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.Erase(t));
  EXPECT_FALSE(store.Erase(t));
  EXPECT_FALSE(store.Contains(t));
  EXPECT_TRUE(store.empty());
}

TEST(TripleStoreTest, ClearEmptiesAllIndexes) {
  TripleStore store;
  store.Insert(Triple(1, 2, 3));
  store.Insert(Triple(4, 5, 6));
  store.Clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Count(0, 0, 0), 0u);
  EXPECT_EQ(store.Count(0, 5, 0), 0u);
  EXPECT_EQ(store.Count(0, 0, 6), 0u);
}

TEST(TripleStoreTest, MatchFullScanIsSpoOrdered) {
  TripleStore store;
  store.Insert(Triple(2, 1, 1));
  store.Insert(Triple(1, 2, 2));
  store.Insert(Triple(1, 1, 3));
  std::vector<Triple> seen;
  store.Match(0, 0, 0, [&](const Triple& t) { seen.push_back(t); });
  std::vector<Triple> expected = {Triple(1, 1, 3), Triple(1, 2, 2),
                                  Triple(2, 1, 1)};
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(store.ToVector(), expected);
}

TEST(TripleStoreTest, MatchStopsWhenCallbackReturnsFalse) {
  TripleStore store;
  for (TermId i = 1; i <= 10; ++i) store.Insert(Triple(i, 1, 1));
  int seen = 0;
  store.Match(0, 0, 0, [&](const Triple&) { return ++seen < 3; });
  EXPECT_EQ(seen, 3);
}

TEST(TripleStoreTest, EstimateCountExactForSmallResults) {
  TripleStore store;
  store.Insert(Triple(1, 2, 3));
  store.Insert(Triple(1, 2, 4));
  store.Insert(Triple(5, 2, 3));
  EXPECT_EQ(store.EstimateCount(1, 2, 3), 1u);
  EXPECT_EQ(store.EstimateCount(1, 2, 9), 0u);
  EXPECT_EQ(store.EstimateCount(1, 2, 0), 2u);
  EXPECT_EQ(store.EstimateCount(0, 2, 0), 3u);
  EXPECT_EQ(store.EstimateCount(0, 0, 0), 3u);
}

// Parameterized sweep over all eight pattern shapes: Match must agree with
// a naive filter over the full triple list, on a randomized store.
class MatchPatternTest : public ::testing::TestWithParam<int> {};

TEST_P(MatchPatternTest, MatchAgreesWithNaiveFilter) {
  const int mask = GetParam();  // bit 0: s bound, 1: p bound, 2: o bound
  Rng rng(1234 + mask);
  TripleStore store;
  std::vector<Triple> all;
  for (int i = 0; i < 500; ++i) {
    Triple t(static_cast<TermId>(rng.Uniform(1, 12)),
             static_cast<TermId>(rng.Uniform(1, 8)),
             static_cast<TermId>(rng.Uniform(1, 12)));
    if (store.Insert(t)) all.push_back(t);
  }
  std::sort(all.begin(), all.end());

  for (int probe = 0; probe < 50; ++probe) {
    TermId s = (mask & 1) ? static_cast<TermId>(rng.Uniform(1, 12)) : 0;
    TermId p = (mask & 2) ? static_cast<TermId>(rng.Uniform(1, 8)) : 0;
    TermId o = (mask & 4) ? static_cast<TermId>(rng.Uniform(1, 12)) : 0;

    std::vector<Triple> expected;
    for (const Triple& t : all) {
      if ((s == 0 || t.s == s) && (p == 0 || t.p == p) &&
          (o == 0 || t.o == o)) {
        expected.push_back(t);
      }
    }
    std::vector<Triple> actual;
    store.Match(s, p, o, [&](const Triple& t) { actual.push_back(t); });
    std::sort(actual.begin(), actual.end());
    ASSERT_EQ(actual, expected) << "mask " << mask << " probe " << probe;
    ASSERT_EQ(store.Count(s, p, o), expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatternShapes, MatchPatternTest,
                         ::testing::Range(0, 8));

// Random insert/erase interleaving keeps the three indexes consistent.
TEST(TripleStorePropertyTest, IndexesStayConsistentUnderChurn) {
  Rng rng(99);
  TripleStore store;
  std::vector<Triple> present;
  for (int step = 0; step < 2000; ++step) {
    if (!present.empty() && rng.Chance(0.4)) {
      size_t pick = static_cast<size_t>(rng.Uniform(0, present.size() - 1));
      ASSERT_TRUE(store.Erase(present[pick]));
      present.erase(present.begin() + pick);
    } else {
      Triple t(static_cast<TermId>(rng.Uniform(1, 20)),
               static_cast<TermId>(rng.Uniform(1, 6)),
               static_cast<TermId>(rng.Uniform(1, 20)));
      if (store.Insert(t)) present.push_back(t);
    }
  }
  std::sort(present.begin(), present.end());
  ASSERT_EQ(store.ToVector(), present);
  // Spot-check each index direction against the ground truth.
  for (const Triple& t : present) {
    ASSERT_GE(store.Count(t.s, 0, 0), 1u);
    ASSERT_GE(store.Count(0, t.p, 0), 1u);
    ASSERT_GE(store.Count(0, 0, t.o), 1u);
    ASSERT_EQ(store.Count(t.s, t.p, t.o), 1u);
  }
}

TEST(TripleHashTest, DistinctTriplesRarelyCollide) {
  TripleHash hash;
  std::vector<size_t> hashes;
  for (TermId s = 1; s <= 20; ++s) {
    for (TermId p = 1; p <= 20; ++p) {
      hashes.push_back(hash(Triple(s, p, s ^ p)));
    }
  }
  std::sort(hashes.begin(), hashes.end());
  size_t distinct =
      std::unique(hashes.begin(), hashes.end()) - hashes.begin();
  EXPECT_EQ(distinct, hashes.size());
}

}  // namespace
}  // namespace wdr::rdf
