#include "rdf/dictionary.h"

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "rdf/term.h"

namespace wdr::rdf {
namespace {

TEST(TermTest, FactoriesSetKinds) {
  EXPECT_TRUE(Term::Iri("http://a").is_iri());
  EXPECT_TRUE(Term::Literal("x").is_literal());
  EXPECT_TRUE(Term::Blank("b1").is_blank());
}

TEST(TermTest, NTriplesRendering) {
  EXPECT_EQ(Term::Iri("http://a/b").ToNTriples(), "<http://a/b>");
  EXPECT_EQ(Term::Blank("n1").ToNTriples(), "_:n1");
  EXPECT_EQ(Term::Literal("hi").ToNTriples(), "\"hi\"");
  EXPECT_EQ(Term::Literal("hi", "http://dt").ToNTriples(),
            "\"hi\"^^<http://dt>");
  EXPECT_EQ(Term::Literal("hi", "", "en").ToNTriples(), "\"hi\"@en");
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToNTriples(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(TermTest, EqualityDistinguishesKindAndAnnotations) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_FALSE(Term::Iri("x") == Term::Literal("x"));
  EXPECT_FALSE(Term::Literal("x", "dt1") == Term::Literal("x", "dt2"));
  EXPECT_FALSE(Term::Literal("x", "", "en") == Term::Literal("x", "", "fr"));
}

TEST(DictionaryTest, InterningIsIdempotent) {
  Dictionary dict;
  TermId a = dict.InternIri("http://a");
  TermId b = dict.InternIri("http://b");
  EXPECT_NE(a, kNullTermId);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.InternIri("http://a"), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, RoundTripsTerms) {
  Dictionary dict;
  Term lit = Term::Literal("42", "http://www.w3.org/2001/XMLSchema#integer");
  TermId id = dict.Intern(lit);
  EXPECT_EQ(dict.term(id), lit);
  EXPECT_TRUE(dict.Contains(id));
  EXPECT_FALSE(dict.Contains(kNullTermId));
  EXPECT_FALSE(dict.Contains(id + 10));
}

TEST(DictionaryTest, LookupWithoutInterning) {
  Dictionary dict;
  EXPECT_EQ(dict.LookupIri("http://missing"), kNullTermId);
  TermId id = dict.InternIri("http://present");
  EXPECT_EQ(dict.LookupIri("http://present"), id);
  EXPECT_EQ(dict.size(), 1u);  // Lookup must not intern
  dict.Lookup(Term::Literal("x"));
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, HomographsOfDifferentKindsGetDistinctIds) {
  Dictionary dict;
  TermId iri = dict.Intern(Term::Iri("x"));
  TermId lit = dict.Intern(Term::Literal("x"));
  TermId blank = dict.Intern(Term::Blank("x"));
  TermId lang = dict.Intern(Term::Literal("x", "", "en"));
  TermId typed = dict.Intern(Term::Literal("x", "http://dt"));
  EXPECT_EQ(dict.size(), 5u);
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, blank);
  EXPECT_NE(lit, lang);
  EXPECT_NE(lang, typed);
}

TEST(DictionaryTest, KeySeparatorInjectionDoesNotCollide) {
  // A literal whose lexical form embeds the separator byte must not
  // collide with a datatype-annotated literal.
  Dictionary dict;
  TermId a = dict.Intern(Term::Literal(std::string("x\x01y"), ""));
  TermId b = dict.Intern(Term::Literal("x", "y"));
  EXPECT_NE(a, b);
}

TEST(DictionaryTest, DatatypeVsLanguageTagDoesNotCollide) {
  // The key places datatype and language in separate separator-delimited
  // fields: "x"^^<y> and "x"@y must stay distinct, as must a datatype
  // embedding the separator before a language against a plain datatype.
  Dictionary dict;
  TermId typed = dict.Intern(Term::Literal("x", "y"));
  TermId tagged = dict.Intern(Term::Literal("x", "", "y"));
  EXPECT_NE(typed, tagged);
  TermId dt_injected =
      dict.Intern(Term::Literal("x", std::string("y\x01z"), ""));
  TermId dt_and_lang = dict.Intern(Term::Literal("x", "y", "z"));
  EXPECT_NE(dt_injected, dt_and_lang);
  EXPECT_EQ(dict.size(), 4u);
}

TEST(DictionaryTest, EmptyLexicalFormsStayDistinct) {
  // "" is a legal lexical form for every kind; the kind byte and the
  // annotation fields must keep all of these apart.
  Dictionary dict;
  TermId iri = dict.Intern(Term::Iri(""));
  TermId lit = dict.Intern(Term::Literal(""));
  TermId blank = dict.Intern(Term::Blank(""));
  TermId typed = dict.Intern(Term::Literal("", "http://dt"));
  TermId tagged = dict.Intern(Term::Literal("", "", "en"));
  EXPECT_EQ(dict.size(), 5u);
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, blank);
  EXPECT_NE(lit, typed);
  EXPECT_NE(typed, tagged);
  // And each re-interns to its own id.
  EXPECT_EQ(dict.Intern(Term::Literal("", "http://dt")), typed);
  EXPECT_EQ(dict.Lookup(Term::Literal("", "", "en")), tagged);
}

TEST(DictionaryTest, RoundTripsAfterCopyAndMove) {
  Dictionary dict;
  TermId iri = dict.InternIri("http://a");
  TermId lit = dict.Intern(Term::Literal("42", "http://int"));

  Dictionary copy = dict;
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy.term(iri), Term::Iri("http://a"));
  EXPECT_EQ(copy.LookupIri("http://a"), iri);
  // The copy interns independently of the original.
  TermId extra = copy.InternIri("http://copy-only");
  EXPECT_EQ(copy.size(), 3u);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.LookupIri("http://copy-only"), kNullTermId);

  Dictionary moved = std::move(copy);
  EXPECT_EQ(moved.size(), 3u);
  EXPECT_EQ(moved.term(lit), Term::Literal("42", "http://int"));
  EXPECT_EQ(moved.LookupIri("http://copy-only"), extra);
  EXPECT_TRUE(moved.Contains(extra));
}

TEST(DictionaryTest, ReserveKeepsContentsIntact) {
  Dictionary dict;
  TermId a = dict.InternIri("http://a");
  dict.Reserve(1000);
  EXPECT_EQ(dict.size(), 1u);
  EXPECT_EQ(dict.LookupIri("http://a"), a);
  TermId b = dict.InternIri("http://b");
  EXPECT_EQ(b, a + 1);
}

TEST(DictionaryTest, ApplyPermutationRenumbersBothDirections) {
  Dictionary dict;
  TermId a = dict.InternIri("http://a");  // 1
  TermId b = dict.InternIri("http://b");  // 2
  TermId c = dict.InternIri("http://c");  // 3
  ASSERT_EQ(a, 1u);
  ASSERT_EQ(b, 2u);
  ASSERT_EQ(c, 3u);
  // old 1 -> 3, old 2 -> 1, old 3 -> 2 (entry 0 unused).
  dict.ApplyPermutation({0, 3, 1, 2});
  EXPECT_EQ(dict.LookupIri("http://a"), 3u);
  EXPECT_EQ(dict.LookupIri("http://b"), 1u);
  EXPECT_EQ(dict.LookupIri("http://c"), 2u);
  EXPECT_EQ(dict.term(3), Term::Iri("http://a"));
  EXPECT_EQ(dict.term(1), Term::Iri("http://b"));
  EXPECT_EQ(dict.term(2), Term::Iri("http://c"));
  EXPECT_EQ(dict.size(), 3u);
  // Interning after the permutation appends past the permuted range.
  EXPECT_EQ(dict.InternIri("http://d"), 4u);
}

}  // namespace
}  // namespace wdr::rdf
