#include "rdf/dictionary.h"

#include <gtest/gtest.h>

#include "rdf/term.h"

namespace wdr::rdf {
namespace {

TEST(TermTest, FactoriesSetKinds) {
  EXPECT_TRUE(Term::Iri("http://a").is_iri());
  EXPECT_TRUE(Term::Literal("x").is_literal());
  EXPECT_TRUE(Term::Blank("b1").is_blank());
}

TEST(TermTest, NTriplesRendering) {
  EXPECT_EQ(Term::Iri("http://a/b").ToNTriples(), "<http://a/b>");
  EXPECT_EQ(Term::Blank("n1").ToNTriples(), "_:n1");
  EXPECT_EQ(Term::Literal("hi").ToNTriples(), "\"hi\"");
  EXPECT_EQ(Term::Literal("hi", "http://dt").ToNTriples(),
            "\"hi\"^^<http://dt>");
  EXPECT_EQ(Term::Literal("hi", "", "en").ToNTriples(), "\"hi\"@en");
  EXPECT_EQ(Term::Literal("a\"b\\c\nd").ToNTriples(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(TermTest, EqualityDistinguishesKindAndAnnotations) {
  EXPECT_EQ(Term::Iri("x"), Term::Iri("x"));
  EXPECT_FALSE(Term::Iri("x") == Term::Literal("x"));
  EXPECT_FALSE(Term::Literal("x", "dt1") == Term::Literal("x", "dt2"));
  EXPECT_FALSE(Term::Literal("x", "", "en") == Term::Literal("x", "", "fr"));
}

TEST(DictionaryTest, InterningIsIdempotent) {
  Dictionary dict;
  TermId a = dict.InternIri("http://a");
  TermId b = dict.InternIri("http://b");
  EXPECT_NE(a, kNullTermId);
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.InternIri("http://a"), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, RoundTripsTerms) {
  Dictionary dict;
  Term lit = Term::Literal("42", "http://www.w3.org/2001/XMLSchema#integer");
  TermId id = dict.Intern(lit);
  EXPECT_EQ(dict.term(id), lit);
  EXPECT_TRUE(dict.Contains(id));
  EXPECT_FALSE(dict.Contains(kNullTermId));
  EXPECT_FALSE(dict.Contains(id + 10));
}

TEST(DictionaryTest, LookupWithoutInterning) {
  Dictionary dict;
  EXPECT_EQ(dict.LookupIri("http://missing"), kNullTermId);
  TermId id = dict.InternIri("http://present");
  EXPECT_EQ(dict.LookupIri("http://present"), id);
  EXPECT_EQ(dict.size(), 1u);  // Lookup must not intern
  dict.Lookup(Term::Literal("x"));
  EXPECT_EQ(dict.size(), 1u);
}

TEST(DictionaryTest, HomographsOfDifferentKindsGetDistinctIds) {
  Dictionary dict;
  TermId iri = dict.Intern(Term::Iri("x"));
  TermId lit = dict.Intern(Term::Literal("x"));
  TermId blank = dict.Intern(Term::Blank("x"));
  TermId lang = dict.Intern(Term::Literal("x", "", "en"));
  TermId typed = dict.Intern(Term::Literal("x", "http://dt"));
  EXPECT_EQ(dict.size(), 5u);
  EXPECT_NE(iri, lit);
  EXPECT_NE(lit, blank);
  EXPECT_NE(lit, lang);
  EXPECT_NE(lang, typed);
}

TEST(DictionaryTest, KeySeparatorInjectionDoesNotCollide) {
  // A literal whose lexical form embeds the separator byte must not
  // collide with a datatype-annotated literal.
  Dictionary dict;
  TermId a = dict.Intern(Term::Literal(std::string("x\x01y"), ""));
  TermId b = dict.Intern(Term::Literal("x", "y"));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace wdr::rdf
