#include "rdf/graph.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "query/evaluator.h"
#include "schema/vocabulary.h"
#include "tests/test_util.h"

namespace wdr::rdf {
namespace {

TEST(GraphTest, InsertByTermsAndByIds) {
  Graph g;
  EXPECT_TRUE(g.InsertIris("http://a", "http://p", "http://b"));
  EXPECT_FALSE(g.InsertIris("http://a", "http://p", "http://b"));
  EXPECT_EQ(g.size(), 1u);
  Triple t(g.dict().LookupIri("http://a"), g.dict().LookupIri("http://p"),
           g.dict().LookupIri("http://b"));
  EXPECT_TRUE(g.Contains(t));
  EXPECT_TRUE(g.Erase(t));
  EXPECT_FALSE(g.Erase(t));
  EXPECT_EQ(g.size(), 0u);
  // Terms stay interned after erasure.
  EXPECT_NE(g.dict().LookupIri("http://a"), kNullTermId);
}

TEST(GraphTest, DecodeRendersNTriples) {
  Graph g;
  g.Insert(Term::Iri("http://a"), Term::Iri("http://p"),
           Term::Literal("x", "", "en"));
  Triple t;
  g.store().Match(0, 0, 0, [&](const Triple& found) { t = found; });
  EXPECT_EQ(g.Decode(t), "<http://a> <http://p> \"x\"@en .");
}

TEST(GraphTest, StatsSplitSchemaFromInstance) {
  Graph g;
  schema::Vocabulary vocab = schema::Vocabulary::Intern(g.dict());
  (void)vocab;
  g.InsertIris("http://C", schema::iri::kSubClassOf, "http://D");
  g.InsertIris("http://p", schema::iri::kDomain, "http://C");
  g.InsertIris("http://x", "http://p", "http://y");
  GraphStats stats = g.Stats();
  EXPECT_EQ(stats.triple_count, 3u);
  EXPECT_EQ(stats.schema_triple_count, 2u);
  EXPECT_GE(stats.term_count, 6u);
}

TEST(GraphTest, CopyIsIndependent) {
  Graph g;
  g.InsertIris("http://a", "http://p", "http://b");
  Graph copy = g;
  copy.InsertIris("http://c", "http://p", "http://d");
  EXPECT_EQ(g.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
}

// Reference implementation of BGP evaluation: enumerate the full cartesian
// product of per-atom matches over the whole store and filter by variable
// consistency. The production evaluator must agree on random instances.
query::ResultSet NaiveEvaluate(const StoreView& store,
                               const query::BgpQuery& q) {
  query::ResultSet result;
  result.var_names = q.ProjectionNames();
  std::vector<std::vector<Triple>> atom_matches;
  std::vector<Triple> all;
  store.Match(0, 0, 0, [&](const Triple& t) { all.push_back(t); });
  for (size_t i = 0; i < q.atoms().size(); ++i) atom_matches.push_back(all);

  std::vector<size_t> pick(q.atoms().size(), 0);
  std::vector<TermId> bindings;
  auto consistent = [&]() {
    bindings.assign(q.var_count(), kNullTermId);
    for (const auto& [var, value] : q.preset()) bindings[var] = value;
    for (size_t i = 0; i < q.atoms().size(); ++i) {
      const query::TriplePattern& atom = q.atoms()[i];
      const Triple& t = atom_matches[i][pick[i]];
      const std::pair<const query::PatternTerm*, TermId> positions[] = {
          {&atom.s, t.s}, {&atom.p, t.p}, {&atom.o, t.o}};
      for (const auto& [term, value] : positions) {
        if (term->is_const()) {
          if (term->id != value) return false;
        } else {
          TermId& slot = bindings[term->var];
          if (slot == kNullTermId) {
            slot = value;
          } else if (slot != value) {
            return false;
          }
        }
      }
    }
    return true;
  };

  std::set<query::Row> seen;
  while (true) {
    if (consistent()) {
      query::Row row;
      for (query::VarId v : q.projection()) row.push_back(bindings[v]);
      if (!q.distinct() || seen.insert(row).second) {
        result.rows.push_back(std::move(row));
      }
    }
    size_t level = 0;
    while (level < pick.size() &&
           ++pick[level] == atom_matches[level].size()) {
      pick[level] = 0;
      ++level;
    }
    if (level == pick.size() || pick.empty()) break;
  }
  return result;
}

TEST(EvaluatorReferenceTest, AgreesWithNaiveCrossProductJoin) {
  for (uint64_t seed = 800; seed < 830; ++seed) {
    Rng rng(seed);
    test::RandomGraphConfig config;
    config.instance_triples = 12;  // keep the cross product tractable
    config.schema_triples = 4;
    test::RandomGraph rg = test::MakeRandomGraph(rng, config);
    if (rg.graph.size() == 0) continue;
    query::Evaluator evaluator(rg.graph.store());
    for (int qi = 0; qi < 4; ++qi) {
      query::BgpQuery q = test::MakeRandomQuery(rng, rg);
      if (q.atoms().size() > 2) continue;  // cross product gets big
      query::ResultSet fast = evaluator.Evaluate(q);
      query::ResultSet slow = NaiveEvaluate(rg.graph.store(), q);
      fast.Normalize(false);
      slow.Normalize(false);
      ASSERT_EQ(fast.rows, slow.rows) << "seed " << seed << " query " << qi;
    }
  }
}

}  // namespace
}  // namespace wdr::rdf
