#include "obs/stats_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "store/reasoning_store.h"

namespace wdr::obs {
namespace {

// Minimal HTTP/1.0 client over a raw socket — the tests exercise the
// server exactly the way `curl http://127.0.0.1:PORT/...` would, without
// depending on curl being present.
struct HttpResponse {
  bool ok = false;        // transport-level success (connect + parse)
  int status = 0;         // e.g. 200, 404
  std::string content_type;
  std::string body;
};

// Fetches one URL. The response is consumed the way a careful HTTP client
// must: the head is accumulated across however many recv() calls TCP
// fragments it into (a single recv may return as little as one byte), and
// the body is then read to Content-Length when the server declared one, or
// to EOF otherwise — no single-recv assumptions anywhere. When
// `trickle_request` is set the request bytes are sent one at a time, which
// exercises the server side of the same fragmented-read contract.
HttpResponse Fetch(int port, const std::string& method, const std::string& path,
                   bool trickle_request = false) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return response;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return response;
  }
  const std::string request = method + " " + path +
                              " HTTP/1.0\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  const size_t chunk = trickle_request ? 1 : request.size();
  size_t sent = 0;
  while (sent < request.size()) {
    const size_t len = std::min(chunk, request.size() - sent);
    const ssize_t n = ::send(fd, request.data() + sent, len, 0);
    if (n <= 0) {
      ::close(fd);
      return response;
    }
    sent += static_cast<size_t>(n);
  }

  // Phase 1: read until the complete header block has arrived. Bytes past
  // the blank line belong to the body and are kept.
  std::string raw;
  size_t header_end = std::string::npos;
  char buf[4096];
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      ::close(fd);
      return response;  // EOF or error before a complete head
    }
    raw.append(buf, static_cast<size_t>(n));
    header_end = raw.find("\r\n\r\n");
  }
  const std::string head = raw.substr(0, header_end);
  response.body = raw.substr(header_end + 4);

  std::istringstream lines(head);
  std::string status_line;
  if (!std::getline(lines, status_line)) {
    ::close(fd);
    return response;
  }
  std::istringstream status(status_line);
  std::string http_version;
  status >> http_version >> response.status;
  if (http_version.rfind("HTTP/", 0) != 0 || response.status == 0) {
    ::close(fd);
    return response;
  }
  size_t content_length = std::string::npos;
  std::string header;
  while (std::getline(lines, header)) {
    if (!header.empty() && header.back() == '\r') header.pop_back();
    auto value_of = [&header](const std::string& key) -> std::string {
      if (header.size() <= key.size() ||
          header.compare(0, key.size(), key) != 0) {
        return "";
      }
      size_t start = key.size();
      while (start < header.size() && header[start] == ' ') ++start;
      return header.substr(start);
    };
    if (std::string v = value_of("Content-Type:"); !v.empty()) {
      response.content_type = v;
    }
    if (std::string v = value_of("Content-Length:"); !v.empty()) {
      content_length = static_cast<size_t>(std::strtoull(v.c_str(), nullptr, 10));
    }
  }

  // Phase 2: the body — to the declared length, or to EOF without one.
  while (content_length == std::string::npos ||
         response.body.size() < content_length) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      return response;
    }
    if (n == 0) break;  // server closes after one response
    response.body.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (content_length != std::string::npos &&
      response.body.size() != content_length) {
    return response;  // truncated body
  }
  response.ok = true;
  return response;
}

// Parses a Prometheus text exposition (version 0.0.4) and fails the test
// on any malformed line — the acceptance check that /metrics really is
// scrape-able, not just non-empty.
void ExpectValidPrometheus(const std::string& text) {
  ASSERT_FALSE(text.empty());
  auto valid_name = [](const std::string& name) {
    if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0]))) {
      return false;
    }
    for (char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != ':')
        return false;
    }
    return true;
  };
  std::map<std::string, std::string> types;
  std::istringstream in(text);
  std::string line;
  size_t samples = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name, type;
      ls >> hash >> kind >> name >> type;
      ASSERT_EQ(kind, "TYPE") << line;
      EXPECT_TRUE(valid_name(name)) << name;
      EXPECT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      types[name] = type;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    ASSERT_TRUE(end != nullptr && *end == '\0' && end != value.c_str())
        << "unparsable value: " << line;
    std::string name = line.substr(0, space);
    const size_t brace = name.find('{');
    if (brace != std::string::npos) name.resize(brace);
    EXPECT_TRUE(valid_name(name)) << name;
    // Every sample belongs to a TYPE-declared family (histogram components
    // strip their _bucket/_sum/_count suffix).
    bool declared = types.count(name) > 0;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const size_t len = std::string(suffix).size();
      if (!declared && name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0) {
        declared = types.count(name.substr(0, name.size() - len)) > 0;
      }
    }
    EXPECT_TRUE(declared) << "sample without TYPE: " << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
}

TEST(StatsServerTest, ServesIndexOnEphemeralPort) {
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);
  HttpResponse response = Fetch(server.port(), "GET", "/");
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("/metrics"), std::string::npos);
  EXPECT_NE(response.body.find("/querylog"), std::string::npos);
  EXPECT_NE(response.body.find("/trace"), std::string::npos);
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(StatsServerTest, MetricsEndpointServesValidPrometheusText) {
  MetricsRegistry::Get().GetCounter("wdr.test.server.counter").Add(5);
  MetricsRegistry::Get()
      .GetHistogram("wdr.test.server.hist")
      .RecordNanos(1234);
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  HttpResponse response = Fetch(server.port(), "GET", "/metrics");
  server.Stop();
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("text/plain"), std::string::npos);
  EXPECT_NE(response.content_type.find("version=0.0.4"), std::string::npos);
  ExpectValidPrometheus(response.body);
  EXPECT_NE(response.body.find("wdr_test_server_counter_total"),
            std::string::npos);
  EXPECT_NE(response.body.find("wdr_test_server_hist_seconds_bucket"),
            std::string::npos);
}

TEST(StatsServerTest, MetricsJsonEndpointServesSnapshot) {
  MetricsRegistry::Get().GetCounter("wdr.test.server.json").Add(7);
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  HttpResponse response = Fetch(server.port(), "GET", "/metrics.json");
  server.Stop();
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("application/json"),
            std::string::npos);
  ASSERT_FALSE(response.body.empty());
  EXPECT_EQ(response.body.front(), '{');
  EXPECT_NE(response.body.find("\"wdr.test.server.json\":"),
            std::string::npos);
}

TEST(StatsServerTest, QuerylogEndpointReturnsOneRecordPerQuery) {
  QueryLog::Get().Clear();
  store::ReasoningStoreOptions options;
  options.mode = store::ReasoningMode::kReformulation;
  options.encoding = false;
  store::ReasoningStore store(options);
  ASSERT_TRUE(store
                  .LoadTurtle("@prefix ex: <http://ex.org/> .\n"
                              "@prefix rdfs: "
                              "<http://www.w3.org/2000/01/rdf-schema#> .\n"
                              "ex:Cat rdfs:subClassOf ex:Animal .\n"
                              "ex:tom a ex:Cat .\n")
                  .ok());
  const char* query =
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "PREFIX ex: <http://ex.org/>\n"
      "SELECT ?x WHERE { ?x rdf:type ex:Animal }";
  ASSERT_TRUE(store.Query(query).ok());
  ASSERT_TRUE(store.Query(query).ok());

  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  HttpResponse response = Fetch(server.port(), "GET", "/querylog");
  server.Stop();
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("application/x-ndjson"),
            std::string::npos);
  std::istringstream in(response.body);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"mode\":\"reformulation\""), std::string::npos);
    EXPECT_NE(line.find("\"wall_nanos\":"), std::string::npos);
    EXPECT_NE(line.find("\"rows\":"), std::string::npos);
    EXPECT_NE(line.find("\"est_rows\":"), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
  QueryLog::Get().Clear();
}

TEST(StatsServerTest, TraceEndpointServesBufferedSpans) {
  ClearTrace();
  SetTraceEnabled(true);
  {
    Span span("wdr.test.server_span");
  }
  SetTraceEnabled(false);
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  HttpResponse response = Fetch(server.port(), "GET", "/trace");
  server.Stop();
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.content_type.find("application/x-ndjson"),
            std::string::npos);
  EXPECT_NE(response.body.find("\"name\":\"wdr.test.server_span\""),
            std::string::npos);
  ClearTrace();
}

TEST(StatsServerTest, UnknownPathIs404AndNonGetIs405) {
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  HttpResponse not_found = Fetch(server.port(), "GET", "/nope");
  ASSERT_TRUE(not_found.ok);
  EXPECT_EQ(not_found.status, 404);
  HttpResponse bad_method = Fetch(server.port(), "POST", "/metrics");
  ASSERT_TRUE(bad_method.ok);
  EXPECT_EQ(bad_method.status, 405);
  server.Stop();
}

TEST(StatsServerTest, HandlesByteAtATimeRequests) {
  // The request arrives one byte per segment; the server must keep reading
  // until the head terminator instead of assuming one recv == one request.
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  HttpResponse response =
      Fetch(server.port(), "GET", "/", /*trickle_request=*/true);
  server.Stop();
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("/metrics"), std::string::npos);
}

TEST(StatsServerTest, QueryStringIsIgnoredInRouting) {
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  HttpResponse response = Fetch(server.port(), "GET", "/metrics?name=wdr");
  server.Stop();
  ASSERT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
}

TEST(StatsServerTest, StopThenRestartOnNewPort) {
  StatsServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const int first_port = server.port();
  // Starting an already-running server is an error, not a silent rebind.
  EXPECT_FALSE(server.Start(0).ok());
  server.Stop();
  // The old port no longer accepts connections.
  EXPECT_FALSE(Fetch(first_port, "GET", "/").ok);
  ASSERT_TRUE(server.Start(0).ok());
  HttpResponse response = Fetch(server.port(), "GET", "/");
  EXPECT_TRUE(response.ok);
  EXPECT_EQ(response.status, 200);
  server.Stop();
  // Stop is idempotent.
  server.Stop();
}

}  // namespace
}  // namespace wdr::obs
