// Executable semantics for the paper's Fig. 2 (immediate entailment rules):
// each rule is exercised through a single application of the RuleEngine.
#include "reasoning/rules.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "rdf/graph.h"
#include "tests/test_util.h"

namespace wdr::reasoning {
namespace {

using rdf::Graph;
using rdf::Triple;
using schema::Vocabulary;
using test::Add;
using test::Enc;

class RulesTest : public ::testing::Test {
 protected:
  Graph g_;
  Vocabulary v_ = Vocabulary::Intern(g_.dict());

  // One-step consequences of `t` against the current graph store, with `t`
  // inserted first (engines expect the delta triple to be present).
  std::vector<std::pair<Triple, RuleId>> Consequences(const Triple& t) {
    g_.Insert(t);
    RuleEngine engine(v_, &g_.dict());
    std::vector<std::pair<Triple, RuleId>> out;
    engine.ForEachConsequence(g_.store(), t, [&](const Triple& c, RuleId r) {
      out.emplace_back(c, r);
    });
    return out;
  }

  bool Derives(const std::vector<std::pair<Triple, RuleId>>& consequences,
               const Triple& t, RuleId rule) {
    return std::any_of(consequences.begin(), consequences.end(),
                       [&](const auto& pair) {
                         return pair.first == t && pair.second == rule;
                       });
  }
};

TEST_F(RulesTest, Rdfs9InstancePremise) {
  // c1 ⊑ c2 ∧ s type c1 ⊢ s type c2 — delta is the instance triple.
  Add(g_, "Cat", schema::iri::kSubClassOf, "Mammal");
  auto out = Consequences(Enc(g_, "Tom", schema::iri::kType, "Cat"));
  EXPECT_TRUE(Derives(out, Enc(g_, "Tom", schema::iri::kType, "Mammal"),
                      RuleId::kRdfs9));
}

TEST_F(RulesTest, Rdfs9SchemaPremise) {
  // Same rule, delta is the schema triple: existing instances re-type.
  Add(g_, "Tom", schema::iri::kType, "Cat");
  auto out = Consequences(Enc(g_, "Cat", schema::iri::kSubClassOf, "Mammal"));
  EXPECT_TRUE(Derives(out, Enc(g_, "Tom", schema::iri::kType, "Mammal"),
                      RuleId::kRdfs9));
}

TEST_F(RulesTest, Rdfs7BothPremises) {
  Add(g_, "headOf", schema::iri::kSubPropertyOf, "worksFor");
  auto out = Consequences(Enc(g_, "alice", "headOf", "dept"));
  EXPECT_TRUE(Derives(out, Enc(g_, "alice", "worksFor", "dept"),
                      RuleId::kRdfs7));

  Add(g_, "bob", "teaches", "cs1");
  auto out2 = Consequences(
      Enc(g_, "teaches", schema::iri::kSubPropertyOf, "lectures"));
  EXPECT_TRUE(Derives(out2, Enc(g_, "bob", "lectures", "cs1"),
                      RuleId::kRdfs7));
}

TEST_F(RulesTest, Rdfs2DomainTyping) {
  Add(g_, "hasFriend", schema::iri::kDomain, "Person");
  auto out = Consequences(Enc(g_, "Anne", "hasFriend", "Marie"));
  EXPECT_TRUE(Derives(out, Enc(g_, "Anne", schema::iri::kType, "Person"),
                      RuleId::kRdfs2));
  // The object is NOT domain-typed.
  EXPECT_FALSE(Derives(out, Enc(g_, "Marie", schema::iri::kType, "Person"),
                       RuleId::kRdfs2));
}

TEST_F(RulesTest, Rdfs3RangeTyping) {
  Add(g_, "hasFriend", schema::iri::kRange, "Person");
  auto out = Consequences(Enc(g_, "Anne", "hasFriend", "Marie"));
  EXPECT_TRUE(Derives(out, Enc(g_, "Marie", schema::iri::kType, "Person"),
                      RuleId::kRdfs3));
  EXPECT_FALSE(Derives(out, Enc(g_, "Anne", schema::iri::kType, "Person"),
                       RuleId::kRdfs3));
}

TEST_F(RulesTest, Rdfs5SubPropertyTransitivity) {
  Add(g_, "a", schema::iri::kSubPropertyOf, "b");
  auto out = Consequences(Enc(g_, "b", schema::iri::kSubPropertyOf, "c"));
  EXPECT_TRUE(Derives(out, Enc(g_, "a", schema::iri::kSubPropertyOf, "c"),
                      RuleId::kRdfs5));
}

TEST_F(RulesTest, Rdfs11SubClassTransitivityBothSides) {
  Add(g_, "A", schema::iri::kSubClassOf, "B");
  auto out = Consequences(Enc(g_, "B", schema::iri::kSubClassOf, "C"));
  EXPECT_TRUE(Derives(out, Enc(g_, "A", schema::iri::kSubClassOf, "C"),
                      RuleId::kRdfs11));

  auto out2 = Consequences(Enc(g_, "Z", schema::iri::kSubClassOf, "A"));
  EXPECT_TRUE(Derives(out2, Enc(g_, "Z", schema::iri::kSubClassOf, "B"),
                      RuleId::kRdfs11));
}

TEST_F(RulesTest, NoConsequencesWithoutMatchingSchema) {
  auto out = Consequences(Enc(g_, "x", "p", "y"));
  EXPECT_TRUE(out.empty());
}

TEST_F(RulesTest, LiteralObjectsSuppressRdfs3) {
  Add(g_, "name", schema::iri::kRange, "Name");
  auto out = Consequences(Enc(g_, "x", "name", "\"Bob"));
  for (const auto& [triple, rule] : out) {
    EXPECT_NE(rule, RuleId::kRdfs3);
  }
}

TEST_F(RulesTest, RuleNamesAreStable) {
  EXPECT_STREQ(RuleName(RuleId::kRdfs2), "rdfs2");
  EXPECT_STREQ(RuleName(RuleId::kRdfs3), "rdfs3");
  EXPECT_STREQ(RuleName(RuleId::kRdfs5), "rdfs5");
  EXPECT_STREQ(RuleName(RuleId::kRdfs7), "rdfs7");
  EXPECT_STREQ(RuleName(RuleId::kRdfs9), "rdfs9");
  EXPECT_STREQ(RuleName(RuleId::kRdfs11), "rdfs11");
}

TEST_F(RulesTest, IsOneStepDerivableMatchesForward) {
  Add(g_, "Cat", schema::iri::kSubClassOf, "Mammal");
  Add(g_, "Tom", schema::iri::kType, "Cat");
  RuleEngine engine(v_, &g_.dict());
  EXPECT_TRUE(engine.IsOneStepDerivable(
      g_.store(), Enc(g_, "Tom", schema::iri::kType, "Mammal")));
  EXPECT_FALSE(engine.IsOneStepDerivable(
      g_.store(), Enc(g_, "Tom", schema::iri::kType, "Dog")));
  EXPECT_FALSE(engine.IsOneStepDerivable(
      g_.store(), Enc(g_, "Rex", schema::iri::kType, "Mammal")));
}

TEST_F(RulesTest, FiringCountersSum) {
  RuleFirings firings;
  firings[RuleId::kRdfs2] = 3;
  firings[RuleId::kRdfs9] = 4;
  EXPECT_EQ(firings.Total(), 7u);
  EXPECT_EQ(firings[RuleId::kRdfs3], 0u);
}

}  // namespace
}  // namespace wdr::reasoning
