#include "datalog/magic.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datalog/parser.h"

namespace wdr::datalog {
namespace {

DlProgram MustParse(const std::string& text) {
  auto program = ParseDatalog(text);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(*program);
}

// Answers of `query` via plain full materialization, for comparison.
std::vector<Tuple> AnswerFull(const DlProgram& program, const DlAtom& query,
                              EvalStats* stats = nullptr) {
  auto db = Materialize(program, Strategy::kSemiNaive, stats);
  EXPECT_TRUE(db.ok());
  std::vector<DlVarId> projection;
  for (const DlTerm& t : query.args) {
    if (t.is_var) projection.push_back(t.id);
  }
  std::sort(projection.begin(), projection.end());
  projection.erase(std::unique(projection.begin(), projection.end()),
                   projection.end());
  auto rows = EvaluateQuery(program, *db, {query}, projection);
  EXPECT_TRUE(rows.ok());
  return *rows;
}

const char* kChain =
    "edge(a, b). edge(b, c). edge(c, d). edge(d, e).\n"
    "edge(x, y). edge(y, z).\n"  // disconnected component
    "path(X, Y) :- edge(X, Y).\n"
    "path(X, Z) :- path(X, Y), edge(Y, Z).\n";

TEST(MagicTest, BoundFirstArgumentMatchesFullEvaluation) {
  DlProgram program = MustParse(kChain);
  DlAtom query;
  query.pred = *program.PredByName("path");
  query.args = {DlTerm::Constant(program.InternSym("a")),
                DlTerm::Variable(0)};
  auto magic = AnswerWithMagic(program, query);
  ASSERT_TRUE(magic.ok()) << magic.status();
  EXPECT_EQ(*magic, AnswerFull(program, query));
  EXPECT_EQ(magic->size(), 4u);  // b, c, d, e
}

TEST(MagicTest, MagicDerivesFewerTuplesThanFullMaterialization) {
  DlProgram program = MustParse(kChain);
  DlAtom query;
  query.pred = *program.PredByName("path");
  query.args = {DlTerm::Constant(program.InternSym("x")),
                DlTerm::Variable(0)};
  EvalStats magic_stats, full_stats;
  auto magic = AnswerWithMagic(program, query, &magic_stats);
  ASSERT_TRUE(magic.ok());
  AnswerFull(program, query, &full_stats);
  EXPECT_EQ(magic->size(), 2u);  // y, z
  // Full materialization derives every path pair in both components; magic
  // only explores the x-component.
  EXPECT_LT(magic_stats.derived_tuples, full_stats.derived_tuples);
}

TEST(MagicTest, BoundSecondArgument) {
  DlProgram program = MustParse(kChain);
  DlAtom query;
  query.pred = *program.PredByName("path");
  query.args = {DlTerm::Variable(0),
                DlTerm::Constant(program.InternSym("c"))};
  auto magic = AnswerWithMagic(program, query);
  ASSERT_TRUE(magic.ok()) << magic.status();
  EXPECT_EQ(*magic, AnswerFull(program, query));
  EXPECT_EQ(magic->size(), 2u);  // a, b
}

TEST(MagicTest, FullyBoundQuery) {
  DlProgram program = MustParse(kChain);
  DlAtom query;
  query.pred = *program.PredByName("path");
  query.args = {DlTerm::Constant(program.InternSym("a")),
                DlTerm::Constant(program.InternSym("d"))};
  auto magic = AnswerWithMagic(program, query);
  ASSERT_TRUE(magic.ok());
  // One empty row: the boolean query holds.
  EXPECT_EQ(magic->size(), 1u);
  EXPECT_TRUE((*magic)[0].empty());

  query.args[1] = DlTerm::Constant(program.InternSym("zzz"));
  auto no = AnswerWithMagic(program, query);
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->empty());
}

TEST(MagicTest, AllFreeQueryStillMatchesFull) {
  DlProgram program = MustParse(kChain);
  DlAtom query;
  query.pred = *program.PredByName("path");
  query.args = {DlTerm::Variable(0), DlTerm::Variable(1)};
  auto magic = AnswerWithMagic(program, query);
  ASSERT_TRUE(magic.ok()) << magic.status();
  EXPECT_EQ(*magic, AnswerFull(program, query));
}

TEST(MagicTest, EdbQueryIsIdentityTransformation) {
  DlProgram program = MustParse(kChain);
  DlAtom query;
  query.pred = *program.PredByName("edge");
  query.args = {DlTerm::Constant(program.InternSym("a")),
                DlTerm::Variable(0)};
  auto transformed = MagicTransform(program, query);
  ASSERT_TRUE(transformed.ok());
  EXPECT_EQ(transformed->answer_pred, query.pred);
  auto magic = AnswerWithMagic(program, query);
  ASSERT_TRUE(magic.ok());
  EXPECT_EQ(magic->size(), 1u);
}

TEST(MagicTest, MixedPredicateWithFactsAndRules) {
  // `reach` has both facts and rules — the RDF `triple` situation.
  DlProgram program = MustParse(
      "reach(a, a).\n"
      "edge(a, b). edge(b, c).\n"
      "reach(X, Z) :- reach(X, Y), edge(Y, Z).\n");
  DlAtom query;
  query.pred = *program.PredByName("reach");
  query.args = {DlTerm::Constant(program.InternSym("a")),
                DlTerm::Variable(0)};
  auto magic = AnswerWithMagic(program, query);
  ASSERT_TRUE(magic.ok()) << magic.status();
  EXPECT_EQ(*magic, AnswerFull(program, query));
  EXPECT_EQ(magic->size(), 3u);  // a, b, c
}

TEST(MagicTest, RejectsBadQueries) {
  DlProgram program = MustParse(kChain);
  DlAtom bad_arity;
  bad_arity.pred = *program.PredByName("path");
  bad_arity.args = {DlTerm::Variable(0)};
  EXPECT_FALSE(MagicTransform(program, bad_arity).ok());

  DlAtom bad_pred;
  bad_pred.pred = 999;
  EXPECT_FALSE(MagicTransform(program, bad_pred).ok());
}

TEST(MagicTest, TransformedProgramValidates) {
  DlProgram program = MustParse(kChain);
  DlAtom query;
  query.pred = *program.PredByName("path");
  query.args = {DlTerm::Constant(program.InternSym("a")),
                DlTerm::Variable(0)};
  auto transformed = MagicTransform(program, query);
  ASSERT_TRUE(transformed.ok());
  EXPECT_TRUE(transformed->program.Validate().ok());
  // Adorned and magic predicates exist.
  EXPECT_TRUE(transformed->program.PredByName("path__bf").ok());
  EXPECT_TRUE(transformed->program.PredByName("m_path__bf").ok());
}

// Property: on random graphs and random query bindings, magic answers
// equal full-materialization answers and never derive more tuples.
TEST(MagicPropertyTest, EquivalentAndNoLargerOnRandomGraphs) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    std::string text;
    const int nodes = 10;
    for (int i = 0; i < 20; ++i) {
      text += "edge(n" + std::to_string(rng.Uniform(0, nodes - 1)) + ", n" +
              std::to_string(rng.Uniform(0, nodes - 1)) + ").\n";
    }
    text +=
        "path(X, Y) :- edge(X, Y).\n"
        "path(X, Z) :- path(X, Y), edge(Y, Z).\n";
    DlProgram program = MustParse(text);

    DlAtom query;
    query.pred = *program.PredByName("path");
    std::string node = "n" + std::to_string(rng.Uniform(0, nodes - 1));
    if (rng.Chance(0.5)) {
      query.args = {DlTerm::Constant(program.InternSym(node)),
                    DlTerm::Variable(0)};
    } else {
      query.args = {DlTerm::Variable(0),
                    DlTerm::Constant(program.InternSym(node))};
    }

    EvalStats magic_stats, full_stats;
    auto magic = AnswerWithMagic(program, query, &magic_stats);
    ASSERT_TRUE(magic.ok()) << magic.status();
    std::vector<Tuple> full = AnswerFull(program, query, &full_stats);
    ASSERT_EQ(*magic, full) << "seed " << seed;
    // Relevance: magic never does *more* derivation work on these shapes.
    EXPECT_LE(magic_stats.derived_tuples,
              full_stats.derived_tuples + magic_stats.derived_tuples / 2 + 8)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace wdr::datalog
