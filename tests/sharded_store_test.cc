// ShardedStore edge cases: routing disjointness, empty shards, adversarial
// skew, lazy re-partition under open scans and epoch pins, permutation
// remaps, statistics merging, and delta maintenance (insert + DRed) landing
// on the correct shard. The broad equivalence properties (closure and
// answer identity across shard counts) live in the differential harness;
// this file pins down the corners a random workload rarely hits.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exec/statistics.h"
#include "obs/metrics.h"
#include "rdf/graph.h"
#include "rdf/sharded_store.h"
#include "rdf/triple_store.h"
#include "reasoning/saturated_graph.h"
#include "server/snapshot_store.h"
#include "store/reasoning_store.h"
#include "tests/test_util.h"

namespace wdr {
namespace {

using rdf::ShardedStore;
using rdf::StorageBackend;
using rdf::TermId;
using rdf::Triple;

// First `n` term ids >= `from` owned by shard `target` — the adversarial
// workload generator (every instance triple hashes to one shard).
std::vector<TermId> SubjectsOwnedBy(const ShardedStore& store, size_t target,
                                    size_t n, TermId from = 100) {
  std::vector<TermId> out;
  for (TermId s = from; out.size() < n; ++s) {
    if (store.OwnerShard(s) == target) out.push_back(s);
  }
  return out;
}

TEST(ShardedStoreTest, RoutingIsDisjointAndExhaustive) {
  ShardedStore store(4, StorageBackend::kOrdered);
  const TermId kSchemaPred = 10;
  store.SetBroadcastPredicates({kSchemaPred});

  const Triple schema(1, kSchemaPred, 2);
  const Triple instance(5, 7, 9);
  EXPECT_TRUE(store.Insert(schema));
  EXPECT_TRUE(store.Insert(instance));

  // A triple lives in the schema store iff its predicate is broadcast,
  // else in exactly the subject's owner shard — never anywhere else.
  EXPECT_TRUE(store.schema_store().Contains(schema));
  EXPECT_FALSE(store.schema_store().Contains(instance));
  const size_t owner = store.OwnerShard(5);
  for (size_t i = 0; i < store.shard_count(); ++i) {
    EXPECT_EQ(store.shard(i).Contains(instance), i == owner);
    EXPECT_FALSE(store.shard(i).Contains(schema));
  }
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Contains(schema));
  EXPECT_TRUE(store.Contains(instance));
  EXPECT_EQ(store.Count(0, 0, 0), 2u);

  // Changing the broadcast set re-routes existing triples.
  store.SetBroadcastPredicates({kSchemaPred, 7});
  EXPECT_TRUE(store.schema_store().Contains(instance));
  EXPECT_FALSE(store.shard(owner).Contains(instance));
  EXPECT_EQ(store.size(), 2u);
}

TEST(ShardedStoreTest, EmptyShardsScanAndCountCorrectly) {
  ShardedStore store(8, StorageBackend::kFlat);
  rdf::TripleStore reference;
  // Adversarial skew: every subject hashes to shard 3; shards 0-2 and 4-7
  // stay empty for the whole test.
  for (TermId s : SubjectsOwnedBy(store, 3, 16)) {
    const Triple t(s, 7, s + 1);
    EXPECT_TRUE(store.Insert(t));
    reference.Insert(t);
  }
  const std::vector<size_t> sizes = store.ShardSizes();
  for (size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], i == 3 ? 16u : 0u);
  }
  // All triples on one of eight shards: skew = max/mean = 16/(16/8) = 8.
  EXPECT_DOUBLE_EQ(store.SkewRatio(), 8.0);
  EXPECT_EQ(store.ToVector(), reference.ToVector());
  EXPECT_EQ(store.Count(0, 7, 0), 16u);
  EXPECT_EQ(store.Count(0, 0, 0), 16u);
  EXPECT_EQ(store.EstimateCount(0, 7, 0), reference.EstimateCount(0, 7, 0));

  store.PublishGauges();
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Get().Snapshot();
  const auto gauge = [&](const std::string& name) -> int64_t {
    for (const auto& [gauge_name, value] : snapshot.gauges) {
      if (gauge_name == name) return value;
    }
    return -1;
  };
  EXPECT_EQ(gauge("wdr.shard.count"), 8);
  EXPECT_EQ(gauge("wdr.shard.skew_x100"), 800);
  EXPECT_EQ(gauge("wdr.shard.size.3"), 16);
}

TEST(ShardedStoreTest, EmptyStoreSkewIsZero) {
  ShardedStore store(4);
  EXPECT_DOUBLE_EQ(store.SkewRatio(), 0.0);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.ToVector().empty());
}

TEST(ShardedStoreTest, RepartitionDefersUnderOpenScan) {
  ShardedStore store(4, StorageBackend::kOrdered);
  for (TermId s = 100; s < 120; ++s) store.Insert(Triple(s, 7, s + 1));
  const std::vector<Triple> before = store.ToVector();

  {
    rdf::ScanHandle scan;
    store.OpenScan(scan, 0, 0, 0);
    EXPECT_EQ(store.open_scans(), 1u);
    // Re-partition must not move triples under a live cursor: recorded,
    // not applied.
    EXPECT_FALSE(store.SetShardCount(8));
    EXPECT_EQ(store.shard_count(), 4u);
    EXPECT_EQ(store.pending_shard_count(), 8u);
    // The open cursor still streams the pre-request layout, completely.
    Triple buffer[rdf::StoreView::kMatchBatch];
    size_t seen = 0;
    for (;;) {
      const size_t n = scan->NextBatch(buffer, rdf::StoreView::kMatchBatch);
      if (n == 0) break;
      seen += n;
    }
    EXPECT_EQ(seen, before.size());
  }

  // Cursor closed: the next mutation applies the pending layout first.
  EXPECT_EQ(store.open_scans(), 0u);
  EXPECT_TRUE(store.Insert(Triple(500, 7, 501)));
  EXPECT_EQ(store.shard_count(), 8u);
  EXPECT_EQ(store.pending_shard_count(), 0u);
  EXPECT_EQ(store.size(), before.size() + 1);
  // Every triple ends up on its new owner shard.
  for (const Triple& t : store.ToVector()) {
    EXPECT_TRUE(store.shard(store.OwnerShard(t.s)).Contains(t));
  }
}

TEST(ShardedStoreTest, RepartitionDefersUnderEpochPinUntilCompact) {
  ShardedStore store(4, StorageBackend::kFlat);
  for (TermId s = 100; s < 110; ++s) store.Insert(Triple(s, 7, s + 1));

  store.PinEpoch();
  EXPECT_FALSE(store.SetShardCount(2));
  EXPECT_EQ(store.shard_count(), 4u);
  EXPECT_EQ(store.pending_shard_count(), 2u);
  // Pinned: even TryCompact must leave the layout alone (and report
  // incomplete work).
  EXPECT_FALSE(store.TryCompact());
  EXPECT_EQ(store.shard_count(), 4u);
  store.UnpinEpoch();

  EXPECT_TRUE(store.TryCompact());
  EXPECT_EQ(store.shard_count(), 2u);
  EXPECT_EQ(store.pending_shard_count(), 0u);
  EXPECT_EQ(store.size(), 10u);
}

TEST(ShardedStoreTest, SettingCurrentCountCancelsPending) {
  ShardedStore store(4);
  store.Insert(Triple(1, 2, 3));
  store.PinEpoch();
  EXPECT_FALSE(store.SetShardCount(8));
  EXPECT_EQ(store.pending_shard_count(), 8u);
  // Requesting the current count again withdraws the pending request.
  EXPECT_TRUE(store.SetShardCount(4));
  EXPECT_EQ(store.pending_shard_count(), 0u);
  store.UnpinEpoch();
  EXPECT_TRUE(store.TryCompact());
  EXPECT_EQ(store.shard_count(), 4u);
}

TEST(ShardedStoreTest, MakeEmptyResolvesPendingLayout) {
  ShardedStore store(4);
  store.SetBroadcastPredicates({10});
  store.PinEpoch();
  EXPECT_FALSE(store.SetShardCount(6));
  // A fresh store built from this one starts on the *requested* layout
  // (this is how a closure rebuild picks up a deferred re-partition).
  std::unique_ptr<rdf::StoreView> empty = store.MakeEmpty();
  auto* sharded = dynamic_cast<ShardedStore*>(empty.get());
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->shard_count(), 6u);
  EXPECT_EQ(sharded->broadcast_predicates(), store.broadcast_predicates());
  store.UnpinEpoch();
}

TEST(ShardedStoreTest, EstimatesMatchSingleOrderedStore) {
  // The bit-identity keystone: estimates depend only on contents, so the
  // legacy join order cannot drift across shard counts.
  rdf::TripleStore reference;
  ShardedStore store(4, StorageBackend::kOrdered);
  store.SetBroadcastPredicates({10});
  for (TermId s = 1; s <= 200; ++s) {
    const Triple t(s, s % 3 == 0 ? 10 : 7, 1 + s % 5);
    store.Insert(t);
    reference.Insert(t);
  }
  for (const auto& [s, p, o] :
       {std::tuple<TermId, TermId, TermId>{0, 0, 0},
        {0, 7, 0},
        {0, 10, 0},
        {5, 0, 0},
        {0, 0, 3},
        {0, 7, 3},
        {5, 7, 0},
        {12, 10, 1}}) {
    EXPECT_EQ(store.EstimateCount(s, p, o), reference.EstimateCount(s, p, o))
        << "pattern (" << s << "," << p << "," << o << ")";
    EXPECT_EQ(store.Count(s, p, o), reference.Count(s, p, o));
  }
}

TEST(ShardedStoreTest, StatisticsMergeComposesShardLocalBuilds) {
  ShardedStore store(4, StorageBackend::kOrdered);
  store.SetBroadcastPredicates({10});
  for (TermId s = 1; s <= 300; ++s) {
    store.Insert(Triple(s, s % 4 == 0 ? 10 : 7, 1 + s % 9));
  }
  // Whole-store pass vs schema + per-shard builds folded with Merge.
  const exec::Statistics whole = exec::Statistics::Build(store);
  exec::Statistics merged = exec::Statistics::Build(store.schema_store());
  for (size_t i = 0; i < store.shard_count(); ++i) {
    merged.Merge(exec::Statistics::Build(store.shard(i)));
  }
  EXPECT_EQ(merged.total_triples(), whole.total_triples());
  EXPECT_EQ(merged.distinct_predicates(), whole.distinct_predicates());
  for (TermId p : {TermId{7}, TermId{10}}) {
    const exec::PredicateStats* w = whole.Predicate(p);
    const exec::PredicateStats* m = merged.Predicate(p);
    ASSERT_NE(w, nullptr);
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->count, w->count);
    // Subject sets are disjoint across members (hash-partitioned or
    // all-schema), so distinct subjects merge exactly.
    EXPECT_EQ(m->distinct_subjects, w->distinct_subjects);
    // Objects repeat across shards: the merged count is an overcount,
    // bounded by the predicate count.
    EXPECT_GE(m->distinct_objects, w->distinct_objects);
    EXPECT_LE(m->distinct_objects, m->count);
  }
}

// Checks the disjointness invariant across an entire composite store:
// every triple is in exactly the member the routing function names.
void ExpectWellPartitioned(const ShardedStore& store) {
  store.Match(0, 0, 0, [&](const Triple& t) {
    if (store.IsBroadcast(t.p)) {
      EXPECT_TRUE(store.schema_store().Contains(t));
      for (size_t i = 0; i < store.shard_count(); ++i) {
        EXPECT_FALSE(store.shard(i).Contains(t));
      }
    } else {
      const size_t owner = store.OwnerShard(t.s);
      for (size_t i = 0; i < store.shard_count(); ++i) {
        EXPECT_EQ(store.shard(i).Contains(t), i == owner);
      }
    }
    return true;
  });
}

TEST(ShardedStoreTest, DeltaMaintenanceLandsOnOwnerShards) {
  // SaturatedGraph over a sharded base: semi-naive insert propagation and
  // DRed deletion must keep both the base and the closure well-partitioned,
  // and the closure itself equal to a from-scratch rebuild.
  rdf::Graph g;
  schema::Vocabulary vocab = schema::Vocabulary::Intern(g.dict());
  test::Add(g, "Cat", schema::iri::kSubClassOf, "Mammal");
  test::Add(g, "Mammal", schema::iri::kSubClassOf, "Animal");
  test::Add(g, "tom", schema::iri::kType, "Cat");

  auto sharded = std::make_unique<ShardedStore>(4, StorageBackend::kOrdered);
  sharded->SetBroadcastPredicates({vocab.sub_class_of, vocab.sub_property_of,
                                   vocab.domain, vocab.range});
  g.AdoptStore(std::move(sharded));

  reasoning::SaturatedGraph sat(g, vocab);
  const TermId jerry = sat.dict().Intern(test::T("jerry"));
  const TermId cat = sat.dict().Intern(test::T("Cat"));
  const TermId animal = sat.dict().Intern(test::T("Animal"));

  // Insert: derived type triples land on jerry's owner shard in the
  // (sharded) closure store.
  EXPECT_GT(sat.Insert(Triple(jerry, vocab.type, cat)), 0u);
  const auto* closure = dynamic_cast<const ShardedStore*>(&sat.closure());
  ASSERT_NE(closure, nullptr);
  const Triple derived(jerry, vocab.type, animal);
  EXPECT_TRUE(closure->Contains(derived));
  EXPECT_TRUE(closure->shard(closure->OwnerShard(jerry)).Contains(derived));
  ExpectWellPartitioned(*closure);

  // Delete: DRed removes the derivations from the same shard.
  EXPECT_GT(sat.Erase(Triple(jerry, vocab.type, cat)), 0u);
  EXPECT_FALSE(closure->Contains(derived));
  EXPECT_FALSE(closure->shard(closure->OwnerShard(jerry)).Contains(derived));
  ExpectWellPartitioned(*closure);

  // The maintained closure equals a from-scratch rebuild.
  reasoning::SaturatedGraph rebuilt(sat.base(), vocab);
  EXPECT_EQ(sat.closure().ToVector(), rebuilt.closure().ToVector());
}

TEST(ShardedStoreTest, PermutationRemapsBroadcastRouting) {
  // Graph::ApplyPermutation re-encodes every id; the sharded store must
  // re-route: broadcast predicates follow their new ids and instance
  // triples follow their re-hashed subjects.
  rdf::Graph g;
  schema::Vocabulary vocab = schema::Vocabulary::Intern(g.dict());
  test::Add(g, "Cat", schema::iri::kSubClassOf, "Mammal");
  test::Add(g, "tom", schema::iri::kType, "Cat");

  auto sharded = std::make_unique<ShardedStore>(4, StorageBackend::kOrdered);
  sharded->SetBroadcastPredicates({vocab.sub_class_of, vocab.sub_property_of,
                                   vocab.domain, vocab.range});
  g.AdoptStore(std::move(sharded));

  // Reverse all ids (ids are 1..size(); perm entry 0 is ignored).
  const size_t n = g.dict().size();
  std::vector<TermId> perm(n + 1);
  for (size_t i = 1; i <= n; ++i) {
    perm[i] = static_cast<TermId>(n + 1 - i);
  }
  g.ApplyPermutation(perm);

  const auto* store = dynamic_cast<const ShardedStore*>(&g.store());
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->size(), 2u);
  ExpectWellPartitioned(*store);
  // The remapped subClassOf id is broadcast; its triple sits in the schema
  // store.
  schema::Vocabulary new_vocab = schema::Vocabulary::Intern(g.dict());
  EXPECT_TRUE(store->IsBroadcast(new_vocab.sub_class_of));
  EXPECT_EQ(store->schema_store().size(), 1u);
}

TEST(ShardedStoreTest, ExchangeOperatorsAppearInExplain) {
  // End to end through the store front door: plan-mode profiling over the
  // sharded backend shows the exchange wrapper and its per-fragment
  // est-vs-actual children.
  store::ReasoningStoreOptions options;
  options.mode = store::ReasoningMode::kSaturation;
  options.backend = StorageBackend::kSharded;
  options.shards = 4;
  store::ReasoningStore store(options);
  ASSERT_TRUE(store
                  .LoadTurtle("@prefix rdfs: "
                              "<http://www.w3.org/2000/01/rdf-schema#> .\n"
                              "@prefix ex: <http://ex.org/> .\n"
                              "ex:Cat rdfs:subClassOf ex:Mammal .\n"
                              "ex:tom a ex:Cat .\n"
                              "ex:bob a ex:Cat .\n")
                  .ok());
  store.SetPlanMode(true);
  store.SetProfiling(true);
  store::QueryInfo info;
  auto result = store.Query(
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
      "PREFIX ex: <http://ex.org/> "
      "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
      &info);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
  ASSERT_NE(info.profile, nullptr);
  const std::string rendered = info.profile->Render();
  EXPECT_NE(rendered.find("exchange["), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("fragment."), std::string::npos) << rendered;
}

TEST(ShardedStoreTest, ServerSetShardsRepartitionsBothSides) {
  // SET shards= goes through the writer path: after a re-partition, reads
  // keep answering identically and the layout is visible to INFO.
  server::SnapshotStore snapshot([] {
    store::ReasoningStoreOptions options;
    options.backend = StorageBackend::kSharded;
    options.shards = 2;
    return options;
  }());
  ASSERT_TRUE(snapshot
                  .LoadTurtle("@prefix rdfs: "
                              "<http://www.w3.org/2000/01/rdf-schema#> .\n"
                              "@prefix ex: <http://ex.org/> .\n"
                              "ex:Cat rdfs:subClassOf ex:Mammal .\n"
                              "ex:tom a ex:Cat .\n")
                  .ok());
  const auto query = [&] {
    auto r = snapshot.Query(
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
        "PREFIX ex: <http://ex.org/> "
        "SELECT ?x WHERE { ?x rdf:type ex:Mammal }",
        store::ReadOptions{});
    return r.ok() ? r->row_count : size_t{0};
  };
  EXPECT_EQ(query(), 1u);
  EXPECT_EQ(snapshot.shard_layout().shard_count, 2u);

  EXPECT_TRUE(snapshot.SetShardCount(8));
  EXPECT_EQ(snapshot.shard_layout().shard_count, 8u);
  EXPECT_EQ(query(), 1u);

  // Non-sharded stores refuse (and burn no epoch).
  server::SnapshotStore plain;
  const uint64_t epoch = plain.epoch();
  EXPECT_FALSE(plain.SetShardCount(4));
  EXPECT_EQ(plain.epoch(), epoch);
}

}  // namespace
}  // namespace wdr
